"""Setuptools shim.

This file is the canonical dependency record: CI installs the package with
``pip install -e .[dev]`` and keys its pip cache off this file, so runtime
dependencies and the dev toolchain are pinned in exactly one place.  It also
keeps editable installs working in offline environments whose
setuptools/pip combination lacks PEP 660 support (``pip install -e .
--no-build-isolation --no-use-pep517``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "PolicySmith reproduction: LLM-driven synthesis of instance-optimal "
        "systems policies (HotNets '25)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    # numpy is a *core* dependency, not a dev extra: the trace sidecar decode
    # (traces/streaming.py), the columnar Trace form and the vectorized DSL
    # backend all import it at runtime.  1.24 is the tested minimum (first
    # release with the strict float64 promotion rules run_batch relies on);
    # the suite is routinely exercised against numpy 2.x (2.4.6 in CI).
    install_requires=["numpy>=1.24"],
    extras_require={
        # Everything CI needs on top of the runtime dependencies: the test
        # stack for the tier-1 suite and benchmarks, plus the pinned linter
        # (pin ruff exactly -- lint output must not drift between local runs
        # and CI).
        "dev": [
            "pytest>=8",
            "pytest-benchmark>=4",
            "hypothesis>=6",
            "ruff==0.9.6",
        ],
    },
)
