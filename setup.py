"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so that editable installs work in offline environments whose
setuptools/pip combination lacks PEP 660 support (``pip install -e .
--no-build-isolation --no-use-pep517``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "PolicySmith reproduction: LLM-driven synthesis of instance-optimal "
        "systems policies (HotNets '25)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
