#!/usr/bin/env python3
"""Case study 2 (§5): synthesizing kernel congestion-control heuristics.

Reproduces the paper's feasibility study on the simulation substrate,
through the experiment registry and the declarative RunSpec API:

* the `cc-compilation` experiment: how many cong_control candidates pass the
  verifier stand-in first try vs after checker feedback (§5.0.3's 63 % /
  +19 %, with caching's 92 % as contrast),
* the `cc-behaviour` experiment: utilisation / queueing-delay spread of the
  compiled candidates on the emulated 12 Mbps / 20 ms link,
* a short kernel-constrained search declared as a RunSpec, with the best
  discovered controller printed next to Reno and CUBIC.

Run:  python examples/congestion_control.py
"""

from repro.cc.evaluator import default_cc_simulation_config
from repro.cc.policies import CubicController, RenoController
from repro.core.spec import RunSpec, run
from repro.experiments.registry import get_experiment, run_experiment
from repro.netsim.simulator import NetworkSimulator

def main() -> None:
    print("=" * 72)
    print("Verifier pass rates (kernel template vs caching template)")
    print("=" * 72)
    payload = run_experiment("cc-compilation", candidates=80, seed=11)
    print(get_experiment("cc-compilation").renderer(payload))

    print()
    print("=" * 72)
    print("Behaviour of compiled candidates on the 12 Mbps / 20 ms link")
    print("=" * 72)
    payload = run_experiment("cc-behaviour", candidates=25, seed=23, duration=3.0)
    print(get_experiment("cc-behaviour").renderer(payload))

    print()
    print("=" * 72)
    print("Short kernel-constrained search")
    print("=" * 72)
    spec = RunSpec(
        domain="cc",
        name="cc-short-search",
        domain_kwargs={"duration_s": 3.0},
        search={"rounds": 3, "candidates_per_round": 12},
        seed=7,
    )
    result = run(spec).result
    details = result.best.evaluation.details
    print(f"best candidate: utilization {details['utilization'] * 100:.0f}%, "
          f"mean queueing delay {details['mean_queueing_delay_ms']:.1f} ms, "
          f"loss rate {details['loss_rate'] * 100:.2f}%")
    print(result.best_source())

    for name, controller in (("Reno", RenoController()), ("CUBIC", CubicController())):
        simulator = NetworkSimulator(default_cc_simulation_config(3.0))
        simulator.add_flow(controller)
        metrics = simulator.run()
        print(f"reference {name:<6}: utilization {metrics.utilization * 100:.0f}%, "
              f"delay {metrics.mean_queueing_delay_ms:.1f} ms, "
              f"loss {metrics.loss_rate * 100:.2f}%")


if __name__ == "__main__":
    main()
