#!/usr/bin/env python3
"""Case study 2 (§5): synthesizing kernel congestion-control heuristics.

Reproduces the paper's feasibility study on the simulation substrate:

* generate candidate cong_control programs under kernel constraints and
  report how many pass the verifier stand-in on the first try vs after
  checker feedback (§5.0.3's 63 % / +19 %, with caching's 92 % as contrast),
* evaluate the compiled candidates on the emulated 12 Mbps / 20 ms link and
  report the spread of utilisation and queueing delay,
* run a short search and print the best discovered controller next to Reno
  and CUBIC.

Run:  python examples/congestion_control.py
"""

from repro.cc.policies import CubicController, RenoController
from repro.core.domain import build_search
from repro.experiments.cc_behaviour import format_behaviour, run_cc_behaviour
from repro.experiments.cc_compilation import format_compilation, run_cc_compilation
from repro.netsim.simulator import NetworkSimulator
from repro.cc.evaluator import default_cc_simulation_config


def main() -> None:
    print("=" * 72)
    print("Verifier pass rates (kernel template vs caching template)")
    print("=" * 72)
    print(format_compilation(run_cc_compilation(num_candidates=80, seed=11)))

    print()
    print("=" * 72)
    print("Behaviour of compiled candidates on the 12 Mbps / 20 ms link")
    print("=" * 72)
    print(format_behaviour(run_cc_behaviour(num_candidates=25, seed=23, duration_s=3.0)))

    print()
    print("=" * 72)
    print("Short kernel-constrained search")
    print("=" * 72)
    setup = build_search("cc", rounds=3, candidates_per_round=12, seed=7, duration_s=3.0)
    result = setup.search.run()
    details = result.best.evaluation.details
    print(f"best candidate: utilization {details['utilization'] * 100:.0f}%, "
          f"mean queueing delay {details['mean_queueing_delay_ms']:.1f} ms, "
          f"loss rate {details['loss_rate'] * 100:.2f}%")
    print(result.best_source())

    for name, controller in (("Reno", RenoController()), ("CUBIC", CubicController())):
        simulator = NetworkSimulator(default_cc_simulation_config(3.0))
        simulator.add_flow(controller)
        metrics = simulator.run()
        print(f"reference {name:<6}: utilization {metrics.utilization * 100:.0f}%, "
              f"delay {metrics.mean_queueing_delay_ms:.1f} ms, "
              f"loss {metrics.loss_rate * 100:.2f}%")


if __name__ == "__main__":
    main()
