#!/usr/bin/env python3
"""Robust multi-scenario search over the workload registry.

Single-scenario search synthesises a heuristic that is instance-optimal for
one trace -- and often fragile everywhere else.  This example scores every
candidate across a *scenario matrix* (a Zipf-skewed workload, a scan storm
and the LRU-adversarial loop) under the maximin ``worst`` reducer, so the
winner is the policy with the best worst-case behaviour, then prints the
per-scenario breakdown the engine recorded.

The same matrix is expressible as pure JSON (see
``examples/specs/matrix_caching.json``) and runnable with
``python -m repro run``; the congestion-control domain works identically
with netsim workloads (``cc/multi-flow``, ``cc/bursty-cross``,
``cc/lossy-link`` -- see ``python -m repro workloads list``).

Run:  python examples/multi_scenario_search.py
"""

from repro.core import RunSpec, run

MATRIX = [
    {"name": "caching/zipf-hot", "num_requests": 2000, "num_objects": 500},
    {"name": "caching/scan-storm", "num_requests": 2000, "num_objects": 500},
    {"name": "caching/adversarial-loop", "num_requests": 2000, "num_objects": 500},
]


def main() -> None:
    spec = RunSpec(
        domain="caching",
        name="robust-caching",
        domain_kwargs={"workloads": MATRIX, "reducer": "worst"},
        search={"rounds": 4, "candidates_per_round": 8},
        engine={"max_workers": 4, "executor": "thread"},
        seed=0,
    )
    outcome = run(spec)
    result = outcome.result

    best = result.best
    print(f"best candidate: {best.candidate.candidate_id}")
    print(f"worst-case score: {best.score:.4f}")
    print("per-scenario scores:")
    for name, score in best.evaluation.scenario_scores.items():
        print(f"  {name:<28} {score:.4f}")
    print()
    print("per-round scenario bests (adaptation across the matrix):")
    for summary in result.rounds:
        cells = "  ".join(
            f"{name.split('/')[-1]}={score:.3f}"
            for name, score in summary.scenario_best.items()
        )
        print(f"  round {summary.round_index}: {cells}")
    print()
    print("winning heuristic:")
    print(result.best_source())


if __name__ == "__main__":
    main()
