#!/usr/bin/env python3
"""Case study 1 (§4): instance-optimal cache eviction heuristics.

Reproduces the paper's caching methodology end to end on synthetic stand-ins
for the CloudPhysics / MSR corpora, entirely through the experiment registry
(the same named specs + reducers `python -m repro run` uses):

* run the `caching-search` experiment on a chosen context trace (§4.2.1) and
  verify instance-optimality against the fourteen baselines (§4.2.3),
* evaluate the shipped heuristics A-D / W-Z corpus-wide and print the
  Figure-2 series and Table-2 rows for a corpus subset.

Run:  python examples/caching_search.py [--full]

``--full`` evaluates the complete corpora (105 + 14 traces) instead of a
small subset; expect several minutes of runtime.
"""

import argparse

from repro.experiments.corpus import evaluate_corpus
from repro.experiments.figure2 import figure2_from_evaluation, format_figure2
from repro.experiments.registry import get_experiment, run_experiment
from repro.experiments.table2 import format_table2, table2_from_evaluation

def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="evaluate the full corpora")
    parser.add_argument("--trace", type=int, default=89, help="context trace index (w89 by default)")
    parser.add_argument("--rounds", type=int, default=6)
    parser.add_argument("--candidates", type=int, default=12)
    args = parser.parse_args()

    # -- §4.2.1 / §4.2.3: search on one context trace -------------------------------
    print("=" * 72)
    print("PolicySmith search on one context trace")
    print("=" * 72)
    payload = run_experiment(
        "caching-search",
        trace=args.trace,
        rounds=args.rounds,
        candidates=args.candidates,
        requests=None if args.full else 4000,
        seed=1,
    )
    print(get_experiment("caching-search").renderer(payload))

    # -- Figure 2 / Table 2 on a corpus ---------------------------------------------
    # The corpus simulation is the expensive part, so it is evaluated once per
    # dataset and fed to both reducers (the registry runners would simulate twice).
    trace_count = None if args.full else 12
    num_requests = None if args.full else 3000
    for dataset in ("cloudphysics", "msr"):
        count = trace_count if dataset == "cloudphysics" else (None if args.full else 6)
        print()
        print("=" * 72)
        print(f"Corpus evaluation: {dataset}")
        print("=" * 72)
        evaluation = evaluate_corpus(dataset, trace_count=count, num_requests=num_requests)
        print(format_figure2(figure2_from_evaluation(evaluation), top_baselines=5))
        print()
        print(format_table2(table2_from_evaluation(evaluation)))


if __name__ == "__main__":
    main()
