#!/usr/bin/env python3
"""Quickstart: the PolicySmith loop in ~50 lines, on the declarative API.

Walks the full Figure-1 pipeline on a small synthetic caching context:

1. declare the whole run as a serializable RunSpec (context trace reference,
   search size, seed),
2. execute it with ``run(spec)`` -- the spec is what the ``repro`` CLI, the
   sweep driver and the tests all submit,
3. compare the synthesized heuristic against classic baselines on the trace,
4. print the discovered code and the search's token/cost accounting.

Run:  python examples/quickstart.py
"""

from repro.cache.policies import BASELINES
from repro.cache.priority_cache import PriorityFunctionCache
from repro.cache.simulator import CacheSimulator, cache_size_for, simulate_many
from repro.core.spec import RunSpec, run

def main() -> None:
    # 1. The deployment context: one CloudPhysics-like trace, cache sized at
    #    10 % of the trace footprint (the paper's §4.1.4 setting).  The trace
    #    is referenced declaratively so the spec itself round-trips through
    #    JSON (try `print(spec.to_json())` -- the same file
    #    `python -m repro run` accepts).
    spec = RunSpec(
        domain="caching",
        name="quickstart",
        domain_kwargs={"trace": {"dataset": "cloudphysics", "index": 89, "num_requests": 3000}},
        search={"rounds": 4, "candidates_per_round": 10},
        seed=0,
    )

    # 2. Run it (scaled down from the paper's 20x25).
    outcome = run(spec)
    result = outcome.result
    trace = outcome.resolved_domain_kwargs["trace"]
    print(f"context trace: {trace.name} ({len(trace)} requests, "
          f"{trace.unique_objects()} objects, footprint {trace.footprint_bytes()} B)")
    print(f"\nsearch: {result.total_candidates} candidates, "
          f"{len(result.valid_candidates())} valid, "
          f"first-pass check rate {result.first_pass_check_rate() * 100:.0f}%")
    print(f"tokens: {result.prompt_tokens} prompt / {result.completion_tokens} completion "
          f"(~${result.estimated_cost_usd:.4f} at GPT-4o-mini prices)")

    # 3. Compare the winner against the fourteen baselines on this context.
    size = cache_size_for(trace)
    baselines = simulate_many(BASELINES, trace)
    winner = CacheSimulator().run(
        PriorityFunctionCache(size, result.best_program(), name="PolicySmith"), trace
    )
    print("\nmiss ratios on the context trace (lower is better):")
    rows = sorted(list(baselines.values()) + [winner], key=lambda r: r.miss_ratio)
    for row in rows[:6]:
        marker = "  <-- synthesized" if row.policy == "PolicySmith" else ""
        print(f"  {row.policy:<14} {row.miss_ratio:.4f}{marker}")

    # 4. The discovered heuristic itself.
    print("\nsynthesized priority function:")
    print(result.best_source())


if __name__ == "__main__":
    main()
