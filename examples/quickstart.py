#!/usr/bin/env python3
"""Quickstart: the PolicySmith loop in ~60 lines.

Walks the full Figure-1 pipeline on a small synthetic caching context:

1. build a context trace and the caching Template (Table-1 features,
   constraints, LRU/LFU seeds),
2. run a short evolutionary search driven by the offline synthetic LLM,
3. compare the synthesized heuristic against classic baselines on the trace,
4. print the discovered code and the search's token/cost accounting.

Run:  python examples/quickstart.py
"""

from repro.cache.policies import BASELINES
from repro.cache.priority_cache import PriorityFunctionCache
from repro.core.domain import build_search
from repro.cache.simulator import CacheSimulator, cache_size_for, simulate_many
from repro.traces import cloudphysics_trace


def main() -> None:
    # 1. The deployment context: one CloudPhysics-like trace, cache sized at
    #    10 % of the trace footprint (the paper's §4.1.4 setting).
    trace = cloudphysics_trace(89, num_requests=3000)
    print(f"context trace: {trace.name} ({len(trace)} requests, "
          f"{trace.unique_objects()} objects, footprint {trace.footprint_bytes()} B)")

    # 2. Assemble and run the search (scaled down from the paper's 20x25).
    setup = build_search("caching", trace=trace, rounds=4, candidates_per_round=10, seed=0)
    result = setup.search.run()
    print(f"\nsearch: {result.total_candidates} candidates, "
          f"{len(result.valid_candidates())} valid, "
          f"first-pass check rate {result.first_pass_check_rate() * 100:.0f}%")
    print(f"tokens: {result.prompt_tokens} prompt / {result.completion_tokens} completion "
          f"(~${result.estimated_cost_usd:.4f} at GPT-4o-mini prices)")

    # 3. Compare the winner against the fourteen baselines on this context.
    size = cache_size_for(trace)
    baselines = simulate_many(BASELINES, trace)
    winner = CacheSimulator().run(
        PriorityFunctionCache(size, result.best_program(), name="PolicySmith"), trace
    )
    print("\nmiss ratios on the context trace (lower is better):")
    rows = sorted(
        list(baselines.values()) + [winner], key=lambda r: r.miss_ratio
    )
    for row in rows[:6]:
        marker = "  <-- synthesized" if row.policy == "PolicySmith" else ""
        print(f"  {row.policy:<14} {row.miss_ratio:.4f}{marker}")

    # 4. The discovered heuristic itself.
    print("\nsynthesized priority function:")
    print(result.best_source())


if __name__ == "__main__":
    main()
