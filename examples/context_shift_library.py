#!/usr/bin/env python3
"""Responding to context shifts (§3.1): drift detection, re-synthesis, and a
growing heuristic library.

The scenario: a cache serves a Zipf-dominated workload, then the workload
drifts to a scan-heavy phase (think backup jobs kicking in).  A guardrail
monitor watches the hit rate; when it degrades persistently, PolicySmith is
re-invoked offline for the new context and the heuristic library gains a
second entry.  Until the new heuristic is ready the old one keeps serving,
exactly as §3.1.2 prescribes.

Run:  python examples/context_shift_library.py
"""

from repro.cache.priority_cache import PriorityFunctionCache
from repro.core.domain import build_search
from repro.cache.simulator import cache_size_for
from repro.core.archive import HeuristicArchive
from repro.core.context import ContextShiftDetector
from repro.traces.synthetic import SyntheticWorkloadConfig, generate_trace


def make_phase(name: str, scan_heavy: bool, seed: int):
    return generate_trace(
        SyntheticWorkloadConfig(
            name=name,
            num_requests=2500,
            num_objects=900 if scan_heavy else 350,
            seed=seed,
            zipf_weight=0.1 if scan_heavy else 0.7,
            churn_weight=0.1 if scan_heavy else 0.15,
            scan_weight=0.75 if scan_heavy else 0.05,
            recent_weight=0.05 if scan_heavy else 0.1,
        )
    )


def synthesize(trace, seed):
    setup = build_search("caching", trace=trace, rounds=3, candidates_per_round=8, seed=seed)
    return setup.context, setup.search.run()


def main() -> None:
    archive = HeuristicArchive()

    phase_a = make_phase("phase-a-zipf", scan_heavy=False, seed=1)
    phase_b = make_phase("phase-b-scan", scan_heavy=True, seed=2)

    print("synthesizing a heuristic for the initial (Zipf) context ...")
    context_a, result_a = synthesize(phase_a, seed=10)
    archive.add_candidate(context_a, result_a.best, name="zipf-phase")
    print(f"  miss ratio on phase A: {-result_a.best.score:.4f}")

    # Deploy phase A's heuristic and monitor the hit rate across both phases.
    cache = PriorityFunctionCache(
        cache_size_for(phase_a), result_a.best_program(), name="deployed"
    )
    detector = ContextShiftDetector(
        window=100, reference_window=600, threshold=0.25, patience=5
    )
    shift_at = None
    served = 0
    for trace in (phase_a, phase_b):
        for request in trace:
            served += 1
            if cache.lookup(request):
                fired = detector.observe(1.0)
            else:
                fired = detector.observe(0.0)
                if request.size <= cache.capacity:
                    cache.admit(request)
            if fired and shift_at is None:
                shift_at = served
    print(f"context shift detected after {shift_at} requests "
          f"(phase B starts at {len(phase_a) + 1})")

    print("re-synthesizing for the new (scan-heavy) context ...")
    context_b, result_b = synthesize(phase_b, seed=11)
    archive.add_candidate(context_b, result_b.best, name="scan-phase")
    print(f"  miss ratio on phase B: {-result_b.best.score:.4f}")

    print("\nheuristic library now contains:")
    for entry in archive.all_entries():
        print(f"  [{entry.context_name}] {entry.name}  (score {entry.score:.4f})")
    archive.save("results_policy_library.json")
    print("library written to results_policy_library.json")


if __name__ == "__main__":
    main()
