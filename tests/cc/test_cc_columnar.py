"""Zero-layer CC scoring fast-path tests (:mod:`repro.cc.columnar`).

``build_cc_fast`` must read :class:`CCSignals` exactly like the classic
``signals_environment`` + ``HistoryView`` path -- same clamping, same
history-index semantics, same errors -- and must return ``None`` for any
program outside the Template vocabulary so the controller keeps the classic
path.  Scenario-level decisions must be identical across all three backends.
"""

import pytest

from repro.cc.columnar import build_cc_fast
from repro.cc.dsl_controller import DslCongestionController
from repro.cc.evaluator import CongestionControlEvaluator
from repro.cc.template import CC_TEMPLATE_PARAMS
from repro.dsl import parse
from repro.dsl.errors import DslError
from repro.dsl.vectorize import vectorize_program
from repro.netsim.flow import CCSignals, HistoryInterval

CC_SIG = f"def cong_control({', '.join(CC_TEMPLATE_PARAMS)})"

PROGRAMS = {
    "aimd": f"""{CC_SIG} {{
        new_cwnd = cwnd + 1
        if (losses > 0) {{ new_cwnd = cwnd / 2 }}
        if (new_cwnd < 2) {{ new_cwnd = 2 }}
        return new_cwnd
    }}""",
    "rtt-gated": f"""{CC_SIG} {{
        new_cwnd = cwnd
        if (rtt < min_rtt * 2) {{ new_cwnd = cwnd + acked / mss }}
        if (srtt > min_rtt * 3) {{ new_cwnd = cwnd - 1 }}
        if (new_cwnd < 2) {{ new_cwnd = 2 }}
        return new_cwnd
    }}""",
    "history-heavy": f"""{CC_SIG} {{
        new_cwnd = cwnd + 1
        if (history.length() > 2) {{
            recent = history.delivered_at(0) + history.delivered_at(1)
            if (history.losses_at(0) > 0) {{ new_cwnd = cwnd / 2 }}
            if (history.rtt_at(0) > history.min_rtt() * 2) {{ new_cwnd = cwnd - 1 }}
            if (history.total_losses() > 5) {{ new_cwnd = 2 }}
            if (recent < mss) {{ new_cwnd = new_cwnd + 1 }}
        }}
        if (new_cwnd < 2) {{ new_cwnd = 2 }}
        return new_cwnd
    }}""",
}


def make_signals(cwnd=10, losses=0, rtt=22_000, history=()):
    return CCSignals(
        now_us=1_000_000,
        cwnd_pkts=cwnd,
        mss=1448,
        acked_bytes=1448,
        inflight_pkts=cwnd,
        inflight_bytes=cwnd * 1448,
        rtt_us=rtt,
        min_rtt_us=20_000,
        srtt_us=21_000,
        loss=losses > 0,
        losses_since_last_ack=losses,
        delivered_bytes=1_000_000,
        history=list(history),
    )


_HISTORY = [
    HistoryInterval(delivered_bytes=10_000, avg_rtt_us=25_000, losses=1),
    HistoryInterval(delivered_bytes=0, avg_rtt_us=0, losses=0),  # idle interval
    HistoryInterval(delivered_bytes=20_000, avg_rtt_us=21_000, losses=0),
    HistoryInterval(delivered_bytes=500, avg_rtt_us=40_000, losses=4),
]

_SIGNALS = [
    make_signals(),
    make_signals(cwnd=2, losses=3),
    make_signals(rtt=-5),  # negative rtt must clamp to 0, as the env does
    make_signals(rtt=65_000),
    make_signals(history=_HISTORY),
    make_signals(cwnd=50, losses=1, history=_HISTORY),
    make_signals(history=_HISTORY[:1]),
]


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_fast_scorer_matches_classic_controller(name):
    program = parse(PROGRAMS[name])
    fast_ctl = DslCongestionController(program, backend="vectorized")
    assert fast_ctl.backend == "vectorized"
    assert fast_ctl._fast is not None, "expected the zero-layer scorer"
    classic_ctl = DslCongestionController(program, backend="compiled")
    interp_ctl = DslCongestionController(program, backend="interpreter")
    for signals in _SIGNALS:
        decisions = {
            "vectorized": fast_ctl.on_ack(signals),
            "compiled": classic_ctl.on_ack(signals),
            "interpreter": interp_ctl.on_ack(signals),
        }
        assert len(set(decisions.values())) == 1, decisions


def test_fast_scorer_error_matches_classic():
    program = parse(f"{CC_SIG} {{ return cwnd // losses }}")
    fast_ctl = DslCongestionController(program, backend="vectorized", strict=True)
    classic_ctl = DslCongestionController(program, backend="compiled", strict=True)
    signals = make_signals(losses=0)
    with pytest.raises(DslError) as fast_exc:
        fast_ctl.on_ack(signals)
    with pytest.raises(DslError) as classic_exc:
        classic_ctl.on_ack(signals)
    assert type(fast_exc.value) is type(classic_exc.value)
    assert str(fast_exc.value) == str(classic_exc.value)
    assert fast_ctl.runtime_errors == classic_ctl.runtime_errors == 1


def test_fast_scorer_non_strict_freezes_window_on_error():
    program = parse(f"{CC_SIG} {{ return cwnd // losses }}")
    ctl = DslCongestionController(program, backend="vectorized", strict=False)
    assert ctl.on_ack(make_signals(cwnd=7, losses=0)) == 7
    assert ctl.runtime_errors == 1


def test_build_cc_fast_declines_out_of_vocabulary_columns():
    # ``history.delivered_at(history.length())`` nests a method call as the
    # index argument -- vectorizable programs never produce that shape here,
    # but an expression argument is: it is unvectorizable, so the controller
    # resolves to "compiled" and never builds a fast scorer.
    program = parse(f"{CC_SIG} {{ return cwnd + history.delivered_at(cwnd % 1) }}")
    ctl = DslCongestionController(program, backend="vectorized")
    assert ctl.backend == "compiled"
    assert ctl._fast is None


def test_fast_scorer_only_built_for_vectorized_backend():
    program = parse(PROGRAMS["aimd"])
    assert DslCongestionController(program, backend="compiled")._fast is None
    assert DslCongestionController(program, backend="interpreter")._fast is None


def test_build_cc_fast_literal_history_index_clamps():
    program = parse(f"{CC_SIG} {{ return cwnd + history.losses_at(99) }}")
    fast = build_cc_fast(vectorize_program(program))
    assert fast is not None
    # Clamped to the oldest interval when the index overshoots; 0 when empty.
    assert fast(make_signals(cwnd=10, history=_HISTORY)) == 10 + _HISTORY[0].losses
    assert fast(make_signals(cwnd=10)) == 10


def test_scenario_scores_identical_across_backends():
    results = {}
    for backend in ("interpreter", "compiled", "vectorized"):
        evaluator = CongestionControlEvaluator(backend=backend)
        evaluation = evaluator.evaluate(parse(PROGRAMS["history-heavy"]))
        results[backend] = (evaluation.score, tuple(sorted(evaluation.details.items())))
        assert evaluator.backend_stats["resolved"] == {backend: 1}
    assert len(set(results.values())) == 1, results
