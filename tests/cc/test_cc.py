"""Congestion-control case-study tests: kernel checker, DSL controller,
baselines, evaluator and template."""

import pytest

from repro.cc.dsl_controller import DslCongestionController
from repro.cc.evaluator import CongestionControlEvaluator, default_cc_simulation_config
from repro.cc.kernel_constraints import KernelConstraintChecker, KernelRuleChecker
from repro.cc.policies import CubicController, FixedWindowController, RenoController
from repro.cc.signals import HistoryView, signals_environment
from repro.cc.template import (
    CC_TEMPLATE_PARAMS,
    cc_archetypes,
    cc_seed_programs,
    cc_template,
)
from repro.dsl import parse
from repro.dsl.errors import DslRuntimeError
from repro.netsim.flow import CCSignals, HistoryInterval

CC_SIG = f"def cong_control({', '.join(CC_TEMPLATE_PARAMS)})"


def make_signals(cwnd=10, loss=False, losses=0, history=()):
    return CCSignals(
        now_us=1_000_000,
        cwnd_pkts=cwnd,
        mss=1448,
        acked_bytes=0 if loss else 1448,
        inflight_pkts=cwnd,
        inflight_bytes=cwnd * 1448,
        rtt_us=22_000,
        min_rtt_us=20_000,
        srtt_us=21_000,
        loss=loss,
        losses_since_last_ack=losses,
        delivered_bytes=1_000_000,
        history=list(history),
    )


# -- kernel-constraint checker -----------------------------------------------------------


def test_kernel_checker_accepts_seeds_and_archetypes():
    template = cc_template()
    checker = KernelConstraintChecker(template)
    for source in template.seeds_as_source() + cc_archetypes():
        result = checker.check(source)
        assert result.ok, result.feedback


@pytest.mark.parametrize(
    "body,expected_code",
    [
        ("return cwnd + 0.5", "float-arith"),
        ("return cwnd / 2", "float-arith"),
        ("return cwnd // losses", "div-by-zero"),
        ("return acked % inflight", "div-by-zero"),
        ("while (cwnd > 2) { cwnd -= 1 }\n    return cwnd", "unbounded-loop"),
        ("for (i in range(cwnd)) { cwnd -= 1 }\n    return cwnd", "unbounded-loop"),
    ],
)
def test_kernel_checker_rejects_violations(body, expected_code):
    checker = KernelRuleChecker()
    result = checker.check(f"{CC_SIG} {{\n    {body}\n}}")
    assert not result.ok
    assert expected_code in [issue.code for issue in result.issues]


def test_kernel_checker_accepts_guarded_division_and_bounded_loops():
    checker = KernelRuleChecker()
    good = f"""{CC_SIG} {{
    new_cwnd = (cwnd * 7) // 10
    new_cwnd += acked // max(1, mss)
    for (i in range(4)) {{
        new_cwnd += history.losses_at(i)
    }}
    return max(2, new_cwnd)
}}"""
    result = checker.check(good)
    assert result.ok, result.feedback


def test_kernel_checker_reports_syntax_errors_as_build_failures():
    checker = KernelRuleChecker()
    result = checker.check(f"{CC_SIG} {{ return cwnd + }}")
    assert not result.ok
    assert result.issues[0].code == "syntax-error"


def test_kernel_checker_complexity_budget():
    checker = KernelRuleChecker(max_nodes=10)
    source = f"{CC_SIG} {{ return cwnd + cwnd + cwnd + cwnd + cwnd + cwnd }}"
    assert "too-complex" in [i.code for i in checker.check(source).issues]


def test_full_kernel_checker_also_runs_structural_rules():
    template = cc_template()
    checker = KernelConstraintChecker(template)
    result = checker.check(f"{CC_SIG} {{ return undefined_thing }}")
    assert "unknown-name" in result.issue_codes()


# -- HistoryView and signal environment -----------------------------------------------------


def test_history_view_index_clamping_and_aggregates():
    intervals = [
        HistoryInterval(delivered_bytes=1000, avg_rtt_us=20_000, losses=0),
        HistoryInterval(delivered_bytes=2000, avg_rtt_us=25_000, losses=1),
        HistoryInterval(delivered_bytes=3000, avg_rtt_us=30_000, losses=2),
    ]
    view = HistoryView(intervals)
    assert view.length() == 3
    assert view.delivered_at(0) == 3000          # most recent first
    assert view.delivered_at(2) == 1000
    assert view.delivered_at(99) == 1000         # clamped, never out of range
    assert view.rtt_at(-5) == 30_000
    assert view.total_losses() == 3
    assert view.min_rtt() == 20_000


def test_history_view_empty_is_safe():
    view = HistoryView([])
    assert view.length() == 0
    assert view.delivered_at(0) == 0
    assert view.min_rtt() == 0


def test_history_view_rejects_non_numeric_index():
    view = HistoryView([HistoryInterval(1, 2, 3)])
    with pytest.raises(DslRuntimeError):
        view.delivered_at("latest")


def test_signals_environment_matches_template_params():
    signals = make_signals(history=[HistoryInterval(500, 21_000, 0)])
    env = signals_environment(signals)
    for param in CC_TEMPLATE_PARAMS:
        assert param in env
    assert env["cwnd"] == 10
    assert isinstance(env["history"], HistoryView)


# -- DslCongestionController ------------------------------------------------------------------


def test_dsl_controller_signature_validation():
    with pytest.raises(ValueError):
        DslCongestionController(parse("def cong_control(cwnd) { return cwnd }"))


def test_dsl_controller_runs_aimd_seed():
    aimd = cc_seed_programs()[0]
    controller = DslCongestionController(aimd, initial_window=10)
    assert controller.initial_cwnd() == 10
    assert controller.on_ack(make_signals(cwnd=10)) == 11
    assert controller.on_loss(make_signals(cwnd=10, loss=True, losses=1)) == 5
    assert controller.invocations == 2


def test_dsl_controller_strict_mode_raises_on_runtime_error():
    bad = parse(f"{CC_SIG} {{ return cwnd // losses }}")
    strict = DslCongestionController(bad, strict=True)
    with pytest.raises(DslRuntimeError):
        strict.on_ack(make_signals(losses=0))
    lenient = DslCongestionController(bad, strict=False)
    assert lenient.on_ack(make_signals(cwnd=17, losses=0)) == 17
    assert lenient.runtime_errors == 1


# -- baseline controllers -----------------------------------------------------------------------


def test_reno_slow_start_and_loss_reaction():
    reno = RenoController(initial_window=4, ssthresh=8)
    assert reno.on_ack(make_signals(cwnd=4)) == 5          # slow start
    assert reno.on_loss(make_signals(cwnd=20, loss=True)) == 10
    assert reno.ssthresh == 10


def test_cubic_reduces_on_loss_by_beta():
    cubic = CubicController()
    assert cubic.on_loss(make_signals(cwnd=100, loss=True)) == 70


def test_fixed_window_controller_validation():
    with pytest.raises(ValueError):
        FixedWindowController(0)


# -- evaluator -----------------------------------------------------------------------------------


def test_cc_evaluator_prefers_good_controllers():
    evaluator = CongestionControlEvaluator(default_cc_simulation_config(duration_s=2.0))
    # A window close to the bandwidth-delay product fills the link without
    # building a queue; a 2-packet window leaves it mostly idle.
    bdp_sized = parse(f"{CC_SIG} {{ return 20 }}")
    tiny = parse(f"{CC_SIG} {{ return 2 }}")
    good = evaluator.evaluate(bdp_sized)
    poor = evaluator.evaluate(tiny)
    assert good.valid and poor.valid
    assert 0 <= poor.details["utilization"] < good.details["utilization"] <= 1
    assert good.score > poor.score
    # The seed programs must also evaluate cleanly.
    for seed in cc_seed_programs():
        assert evaluator.evaluate(seed).valid


def test_cc_evaluator_marks_crashing_candidates_invalid():
    evaluator = CongestionControlEvaluator(default_cc_simulation_config(duration_s=1.0))
    crashing = parse(f"{CC_SIG} {{ return cwnd // losses }}")
    result = evaluator.evaluate(crashing)
    assert not result.valid
    assert result.score == evaluator.failure_score


def test_template_constraints_mention_kernel_rules():
    template = cc_template()
    text = " ".join(template.constraints).lower()
    assert "floating-point" in text
    assert "division" in text
    assert "loops" in text
    assert len(template.seed_programs) == 2
