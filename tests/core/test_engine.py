"""Tests of the batched evaluation engine (dedup, memoization, parallelism,
timeouts and crash isolation)."""

import time

import pytest

from repro.core.checker import StructuralChecker
from repro.core.engine import EngineConfig, EvaluationEngine
from repro.core.evaluator import EvaluationResult, Evaluator
from repro.core.results import Candidate
from repro.core.template import Template
from repro.dsl import Interpreter, parse
from repro.dsl.grammar import FeatureSpec


def make_template():
    spec = FeatureSpec(function_name="f", params=["x"], scalar_params=["x"])
    return Template(
        name="toy",
        spec=spec,
        description="return a constant",
        seed_programs=[parse("def f(x) { return 1 }")],
    )


class CountingEvaluator(Evaluator):
    """Scores a program by its returned constant; counts evaluations."""

    def __init__(self, delay_s: float = 0.0):
        self.calls = 0
        self.delay_s = delay_s

    def evaluate_program(self, program):
        self.calls += 1
        if self.delay_s:
            time.sleep(self.delay_s)
        value = Interpreter().run(program, {"x": 0})
        return EvaluationResult(score=float(value), valid=True)


def candidates(sources):
    return [
        Candidate(candidate_id=f"c{i}", source=source, round_index=1)
        for i, source in enumerate(sources, start=1)
    ]


def make_engine(evaluator=None, **config_kwargs):
    template = make_template()
    return EvaluationEngine(
        StructuralChecker(template),
        evaluator or CountingEvaluator(),
        config=EngineConfig(**config_kwargs) if config_kwargs else None,
    )


def test_intra_batch_dedup_evaluates_unique_sources_once():
    evaluator = CountingEvaluator()
    engine = make_engine(evaluator)
    # Whitespace variants canonicalise to the same program.
    batch = engine.process_batch(
        candidates(
            [
                "def f(x) { return 7 }",
                "def f(x) {  return   7 }",
                "def f(x) { return 8 }",
            ]
        )
    )
    assert evaluator.calls == 2
    assert batch.stats.unique_evaluations == 2
    assert batch.stats.eval_cache_lookups == 3
    assert batch.stats.eval_cache_hits == 1
    assert [s.score for s in batch.scored] == [7.0, 7.0, 8.0]


def test_memoization_spans_batches():
    evaluator = CountingEvaluator()
    engine = make_engine(evaluator)
    engine.process_batch(candidates(["def f(x) { return 7 }"]))
    second = engine.process_batch(candidates(["def f(x) { return 7 }"]))
    assert evaluator.calls == 1
    assert second.stats.eval_cache_hits == 1
    assert second.scored[0].score == 7.0
    assert engine.cache_hits == 1 and engine.cache_lookups == 2


def test_dedup_and_memoization_can_be_disabled():
    evaluator = CountingEvaluator()
    engine = make_engine(evaluator, dedup=False, memoize=False)
    engine.process_batch(candidates(["def f(x) { return 7 }"] * 3))
    engine.process_batch(candidates(["def f(x) { return 7 }"]))
    assert evaluator.calls == 4


def test_check_failures_are_counted_not_evaluated():
    evaluator = CountingEvaluator()
    engine = make_engine(evaluator)
    batch = engine.process_batch(candidates(["def f(x) { return y }"]))
    assert evaluator.calls == 0
    assert not batch.scored[0].check_ok
    assert batch.stats.failure_codes.get("unknown-name") == 1


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_parallel_results_match_serial(executor):
    sources = [f"def f(x) {{ return {n} }}" for n in range(6)]
    serial = make_engine().process_batch(candidates(sources))
    parallel = make_engine(
        CountingEvaluator(), max_workers=3, executor=executor
    ).process_batch(candidates(sources))
    assert [s.score for s in parallel.scored] == [s.score for s in serial.scored]
    assert parallel.stats.unique_evaluations == 6


def test_timeout_produces_failure_result():
    evaluator = CountingEvaluator(delay_s=5.0)
    engine = make_engine(evaluator, max_workers=2, executor="thread", eval_timeout_s=0.1)
    batch = engine.process_batch(
        candidates(["def f(x) { return 1 }", "def f(x) { return 2 }"])
    )
    for scored in batch.scored:
        assert scored.evaluation is not None
        assert not scored.evaluation.valid
        assert "timed out" in scored.evaluation.error
    assert batch.stats.eval_timeouts == 2


def test_timeouts_are_not_memoized():
    """A transient failure must not poison the memo: once the slowdown
    clears, the same candidate is re-evaluated and gets its real score."""
    evaluator = CountingEvaluator(delay_s=5.0)
    engine = make_engine(evaluator, max_workers=2, executor="thread", eval_timeout_s=0.1)
    engine.process_batch(
        candidates(["def f(x) { return 1 }", "def f(x) { return 2 }"])
    )
    evaluator.delay_s = 0.0  # the load spike clears
    batch = engine.process_batch(
        candidates(["def f(x) { return 1 }", "def f(x) { return 2 }"])
    )
    assert [s.score for s in batch.scored] == [1.0, 2.0]
    assert all(s.evaluation.valid for s in batch.scored)


def test_executor_is_reused_across_batches():
    engine = make_engine(CountingEvaluator(), max_workers=2, executor="thread")
    engine.process_batch(candidates(["def f(x) { return 1 }", "def f(x) { return 2 }"]))
    executor = engine._executor
    assert executor is not None and executor.name == "thread"
    pool = executor._pool
    assert pool is not None
    engine.process_batch(candidates(["def f(x) { return 3 }", "def f(x) { return 4 }"]))
    assert engine._executor is executor and executor._pool is pool
    engine.close()
    assert engine._executor is None


def test_engine_config_validation():
    with pytest.raises(ValueError):
        EngineConfig(max_workers=0)
    with pytest.raises(ValueError):
        EngineConfig(executor="gpu")
    with pytest.raises(ValueError):
        EngineConfig(eval_timeout_s=0)


# -- static screening (rung "-1") ---------------------------------------------------


class ScreeningEvaluator(CountingEvaluator):
    """CountingEvaluator plus a declared input-interval contract."""

    def input_intervals(self):
        from repro.dsl.abstract import InputIntervals, Interval

        return InputIntervals(
            scalars={"x": Interval(0, 100)}, output_clamp=(0.0, 10.0)
        )


SCREEN_SOURCES = [
    "def f(x) { return 5 }",        # constant
    "def f(x) { return x + 1000 }",  # pinned above the output clamp
    "def f(x) { return x }",         # live: must still be evaluated
]


def test_static_screen_rejects_degenerates_at_zero_evaluator_cost():
    evaluator = ScreeningEvaluator()
    engine = make_engine(evaluator, static_screen=True)
    batch = engine.process_batch(candidates(SCREEN_SOURCES))
    assert evaluator.calls == 1  # only the live candidate reached evaluation
    assert batch.stats.screen_checks == 3
    assert batch.stats.screened == 2
    # Screened candidates never enter the dedup/memo pipeline.
    assert batch.stats.eval_cache_lookups == 1
    constant, pinned, live = batch.scored
    for item in (constant, pinned):
        assert item.evaluation is not None and not item.evaluation.valid
        assert item.evaluation.error.startswith("static-screen:")
        assert item.score == evaluator.failure_score
    assert "constant" in constant.evaluation.error
    assert "pinned-max" in pinned.evaluation.error
    assert live.evaluation.valid and live.score == 0.0
    assert engine.screen_checks == 3 and engine.screened == 2


def test_static_screen_is_off_by_default():
    evaluator = ScreeningEvaluator()
    batch = make_engine(evaluator).process_batch(candidates(SCREEN_SOURCES))
    assert evaluator.calls == 3
    assert batch.stats.screen_checks == 0 and batch.stats.screened == 0


def test_static_screen_noop_without_declared_intervals():
    evaluator = CountingEvaluator()  # no input_intervals() declaration
    engine = make_engine(evaluator, static_screen=True)
    batch = engine.process_batch(candidates(SCREEN_SOURCES))
    assert evaluator.calls == 3
    assert batch.stats.screen_checks == 0 and batch.stats.screened == 0


def test_static_screen_emits_events_and_tier():
    from repro.core.events import CandidateEvaluated, CandidateScreened

    engine = make_engine(ScreeningEvaluator(), static_screen=True)
    events = []
    engine.events.subscribe(events.append)
    engine.process_batch(candidates(SCREEN_SOURCES))
    screened = [e for e in events if isinstance(e, CandidateScreened)]
    assert [(e.candidate_id, e.reason) for e in screened] == [
        ("c1", "constant"),
        ("c2", "pinned-max"),
    ]
    evaluated = [e for e in events if isinstance(e, CandidateEvaluated)]
    tiers = {e.candidate_id: e.cache_tier for e in evaluated}
    assert tiers == {"c1": "screened", "c2": "screened", "c3": "fresh"}
    # "screened" is not a cache tier: the result was computed, not replayed.
    assert all(not e.cached for e in evaluated)


def test_static_screen_results_identical_when_nothing_screens():
    """With no degenerate candidate in the batch, the knob must not perturb
    scores or cache statistics (the result.json byte-identity guarantee)."""
    sources = ["def f(x) { return x }", "def f(x) { return x + 1 }"]
    plain = make_engine(CountingEvaluator()).process_batch(candidates(list(sources)))
    screening = make_engine(ScreeningEvaluator(), static_screen=True)
    screened = screening.process_batch(candidates(list(sources)))
    assert screened.stats.screen_checks == 2 and screened.stats.screened == 0
    assert [s.score for s in screened.scored] == [s.score for s in plain.scored]
    assert screened.stats.eval_cache_lookups == plain.stats.eval_cache_lookups
    assert screened.stats.unique_evaluations == plain.stats.unique_evaluations


def test_static_screen_verdicts_cached_across_batches():
    engine = make_engine(ScreeningEvaluator(), static_screen=True)
    engine.process_batch(candidates(["def f(x) { return 5 }"]))
    calls = {"n": 0}
    screener = engine._static_screener()
    original = screener.screen
    screener.screen = lambda program: (calls.__setitem__("n", calls["n"] + 1), original(program))[1]
    batch = engine.process_batch(candidates(["def f(x) { return 5 }"]))
    assert calls["n"] == 0  # verdict served from the canonical-key cache
    assert batch.stats.screened == 1  # but still counted per batch
    assert engine.screened == 2


def test_static_screen_never_touches_store(tmp_path):
    from repro.core.store import EvaluationStore

    engine = make_engine(ScreeningEvaluator(), static_screen=True)
    engine.attach_store(EvaluationStore(tmp_path / "evalstore").bind("k" * 64))
    batch = engine.process_batch(candidates(["def f(x) { return 5 }"]))
    assert batch.stats.screened == 1
    assert engine.store_lookups == 0 and engine.store_writes == 0


# -- the disk memo tier -------------------------------------------------------------


def make_store_engine(tmp_path, evaluator=None, **config_kwargs):
    from repro.core.store import EvaluationStore

    engine = make_engine(evaluator, **config_kwargs)
    engine.attach_store(EvaluationStore(tmp_path / "evalstore").bind("k" * 64))
    return engine


def test_fresh_evaluations_are_persisted_and_warm_start(tmp_path):
    first_evaluator = CountingEvaluator()
    first = make_store_engine(tmp_path, first_evaluator)
    batch = first.process_batch(candidates(["def f(x) { return 7 }"]))
    assert first_evaluator.calls == 1
    assert first.store_writes == 1
    assert batch.stats.store_lookups == 1 and batch.stats.store_hits == 0

    # A brand-new engine (fresh process, cold memory) hits the disk tier.
    second_evaluator = CountingEvaluator()
    second = make_store_engine(tmp_path, second_evaluator)
    batch = second.process_batch(candidates(["def f(x) { return 7 }"]))
    assert second_evaluator.calls == 0
    assert batch.stats.store_hits == 1
    assert batch.stats.unique_evaluations == 1  # memory miss, same as cold
    assert batch.scored[0].score == 7.0


def test_disk_hit_fills_memory_tier(tmp_path):
    make_store_engine(tmp_path).process_batch(candidates(["def f(x) { return 7 }"]))
    engine = make_store_engine(tmp_path, evaluator := CountingEvaluator())
    engine.process_batch(candidates(["def f(x) { return 7 }"]))
    batch = engine.process_batch(candidates(["def f(x) { return 7 }"]))
    assert evaluator.calls == 0
    assert batch.stats.store_lookups == 0  # second batch is a memory hit
    assert batch.stats.eval_cache_hits == 1


def test_cache_tier_events(tmp_path):
    from repro.core.events import CandidateEvaluated

    make_store_engine(tmp_path).process_batch(candidates(["def f(x) { return 7 }"]))
    engine = make_store_engine(tmp_path)
    events = []
    engine.events.subscribe(events.append)
    engine.process_batch(
        candidates(
            [
                "def f(x) { return 7 }",   # disk hit
                "def f(x) {  return 7 }",  # canonical duplicate -> memory
                "def f(x) { return 8 }",   # fresh
            ]
        )
    )
    tiers = [e.cache_tier for e in events if isinstance(e, CandidateEvaluated)]
    assert tiers == ["disk", "memory", "fresh"]
    cached = [e.cached for e in events if isinstance(e, CandidateEvaluated)]
    assert cached == [True, True, False]


def test_eval_cache_stats_identical_with_and_without_store(tmp_path):
    """The store must not perturb the deterministic round statistics."""
    sources = [
        "def f(x) { return 7 }",
        "def f(x) {  return 7 }",
        "def f(x) { return 8 }",
    ]
    plain = make_engine().process_batch(candidates(list(sources)))
    cold = make_store_engine(tmp_path).process_batch(candidates(list(sources)))
    warm = make_store_engine(tmp_path).process_batch(candidates(list(sources)))
    for batch in (cold, warm):
        assert batch.stats.eval_cache_lookups == plain.stats.eval_cache_lookups
        assert batch.stats.eval_cache_hits == plain.stats.eval_cache_hits
        assert batch.stats.unique_evaluations == plain.stats.unique_evaluations
    assert cold.stats.store_hits == 0
    assert warm.stats.store_hits == 2


def test_transient_failures_not_written_to_store(tmp_path):
    evaluator = CountingEvaluator(delay_s=5.0)
    engine = make_store_engine(
        tmp_path, evaluator, max_workers=2, executor="thread", eval_timeout_s=0.1
    )
    engine.process_batch(candidates(["def f(x) { return 1 }"]))
    assert engine.store_writes == 0
    evaluator.delay_s = 0.0
    fresh = make_store_engine(tmp_path, evaluator)
    batch = fresh.process_batch(candidates(["def f(x) { return 1 }"]))
    assert batch.scored[0].evaluation.valid
    assert batch.scored[0].score == 1.0


def test_store_ignored_when_memoization_disabled(tmp_path):
    engine = make_store_engine(tmp_path, memoize=False)
    engine.process_batch(candidates(["def f(x) { return 7 }"]))
    assert engine.store_lookups == 0 and engine.store_writes == 0


def test_memo_snapshot_roundtrip():
    engine = make_engine()
    engine.process_batch(candidates(["def f(x) { return 7 }"]))
    snapshot = engine.memo_snapshot()
    assert len(snapshot) == 1
    fresh_evaluator = CountingEvaluator()
    fresh = make_engine(fresh_evaluator)
    fresh.restore_memo(snapshot)
    batch = fresh.process_batch(candidates(["def f(x) { return 7 }"]))
    assert fresh_evaluator.calls == 0
    assert batch.scored[0].score == 7.0
