"""Tests of the batched evaluation engine (dedup, memoization, parallelism,
timeouts and crash isolation)."""

import time

import pytest

from repro.core.checker import StructuralChecker
from repro.core.engine import EngineConfig, EvaluationEngine
from repro.core.evaluator import EvaluationResult, Evaluator
from repro.core.results import Candidate
from repro.core.template import Template
from repro.dsl import Interpreter, parse
from repro.dsl.grammar import FeatureSpec


def make_template():
    spec = FeatureSpec(function_name="f", params=["x"], scalar_params=["x"])
    return Template(
        name="toy",
        spec=spec,
        description="return a constant",
        seed_programs=[parse("def f(x) { return 1 }")],
    )


class CountingEvaluator(Evaluator):
    """Scores a program by its returned constant; counts evaluations."""

    def __init__(self, delay_s: float = 0.0):
        self.calls = 0
        self.delay_s = delay_s

    def evaluate_program(self, program):
        self.calls += 1
        if self.delay_s:
            time.sleep(self.delay_s)
        value = Interpreter().run(program, {"x": 0})
        return EvaluationResult(score=float(value), valid=True)


def candidates(sources):
    return [
        Candidate(candidate_id=f"c{i}", source=source, round_index=1)
        for i, source in enumerate(sources, start=1)
    ]


def make_engine(evaluator=None, **config_kwargs):
    template = make_template()
    return EvaluationEngine(
        StructuralChecker(template),
        evaluator or CountingEvaluator(),
        config=EngineConfig(**config_kwargs) if config_kwargs else None,
    )


def test_intra_batch_dedup_evaluates_unique_sources_once():
    evaluator = CountingEvaluator()
    engine = make_engine(evaluator)
    # Whitespace variants canonicalise to the same program.
    batch = engine.process_batch(
        candidates(
            [
                "def f(x) { return 7 }",
                "def f(x) {  return   7 }",
                "def f(x) { return 8 }",
            ]
        )
    )
    assert evaluator.calls == 2
    assert batch.stats.unique_evaluations == 2
    assert batch.stats.eval_cache_lookups == 3
    assert batch.stats.eval_cache_hits == 1
    assert [s.score for s in batch.scored] == [7.0, 7.0, 8.0]


def test_memoization_spans_batches():
    evaluator = CountingEvaluator()
    engine = make_engine(evaluator)
    engine.process_batch(candidates(["def f(x) { return 7 }"]))
    second = engine.process_batch(candidates(["def f(x) { return 7 }"]))
    assert evaluator.calls == 1
    assert second.stats.eval_cache_hits == 1
    assert second.scored[0].score == 7.0
    assert engine.cache_hits == 1 and engine.cache_lookups == 2


def test_dedup_and_memoization_can_be_disabled():
    evaluator = CountingEvaluator()
    engine = make_engine(evaluator, dedup=False, memoize=False)
    engine.process_batch(candidates(["def f(x) { return 7 }"] * 3))
    engine.process_batch(candidates(["def f(x) { return 7 }"]))
    assert evaluator.calls == 4


def test_check_failures_are_counted_not_evaluated():
    evaluator = CountingEvaluator()
    engine = make_engine(evaluator)
    batch = engine.process_batch(candidates(["def f(x) { return y }"]))
    assert evaluator.calls == 0
    assert not batch.scored[0].check_ok
    assert batch.stats.failure_codes.get("unknown-name") == 1


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_parallel_results_match_serial(executor):
    sources = [f"def f(x) {{ return {n} }}" for n in range(6)]
    serial = make_engine().process_batch(candidates(sources))
    parallel = make_engine(
        CountingEvaluator(), max_workers=3, executor=executor
    ).process_batch(candidates(sources))
    assert [s.score for s in parallel.scored] == [s.score for s in serial.scored]
    assert parallel.stats.unique_evaluations == 6


def test_timeout_produces_failure_result():
    evaluator = CountingEvaluator(delay_s=5.0)
    engine = make_engine(evaluator, max_workers=2, executor="thread", eval_timeout_s=0.1)
    batch = engine.process_batch(
        candidates(["def f(x) { return 1 }", "def f(x) { return 2 }"])
    )
    for scored in batch.scored:
        assert scored.evaluation is not None
        assert not scored.evaluation.valid
        assert "timed out" in scored.evaluation.error
    assert batch.stats.eval_timeouts == 2


def test_timeouts_are_not_memoized():
    """A transient failure must not poison the memo: once the slowdown
    clears, the same candidate is re-evaluated and gets its real score."""
    evaluator = CountingEvaluator(delay_s=5.0)
    engine = make_engine(evaluator, max_workers=2, executor="thread", eval_timeout_s=0.1)
    engine.process_batch(
        candidates(["def f(x) { return 1 }", "def f(x) { return 2 }"])
    )
    evaluator.delay_s = 0.0  # the load spike clears
    batch = engine.process_batch(
        candidates(["def f(x) { return 1 }", "def f(x) { return 2 }"])
    )
    assert [s.score for s in batch.scored] == [1.0, 2.0]
    assert all(s.evaluation.valid for s in batch.scored)


def test_worker_pool_is_reused_across_batches():
    engine = make_engine(CountingEvaluator(), max_workers=2, executor="thread")
    engine.process_batch(candidates(["def f(x) { return 1 }", "def f(x) { return 2 }"]))
    pool = engine._pool
    assert pool is not None
    engine.process_batch(candidates(["def f(x) { return 3 }", "def f(x) { return 4 }"]))
    assert engine._pool is pool
    engine.close()
    assert engine._pool is None


def test_engine_config_validation():
    with pytest.raises(ValueError):
        EngineConfig(max_workers=0)
    with pytest.raises(ValueError):
        EngineConfig(executor="gpu")
    with pytest.raises(ValueError):
        EngineConfig(eval_timeout_s=0)


def test_memo_snapshot_roundtrip():
    engine = make_engine()
    engine.process_batch(candidates(["def f(x) { return 7 }"]))
    snapshot = engine.memo_snapshot()
    assert len(snapshot) == 1
    fresh_evaluator = CountingEvaluator()
    fresh = make_engine(fresh_evaluator)
    fresh.restore_memo(snapshot)
    batch = fresh.process_batch(candidates(["def f(x) { return 7 }"]))
    assert fresh_evaluator.calls == 0
    assert batch.scored[0].score == 7.0
