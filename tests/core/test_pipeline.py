"""Pipelined search rounds: result equivalence, chunking, speculation.

The pipeline is pure scheduling: for a fixed seed it must produce the exact
SearchResult the serial round loop produces -- same candidates, same
scores, same token usage -- while overlapping generation with evaluation.
"""

import pytest

from repro.core.artifacts import search_result_to_dict
from repro.core.domain import build_search
from repro.core.engine import EngineConfig
from repro.core.events import (
    EventBus,
    GenerationCompleted,
    GenerationStarted,
    RoundCompleted,
)
from repro.core.fidelity import FidelitySchedule


def build(trace, *, pipeline=False, rounds=3, engine_config=None, events=None, **kw):
    setup = build_search(
        "caching",
        rounds=rounds,
        candidates_per_round=6,
        seed=11,
        trace=trace,
        engine_config=engine_config,
        events=events,
        **kw,
    )
    setup.search.config.pipeline = pipeline
    return setup


# -- equivalence --------------------------------------------------------------------


def test_pipelined_result_equals_serial(small_synthetic_trace):
    serial_setup = build(small_synthetic_trace, pipeline=False)
    serial = serial_setup.search.run()
    piped_setup = build(small_synthetic_trace, pipeline=True)
    piped = piped_setup.search.run()

    assert search_result_to_dict(piped) == search_result_to_dict(serial)
    assert piped.prompt_tokens == serial.prompt_tokens
    assert piped.completion_tokens == serial.completion_tokens
    assert piped_setup.generator.usage.calls == serial_setup.generator.usage.calls
    # The clients consumed the identical RNG stream.
    assert piped_setup.client.get_state() == serial_setup.client.get_state()


def test_pipelined_equivalence_with_batch_size_hints(small_synthetic_trace):
    reference = search_result_to_dict(build(small_synthetic_trace).search.run())
    for batch_size in (1, 2, 5, 100):
        setup = build(small_synthetic_trace, pipeline=True)
        setup.generator.batch_size = batch_size
        assert search_result_to_dict(setup.search.run()) == reference, batch_size


def test_engine_pipeline_flag_also_enables(small_synthetic_trace):
    reference = search_result_to_dict(build(small_synthetic_trace).search.run())
    setup = build(
        small_synthetic_trace, engine_config=EngineConfig(pipeline=True)
    )
    assert setup.search._pipeline_enabled()
    assert search_result_to_dict(setup.search.run()) == reference


# -- chunk planning -----------------------------------------------------------------


def test_chunk_plan_quarters_by_default(small_synthetic_trace):
    search = build(small_synthetic_trace).search
    search.generator.batch_size = None
    assert search._chunk_plan(8) == [2, 2, 2, 2]
    assert search._chunk_plan(6) == [2, 2, 2]
    assert search._chunk_plan(5) == [2, 2, 1]
    assert search._chunk_plan(1) == [1]
    assert search._chunk_plan(3) == [1, 1, 1]


def test_chunk_plan_honours_batch_size(small_synthetic_trace):
    search = build(small_synthetic_trace).search
    search.generator.batch_size = 3
    assert search._chunk_plan(8) == [3, 3, 2]
    search.generator.batch_size = 100
    assert search._chunk_plan(8) == [8]
    # Every chunk >= 1 and sums to the round budget, whatever the hint.
    for size in (1, 2, 3, 7, 50):
        search.generator.batch_size = size
        for total in range(1, 20):
            plan = search._chunk_plan(total)
            assert sum(plan) == total
            assert min(plan) >= 1


# -- fallback conditions ------------------------------------------------------------


def test_pipeline_disabled_without_request(small_synthetic_trace):
    assert not build(small_synthetic_trace).search._pipeline_enabled()


@pytest.mark.parametrize(
    "engine_config",
    [EngineConfig(dedup=False), EngineConfig(memoize=False)],
    ids=["dedup-off", "memoize-off"],
)
def test_pipeline_falls_back_without_memo_tiers(small_synthetic_trace, engine_config):
    setup = build(small_synthetic_trace, pipeline=True, engine_config=engine_config)
    assert not setup.search._pipeline_enabled()
    # The run still works -- it just takes the serial path.
    assert setup.search.run().total_candidates > 0


def test_pipeline_falls_back_under_screening_ladder(small_synthetic_trace):
    setup = build(small_synthetic_trace, pipeline=True)
    setup.engine.attach_fidelity(FidelitySchedule.from_ref([0.25, 1.0]))
    assert not setup.search._pipeline_enabled()


def test_pipeline_falls_back_for_foreign_generators(small_synthetic_trace):
    setup = build(small_synthetic_trace, pipeline=True)

    class Scripted:
        """No generation_messages/generate_chunk: cannot be streamed."""

        def generate(self, parents, num_candidates):
            return []

        def repair(self, source, feedback):
            return None

    setup.search.generator = Scripted()
    assert not setup.search._pipeline_enabled()


# -- telemetry ----------------------------------------------------------------------


def test_generation_events_and_round_timings(small_synthetic_trace):
    seen = []
    setup = build(
        small_synthetic_trace, pipeline=True, rounds=2, events=EventBus([seen.append])
    )
    result = setup.search.run()

    started = [e for e in seen if isinstance(e, GenerationStarted)]
    completed = [e for e in seen if isinstance(e, GenerationCompleted)]
    assert [e.round_index for e in started] == [1, 2]
    assert [e.round_index for e in completed] == [1, 2]
    assert all(e.requested == 6 for e in started)
    # candidates_per_round=6 streams as three default chunks of two.
    assert all(e.chunks == 3 for e in completed)
    for summary, event in zip(result.rounds, completed):
        assert summary.generated == event.generated
        assert summary.generation_s > 0
        assert summary.evaluation_s > 0
    # Ordering per round: generation starts before the round completes.
    kinds = [type(e).__name__ for e in seen if isinstance(e, (GenerationStarted, RoundCompleted))]
    assert kinds == ["GenerationStarted", "RoundCompleted"] * 2


def test_serial_rounds_also_time_their_phases(small_synthetic_trace):
    seen = []
    setup = build(small_synthetic_trace, rounds=1, events=EventBus([seen.append]))
    result = setup.search.run()
    [completed] = [e for e in seen if isinstance(e, GenerationCompleted)]
    assert completed.chunks == 1
    summary = result.rounds[0]
    assert summary.generation_s > 0
    assert summary.evaluation_s > 0
    assert summary.overlap_s == 0.0


# -- speculation --------------------------------------------------------------------


def advance_client(setup):
    """Consume some of the shared client's RNG stream out of band."""
    messages = setup.generator.generation_messages([], 2)
    setup.client.complete(messages, n=2)


def test_consume_prefetch_on_match(small_synthetic_trace):
    search = build(small_synthetic_trace, pipeline=True).search
    examples = [("def f() { return 1 }", 1.0)]
    chunk = search._chunk_plan(search.config.candidates_per_round)[0]
    search._prefetch = {
        "round": 2,
        "examples": examples,
        "sources": ["speculated"],
        "snapshot": search._capture_generator_state_now(),
        "chunk": chunk,
    }
    assert search._consume_prefetch(2, examples) == ["speculated"]
    assert search._prefetch is None


def test_consume_prefetch_mismatch_rolls_back_client(small_synthetic_trace):
    setup = build(small_synthetic_trace, pipeline=True)
    search = setup.search
    snapshot = search._capture_generator_state_now()
    advance_client(setup)  # the speculative call that must be undone
    assert search._capture_generator_state_now() != snapshot

    chunk = search._chunk_plan(search.config.candidates_per_round)[0]
    search._prefetch = {
        "round": 2,
        "examples": [("def f() { return 1 }", 1.0)],
        "sources": ["speculated"],
        "snapshot": snapshot,
        "chunk": chunk,
    }
    # Different parents: the prediction missed.
    assert search._consume_prefetch(2, [("def f() { return 2 }", 2.0)]) is None
    assert search._prefetch is None
    assert search._capture_generator_state_now() == snapshot


def test_stale_prefetch_discarded_between_rounds(small_synthetic_trace):
    setup = build(small_synthetic_trace, pipeline=True)
    search = setup.search
    snapshot = search._capture_generator_state_now()
    advance_client(setup)
    search._prefetch = {
        "round": 2,
        "examples": [],
        "sources": [],
        "snapshot": snapshot,
        "chunk": 2,
    }
    search._discard_prefetch_if_stale(2)  # matching round: kept
    assert search._prefetch is not None
    search._discard_prefetch_if_stale(3)  # stale: rolled back and dropped
    assert search._prefetch is None
    assert search._capture_generator_state_now() == snapshot


def test_checkpoint_state_during_prefetch_is_pre_speculation(small_synthetic_trace):
    setup = build(small_synthetic_trace, pipeline=True)
    search = setup.search
    snapshot = search._capture_generator_state_now()
    advance_client(setup)
    search._prefetch = {
        "round": 2,
        "examples": [],
        "sources": [],
        "snapshot": snapshot,
        "chunk": 2,
    }
    # A checkpoint taken while a prefetch is in flight must record the
    # pre-speculation client state: on resume the speculative call replays.
    assert search._capture_generator_state() == snapshot
    search._prefetch = None
    assert search._capture_generator_state() == search._capture_generator_state_now()


def test_pipelined_resume_matches_serial_uninterrupted(small_synthetic_trace, tmp_path):
    kwargs = dict(trace=small_synthetic_trace)
    serial = build(small_synthetic_trace, rounds=4).search.run()

    path = tmp_path / "search.ckpt.json"
    first = build_search(
        "caching", rounds=2, candidates_per_round=6, seed=11,
        checkpoint_path=path, **kwargs,
    )
    first.search.config.pipeline = True
    first.search.run()

    second = build_search(
        "caching", rounds=4, candidates_per_round=6, seed=11,
        checkpoint_path=path, **kwargs,
    )
    second.search.config.pipeline = True
    resumed = second.search.run()

    assert search_result_to_dict(resumed) == search_result_to_dict(serial)
    assert resumed.prompt_tokens == serial.prompt_tokens
    assert resumed.completion_tokens == serial.completion_tokens
