"""Evolutionary-search loop tests using controllable fake components."""

from typing import List, Optional

import pytest

from repro.core.checker import StructuralChecker
from repro.core.evaluator import EvaluationResult, Evaluator, FunctionEvaluator
from repro.core.search import EvolutionarySearch, SearchConfig
from repro.core.template import Template
from repro.dsl import parse
from repro.dsl.grammar import FeatureSpec


def make_template():
    spec = FeatureSpec(
        function_name="f",
        params=["x"],
        scalar_params=["x"],
    )
    return Template(
        name="toy",
        spec=spec,
        description="return a constant as large as possible",
        constraints=["return a number"],
        seed_programs=[parse("def f(x) { return 1 }")],
    )


class ScriptedGenerator:
    """Generator returning pre-scripted candidates; records what it saw."""

    def __init__(self, rounds: List[List[str]], repairs: Optional[dict] = None):
        self.rounds = rounds
        self.repairs = repairs or {}
        self.seen_parents: List[List[tuple]] = []
        self.repair_calls: List[str] = []

    def generate(self, parents, num_candidates):
        self.seen_parents.append(list(parents))
        if not self.rounds:
            return []
        return self.rounds.pop(0)[:num_candidates]

    def repair(self, source, feedback):
        self.repair_calls.append(source)
        return self.repairs.get(source)


class ConstantEvaluator(Evaluator):
    """Scores a program by the constant it returns (interpreted with x=0)."""

    def evaluate_program(self, program):
        from repro.dsl import Interpreter

        value = Interpreter().run(program, {"x": 0})
        return EvaluationResult(score=float(value), valid=True)


def run_search(generator, config=None):
    template = make_template()
    return EvolutionarySearch(
        template,
        generator,
        StructuralChecker(template),
        ConstantEvaluator(),
        config or SearchConfig(rounds=len(generator.rounds), candidates_per_round=4),
    ).run()


def test_seeds_are_evaluated_and_best_selected():
    generator = ScriptedGenerator([
        ["def f(x) { return 5 }", "def f(x) { return 3 }"],
        ["def f(x) { return 9 }"],
    ])
    result = run_search(generator)
    assert result.best.score == 9
    assert result.total_candidates == 1 + 2 + 1   # seed + round1 + round2
    assert [r.generated for r in result.rounds] == [2, 1]
    assert result.score_trajectory() == [5, 9]


def test_parents_are_top_k_across_all_rounds():
    generator = ScriptedGenerator([
        ["def f(x) { return 10 }", "def f(x) { return 7 }"],
        ["def f(x) { return 2 }"],
        ["def f(x) { return 1 }"],
    ])
    run_search(generator, SearchConfig(rounds=3, candidates_per_round=4, top_k_parents=2))
    # Round 1 sees only the seed; round 2 sees the two best so far (10, 7);
    # round 3 still sees (10, 7) because round 2 produced nothing better.
    assert [score for _s, score in generator.seen_parents[0]] == [1.0]
    assert [score for _s, score in generator.seen_parents[1]] == [10.0, 7.0]
    assert [score for _s, score in generator.seen_parents[2]] == [10.0, 7.0]


def test_invalid_candidates_trigger_repair_and_count_failures():
    broken = "def f(x) { return y }"          # unknown name
    fixed = "def f(x) { return 42 }"
    generator = ScriptedGenerator([[broken]], repairs={broken: fixed})
    result = run_search(generator, SearchConfig(rounds=1, candidates_per_round=4))
    assert result.best.score == 42
    assert generator.repair_calls == [broken]
    assert result.rounds[0].passed_after_repair == 1
    assert result.first_pass_check_rate() == 0.0
    assert result.repaired_check_rate() == 1.0


def test_failed_repair_keeps_candidate_invalid():
    broken = "def f(x) { return y }"
    generator = ScriptedGenerator([[broken]], repairs={broken: broken})
    result = run_search(generator, SearchConfig(rounds=1, candidates_per_round=4))
    assert result.best.score == 1               # only the seed is valid
    assert result.rounds[0].failure_codes.get("unknown-name", 0) >= 1


def test_repair_disabled():
    broken = "def f(x) { return y }"
    generator = ScriptedGenerator([[broken]], repairs={broken: "def f(x) { return 99 }"})
    result = run_search(
        generator, SearchConfig(rounds=1, candidates_per_round=4, repair_attempts=0)
    )
    assert generator.repair_calls == []
    assert result.best.score == 1


def test_search_without_seeds():
    generator = ScriptedGenerator([["def f(x) { return 4 }"]])
    template = make_template()
    result = EvolutionarySearch(
        template,
        generator,
        StructuralChecker(template),
        ConstantEvaluator(),
        SearchConfig(rounds=1, candidates_per_round=4, include_seeds=False),
    ).run()
    assert result.best.score == 4
    assert all(c.candidate.origin != "seed" for c in result.candidates)


def test_search_with_no_valid_candidates_returns_none():
    generator = ScriptedGenerator([["def f(x) { return y }"]])
    template = make_template()
    result = EvolutionarySearch(
        template,
        generator,
        StructuralChecker(template),
        ConstantEvaluator(),
        SearchConfig(rounds=1, candidates_per_round=4, include_seeds=False, repair_attempts=0),
    ).run()
    assert result.best is None
    with pytest.raises(ValueError):
        result.best_source()


def test_evaluator_failure_is_not_fatal():
    template = make_template()
    evaluator = FunctionEvaluator(lambda program: 1 / 0)   # always crashes
    generator = ScriptedGenerator([["def f(x) { return 2 }"]])
    result = EvolutionarySearch(
        template,
        generator,
        StructuralChecker(template),
        evaluator,
        SearchConfig(rounds=1, candidates_per_round=1, include_seeds=False),
    ).run()
    assert result.best is None
    assert not result.candidates[0].valid
    assert "ZeroDivisionError" in result.candidates[0].evaluation.error


def test_search_config_validation():
    with pytest.raises(ValueError):
        SearchConfig(rounds=0)
    with pytest.raises(ValueError):
        SearchConfig(candidates_per_round=0)
    with pytest.raises(ValueError):
        SearchConfig(top_k_parents=0)
    with pytest.raises(ValueError):
        SearchConfig(repair_attempts=-1)
