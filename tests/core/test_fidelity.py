"""Tests of the multi-fidelity evaluation scheduler (successive halving)."""

import pytest

from repro.core.checker import StructuralChecker
from repro.core.engine import EngineConfig, EvaluationEngine
from repro.core.evaluator import EvaluationResult, Evaluator, FunctionEvaluator
from repro.core.events import CandidateEliminated, CandidatePromoted, EventBus
from repro.core.fidelity import DEFAULT_RUNGS, FidelitySchedule
from repro.core.results import Candidate
from repro.core.store import EvaluationStore, fidelity_eval_key
from repro.core.template import Template
from repro.dsl import Interpreter, parse
from repro.dsl.grammar import FeatureSpec


def make_template():
    spec = FeatureSpec(function_name="f", params=["x"], scalar_params=["x"])
    return Template(
        name="toy",
        spec=spec,
        description="return a constant",
        seed_programs=[parse("def f(x) { return 1 }")],
    )


class ScalableEvaluator(Evaluator):
    """Full score = the program's constant; rung scores can lie.

    ``decoys`` maps a program constant to the score it receives at any
    sub-full fidelity, so tests can steer who survives screening.  All
    copies share one ``log`` of ``(fraction, value)`` evaluation records.
    """

    def __init__(self, fraction=1.0, decoys=None, log=None):
        self.fraction = fraction
        self.decoys = dict(decoys or {})
        self.log = log if log is not None else []

    def evaluate_program(self, program):
        value = float(Interpreter().run(program, {"x": 0}))
        self.log.append((self.fraction, value))
        score = value
        if self.fraction < 1.0 and value in self.decoys:
            score = self.decoys[value]
        return EvaluationResult(score=score, valid=True)

    def at_fidelity(self, fraction):
        if fraction == 1.0:
            return self
        return ScalableEvaluator(fraction, self.decoys, self.log)


def candidates(values):
    return [
        Candidate(
            candidate_id=f"c{i}",
            source=f"def f(x) {{ return {value} }}",
            round_index=1,
        )
        for i, value in enumerate(values, start=1)
    ]


def make_engine(evaluator, fidelity=None, events=None, **config_kwargs):
    template = make_template()
    return EvaluationEngine(
        StructuralChecker(template),
        evaluator,
        config=EngineConfig(**config_kwargs) if config_kwargs else None,
        events=events,
        fidelity=fidelity,
    )


# -- schedule validation and round-trip ---------------------------------------------


def test_schedule_defaults_are_valid():
    schedule = FidelitySchedule()
    assert schedule.rungs == DEFAULT_RUNGS
    assert schedule.mode == "screen"


@pytest.mark.parametrize(
    "kwargs",
    [
        {"rungs": ()},
        {"rungs": (0.5, 0.2, 1.0)},  # not ascending
        {"rungs": (0.5, 0.5, 1.0)},  # duplicate
        {"rungs": (0.1, 0.5)},  # last rung not 1.0
        {"rungs": (0.0, 1.0)},  # fraction out of range
        {"rungs": (0.1, 1.5)},  # fraction out of range
        {"eta": 1.0},
        {"min_keep": 0},
        {"mode": "turbo"},
    ],
)
def test_schedule_rejects_bad_parameters(kwargs):
    with pytest.raises(ValueError):
        FidelitySchedule(**kwargs)


def test_schedule_from_ref_forms():
    assert FidelitySchedule.from_ref(None) is None
    from_list = FidelitySchedule.from_ref([0.25, 1.0])
    assert from_list.rungs == (0.25, 1.0)
    from_dict = FidelitySchedule.from_ref(
        {"rungs": [0.1, 1.0], "eta": 4, "min_keep": 3, "mode": "shadow"}
    )
    assert from_dict.eta == 4.0 and from_dict.min_keep == 3
    assert FidelitySchedule.from_ref(from_dict) is from_dict
    assert FidelitySchedule.from_ref(from_dict.to_ref()) == from_dict
    with pytest.raises(ValueError):
        FidelitySchedule.from_ref({"rungs": [0.1, 1.0], "keep": 2})
    # Malformed refs come from user-authored JSON: always ValueError, never
    # a bare TypeError the CLI would turn into a traceback.
    with pytest.raises(ValueError):
        FidelitySchedule.from_ref(0.5)
    with pytest.raises(ValueError):
        FidelitySchedule.from_ref("fast")
    with pytest.raises(ValueError):
        FidelitySchedule.from_ref({"rungs": 0.5})


def test_keep_count_and_survivor_selection():
    schedule = FidelitySchedule(rungs=(0.1, 1.0), eta=3.0, min_keep=2)
    assert schedule.keep_count(9) == 3
    assert schedule.keep_count(4) == 2  # min_keep floor
    assert schedule.keep_count(2) == 2
    assert schedule.keep_count(0) == 0
    # Ties break by submission order; survivors come back in submission order.
    assert schedule.select_survivors([1.0, 3.0, 3.0, 2.0, 0.0, 0.0]) == [1, 2]
    assert schedule.select_survivors([5.0, 5.0, 5.0]) == [0, 1]


def test_plan_skips_rungs_that_cannot_eliminate():
    schedule = FidelitySchedule(rungs=(0.1, 0.3, 1.0), eta=3.0, min_keep=2)
    assert schedule.plan(9) == [(0, 0.1, 9), (1, 0.3, 3), (2, 1.0, 2)]
    # A pool at or below min_keep never screens at all.
    assert schedule.plan(2) == [(2, 1.0, 2)]
    # A mid-ladder pool small enough to keep whole skips that rung but keeps
    # its original rung index for the next one.
    wide = FidelitySchedule(rungs=(0.1, 0.3, 1.0), eta=5.0, min_keep=2)
    assert wide.plan(10) == [(0, 0.1, 10), (2, 1.0, 2)]


# -- engine integration -------------------------------------------------------------


def test_screen_mode_evaluates_survivors_only_at_full_fidelity():
    log = []
    evaluator = ScalableEvaluator(log=log)
    schedule = FidelitySchedule(rungs=(0.5, 1.0), eta=3.0, min_keep=2)
    engine = make_engine(evaluator, fidelity=schedule)
    batch = engine.process_batch(candidates(range(9)))

    rung_evals = [entry for entry in log if entry[0] == 0.5]
    full_evals = [entry for entry in log if entry[0] == 1.0]
    assert len(rung_evals) == 9
    assert len(full_evals) == 3  # ceil(9 / 3)
    # The honest rung ranks exactly like full fidelity: the top three
    # constants survive, everyone else records a rung-fidelity result.
    assert [value for _f, value in full_evals] == [6.0, 7.0, 8.0]
    screened = [item for item in batch.scored if not item.full_fidelity]
    assert len(screened) == 6
    assert all(item.evaluation.fidelity == 0.5 for item in screened)
    assert batch.stats.rung_evaluations == 9
    assert batch.stats.rung_promotions == 3
    assert batch.stats.rung_eliminations == 6
    assert batch.stats.unique_evaluations == 9  # memory-tier misses


def test_screen_mode_records_misleading_rung_scores_at_rung_fidelity():
    # Constant 0 scores 100.0 at the rung, so it steals a promotion slot.
    log = []
    evaluator = ScalableEvaluator(decoys={0.0: 100.0}, log=log)
    schedule = FidelitySchedule(rungs=(0.5, 1.0), eta=3.0, min_keep=2)
    engine = make_engine(evaluator, fidelity=schedule)
    batch = engine.process_batch(candidates(range(9)))
    by_value = {item.candidate.source: item for item in batch.scored}
    decoy = by_value["def f(x) { return 0 }"]
    # The decoy was promoted and re-scored at full fidelity: 0.0, not 100.0.
    assert decoy.full_fidelity and decoy.score == 0.0
    # The true #3 (constant 6) was screened out; its recorded score is its
    # rung score, marked as sub-full fidelity.
    bumped = by_value["def f(x) { return 6 }"]
    assert not bumped.full_fidelity
    assert bumped.evaluation.fidelity == 0.5 and bumped.score == 6.0


def test_shadow_mode_evaluates_everyone_and_matches_ladder_off():
    log = []
    schedule = FidelitySchedule(rungs=(0.5, 1.0), eta=3.0, mode="shadow")
    engine = make_engine(ScalableEvaluator(log=log), fidelity=schedule)
    shadow = engine.process_batch(candidates(range(9)))
    plain = make_engine(ScalableEvaluator()).process_batch(candidates(range(9)))
    assert [item.score for item in shadow.scored] == [
        item.score for item in plain.scored
    ]
    assert all(item.full_fidelity for item in shadow.scored)
    assert len([entry for entry in log if entry[0] == 1.0]) == 9
    # The decisions were still taken (telemetry mirrors screen mode).
    assert shadow.stats.rung_evaluations == 9
    assert shadow.stats.rung_eliminations == 6


def test_ladder_emits_promotion_and_elimination_events():
    received = []
    bus = EventBus([received.append])
    schedule = FidelitySchedule(rungs=(0.5, 1.0), eta=3.0, min_keep=2)
    engine = make_engine(ScalableEvaluator(), fidelity=schedule, events=bus)
    engine.process_batch(candidates(range(9)))
    promoted = [e for e in received if isinstance(e, CandidatePromoted)]
    eliminated = [e for e in received if isinstance(e, CandidateEliminated)]
    assert len(promoted) == 3 and len(eliminated) == 6
    assert {e.fraction for e in promoted + eliminated} == {0.5}
    assert all(e.kept == 3 and e.pool == 9 for e in promoted)
    # Event ids name real candidates of the batch.
    assert {e.candidate_id for e in promoted} == {"c7", "c8", "c9"}


def test_rung_results_are_memoized_across_batches():
    log = []
    schedule = FidelitySchedule(rungs=(0.5, 1.0), eta=3.0, min_keep=2)
    engine = make_engine(ScalableEvaluator(log=log), fidelity=schedule)
    engine.process_batch(candidates(range(9)))
    first_total = len(log)
    # The same batch again: the three survivors hit the plain memo, the six
    # screened-out programs re-enter the ladder (pool of 6, keep 2) but
    # every rung score comes from the rung memo -- only the two newly
    # promoted programs cost a fresh (full) evaluation.
    batch = engine.process_batch(candidates(range(9)))
    assert len(log) == first_total + 2
    assert batch.stats.rung_evaluations == 0


def test_small_pools_skip_the_ladder():
    log = []
    schedule = FidelitySchedule(rungs=(0.5, 1.0), eta=3.0, min_keep=2)
    engine = make_engine(ScalableEvaluator(log=log), fidelity=schedule)
    engine.process_batch(candidates(range(2)))
    assert [fraction for fraction, _v in log] == [1.0, 1.0]


def test_attach_fidelity_rejects_unscalable_evaluators():
    engine = make_engine(FunctionEvaluator(lambda program: 1.0))
    # FunctionEvaluator scales (identity), so build a hostile one.

    class Rigid(Evaluator):
        def evaluate_program(self, program):
            return EvaluationResult(score=0.0)

    engine = EvaluationEngine(StructuralChecker(make_template()), Rigid())
    with pytest.raises(ValueError, match="scalable evaluator"):
        engine.attach_fidelity(FidelitySchedule())
    assert engine.fidelity is None


# -- store keying -------------------------------------------------------------------


def test_fidelity_eval_key_is_identity_at_full_fidelity():
    assert fidelity_eval_key("abc", 1.0) == "abc"
    low = fidelity_eval_key("abc", 0.1)
    assert low != "abc" and low != fidelity_eval_key("abc", 0.3)
    assert low == fidelity_eval_key("abc", 0.1)


def test_rung_results_persist_under_qualified_keys(tmp_path):
    store = EvaluationStore(tmp_path)
    bound = store.bind("e" * 64)
    rung = bound.at_fidelity(0.25)
    result = EvaluationResult(score=0.5, fidelity=0.25)
    assert rung.put("p" * 40, result)
    loaded = rung.at_fidelity(1.0).get("p" * 40)  # same view: 1.0 is identity
    assert loaded is not None and loaded.fidelity == 0.25
    # The plain view must not see the rung entry.
    assert bound.get("p" * 40) is None


def test_warm_store_does_not_change_screening_decisions(tmp_path):
    """The ladder pool is store-independent: a warm full-fidelity store
    serves the promoted pool but never shrinks the screening pool."""
    schedule = FidelitySchedule(rungs=(0.5, 1.0), eta=3.0, min_keep=2)
    store = EvaluationStore(tmp_path)

    def run_batch():
        log = []
        engine = make_engine(ScalableEvaluator(log=log), fidelity=schedule)
        engine.attach_store(store.bind("f" * 64))
        batch = engine.process_batch(candidates(range(9)))
        return batch, log

    cold, _cold_log = run_batch()
    warm, warm_log = run_batch()
    assert [item.score for item in warm.scored] == [
        item.score for item in cold.scored
    ]
    assert [item.evaluation.fidelity for item in warm.scored] == [
        item.evaluation.fidelity for item in cold.scored
    ]
    # Warm run evaluated nothing: rungs and finals all came from the store.
    assert warm_log == []
    assert warm.stats.store_hits == warm.stats.store_lookups == 3
