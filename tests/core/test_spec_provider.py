"""RunSpec's ``llm["provider"]`` block: validation, normalisation, wiring."""

import pytest

from repro.core.spec import RunSpec, build_from_spec
from repro.llm.cache import CachingClient
from repro.llm.client import ProviderConfig, ResilientClient


def spec_dict(**llm):
    return dict(
        domain="caching",
        name="provider-spec",
        domain_kwargs={
            "workloads": [
                {"name": "caching/zipf-hot", "num_requests": 200, "num_objects": 80}
            ],
            "reducer": "mean",
        },
        search={"rounds": 1, "candidates_per_round": 2},
        llm=llm,
    )


def test_provider_block_is_validated_and_normalised():
    spec = RunSpec(**spec_dict(provider="synthetic"))
    provider = spec.provider_config()
    assert isinstance(provider, ProviderConfig)
    assert provider.name == "synthetic"
    # Normalised to the canonical dict form, like the fidelity block, so a
    # bare-name spelling and the explicit dict hash identically.
    explicit = RunSpec(**spec_dict(provider={"name": "synthetic"}))
    assert spec.to_dict() == explicit.to_dict()
    assert spec.config_hash() == explicit.config_hash()
    # And the canonical form round-trips through JSON.
    assert RunSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()


def test_provider_block_rejects_bad_values():
    with pytest.raises(ValueError, match="unknown LLM provider"):
        RunSpec(**spec_dict(provider="openai"))
    with pytest.raises(ValueError, match="unknown provider key"):
        RunSpec(**spec_dict(provider={"name": "synthetic", "retry": 3}))
    with pytest.raises(ValueError, match="batch_size must be positive"):
        RunSpec(**spec_dict(provider={"batch_size": 0}))


def test_llm_overrides_still_validated_alongside_provider():
    with pytest.raises(ValueError, match="unknown llm override"):
        RunSpec(**spec_dict(provider="synthetic", not_a_field=1))


def test_provider_none_is_dropped():
    spec = RunSpec(**spec_dict(provider=None))
    assert spec.provider_config() is None
    assert "provider" not in spec.llm


def test_llm_config_excludes_provider_key():
    spec = RunSpec(
        **spec_dict(provider="synthetic", syntax_error_rate=0.5)
    )
    from repro.core.domain import get_domain

    config = spec.llm_config(get_domain("caching"))
    assert config.syntax_error_rate == 0.5
    # Provider alone must not force a non-default synthetic config.
    assert RunSpec(**spec_dict(provider="synthetic")).llm_config(
        get_domain("caching")
    ) is None


def test_build_from_spec_wires_provider_stack(tmp_path):
    spec = RunSpec(
        **spec_dict(
            provider={
                "name": "synthetic",
                "retries": 2,
                "batch_size": 3,
                "prompt_cache": str(tmp_path / "pc"),
            }
        )
    )
    setup = build_from_spec(spec)
    client = setup.search.generator.client
    assert isinstance(client, CachingClient)
    assert isinstance(client.inner, ResilientClient)
    assert setup.generator.batch_size == 3

    # Without a provider block the client passes through unwrapped.
    bare = build_from_spec(RunSpec(**spec_dict()))
    assert not isinstance(bare.search.generator.client, (CachingClient, ResilientClient))
    assert bare.generator.batch_size is None
