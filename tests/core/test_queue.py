"""The spool-queue wire protocol: codec, atomic claims, leases, reclaim.

These are the invariants the distributed executor's fault tolerance rests
on: exactly one claimant wins a task, a heartbeated lease is never
reclaimed, a stale one always is, and every payload survives the JSON
round-trip bit-exactly (including non-finite failure scores and the
``transient`` flag the store codec deliberately drops).
"""

import json
import os
import threading
import time

import pytest

from repro.core.evaluator import EvaluationResult, Evaluator
from repro.core.queue import (
    SpoolQueue,
    decode_result,
    decode_task,
    default_worker_id,
    encode_result,
    encode_task,
    run_worker,
)
from repro.dsl import Interpreter, parse

PROGRAM_SOURCE = "def f(x) { return x + 1 }"


class InterpEvaluator(Evaluator):
    """Picklable toy evaluator (module level so the queue can ship it)."""

    def evaluate_program(self, program):
        value = Interpreter().run(program, {"x": 1})
        return EvaluationResult(score=float(value), valid=True)


@pytest.fixture
def program():
    return parse(PROGRAM_SOURCE)


@pytest.fixture
def queue(tmp_path):
    q = SpoolQueue(tmp_path / "queue", lease_ttl_s=5.0)
    q.write_config()
    return q


# -- codec --------------------------------------------------------------------------


def test_task_codec_round_trips(program, queue):
    payload = encode_task(
        "t-1",
        program,
        evaluator_id="abc",
        scenario=3,
        failure_score=float("-inf"),
        program_key="deadbeef",
        source=PROGRAM_SOURCE,
    )
    # The payload must be plain JSON (it crosses the filesystem boundary).
    restored = decode_task(json.loads(json.dumps(payload)))
    assert restored["task_id"] == "t-1"
    assert restored["scenario"] == 3
    assert restored["failure_score"] == float("-inf")
    assert restored["program_key"] == "deadbeef"
    from repro.dsl.codegen import to_source

    assert to_source(restored["program"]) == to_source(program)


def test_task_codec_rejects_other_schemas(program):
    payload = encode_task("t-1", program, evaluator_id="abc")
    payload["schema_version"] = 999
    with pytest.raises(ValueError, match="schema"):
        decode_task(payload)


def test_result_codec_preserves_transient_and_non_finite():
    failure = EvaluationResult.failure("worker died", transient=True)
    payload = json.loads(
        json.dumps(encode_result("t-2", "w0", failure, tier="fresh"))
    )
    restored = decode_result(payload)
    assert restored.transient is True
    assert restored.valid is False
    assert restored.score == float("-inf")
    assert restored.error == "worker died"

    ok = EvaluationResult(score=0.25, details={"hits": 3.0})
    restored = decode_result(json.loads(json.dumps(encode_result("t-3", "w1", ok))))
    assert restored.transient is False
    assert restored.score == 0.25
    assert restored.details == {"hits": 3.0}


# -- claims -------------------------------------------------------------------------


def test_claim_is_atomic_under_contention(program, queue):
    for index in range(8):
        queue.enqueue(
            f"t-{index:03d}", encode_task(f"t-{index:03d}", program, evaluator_id="e")
        )
    claims = []
    lock = threading.Lock()

    def claim_all(worker_id):
        while True:
            claim = queue.claim_next(worker_id)
            if claim is None:
                return
            with lock:
                claims.append((claim[0], worker_id))

    threads = [
        threading.Thread(target=claim_all, args=(f"w{n}",)) for n in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # Every task claimed exactly once, none lost, none doubled.
    assert sorted(task_id for task_id, _w in claims) == [
        f"t-{index:03d}" for index in range(8)
    ]
    # The winner's identity is recorded in the lease payload.
    for task_id, worker_id in claims:
        lease = json.loads(
            (queue.leases_dir / f"{task_id}.json").read_text(encoding="utf-8")
        )
        assert lease["worker_id"] == worker_id


def test_claims_follow_submission_order(program, queue):
    for index in (2, 0, 1):
        queue.enqueue(
            f"t-{index:03d}", encode_task(f"t-{index:03d}", program, evaluator_id="e")
        )
    order = [queue.claim_next("w")[0] for _ in range(3)]
    assert order == ["t-000", "t-001", "t-002"]


def test_unclaim_returns_a_task_to_pending(program, queue):
    queue.enqueue("t-0", encode_task("t-0", program, evaluator_id="e"))
    task_id, _payload = queue.claim_next("w0")
    assert queue.pending_tasks() == []
    queue.unclaim(task_id)
    assert queue.pending_tasks() == ["t-0"]
    assert queue.leased_tasks() == []


# -- lease expiry / reclaim ---------------------------------------------------------


def test_fresh_lease_is_not_reclaimed(program, queue):
    queue.enqueue("t-0", encode_task("t-0", program, evaluator_id="e"))
    queue.claim_next("w0")
    assert queue.reclaim_expired() == []
    assert queue.leased_tasks() == ["t-0"]


def test_stale_lease_is_reclaimed_with_its_holder(program, tmp_path):
    queue = SpoolQueue(tmp_path / "q", lease_ttl_s=0.2)
    queue.write_config()
    queue.enqueue("t-0", encode_task("t-0", program, evaluator_id="e"))
    queue.claim_next("w-dead")
    # No heartbeat: the lease goes stale and is returned to pending.
    time.sleep(0.35)
    assert queue.reclaim_expired() == [("t-0", "w-dead")]
    assert queue.pending_tasks() == ["t-0"]
    # A survivor re-claims it.
    task_id, payload = queue.claim_next("w-alive")
    assert task_id == "t-0"
    assert payload["worker_id"] == "w-alive"


def test_heartbeat_keeps_a_lease_alive(program, tmp_path):
    queue = SpoolQueue(tmp_path / "q", lease_ttl_s=0.3)
    queue.write_config()
    queue.enqueue("t-0", encode_task("t-0", program, evaluator_id="e"))
    queue.claim_next("w0")
    deadline = time.monotonic() + 0.7
    while time.monotonic() < deadline:
        queue.heartbeat("t-0")
        time.sleep(0.05)
        assert queue.reclaim_expired() == []
    assert queue.leased_tasks() == ["t-0"]


def test_complete_and_collect_consume_the_result(program, queue):
    queue.enqueue("t-0", encode_task("t-0", program, evaluator_id="e"))
    task_id, _payload = queue.claim_next("w0")
    queue.complete(
        task_id, encode_result(task_id, "w0", EvaluationResult(score=1.5))
    )
    assert queue.leased_tasks() == []
    collected = queue.collect(["t-0", "t-missing"])
    assert [task_id for task_id, _p in collected] == ["t-0"]
    assert decode_result(collected[0][1]).score == 1.5
    # Consumed: a second collect sees nothing.
    assert queue.collect(["t-0"]) == []


def test_forget_drops_every_trace_of_a_task(program, queue):
    queue.enqueue("t-0", encode_task("t-0", program, evaluator_id="e"))
    queue.forget("t-0")
    assert queue.pending_tasks() == []
    queue.enqueue("t-1", encode_task("t-1", program, evaluator_id="e"))
    queue.claim_next("w0")
    queue.forget("t-1")
    assert queue.leased_tasks() == []


# -- config / workers / stop --------------------------------------------------------


def test_workers_adopt_the_coordinators_lease_ttl(tmp_path):
    coordinator = SpoolQueue(tmp_path / "q", lease_ttl_s=1.25)
    coordinator.write_config()
    worker_view = SpoolQueue(tmp_path / "q")  # reads queue.json
    assert worker_view.lease_ttl_s == 1.25
    assert worker_view.reload_config() is True


def test_worker_registration_and_liveness(queue):
    queue.register_worker("w0", {"worker_id": "w0", "host": "h", "pid": 1})
    assert "w0" in queue.worker_records()
    assert queue.live_workers() == ["w0"]
    # A registration whose heartbeat went stale is not live.
    old = time.time() - 60.0
    os.utime(queue.workers_dir / "w0.json", (old, old))
    assert queue.live_workers() == []


def test_stop_sentinels(queue, tmp_path):
    assert queue.stop_requested() is False
    extra = tmp_path / "pool-token"
    assert queue.stop_requested(extra) is False
    extra.touch()
    assert queue.stop_requested(extra) is True
    queue.request_stop()
    assert queue.stop_requested() is True
    missing = SpoolQueue(tmp_path / "never-made")
    assert missing.stop_requested() is True  # torn-down queue means stop


def test_default_worker_id_names_host_and_pid():
    worker_id = default_worker_id()
    assert str(os.getpid()) in worker_id


# -- the worker loop (in-process, picklable evaluator from the real domain) ---------


def test_run_worker_once_drains_the_queue(program, queue):
    evaluator = InterpEvaluator()
    evaluator_id = queue.publish_evaluator(evaluator)
    reference = evaluator.evaluate(program)
    for index in range(3):
        task_id = f"t-{index:03d}"
        queue.enqueue(
            task_id, encode_task(task_id, program, evaluator_id=evaluator_id)
        )
    done = run_worker(queue.root, worker_id="w-test", once=True, quiet=True)
    assert done == 3
    collected = queue.collect([f"t-{i:03d}" for i in range(3)])
    assert len(collected) == 3
    for _task_id, payload in collected:
        assert payload["worker_id"] == "w-test"
        assert decode_result(payload).score == reference.score
    # The worker registered itself and counted its work.
    record = queue.worker_records()["w-test"]
    assert record["tasks_done"] == 3


def test_run_worker_fails_broken_tasks_transiently(queue):
    queue.enqueue(
        "t-bad",
        {
            "schema_version": 999,  # decode_task rejects this
            "task_id": "t-bad",
            "evaluator_id": "none",
            "program": "",
            "failure_score": "-inf",
        },
    )
    done = run_worker(queue.root, worker_id="w-test", once=True, quiet=True)
    assert done == 1
    [(task_id, payload)] = queue.collect(["t-bad"])
    result = decode_result(payload)
    assert result.valid is False
    assert result.transient is True
    assert result.score == float("-inf")
