"""Picklable evaluators for the distributed-executor tests.

These live in their own module (not the test file) so worker subprocesses
can unpickle them: the coordinator propagates ``sys.path`` through
``PYTHONPATH``, and pickle resolves classes by module name.
"""

import os
import time
from pathlib import Path

from repro.core.evaluator import EvaluationResult, Evaluator
from repro.dsl import Interpreter


class InterpEvaluator(Evaluator):
    """Deterministic toy evaluator: runs the program with ``x = 1``."""

    def evaluate_program(self, program):
        value = Interpreter().run(program, {"x": 1})
        return EvaluationResult(score=float(value), valid=True)


class BlockingEvaluator(InterpEvaluator):
    """Blocks while ``flag_path`` exists, recording who is working on what.

    The SIGKILL test uses the block to guarantee a worker is *mid-task* when
    it is killed: the worker drops a ``<marker_dir>/<pid>`` marker on entry,
    the test kills that pid, removes the flag, and the survivor finishes.
    """

    def __init__(self, flag_path, marker_dir):
        self.flag_path = str(flag_path)
        self.marker_dir = str(marker_dir)

    def evaluate_program(self, program):
        marker_dir = Path(self.marker_dir)
        marker_dir.mkdir(parents=True, exist_ok=True)
        (marker_dir / str(os.getpid())).write_text("working", encoding="utf-8")
        while os.path.exists(self.flag_path):
            time.sleep(0.02)
        return super().evaluate_program(program)


class CrashOnceEvaluator(InterpEvaluator):
    """Hard-kills its worker process the first time it sees the trigger.

    ``os._exit`` models a SIGKILL/OOM from inside: no exception propagates,
    no lease is released, no result is written.  The marker file makes the
    crash one-shot, so the reclaimed task succeeds on its second claim.
    """

    def __init__(self, marker_path, trigger_score):
        self.marker_path = str(marker_path)
        self.trigger_score = trigger_score

    def evaluate_program(self, program):
        result = super().evaluate_program(program)
        if result.score == self.trigger_score and not os.path.exists(self.marker_path):
            with open(self.marker_path, "w", encoding="utf-8") as fh:
                fh.write("crashed once")
            os._exit(1)
        return result
