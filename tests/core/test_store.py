"""The persistent evaluation store: addressing, robustness, GC, contention.

The store's contract is "never wrong, at worst slow": any malformed entry --
truncated JSON, a corrupt or missing npz sidecar, another schema version, a
key mismatch -- must read as a miss (falling back to fresh evaluation), and
concurrent processes sharing one directory must never observe a torn entry.
"""

import json
import os
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core.evaluator import EvaluationResult
from repro.core.store import (
    NPZ_THRESHOLD,
    STORE_SCHEMA_VERSION,
    EvaluationStore,
)

EVAL_KEY = "e" * 64
OTHER_EVAL_KEY = "f" * 64


def result_for(score: float, **kwargs) -> EvaluationResult:
    return EvaluationResult(score=score, valid=True, **kwargs)


def store_in(tmp_path, **kwargs) -> EvaluationStore:
    return EvaluationStore(tmp_path / "evalstore", **kwargs)


# -- round-trip ---------------------------------------------------------------------


def test_roundtrip_preserves_result_fields(tmp_path):
    store = store_in(tmp_path)
    original = EvaluationResult(
        score=-0.25,
        valid=True,
        details={"miss_ratio": 0.25, "evictions": 12.0},
        scenario_scores={"zipf": -0.2, "scan": -0.3},
        wall_time_s=0.5,
    )
    assert store.put(EVAL_KEY, "prog1", original)
    loaded = store.get(EVAL_KEY, "prog1")
    assert loaded is not None
    assert loaded.score == original.score
    assert loaded.valid is True
    assert loaded.details == original.details
    assert loaded.scenario_scores == original.scenario_scores


def test_roundtrip_nonfinite_scores(tmp_path):
    store = store_in(tmp_path)
    failure = EvaluationResult.failure("crashed", float("-inf"))
    store.put(EVAL_KEY, "bad", failure)
    loaded = store.get(EVAL_KEY, "bad")
    assert loaded is not None
    assert loaded.score == float("-inf")
    assert not loaded.valid
    assert loaded.error == "crashed"


def test_miss_on_unknown_keys(tmp_path):
    store = store_in(tmp_path)
    store.put(EVAL_KEY, "prog1", result_for(1.0))
    assert store.get(EVAL_KEY, "prog2") is None
    assert store.get(OTHER_EVAL_KEY, "prog1") is None


def test_eval_configs_are_isolated(tmp_path):
    """The same program under two evaluator configs has two entries."""
    store = store_in(tmp_path)
    store.put(EVAL_KEY, "prog", result_for(1.0))
    store.put(OTHER_EVAL_KEY, "prog", result_for(2.0))
    assert store.get(EVAL_KEY, "prog").score == 1.0
    assert store.get(OTHER_EVAL_KEY, "prog").score == 2.0
    assert store.stats().eval_configs == 2


def test_unwritable_store_degrades_to_not_persisted(tmp_path):
    """A broken store (unwritable path, full disk) must never abort the
    search: put() returns False instead of raising."""
    store = store_in(tmp_path)
    # A regular file where the schema tree should be makes every mkdir fail
    # with an OSError (chmod tricks don't work when tests run as root).
    store.root.mkdir(parents=True)
    store.schema_root.touch()
    assert not store.put(EVAL_KEY, "prog", result_for(1.0))
    assert store.write_errors == 1
    assert store.get(EVAL_KEY, "prog") is None


def test_transient_results_are_never_persisted(tmp_path):
    store = store_in(tmp_path)
    timeout = EvaluationResult.failure("timed out", -1.0, transient=True)
    assert not store.put(EVAL_KEY, "slow", timeout)
    assert store.get(EVAL_KEY, "slow") is None
    assert store.stats().entries == 0


# -- npz sidecar --------------------------------------------------------------------


def wide_result() -> EvaluationResult:
    scores = {f"scenario-{i:03d}": -i / 100 for i in range(NPZ_THRESHOLD + 4)}
    return EvaluationResult(score=-0.5, valid=True, scenario_scores=scores)


def test_wide_scenario_maps_use_npz_sidecar(tmp_path):
    store = store_in(tmp_path)
    original = wide_result()
    store.put(EVAL_KEY, "wide", original)
    entry = store.entry_path(EVAL_KEY, "wide")
    assert entry.with_suffix(".npz").exists()
    payload = json.loads(entry.read_text())
    assert payload["sidecar"] is True
    assert "scenario_scores" not in payload["result"]
    loaded = store.get(EVAL_KEY, "wide")
    assert loaded.scenario_scores == original.scenario_scores


def test_truncated_npz_sidecar_degrades_to_miss(tmp_path):
    store = store_in(tmp_path)
    store.put(EVAL_KEY, "wide", wide_result())
    sidecar = store.entry_path(EVAL_KEY, "wide").with_suffix(".npz")
    sidecar.write_bytes(sidecar.read_bytes()[:10])
    assert store.get(EVAL_KEY, "wide") is None
    assert store.corrupt_reads == 1


def test_missing_npz_sidecar_degrades_to_miss(tmp_path):
    store = store_in(tmp_path)
    store.put(EVAL_KEY, "wide", wide_result())
    store.entry_path(EVAL_KEY, "wide").with_suffix(".npz").unlink()
    assert store.get(EVAL_KEY, "wide") is None


# -- corruption / schema tolerance --------------------------------------------------


def test_truncated_json_entry_degrades_to_miss(tmp_path):
    store = store_in(tmp_path)
    store.put(EVAL_KEY, "prog", result_for(1.0))
    entry = store.entry_path(EVAL_KEY, "prog")
    entry.write_text(entry.read_text()[:20])
    assert store.get(EVAL_KEY, "prog") is None
    assert store.corrupt_reads == 1


def test_garbage_entry_degrades_to_miss(tmp_path):
    store = store_in(tmp_path)
    entry = store.entry_path(EVAL_KEY, "prog")
    entry.parent.mkdir(parents=True)
    entry.write_text("not json at all {{{")
    assert store.get(EVAL_KEY, "prog") is None


def test_schema_version_mismatch_is_a_silent_miss(tmp_path):
    """A future (or past) payload schema must be ignored, never misread."""
    store = store_in(tmp_path)
    store.put(EVAL_KEY, "prog", result_for(1.0))
    entry = store.entry_path(EVAL_KEY, "prog")
    payload = json.loads(entry.read_text())
    payload["schema_version"] = STORE_SCHEMA_VERSION + 1
    entry.write_text(json.dumps(payload))
    assert store.get(EVAL_KEY, "prog") is None
    # Not corruption -- a cleanly-written foreign schema.
    assert store.corrupt_reads == 0


def test_key_mismatch_inside_payload_is_a_miss(tmp_path):
    """A copied/renamed file cannot resurface under the wrong address."""
    store = store_in(tmp_path)
    store.put(EVAL_KEY, "prog", result_for(1.0))
    src = store.entry_path(EVAL_KEY, "prog")
    dst = store.entry_path(EVAL_KEY, "other")
    dst.write_text(src.read_text())
    assert store.get(EVAL_KEY, "other") is None
    assert store.corrupt_reads == 1


# -- stats / gc / clear -------------------------------------------------------------


def test_stats_counts_entries_and_bytes(tmp_path):
    store = store_in(tmp_path)
    for i in range(5):
        store.put(EVAL_KEY, f"prog{i}", result_for(float(i)))
    stats = store.stats()
    assert stats.entries == 5
    assert stats.total_bytes > 0
    assert stats.eval_configs == 1
    assert stats.schema_version == STORE_SCHEMA_VERSION


def test_gc_evicts_least_recently_used_first(tmp_path):
    store = store_in(tmp_path)
    for i in range(4):
        store.put(EVAL_KEY, f"prog{i}", result_for(float(i)))
        # Distinct mtimes even on coarse-grained filesystems.
        entry = store.entry_path(EVAL_KEY, f"prog{i}")
        os.utime(entry, (1_000_000 + i, 1_000_000 + i))
    # Touch prog0 (a hit refreshes recency) so prog1 becomes the LRU victim.
    os.utime(store.entry_path(EVAL_KEY, "prog0"), (2_000_000, 2_000_000))
    outcome = store.gc(max_entries=2)
    assert outcome.removed_entries == 2
    assert outcome.remaining_entries == 2
    assert store.get(EVAL_KEY, "prog1") is None
    assert store.get(EVAL_KEY, "prog2") is None
    assert store.get(EVAL_KEY, "prog0") is not None
    assert store.get(EVAL_KEY, "prog3") is not None


def test_gc_byte_bound(tmp_path):
    store = store_in(tmp_path)
    for i in range(6):
        store.put(EVAL_KEY, f"prog{i}", result_for(float(i)))
    total = store.stats().total_bytes
    outcome = store.gc(max_bytes=total // 2)
    assert outcome.remaining_bytes <= total // 2
    assert outcome.removed_entries >= 3


def test_bounded_store_self_collects_on_put(tmp_path):
    store = store_in(tmp_path, max_entries=3, gc_interval=1)
    for i in range(8):
        store.put(EVAL_KEY, f"prog{i}", result_for(float(i)))
    assert store.stats().entries <= 3


def test_gc_removes_foreign_schema_trees_and_dangling_sidecars(tmp_path):
    store = store_in(tmp_path)
    store.put(EVAL_KEY, "prog", result_for(1.0))
    old = store.root / "v0" / "aa" / ("a" * 64)
    old.mkdir(parents=True)
    (old / "stale.json").write_text("{}")
    dangling = store.entry_path(EVAL_KEY, "gone").with_suffix(".npz")
    dangling.write_bytes(b"orphan")
    store.gc(max_entries=10)
    assert not (store.root / "v0").exists()
    assert not dangling.exists()
    assert store.get(EVAL_KEY, "prog") is not None


def test_gc_and_clear_never_touch_foreign_directories(tmp_path):
    """Pointing the store at a directory holding other data (say, an
    artifact root) must not destroy it: only v<N> schema trees are ours."""
    store = store_in(tmp_path)
    store.put(EVAL_KEY, "prog", result_for(1.0))
    run_dir = store.root / "smoke-caching-abc-s0"
    run_dir.mkdir(parents=True)
    (run_dir / "result.json").write_text("{}")
    (store.root / "sweep.json").write_text("{}")
    store.gc(max_entries=0)
    store.clear()
    assert (run_dir / "result.json").exists()
    assert (store.root / "sweep.json").exists()


def test_gc_on_empty_or_missing_store_is_a_no_op(tmp_path):
    # Root directory does not even exist yet.
    store = store_in(tmp_path)
    outcome = store.gc(max_entries=0)
    assert outcome.removed_entries == 0 and outcome.freed_bytes == 0
    assert outcome.remaining_entries == 0 and outcome.remaining_bytes == 0
    assert store.clear() == 0
    # An existing-but-empty schema tree behaves the same.
    store.schema_root.mkdir(parents=True)
    outcome = store.gc(max_bytes=0)
    assert outcome.removed_entries == 0 and outcome.remaining_entries == 0


def test_gc_max_bytes_zero_evicts_every_entry(tmp_path):
    store = store_in(tmp_path)
    wide = {f"scenario-{i}": float(i) for i in range(NPZ_THRESHOLD + 1)}
    store.put(EVAL_KEY, "plain", result_for(1.0))
    store.put(EVAL_KEY, "wide", result_for(2.0, scenario_scores=wide))
    total = store.stats().total_bytes
    outcome = store.gc(max_bytes=0)
    assert outcome.removed_entries == 2
    assert outcome.freed_bytes == total  # npz sidecar bytes counted too
    assert outcome.remaining_entries == 0 and outcome.remaining_bytes == 0
    assert store.get(EVAL_KEY, "plain") is None
    # The sidecar did not survive its entry.
    assert not list(store.schema_root.rglob("*.npz"))


def test_gc_collects_a_sidecar_only_store(tmp_path):
    """A crash between sidecar and entry writes can leave a store holding
    nothing but orphaned ``.npz`` files; GC must sweep them without counting
    them as evicted entries."""
    store = store_in(tmp_path)
    orphan_dir = store.schema_root / "aa" / EVAL_KEY
    orphan_dir.mkdir(parents=True)
    for i in range(3):
        (orphan_dir / f"prog{i}.npz").write_bytes(b"orphan")
    outcome = store.gc(max_entries=10)
    assert outcome.removed_entries == 0
    assert not list(store.schema_root.rglob("*.npz"))
    assert store.stats().entries == 0


def test_clear_removes_everything(tmp_path):
    store = store_in(tmp_path)
    for i in range(3):
        store.put(EVAL_KEY, f"prog{i}", result_for(float(i)))
    assert store.clear() == 3
    assert store.stats().entries == 0
    assert store.get(EVAL_KEY, "prog0") is None


def test_store_validation():
    with pytest.raises(ValueError):
        EvaluationStore("x", max_entries=-1)
    with pytest.raises(ValueError):
        EvaluationStore("x", max_bytes=-1)
    with pytest.raises(ValueError):
        EvaluationStore("x", gc_interval=0)
    store = EvaluationStore("x")
    with pytest.raises(ValueError):
        store.entry_path("", "p")
    with pytest.raises(ValueError):
        store.bind("")


# -- contention: two processes, one directory ---------------------------------------


def _hammer_store(args):
    """Worker: interleave writes and reads against the shared directory."""
    root, worker, rounds = args
    store = EvaluationStore(root)
    mismatches = 0
    for i in range(rounds):
        key = f"prog{i % 10}"
        expected = float(i % 10)
        store.put(EVAL_KEY, key, EvaluationResult(score=expected, valid=True))
        loaded = store.get(EVAL_KEY, key)
        # A concurrent GC/clear could make this a miss; a *wrong* score never.
        if loaded is not None and loaded.score != expected:
            mismatches += 1
    return mismatches


def test_two_processes_share_one_store_directory(tmp_path):
    """Concurrent writers/readers: atomic replace means no torn entries and
    never a wrong score -- the write-same-content race is benign."""
    root = str(tmp_path / "shared-store")
    with ProcessPoolExecutor(max_workers=2) as pool:
        outcomes = list(
            pool.map(_hammer_store, [(root, w, 60) for w in range(2)])
        )
    assert outcomes == [0, 0]
    store = EvaluationStore(root)
    assert store.stats().entries == 10
    for i in range(10):
        assert store.get(EVAL_KEY, f"prog{i}").score == float(i)
