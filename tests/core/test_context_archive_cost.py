"""Context, ContextShiftDetector, HeuristicArchive and cost-model tests."""

import pytest

from repro.core.archive import ArchiveEntry, HeuristicArchive
from repro.core.context import Context, ContextShiftDetector
from repro.core.cost import CostModel, GPT_4O_MINI_PRICING, SearchCostReport
from repro.core.results import Candidate, ScoredCandidate
from repro.core.evaluator import EvaluationResult


# -- Context ---------------------------------------------------------------------


def test_context_create_and_parameters():
    context = Context.create(
        "caching/w89", "trace w89", "minimize miss ratio", cache_fraction=0.1, size=1024
    )
    assert context.parameter("cache_fraction") == "0.1"
    assert context.parameter("missing", "default") == "default"
    assert "trace w89" in context.describe()
    assert "minimize miss ratio" in context.describe()


def test_context_is_hashable_and_comparable():
    a = Context.create("c", "w", "o", x=1)
    b = Context.create("c", "w", "o", x=1)
    assert a == b
    assert hash(a) == hash(b)
    assert len({a, b}) == 1


# -- ContextShiftDetector ----------------------------------------------------------


def test_detector_triggers_on_sustained_degradation():
    detector = ContextShiftDetector(
        window=10, reference_window=50, threshold=0.2, patience=3, higher_is_better=True
    )
    triggered = False
    for _ in range(60):
        triggered = detector.observe(0.8) or triggered
    assert not triggered
    # Hit rate collapses: must fire within a few windows.
    fired = any(detector.observe(0.3) for _ in range(40))
    assert fired
    assert detector.shifts_detected == 1


def test_detector_ignores_noise_within_threshold():
    detector = ContextShiftDetector(window=10, reference_window=40, threshold=0.3, patience=3)
    values = [0.8, 0.82, 0.78, 0.81] * 30
    assert not any(detector.observe(v) for v in values)


def test_detector_lower_is_better_mode():
    detector = ContextShiftDetector(
        window=5, reference_window=20, threshold=0.2, patience=2, higher_is_better=False
    )
    for _ in range(25):
        detector.observe(10.0)       # stable latency
    fired = any(detector.observe(20.0) for _ in range(10))
    assert fired


def test_detector_validation():
    with pytest.raises(ValueError):
        ContextShiftDetector(window=0)
    with pytest.raises(ValueError):
        ContextShiftDetector(window=10, reference_window=5)


# -- HeuristicArchive -----------------------------------------------------------------


def scored(source="def priority() { return 1 }", score=0.5, cid="c1"):
    return ScoredCandidate(
        candidate=Candidate(candidate_id=cid, source=source, round_index=1),
        program=None,
        check_ok=True,
        evaluation=EvaluationResult(score=score),
    )


def test_archive_add_query_best():
    archive = HeuristicArchive()
    context = Context.create("caching/w89", "w89", "miss ratio")
    archive.add_candidate(context, scored(score=0.5, cid="a"), name="first", rounds="20")
    archive.add_candidate(context, scored(score=0.8, cid="b"), name="second")
    assert len(archive) == 2
    assert archive.contexts() == ["caching/w89"]
    assert archive.best_for("caching/w89").name == "second"
    assert archive.best_for("unknown") is None
    assert archive.entries_for("caching/w89")[0].metadata == {"rounds": "20"}


def test_archive_save_and_load_roundtrip(tmp_path):
    archive = HeuristicArchive()
    archive.add(ArchiveEntry("ctx", "h1", "def priority() { return 1 }", 0.4, {"k": "v"}))
    archive.add(ArchiveEntry("ctx2", "h2", "def priority() { return 2 }", 0.9))
    path = tmp_path / "library.json"
    archive.save(path)
    loaded = HeuristicArchive.load(path)
    assert len(loaded) == 2
    assert loaded.best_for("ctx").source == "def priority() { return 1 }"
    assert loaded.best_for("ctx").metadata == {"k": "v"}


def test_archive_load_rejects_unknown_version(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"version": 99, "entries": []}')
    with pytest.raises(ValueError):
        HeuristicArchive.load(path)


# -- Cost model --------------------------------------------------------------------------


def test_cost_model_math():
    model = CostModel("m", usd_per_million_input=1.0, usd_per_million_output=2.0)
    assert model.cost(1_000_000, 500_000) == pytest.approx(1.0 + 1.0)
    assert GPT_4O_MINI_PRICING.cost(800_000, 300_000) == pytest.approx(0.12 + 0.18)


def test_search_cost_report_aggregation():
    report = SearchCostReport()
    report.add_run("run1", 100_000, 40_000, 360.0)
    report.add_run("run2", 50_000, 20_000, 180.0)
    assert report.runs == 2
    assert report.prompt_tokens == 150_000
    assert report.completion_tokens == 60_000
    assert report.evaluation_cpu_hours == pytest.approx(540 / 3600)
    assert report.total_cost_usd == pytest.approx(
        GPT_4O_MINI_PRICING.cost(150_000, 60_000)
    )
    summary = report.summary()
    assert summary["runs"] == 2
