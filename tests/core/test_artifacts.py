"""Artifact store: layout, serialization round-trip, byte-identical reruns."""

import json

import pytest

from repro.core.artifacts import (
    ARTIFACT_VERSION,
    ArtifactStore,
    RunArtifact,
    search_result_from_dict,
    search_result_to_dict,
)
from repro.core.spec import RunSpec, run

TRACE_REF = {"dataset": "cloudphysics", "index": 89, "num_requests": 800}


def tiny_spec(**kwargs) -> RunSpec:
    base = dict(
        domain="caching",
        name="art-tiny",
        domain_kwargs={"trace": dict(TRACE_REF)},
        search={"rounds": 2, "candidates_per_round": 3},
    )
    base.update(kwargs)
    return RunSpec(**base)


# -- layout -------------------------------------------------------------------------


def test_run_directory_layout(tmp_path):
    outcome = run(tiny_spec(checkpoint=True), store=tmp_path)
    run_dir = outcome.artifact_dir
    assert run_dir is not None and run_dir.parent == tmp_path
    for name in ("spec.json", "result.json", "rounds.jsonl", "events.jsonl",
                 "metadata.json", "checkpoint.json"):
        assert (run_dir / name).exists(), name

    spec_data = json.loads((run_dir / "spec.json").read_text())
    assert RunSpec.from_dict(spec_data) == tiny_spec(checkpoint=True)

    rounds = [json.loads(line) for line in (run_dir / "rounds.jsonl").read_text().splitlines()]
    assert [r["round_index"] for r in rounds] == [1, 2]

    events = [json.loads(line) for line in (run_dir / "events.jsonl").read_text().splitlines()]
    assert events[0]["event"] == "run_started"
    assert events[-1]["event"] == "run_finished"


def test_metadata_records_reproducibility_info(tmp_path):
    from repro import __version__

    spec = tiny_spec()
    outcome = run(spec, store=tmp_path)
    metadata = json.loads((outcome.artifact_dir / "metadata.json").read_text())
    assert metadata["artifact_version"] == ARTIFACT_VERSION
    assert metadata["config_hash"] == spec.config_hash()
    assert metadata["seed"] == 0
    assert metadata["seeds"] == [0]
    assert metadata["repro_version"] == __version__
    assert metadata["kind"] == "search"


def test_run_dir_name_is_deterministic(tmp_path):
    spec = tiny_spec()
    first = run(spec, store=tmp_path).artifact_dir
    second = run(spec, store=tmp_path).artifact_dir
    assert first == second
    store = ArtifactStore(tmp_path)
    assert store.runs() == [first]


# -- SearchResult serialization -----------------------------------------------------


def test_search_result_dict_roundtrip():
    result = run(tiny_spec()).result
    data = search_result_to_dict(result)
    restored = search_result_from_dict(json.loads(json.dumps(data)))
    assert restored.best is not None
    assert restored.best.candidate.candidate_id == result.best.candidate.candidate_id
    assert restored.best.score == result.best.score
    assert restored.best_source() == result.best_source()
    assert restored.total_candidates == result.total_candidates
    assert len(restored.rounds) == len(result.rounds)
    assert restored.eval_cache_hits == result.eval_cache_hits
    assert restored.prompt_tokens == result.prompt_tokens
    # Volatile timing is stripped by default...
    assert restored.wall_time_s == 0.0
    # ...but preserved on request.
    timed = search_result_from_dict(search_result_to_dict(result, include_timing=True))
    assert timed.wall_time_s == result.wall_time_s


# -- byte-identical reruns (the reproducibility contract) ---------------------------


def test_identical_spec_produces_byte_identical_result_json(tmp_path):
    spec = tiny_spec()
    first = run(spec, store=tmp_path / "a").artifact_dir / "result.json"
    second = run(spec, store=tmp_path / "b").artifact_dir / "result.json"
    assert first.read_bytes() == second.read_bytes()
    # Overwriting rerun in the same store is also byte-identical.
    third = run(spec, store=tmp_path / "a").artifact_dir / "result.json"
    assert third.read_bytes() == first.read_bytes()


def test_sweep_seed_runs_are_byte_identical_to_single_runs(tmp_path):
    from repro.core.spec import run_sweep

    sweep = run_sweep(tiny_spec(seeds=[0, 1]), store=tmp_path / "sweep")
    for outcome in sweep.outcomes:
        single = run(tiny_spec(seed=outcome.seed), store=tmp_path / "single")
        assert (
            (outcome.artifact_dir / "result.json").read_bytes()
            == (single.artifact_dir / "result.json").read_bytes()
        )


# -- RunArtifact --------------------------------------------------------------------


def test_run_artifact_reads_back(tmp_path):
    outcome = run(tiny_spec(), store=tmp_path)
    artifact = RunArtifact(outcome.artifact_dir)
    assert artifact.kind == "search"
    assert artifact.spec["domain"] == "caching"
    result = artifact.search_result()
    assert result.best_source() == outcome.result.best_source()
    assert len(artifact.rounds()) == 2
    assert artifact.events()[0]["event"] == "run_started"
    assert artifact.metadata["config_hash"] == tiny_spec().config_hash()


def test_run_artifact_rejects_non_run_dir(tmp_path):
    with pytest.raises(FileNotFoundError, match="not a run directory"):
        RunArtifact(tmp_path)


def test_run_artifact_rejects_future_version(tmp_path):
    outcome = run(tiny_spec(), store=tmp_path)
    meta_path = outcome.artifact_dir / "metadata.json"
    meta = json.loads(meta_path.read_text())
    meta["artifact_version"] = ARTIFACT_VERSION + 1
    meta_path.write_text(json.dumps(meta))
    with pytest.raises(ValueError, match="artifact format"):
        RunArtifact(outcome.artifact_dir).metadata
