"""The distributed executor: fan-out parity, crash tolerance, SIGKILL reclaim.

The acceptance bar from the roadmap: a SIGKILL'd worker's tasks must be
reclaimed (lease expiry, not loss) and the run must complete with exactly
the results a serial run produces.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from distributed_helpers import BlockingEvaluator, CrashOnceEvaluator, InterpEvaluator
from repro.core.engine import BatchStats, EngineConfig
from repro.core.events import EventBus, TaskReclaimed, WorkerJoined
from repro.core.executors import EvalUnit, create_executor
from repro.core.queue import SpoolQueue, encode_task
from repro.dsl import parse

SOURCES = [f"def f(x) {{ return {n} }}" for n in (3, 7, 13, 21, 40)]


def units():
    return [EvalUnit(program=parse(source)) for source in SOURCES]


def worker_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    return env


@pytest.fixture
def recorder():
    class Recorder:
        def __init__(self):
            self.events = []

        def __call__(self, event):
            self.events.append(event)

    return Recorder()


def test_distributed_matches_serial_results(tmp_path, recorder):
    evaluator = InterpEvaluator()
    serial = [evaluator.evaluate(unit.program) for unit in units()]

    config = EngineConfig(executor="distributed", max_workers=2, lease_ttl_s=5.0)
    executor = create_executor("distributed", config, evaluator)
    executor.events = EventBus([recorder])
    try:
        results = executor.run_units(units(), BatchStats())
    finally:
        executor.close()
    assert [r.score for r in results] == [r.score for r in serial]
    assert executor.tasks_dispatched == len(SOURCES)
    joined = [e for e in recorder.events if isinstance(e, WorkerJoined)]
    assert len(joined) == 2
    fabric = executor.fabric_stats()
    assert fabric["workers_joined"] == 2
    assert sum(w["completed"] for w in fabric["workers"].values()) == len(SOURCES)


def test_distributed_survives_a_worker_crash_loop_free(tmp_path, recorder):
    """A worker that dies mid-task (no exception, no lease release) is
    reclaimed after the lease TTL and the batch completes correctly."""
    evaluator = CrashOnceEvaluator(tmp_path / "crashed-once", trigger_score=13.0)
    config = EngineConfig(
        executor="distributed", max_workers=2, lease_ttl_s=0.6,
        queue_dir=str(tmp_path / "queue"),
    )
    executor = create_executor("distributed", config, evaluator)
    executor.events = EventBus([recorder])
    try:
        results = executor.run_units(units(), BatchStats())
    finally:
        executor.close()
    assert [r.score for r in results] == [3.0, 7.0, 13.0, 21.0, 40.0]
    assert all(r.valid for r in results)
    reclaims = [e for e in recorder.events if isinstance(e, TaskReclaimed)]
    assert executor.tasks_reclaimed >= 1
    assert len(reclaims) == executor.tasks_reclaimed
    assert (tmp_path / "crashed-once").exists()


def test_worker_count_zero_rescues_inline_without_workers(tmp_path):
    """``worker_count: 0`` means external workers; with none around, the
    coordinator must finish the batch itself rather than hang."""
    evaluator = InterpEvaluator()
    config = EngineConfig(
        executor="distributed", max_workers=2, worker_count=0, lease_ttl_s=0.3,
    )
    executor = create_executor("distributed", config, evaluator)
    try:
        results = executor.run_units(units()[:2], BatchStats())
    finally:
        executor.close()
    assert [r.score for r in results] == [3.0, 7.0]
    assert executor.tasks_rescued == 2


def test_sigkilled_workers_task_is_reclaimed_by_a_survivor(tmp_path):
    """Two externally-launched `repro worker` processes; the one holding the
    task is SIGKILL'd mid-evaluation.  The lease must expire, the task must
    be reclaimed (not lost), and the survivor must produce the result."""
    queue = SpoolQueue(tmp_path / "queue", lease_ttl_s=0.6)
    queue.write_config()
    flag = tmp_path / "block-flag"
    flag.touch()
    markers = tmp_path / "markers"
    evaluator = BlockingEvaluator(flag, markers)
    evaluator_id = queue.publish_evaluator(evaluator)
    reference = InterpEvaluator().evaluate(parse(SOURCES[0]))

    procs = []
    try:
        for index in range(2):
            log = open(tmp_path / f"worker-{index}.log", "wb")
            procs.append(
                (
                    subprocess.Popen(
                        [
                            sys.executable, "-m", "repro", "worker",
                            str(queue.root), "--worker-id", f"w{index}",
                        ],
                        stdout=log, stderr=log, env=worker_env(),
                    ),
                    log,
                )
            )
        queue.enqueue(
            "t-0", encode_task("t-0", parse(SOURCES[0]), evaluator_id=evaluator_id)
        )

        # Wait until a worker is provably mid-task (its pid marker appears).
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline and not list(markers.glob("*")):
            time.sleep(0.05)
        marker_pids = {int(p.name) for p in markers.glob("*")}
        assert marker_pids, "no worker started evaluating within 30s"
        lease = json.loads(
            (queue.leases_dir / "t-0.json").read_text(encoding="utf-8")
        )
        holder = lease["worker_id"]

        # SIGKILL the holder: no cleanup, no lease release, heartbeat stops.
        victim = next(p for p, _log in procs if str(p.pid) in (str(pid) for pid in marker_pids))
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait(timeout=10)
        flag.unlink()  # let the survivor finish instantly once it claims

        # Coordinate the reclaim ourselves (this test *is* the coordinator).
        reclaimed = []
        results = []
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline and not results:
            reclaimed.extend(queue.reclaim_expired())
            results = queue.collect(["t-0"])
            time.sleep(0.05)
        assert results, "task was lost after SIGKILL"
        assert ("t-0", holder) in reclaimed, (reclaimed, holder)
        from repro.core.queue import decode_result

        final = decode_result(results[0][1])
        assert final.score == reference.score
        assert results[0][1]["worker_id"] != holder  # a survivor finished it
    finally:
        queue.request_stop()
        for proc, log in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
            log.close()
