"""Checkpoint/resume: an interrupted search must continue the exact
trajectory of an uninterrupted one."""

import pytest

from repro.core.archive import (
    SearchCheckpoint,
    scored_candidate_from_dict,
    scored_candidate_to_dict,
)
from repro.core.domain import build_search
from repro.core.evaluator import EvaluationResult
from repro.core.results import Candidate, ScoredCandidate
from repro.dsl import parse


def test_scored_candidate_roundtrips_through_json():
    program = parse("def f(x) { return x + 1 }")
    scored = ScoredCandidate(
        candidate=Candidate(
            candidate_id="r1-c3",
            source="def f(x) {  return   x+1 }",
            round_index=1,
            parent_ids=["seed-1"],
        ),
        program=program,
        check_ok=True,
        evaluation=EvaluationResult(score=-0.25, details={"miss_ratio": 0.25}),
    )
    restored = scored_candidate_from_dict(scored_candidate_to_dict(scored))
    assert restored.candidate.candidate_id == "r1-c3"
    assert restored.candidate.parent_ids == ["seed-1"]
    assert restored.program == program
    assert restored.score == -0.25
    assert restored.evaluation.details == {"miss_ratio": 0.25}


def test_checkpoint_save_load_roundtrip(tmp_path):
    checkpoint = SearchCheckpoint(
        template_name="toy",
        context_name="ctx",
        completed_rounds=2,
        counter=12,
        memo={"abc": EvaluationResult(score=1.5)},
        generator_state={"usage": {"prompt_tokens": 10}},
        seed_stats={"lookups": 2, "hits": 0},
    )
    path = tmp_path / "ckpt.json"
    checkpoint.save(path)
    loaded = SearchCheckpoint.load(path)
    assert loaded.completed_rounds == 2
    assert loaded.counter == 12
    assert loaded.memo["abc"].score == 1.5
    assert loaded.generator_state == {"usage": {"prompt_tokens": 10}}
    assert loaded.seed_stats == {"lookups": 2, "hits": 0}


def test_load_rejects_foreign_files(tmp_path):
    path = tmp_path / "not-a-checkpoint.json"
    path.write_text('{"version": 1, "entries": []}')
    with pytest.raises(ValueError):
        SearchCheckpoint.load(path)


def test_resumed_search_matches_uninterrupted_run(small_synthetic_trace, tmp_path):
    path = tmp_path / "search.ckpt.json"
    kwargs = dict(trace=small_synthetic_trace, candidates_per_round=6, seed=9)

    full = build_search("caching", rounds=4, **kwargs).search.run()

    # "Interrupt" after round 2, then resume to round 4 with a fresh setup.
    build_search("caching", rounds=2, checkpoint_path=path, **kwargs).search.run()
    assert path.exists()
    resumed = build_search("caching", rounds=4, checkpoint_path=path, **kwargs).search.run()

    assert resumed.best_source() == full.best_source()
    assert resumed.total_candidates == full.total_candidates
    assert resumed.prompt_tokens == full.prompt_tokens
    assert resumed.completion_tokens == full.completion_tokens
    assert [r.best_overall_score for r in resumed.rounds] == [
        r.best_overall_score for r in full.rounds
    ]
    assert [c.candidate.candidate_id for c in resumed.candidates] == [
        c.candidate.candidate_id for c in full.candidates
    ]


def test_checkpoint_context_mismatch_rejected(small_synthetic_trace, tmp_path):
    """Resuming with a different trace must not silently return the other
    context's results."""
    from repro.traces.synthetic import SyntheticWorkloadConfig, generate_trace

    path = tmp_path / "search.ckpt.json"
    build_search(
        "caching",
        rounds=1,
        candidates_per_round=3,
        trace=small_synthetic_trace,
        checkpoint_path=path,
    ).search.run()
    other = generate_trace(
        SyntheticWorkloadConfig(name="other-trace", num_requests=500, num_objects=100, seed=3)
    )
    with pytest.raises(ValueError, match="context"):
        build_search(
            "caching", rounds=1, candidates_per_round=3, trace=other, checkpoint_path=path
        ).search.run()


def test_checkpoint_parameter_mismatch_rejected(small_synthetic_trace, tmp_path):
    """Same trace but a different cache size: memoized scores are not
    comparable, so resume must refuse."""
    path = tmp_path / "search.ckpt.json"
    build_search(
        "caching",
        rounds=1,
        candidates_per_round=3,
        trace=small_synthetic_trace,
        cache_fraction=0.10,
        checkpoint_path=path,
    ).search.run()
    with pytest.raises(ValueError, match="parameters"):
        build_search(
            "caching",
            rounds=2,
            candidates_per_round=3,
            trace=small_synthetic_trace,
            cache_fraction=0.05,
            checkpoint_path=path,
        ).search.run()


def test_checkpoint_json_is_rfc_compliant(tmp_path):
    """float('-inf') scores must not serialize as bare -Infinity."""
    import json

    from repro.core.results import RoundSummary

    checkpoint = SearchCheckpoint(
        template_name="toy",
        rounds=[RoundSummary(round_index=1)],  # best_score defaults to -inf
        memo={"k": EvaluationResult.failure("boom")},  # score -inf
    )
    path = tmp_path / "ckpt.json"
    checkpoint.save(path)
    assert "Infinity" not in path.read_text()
    json.loads(path.read_text())  # strict-parseable
    loaded = SearchCheckpoint.load(path)
    assert loaded.rounds[0].best_score == float("-inf")
    assert loaded.memo["k"].score == float("-inf")


def test_checkpoint_template_mismatch_rejected(small_synthetic_trace, tmp_path):
    path = tmp_path / "search.ckpt.json"
    build_search(
        "caching",
        rounds=1,
        candidates_per_round=3,
        trace=small_synthetic_trace,
        checkpoint_path=path,
    ).search.run()
    with pytest.raises(ValueError, match="template"):
        build_search("cc", rounds=1, candidates_per_round=3, checkpoint_path=path).search.run()
