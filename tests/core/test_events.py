"""Event stream: bus semantics, emission ordering, subscribers."""

import io
import json

import pytest

from repro.core.events import (
    CandidateEvaluated,
    CheckpointWritten,
    EventBus,
    JsonlEventLog,
    ProgressPrinter,
    RoundCompleted,
    RunFinished,
    RunStarted,
    read_event_log,
)
from repro.core.spec import RunSpec, build_from_spec, run

TRACE_REF = {"dataset": "cloudphysics", "index": 89, "num_requests": 800}


def tiny_spec(**kwargs) -> RunSpec:
    base = dict(
        domain="caching",
        name="events-tiny",
        domain_kwargs={"trace": dict(TRACE_REF)},
        search={"rounds": 2, "candidates_per_round": 3},
    )
    base.update(kwargs)
    return RunSpec(**base)


def run_with_recorder(spec):
    events = []
    outcome = run(spec, subscribers=[events.append])
    return outcome, events


# -- bus ----------------------------------------------------------------------------


def test_bus_order_and_subscription():
    bus = EventBus()
    assert not bus
    seen_a, seen_b = [], []
    bus.subscribe(seen_a.append)
    bus.subscribe(seen_b.append)
    assert len(bus) == 2 and bus
    event = RunStarted(template_name="t")
    bus.emit(event)
    assert seen_a == [event] and seen_b == [event]
    bus.unsubscribe(seen_b.append)
    bus.emit(event)
    assert len(seen_a) == 2 and len(seen_b) == 1


def test_events_json_serializable():
    for event in (
        RunStarted(template_name="t", rounds=2),
        CandidateEvaluated(candidate_id="c", score=float("-inf")),
        RoundCompleted(round_index=1, best_score=float("nan")),
        CheckpointWritten(path="/x", completed_rounds=1),
        RunFinished(best_score=float("inf")),
    ):
        data = event.to_dict()
        json.dumps(data)  # must not raise
        assert data["event"] == event.kind


# -- emission from the search/engine ------------------------------------------------


def test_search_event_lifecycle_ordering():
    outcome, events = run_with_recorder(tiny_spec())
    kinds = [e.kind for e in events]
    assert kinds[0] == "run_started"
    assert kinds[-1] == "run_finished"
    assert kinds.count("round_completed") == 2
    started = events[0]
    assert started.resumed_rounds == 0
    assert started.rounds == 2 and started.candidates_per_round == 3
    # CandidateEvaluated events cover seeds + generated candidates...
    evaluated = [e for e in events if e.kind == "candidate_evaluated"]
    assert len(evaluated) == outcome.result.eval_cache_lookups
    # ...and the cached flags agree with the engine's hit counters.
    assert sum(e.cached for e in evaluated) == outcome.result.eval_cache_hits
    # Round numbering is monotonically increasing.
    rounds = [e.round_index for e in events if e.kind == "round_completed"]
    assert rounds == [1, 2]
    finished = events[-1]
    assert finished.total_candidates == outcome.result.total_candidates
    assert finished.best_candidate_id == outcome.result.best.candidate.candidate_id


def test_candidate_events_precede_their_round():
    _outcome, events = run_with_recorder(tiny_spec())
    current_round = 0
    for event in events:
        if event.kind == "candidate_evaluated":
            assert event.round_index == current_round or event.round_index == current_round + 1
        elif event.kind == "round_completed":
            current_round = event.round_index


def test_checkpoint_events(tmp_path):
    spec = tiny_spec(checkpoint=True)
    events = []
    outcome = run(spec, store=tmp_path, subscribers=[events.append])
    checkpoints = [e for e in events if e.kind == "checkpoint_written"]
    assert [c.completed_rounds for c in checkpoints] == [1, 2]
    assert all(c.path.endswith("checkpoint.json") for c in checkpoints)
    assert outcome.artifact_dir is not None


def test_resumed_run_reports_resumed_rounds(tmp_path):
    spec = tiny_spec(checkpoint=True)
    run(spec, store=tmp_path)
    events = []
    run(spec, store=tmp_path, subscribers=[events.append])
    assert events[0].kind == "run_started"
    assert events[0].resumed_rounds == 2  # fully complete: nothing re-executes
    assert not any(e.kind == "round_completed" for e in events)


def test_empty_bus_supplied_up_front_still_delivers_later_subscribers():
    """A caller-built (initially empty) EventBus must not be discarded for
    being falsy: subscribing after build_search still observes the run."""
    from repro.core.domain import build_search
    from repro.core.spec import build_trace

    bus = EventBus()
    setup = build_search(
        "caching",
        rounds=1,
        candidates_per_round=3,
        seed=0,
        trace=build_trace(TRACE_REF),
        events=bus,
    )
    seen = []
    bus.subscribe(seen.append)
    setup.search.run()
    assert [e.kind for e in seen][0] == "run_started"
    assert any(e.kind == "candidate_evaluated" for e in seen)


def test_prebuilt_engine_without_events_shares_one_bus():
    """With a prebuilt engine and no events arg, the search adopts the
    engine's bus: candidate and lifecycle events reach the same subscribers."""
    from repro.core.domain import build_search
    from repro.core.engine import EvaluationEngine
    from repro.core.search import EvolutionarySearch
    from repro.core.spec import build_trace

    setup = build_search(
        "caching",
        rounds=1,
        candidates_per_round=3,
        seed=0,
        trace=build_trace(TRACE_REF),
    )
    engine = EvaluationEngine(
        setup.checker, setup.evaluator, generator=setup.generator
    )
    search = EvolutionarySearch(
        setup.template,
        setup.generator,
        setup.checker,
        setup.evaluator,
        setup.search.config,
        context=setup.context,
        engine=engine,
    )
    assert search.events is engine.events
    seen = []
    search.events.subscribe(seen.append)
    search.run()
    kinds = {e.kind for e in seen}
    assert "candidate_evaluated" in kinds and "run_started" in kinds


def test_events_do_not_change_the_trajectory():
    silent = run(tiny_spec())
    observed, events = run_with_recorder(tiny_spec())
    assert silent.result.best_source() == observed.result.best_source()
    assert len(events) > 0


# -- subscribers --------------------------------------------------------------------


def test_progress_printer_lines():
    stream = io.StringIO()
    run(tiny_spec(), subscribers=[ProgressPrinter(stream)])
    lines = stream.getvalue().splitlines()
    assert lines[0].startswith("run started:")
    assert any(line.startswith("round 1/2:") for line in lines)
    assert lines[-1].startswith("run finished:")


def test_progress_printer_verbose_shows_candidates():
    stream = io.StringIO()
    run(tiny_spec(), subscribers=[ProgressPrinter(stream, verbose=True)])
    assert any(": score " in line for line in stream.getvalue().splitlines())


def test_jsonl_event_log_roundtrip(tmp_path):
    path = tmp_path / "events.jsonl"
    with JsonlEventLog(path) as log:
        bus = EventBus([log])
        spec = tiny_spec()
        setup = build_from_spec(spec, events=bus)
        setup.search.run()
    entries = read_event_log(path)
    assert entries[0]["event"] == "run_started"
    assert entries[-1]["event"] == "run_finished"
    assert all("event" in entry for entry in entries)


def test_failing_subscriber_is_dropped_not_fatal(capsys):
    """A broken observer must not cost the search its work."""

    def broken(_event):
        raise BrokenPipeError("consumer went away")

    seen = []
    outcome = run(tiny_spec(), subscribers=[broken, seen.append])
    assert outcome.result.best is not None
    # The healthy subscriber kept receiving everything.
    assert seen[0].kind == "run_started" and seen[-1].kind == "run_finished"
    assert "unsubscribed" in capsys.readouterr().err


def test_jsonl_event_log_closed_raises(tmp_path):
    log = JsonlEventLog(tmp_path / "e.jsonl")
    log.close()
    with pytest.raises(ValueError, match="closed"):
        log(RunStarted())
