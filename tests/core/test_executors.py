"""The pluggable executor layer: registry, backend parity, async support."""

import asyncio

import pytest

from repro.core.checker import StructuralChecker
from repro.core.engine import EngineConfig, EvaluationEngine
from repro.core.evaluator import EvaluationResult, Evaluator
from repro.core.executors import (
    AsyncExecutor,
    EvalUnit,
    Executor,
    SerialExecutor,
    available_executors,
    create_executor,
    register_executor,
)
from repro.core.results import Candidate
from repro.core.scenarios import MultiScenarioEvaluator
from repro.core.template import Template
from repro.dsl import Interpreter, parse
from repro.dsl.grammar import FeatureSpec


def make_template():
    spec = FeatureSpec(function_name="f", params=["x"], scalar_params=["x"])
    return Template(
        name="toy",
        spec=spec,
        description="return a constant",
        seed_programs=[parse("def f(x) { return 1 }")],
    )


class ConstEvaluator(Evaluator):
    def evaluate_program(self, program):
        value = Interpreter().run(program, {"x": 0})
        return EvaluationResult(score=float(value), valid=True)


class AsyncAwareEvaluator(ConstEvaluator):
    """Evaluator exposing the coroutine entry point the async backend uses."""

    def __init__(self):
        self.async_calls = 0

    async def evaluate_async(self, program):
        self.async_calls += 1
        await asyncio.sleep(0)
        return self.evaluate(program)


def candidates(sources):
    return [
        Candidate(candidate_id=f"c{i}", source=source, round_index=1)
        for i, source in enumerate(sources, start=1)
    ]


def make_engine(evaluator=None, **config_kwargs):
    template = make_template()
    return EvaluationEngine(
        StructuralChecker(template),
        evaluator or ConstEvaluator(),
        config=EngineConfig(**config_kwargs) if config_kwargs else None,
    )


# -- registry -----------------------------------------------------------------------


def test_builtin_backends_registered():
    assert {"serial", "thread", "process", "async"} <= set(available_executors())


def test_engine_config_accepts_any_registered_backend():
    for name in available_executors():
        assert EngineConfig(executor=name).executor == name
    with pytest.raises(ValueError, match="unknown executor"):
        EngineConfig(executor="gpu")


def test_create_executor_unknown_name():
    with pytest.raises(KeyError, match="unknown executor"):
        create_executor("gpu", EngineConfig(), ConstEvaluator())


def test_custom_backend_plugs_in():
    class ReversedSerial(SerialExecutor):
        """Evaluates in reverse submission order (results still ordered)."""

        name = "reversed-serial"

        def run_units(self, units, stats):
            results = {}
            for unit in reversed(list(enumerate(units))):
                index, u = unit
                results[index] = self._run_inline(u)
            return [results[i] for i in range(len(units))]

    register_executor(ReversedSerial)
    try:
        assert "reversed-serial" in available_executors()
        engine = make_engine(max_workers=2, executor="reversed-serial")
        batch = engine.process_batch(
            candidates(["def f(x) { return 3 }", "def f(x) { return 4 }"])
        )
        assert [s.score for s in batch.scored] == [3.0, 4.0]
        engine.close()
    finally:
        from repro.core import executors as executors_module

        executors_module._EXECUTORS.pop("reversed-serial", None)


def test_executor_must_declare_a_name():
    class Anonymous(Executor):
        def run_units(self, units, stats):  # pragma: no cover - never runs
            return []

    with pytest.raises(ValueError, match="name"):
        register_executor(Anonymous)


# -- backend parity -----------------------------------------------------------------

SOURCES = [f"def f(x) {{ return {n} }}" for n in range(6)]


@pytest.mark.parametrize("executor", ["thread", "process", "async"])
def test_backends_match_serial(executor):
    serial = make_engine().process_batch(candidates(SOURCES))
    parallel_engine = make_engine(max_workers=3, executor=executor)
    parallel = parallel_engine.process_batch(candidates(SOURCES))
    parallel_engine.close()
    assert [s.score for s in parallel.scored] == [s.score for s in serial.scored]
    assert parallel.stats.unique_evaluations == 6


@pytest.mark.parametrize("executor", ["thread", "async"])
def test_backends_match_serial_under_scenario_sharding(executor):
    scenarios = [("a", ConstEvaluator()), ("b", ConstEvaluator())]
    serial = make_engine(MultiScenarioEvaluator(scenarios)).process_batch(
        candidates(SOURCES)
    )
    engine = make_engine(
        MultiScenarioEvaluator(scenarios), max_workers=3, executor=executor
    )
    parallel = engine.process_batch(candidates(SOURCES))
    engine.close()
    assert [s.score for s in parallel.scored] == [s.score for s in serial.scored]
    assert [
        s.evaluation.scenario_scores for s in parallel.scored
    ] == [s.evaluation.scenario_scores for s in serial.scored]


def test_single_worker_runs_serially_whatever_the_backend():
    engine = make_engine(max_workers=1, executor="process")
    engine.process_batch(candidates(["def f(x) { return 1 }"]))
    assert engine._executor is not None
    assert engine._executor.name == "serial"
    engine.close()


# -- async specifics ----------------------------------------------------------------


def test_async_backend_uses_native_coroutine_when_available():
    evaluator = AsyncAwareEvaluator()
    engine = make_engine(evaluator, max_workers=2, executor="async")
    batch = engine.process_batch(candidates(SOURCES))
    engine.close()
    assert evaluator.async_calls == 6
    assert [s.score for s in batch.scored] == [float(n) for n in range(6)]


def test_async_backend_timeout_produces_transient_failure():
    class Stuck(ConstEvaluator):
        async def evaluate_async(self, program):
            await asyncio.sleep(30)

    engine = make_engine(Stuck(), max_workers=2, executor="async", eval_timeout_s=0.05)
    batch = engine.process_batch(candidates(["def f(x) { return 1 }"]))
    engine.close()
    evaluation = batch.scored[0].evaluation
    assert evaluation is not None and not evaluation.valid
    assert "timed out" in evaluation.error
    assert evaluation.transient
    assert batch.stats.eval_timeouts == 1


def test_async_backend_abandons_pool_after_timeout():
    """A hung synchronous unit occupies a pool thread forever; the backend
    must rescue the rest of the batch on fresh threads and start the next
    batch on a fresh pool instead of queueing behind the hung one."""
    import threading

    release = threading.Event()
    hangs = []

    class Hang(ConstEvaluator):
        def evaluate_program(self, program):
            # The first two calls saturate the 2-thread pool with hung work.
            if len(hangs) < 2:
                hangs.append(program)
                release.wait(timeout=30)
            return super().evaluate_program(program)

    engine = make_engine(
        Hang(), max_workers=2, executor="async", eval_timeout_s=0.2
    )
    batch = engine.process_batch(
        candidates([f"def f(x) {{ return {n} }}" for n in range(5)])
    )
    scores = [s.score for s in batch.scored]
    assert scores[2:] == [2.0, 3.0, 4.0]  # rescued on fresh threads
    assert batch.stats.eval_timeouts == 2  # only the hung units
    assert engine._executor._pool is None  # poisoned pool was discarded
    second = engine.process_batch(candidates(["def f(x) { return 9 }"]))
    assert second.scored[0].score == 9.0
    release.set()
    engine.close()


def test_async_native_units_overlap_beyond_max_workers():
    """evaluate_async coroutines bypass the pool: more than max_workers can
    be in flight at once."""
    import asyncio as aio

    class Overlapping(ConstEvaluator):
        def __init__(self):
            self.in_flight = 0
            self.peak = 0

        async def evaluate_async(self, program):
            self.in_flight += 1
            self.peak = max(self.peak, self.in_flight)
            await aio.sleep(0.02)
            self.in_flight -= 1
            return self.evaluate(program)

    evaluator = Overlapping()
    engine = make_engine(evaluator, max_workers=2, executor="async")
    batch = engine.process_batch(candidates(SOURCES))
    engine.close()
    assert evaluator.peak > 2
    assert [s.score for s in batch.scored] == [float(n) for n in range(6)]


def test_async_executor_direct_units():
    executor = AsyncExecutor(EngineConfig(max_workers=2), ConstEvaluator())
    units = [EvalUnit(program=parse(src)) for src in SOURCES]

    class Stats:
        eval_timeouts = 0

    results = executor.run_units(units, Stats())
    executor.close()
    assert [r.score for r in results] == [float(n) for n in range(6)]
