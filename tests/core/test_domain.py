"""Tests of the domain registry and the one-call ``build_search`` entry point."""

import pytest

from repro.cache.search import CachingDomain, build_caching_search
from repro.core.checker import StructuralChecker
from repro.core.domain import (
    SearchDomain,
    SearchSetup,
    available_domains,
    build_search,
    get_domain,
    register_domain,
)
from repro.core.engine import EngineConfig
from repro.core.search import SearchConfig


def test_builtin_domains_are_registered():
    names = available_domains()
    assert "caching" in names
    assert "cc" in names
    assert isinstance(get_domain("caching"), CachingDomain)


def test_unknown_domain_raises_with_known_names():
    with pytest.raises(KeyError, match="caching"):
        get_domain("quantum-scheduling")


def test_register_domain_requires_name():
    with pytest.raises(ValueError):
        register_domain(SearchDomain())


def test_build_search_assembles_all_layers(small_synthetic_trace):
    setup = build_search(
        "caching", trace=small_synthetic_trace, rounds=1, candidates_per_round=3
    )
    assert isinstance(setup, SearchSetup)
    assert setup.template.name == "cache-priority"
    assert isinstance(setup.checker, StructuralChecker)
    assert setup.context.name.startswith("caching/")
    assert setup.engine is setup.search.engine
    assert setup.domain.name == "caching"
    assert setup.search.config.rounds == 1


def test_caching_domain_requires_trace():
    with pytest.raises(ValueError, match="trace"):
        build_search("caching", rounds=1)


def test_misspelled_domain_kwargs_rejected(small_synthetic_trace):
    with pytest.raises(TypeError, match="duration"):
        build_search("cc", rounds=1, duration=3.0)  # typo for duration_s
    with pytest.raises(TypeError, match="cache_fracton"):
        build_search("caching", trace=small_synthetic_trace, cache_fracton=0.2)


def test_worker_pool_released_after_run(small_synthetic_trace):
    setup = build_search(
        "caching",
        trace=small_synthetic_trace,
        rounds=1,
        candidates_per_round=4,
        engine_config=EngineConfig(max_workers=2, executor="thread"),
    )
    setup.search.run()
    assert setup.engine._executor is None


def test_search_config_overrides_apply():
    setup = build_search("cc", rounds=2, candidates_per_round=5, repair_attempts=0)
    assert setup.search.config.rounds == 2
    assert setup.search.config.candidates_per_round == 5
    assert setup.search.config.repair_attempts == 0
    assert setup.search.engine.repair_attempts == 0


def test_explicit_search_config_is_used():
    config = SearchConfig(rounds=3, candidates_per_round=4, top_k_parents=1)
    setup = build_search("cc", search_config=config)
    assert setup.search.config is config


def test_build_search_matches_legacy_wrapper(small_synthetic_trace):
    """The wrapper and the generic entry point produce identical searches."""
    legacy = build_caching_search(
        small_synthetic_trace, rounds=2, candidates_per_round=5, seed=3
    ).search.run()
    generic = build_search(
        "caching", trace=small_synthetic_trace, rounds=2, candidates_per_round=5, seed=3
    ).search.run()
    assert legacy.best_source() == generic.best_source()
    assert legacy.prompt_tokens == generic.prompt_tokens
    assert [c.score for c in legacy.candidates] == [c.score for c in generic.candidates]


def test_parallel_engine_preserves_fixed_seed_results(small_synthetic_trace):
    serial = build_search(
        "caching", trace=small_synthetic_trace, rounds=2, candidates_per_round=6, seed=5
    ).search.run()
    parallel = build_search(
        "caching",
        trace=small_synthetic_trace,
        rounds=2,
        candidates_per_round=6,
        seed=5,
        engine_config=EngineConfig(max_workers=4, executor="thread"),
    ).search.run()
    assert serial.best_source() == parallel.best_source()
    assert [c.score for c in serial.candidates] == [c.score for c in parallel.candidates]


def test_cache_hit_counters_surface_in_results(small_synthetic_trace):
    result = build_search(
        "caching", trace=small_synthetic_trace, rounds=3, candidates_per_round=8, seed=1
    ).search.run()
    assert result.eval_cache_lookups > 0
    # The synthetic LLM re-emits duplicates; some hits are effectively certain
    # across 3 rounds, and the rate is consistent with the counters.
    assert result.eval_cache_hits >= 0
    assert result.eval_cache_hit_rate() == pytest.approx(
        result.eval_cache_hits / result.eval_cache_lookups
    )
    round_lookups = sum(r.eval_cache_lookups for r in result.rounds)
    assert result.eval_cache_lookups >= round_lookups


def test_lineage_records_match_score_sorted_parents(small_synthetic_trace):
    result = build_search(
        "caching", trace=small_synthetic_trace, rounds=3, candidates_per_round=6, seed=8
    ).search.run()
    by_id = {c.candidate.candidate_id: c for c in result.candidates}
    for scored in result.candidates:
        if scored.candidate.round_index <= 1 or not scored.candidate.parent_ids:
            continue
        round_index = scored.candidate.round_index
        # Parents must be the top-scoring valid candidates from earlier rounds.
        earlier_valid = [
            c
            for c in result.candidates
            if c.valid and c.candidate.round_index < round_index
        ]
        earlier_valid.sort(key=lambda c: c.score, reverse=True)
        expected = [c.candidate.candidate_id for c in earlier_valid[:2]]
        assert scored.candidate.parent_ids == expected
        for parent_id in scored.candidate.parent_ids:
            assert by_id[parent_id].valid
