"""Template and Checker tests."""

import pytest

from repro.cache.search import caching_template
from repro.core.checker import CompositeChecker, StructuralChecker
from repro.core.template import Template
from repro.dsl import parse
from repro.dsl.grammar import FeatureSpec

from tests.conftest import PRIORITY_SIGNATURE


def simple_spec():
    return FeatureSpec(
        function_name="f",
        params=["x", "obj"],
        scalar_params=["x"],
        object_attrs={"obj": ["size"]},
        object_methods={"obj": [("touch", "none")]},
    )


def make_template(**overrides):
    defaults = dict(
        name="t",
        spec=simple_spec(),
        description="test template",
        constraints=["stay small"],
        seed_programs=[parse("def f(x, obj) { return x }")],
    )
    defaults.update(overrides)
    return Template(**defaults)


# -- Template ---------------------------------------------------------------------


def test_template_signature_and_constraints():
    template = make_template()
    assert template.signature() == "def f(x, obj)"
    assert template.constraint_text() == "1. stay small"
    assert template.function_name == "f"
    assert template.params == ("x", "obj")
    assert len(template.seeds_as_source()) == 1


def test_template_rejects_mismatched_seed():
    with pytest.raises(ValueError):
        make_template(seed_programs=[parse("def f(y) { return y }")])


def test_template_requires_parameters():
    spec = simple_spec()
    spec.params = []
    with pytest.raises(ValueError):
        make_template(spec=spec, seed_programs=[])


def test_template_empty_constraints_text():
    template = make_template(constraints=[])
    assert "no additional constraints" in template.constraint_text()


# -- StructuralChecker ----------------------------------------------------------------


def test_checker_accepts_valid_program():
    checker = StructuralChecker(make_template())
    result = checker.check("def f(x, obj) { return x + obj.size }")
    assert result.ok
    assert result.program is not None
    assert result.issues == []


def test_checker_rejects_syntax_error():
    checker = StructuralChecker(make_template())
    result = checker.check("def f(x, obj) { return x + }")
    assert not result.ok
    assert result.issue_codes() == ["syntax-error"]
    assert "build failed" in result.feedback


def test_checker_rejects_wrong_name_and_signature():
    checker = StructuralChecker(make_template())
    assert "wrong-function" in checker.check("def g(x, obj) { return x }").issue_codes()
    assert "wrong-signature" in checker.check("def f(x) { return x }").issue_codes()


def test_checker_rejects_missing_return():
    checker = StructuralChecker(make_template())
    assert "missing-return" in checker.check("def f(x, obj) { y = x }").issue_codes()


def test_checker_rejects_undefined_names():
    checker = StructuralChecker(make_template())
    result = checker.check("def f(x, obj) { return x + bogus }")
    assert "unknown-name" in result.issue_codes()
    assert "bogus" in result.feedback


def test_checker_rejects_unknown_feature_attribute_and_method():
    checker = StructuralChecker(make_template())
    assert "unknown-feature" in checker.check(
        "def f(x, obj) { return obj.weight }"
    ).issue_codes()
    assert "unknown-feature" in checker.check(
        "def f(x, obj) { return obj.poke() }"
    ).issue_codes()


def test_checker_allows_builtins_but_not_unknown_functions():
    checker = StructuralChecker(make_template())
    assert checker.check("def f(x, obj) { return max(1, x) }").ok
    assert "unknown-function" in checker.check(
        "def f(x, obj) { return frobnicate(x) }"
    ).issue_codes()


def test_checker_node_budget():
    checker = StructuralChecker(make_template(), max_nodes=10)
    big = "def f(x, obj) { return x + x + x + x + x + x + x + x + x }"
    assert "too-complex" in checker.check(big).issue_codes()


def test_checker_loop_prohibition():
    checker = StructuralChecker(make_template(), allow_loops=False)
    result = checker.check("def f(x, obj) {\n while (x > 0) { x -= 1 }\n return x\n}")
    assert "loop-forbidden" in result.issue_codes()


def test_composite_checker_combines_issues():
    template = make_template()
    composite = CompositeChecker([StructuralChecker(template), StructuralChecker(template, max_nodes=5)])
    result = composite.check("def f(x, obj) { return x + x + x + x }")
    assert not result.ok
    assert "too-complex" in result.issue_codes()
    # A syntax error short-circuits.
    assert composite.check("def f(x, obj { return x }").issue_codes() == ["syntax-error"]


def test_composite_checker_requires_children():
    with pytest.raises(ValueError):
        CompositeChecker([])


def test_caching_template_checker_accepts_aggregate_methods():
    checker = StructuralChecker(caching_template())
    source = f"{PRIORITY_SIGNATURE} {{ return counts.mean() + sizes.percentile(0.9) }}"
    assert checker.check(source).ok
