"""RunSpec: JSON round-trip, config layering, run()/run_sweep() semantics."""

import json

import pytest

from repro.core.domain import build_search
from repro.core.spec import (
    RunSpec,
    build_trace,
    resolve_domain_kwargs,
    run,
    run_sweep,
)

TRACE_REF = {"dataset": "cloudphysics", "index": 89, "num_requests": 800}


def tiny_spec(**kwargs) -> RunSpec:
    base = dict(
        domain="caching",
        name="tiny",
        domain_kwargs={"trace": dict(TRACE_REF)},
        search={"rounds": 1, "candidates_per_round": 3},
    )
    base.update(kwargs)
    return RunSpec(**base)


# -- serialization ------------------------------------------------------------------


def test_roundtrip_simple():
    spec = tiny_spec()
    assert RunSpec.from_dict(spec.to_dict()) == spec
    assert RunSpec.from_json(spec.to_json()) == spec


def test_roundtrip_sweep_and_overrides():
    spec = tiny_spec(
        seeds=[3, 1, 4],
        engine={"max_workers": 2, "executor": "thread"},
        llm={"syntax_error_rate": 0.5},
        checkpoint=True,
        checkpoint_every=2,
    )
    restored = RunSpec.from_dict(json.loads(spec.to_json()))
    assert restored == spec
    assert restored.seed_list == [3, 1, 4]
    assert restored.is_sweep


def test_from_file(tmp_path):
    spec = tiny_spec()
    path = tmp_path / "spec.json"
    path.write_text(spec.to_json())
    assert RunSpec.from_file(path) == spec


def test_unknown_override_keys_rejected():
    with pytest.raises(ValueError, match="search override"):
        tiny_spec(search={"rounds": 1, "round": 2})
    with pytest.raises(ValueError, match="engine override"):
        tiny_spec(engine={"workers": 4})
    with pytest.raises(ValueError, match="llm override"):
        tiny_spec(llm={"hallucinate": True})


def test_unknown_top_level_field_rejected():
    data = tiny_spec().to_dict()
    data["rounds"] = 5
    with pytest.raises(ValueError, match="unknown RunSpec field"):
        RunSpec.from_dict(data)


def test_unsupported_version_rejected():
    data = tiny_spec().to_dict()
    data["version"] = 99
    with pytest.raises(ValueError, match="version"):
        RunSpec.from_dict(data)


def test_name_must_be_path_safe():
    with pytest.raises(ValueError, match="directory name"):
        tiny_spec(name="no/slashes")


def test_config_hash_stable_and_sensitive():
    assert tiny_spec().config_hash() == tiny_spec().config_hash()
    assert tiny_spec().config_hash() != tiny_spec(seed=1).config_hash()
    # Key order in override dicts must not matter.
    a = tiny_spec(engine={"max_workers": 2, "executor": "thread"})
    b = tiny_spec(engine={"executor": "thread", "max_workers": 2})
    assert a.config_hash() == b.config_hash()


# -- trace references ---------------------------------------------------------------


def test_trace_reference_resolution():
    resolved = resolve_domain_kwargs({"trace": dict(TRACE_REF), "cache_fraction": 0.1})
    assert len(resolved["trace"]) == 800
    assert resolved["cache_fraction"] == 0.1


def test_trace_reference_errors():
    with pytest.raises(ValueError, match="dataset"):
        build_trace({"index": 1})
    with pytest.raises(ValueError, match="unknown trace dataset"):
        build_trace({"dataset": "nope"})
    with pytest.raises(ValueError, match="unknown trace-reference key"):
        build_trace({"dataset": "msr", "indexx": 3})


def test_synthetic_trace_reference():
    trace = build_trace(
        {"dataset": "synthetic", "name": "t", "num_requests": 300, "num_objects": 40, "seed": 5}
    )
    assert len(trace) == 300


# -- run() --------------------------------------------------------------------------


def test_run_matches_build_search():
    """run(spec) is a pure layer over build_search: same trajectory, same winner."""
    spec = tiny_spec()
    outcome = run(spec)
    direct = build_search(
        "caching",
        rounds=1,
        candidates_per_round=3,
        seed=0,
        trace=build_trace(TRACE_REF),
    ).search.run()
    assert outcome.result.best_source() == direct.best_source()
    assert outcome.result.best.score == direct.best.score
    assert outcome.artifact_dir is None
    assert outcome.setup.engine is not None
    assert "trace" in outcome.resolved_domain_kwargs


def test_run_rejects_sweep_spec():
    with pytest.raises(ValueError, match="run_sweep"):
        run(tiny_spec(seeds=[0, 1]))
    # A declared single-seed list is still a sweep declaration: it must not
    # be silently ignored in favour of the unrelated `seed` field.
    with pytest.raises(ValueError, match="run_sweep"):
        run(tiny_spec(seed=0, seeds=[7]))


def test_duplicate_seeds_rejected():
    with pytest.raises(ValueError, match="duplicates"):
        tiny_spec(seeds=[0, 1, 0])


def test_build_from_spec_rejects_sweep_without_seed():
    from repro.core.spec import build_from_spec

    with pytest.raises(ValueError, match="seed sweep"):
        build_from_spec(tiny_spec(seeds=[5, 6]))
    # Pinning one seed of the sweep is fine.
    setup = build_from_spec(tiny_spec(seeds=[5, 6]), seed=5)
    assert setup.search is not None


def test_run_sweep_single_declared_seed(tmp_path):
    sweep = run_sweep(tiny_spec(seed=0, seeds=[7]), store=tmp_path)
    assert [o.seed for o in sweep.outcomes] == [7]
    assert (sweep.artifact_dir / "seed-7" / "result.json").exists()


def test_run_checkpoint_requires_store():
    with pytest.raises(ValueError, match="artifact"):
        run(tiny_spec(checkpoint=True))


def test_run_seed_override():
    outcome = run(tiny_spec(), seed=7)
    assert outcome.seed == 7
    assert outcome.spec.seed == 0  # the submitted spec is not mutated


# -- run_sweep() --------------------------------------------------------------------


def test_run_sweep_outcomes_match_individual_runs(tmp_path):
    spec = tiny_spec(seeds=[0, 2])
    sweep = run_sweep(spec, store=tmp_path, max_parallel=2)
    assert [o.seed for o in sweep.outcomes] == [0, 2]
    for outcome in sweep.outcomes:
        single = run(tiny_spec(seed=outcome.seed))
        assert outcome.result.best_source() == single.result.best_source()
    assert sweep.artifact_dir is not None
    assert (sweep.artifact_dir / "sweep.json").exists()
    index = json.loads((sweep.artifact_dir / "sweep.json").read_text())
    assert [r["seed"] for r in index["runs"]] == [0, 2]
    assert index["best_seed"] in (0, 2)
    best = sweep.best
    assert best is not None
    assert best.result.best.score == max(
        o.result.best.score for o in sweep.outcomes
    )


# -- removed run_search -------------------------------------------------------------


def test_run_search_removed_with_pointer_to_run():
    """The one-release deprecation policy completed: run_search is gone."""
    import repro.core
    import repro.core.domain

    with pytest.raises(AttributeError, match="run\\(RunSpec"):
        repro.core.domain.run_search
    with pytest.raises(AttributeError):
        repro.core.run_search


# -- eval_config_hash ---------------------------------------------------------------


def test_eval_config_hash_ignores_search_shape_and_seed():
    """Only the domain + domain_kwargs determine what a program scores."""
    base = tiny_spec()
    assert base.eval_config_hash() == tiny_spec(seed=7).eval_config_hash()
    assert base.eval_config_hash() == tiny_spec(
        search={"rounds": 5, "candidates_per_round": 9}, name="other"
    ).eval_config_hash()
    assert base.eval_config_hash() == tiny_spec(seeds=[1, 2]).eval_config_hash()
    changed = tiny_spec(
        domain_kwargs={"trace": dict(TRACE_REF), "cache_fraction": 0.05}
    )
    assert base.eval_config_hash() != changed.eval_config_hash()
    assert base.eval_config_hash() != tiny_spec(domain="cc", domain_kwargs={}).eval_config_hash()
