"""End-to-end integration tests: the full PolicySmith loop on both case
studies, plus the archive / context-shift workflow of §3.1."""

import pytest

from repro.cache.policies import BASELINES
from repro.cache.priority_cache import PriorityFunctionCache
from repro.cache.search import build_caching_search
from repro.cache.simulator import CacheSimulator, cache_size_for, simulate_many
from repro.cc.search import build_cc_search
from repro.core.archive import HeuristicArchive
from repro.core.context import ContextShiftDetector
from repro.dsl import parse
from repro.traces.synthetic import SyntheticWorkloadConfig, generate_trace


def test_caching_search_end_to_end_beats_seeds(small_synthetic_trace):
    """Template -> Generator -> Checker -> Evaluator -> archive, §4 style."""
    setup = build_caching_search(
        small_synthetic_trace, rounds=3, candidates_per_round=8, seed=2
    )
    result = setup.search.run()

    assert result.best is not None
    seed_best = max(
        c.score for c in result.candidates if c.candidate.origin == "seed"
    )
    assert result.best.score >= seed_best

    # The winner must be runnable as an actual cache policy.
    program = result.best_program()
    size = cache_size_for(small_synthetic_trace, 0.10)
    winner = CacheSimulator().run(
        PriorityFunctionCache(size, program, name="winner"), small_synthetic_trace
    )
    assert winner.miss_ratio == pytest.approx(-result.best.score, abs=1e-9)

    # Archive the winner under its context, reload, and re-parse.
    archive = HeuristicArchive()
    archive.add_candidate(setup.context, result.best, name="synthesized")
    entry = archive.best_for(setup.context.name)
    assert entry is not None
    assert parse(entry.source) == program


def test_caching_search_winner_competitive_with_baselines(small_synthetic_trace):
    """A modest search already lands in the upper half of the baseline field."""
    setup = build_caching_search(
        small_synthetic_trace, rounds=3, candidates_per_round=10, seed=4
    )
    result = setup.search.run()
    winner_miss = -result.best.score
    baseline_results = simulate_many(BASELINES, small_synthetic_trace, cache_fraction=0.10)
    baseline_misses = sorted(r.miss_ratio for r in baseline_results.values())
    median_baseline = baseline_misses[len(baseline_misses) // 2]
    assert winner_miss <= median_baseline + 1e-9


def test_cc_search_end_to_end_produces_safe_controller():
    """Kernel-constrained search: every valid candidate passed the verifier
    stand-in, and the winner performs sensibly on the emulated link."""
    setup = build_cc_search(rounds=2, candidates_per_round=8, seed=13, duration_s=2.0)
    result = setup.search.run()
    assert result.best is not None
    # Winner respects kernel constraints by construction.
    assert setup.checker.check(result.best_source()).ok
    details = result.best.evaluation.details
    assert details["utilization"] > 0.3
    assert details["mean_queueing_delay_ms"] < 45


def test_context_shift_triggers_resynthesis_workflow():
    """§3.1.2: drift detection -> re-synthesis -> a growing heuristic library."""
    stable = generate_trace(
        SyntheticWorkloadConfig(name="phase-a", num_requests=1200, num_objects=250,
                                seed=1, zipf_weight=0.8, scan_weight=0.05,
                                churn_weight=0.1, recent_weight=0.05)
    )
    shifted = generate_trace(
        SyntheticWorkloadConfig(name="phase-b", num_requests=1200, num_objects=900,
                                seed=2, zipf_weight=0.05, scan_weight=0.85,
                                churn_weight=0.05, recent_weight=0.05)
    )

    setup = build_caching_search(stable, rounds=1, candidates_per_round=5, seed=5)
    first = setup.search.run()
    archive = HeuristicArchive()
    archive.add_candidate(setup.context, first.best, name="phase-a-heuristic")

    # Deploy the phase-A heuristic, monitor its hit rate across both phases.
    size = cache_size_for(stable, 0.10)
    cache = PriorityFunctionCache(size, first.best_program(), name="deployed")
    detector = ContextShiftDetector(window=50, reference_window=300, threshold=0.3,
                                    patience=5, higher_is_better=True)
    shift_seen = False
    hits = misses = 0
    for trace in (stable, shifted):
        for request in trace:
            if cache.lookup(request):
                hits += 1
                detector.observe(1.0)
            else:
                misses += 1
                shift_seen = detector.observe(0.0) or shift_seen
                if request.size <= cache.capacity:
                    cache.admit(request)
    assert hits > 0 and misses > 0
    assert shift_seen, "the workload change must be detected"

    # Re-synthesis for the new phase extends the library.
    resynth = build_caching_search(shifted, rounds=1, candidates_per_round=5, seed=6)
    second = resynth.search.run()
    archive.add_candidate(resynth.context, second.best, name="phase-b-heuristic")
    assert len(archive) == 2
    assert len(archive.contexts()) == 2
