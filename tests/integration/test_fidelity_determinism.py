"""Acceptance: the fidelity ladder's determinism contract, in both domains.

Three properties, each asserted on fixed-seed runs with a 3-rung ladder:

* a **shadow**-mode ladder run produces byte-identical ``result.json`` to
  the ladder-disabled run -- rung evaluations are pure telemetry and can
  never perturb scores, the search trajectory, counters or serialization;
* a **screen**-mode ladder run is byte-identical across evaluation-store
  states (disabled / cold / warm): screening decisions depend only on the
  spec and seed, never on what the store happens to contain;
* at these configurations screen mode reaches **equal final quality**: the
  same best candidate at the same full-fidelity score as the ladder-disabled
  run, while evaluating strictly fewer candidates in full.
"""

import pytest

from repro.core.spec import RunSpec, run

LADDER = {"rungs": [0.1, 0.3, 1.0], "eta": 3.0, "min_keep": 3}

CACHING_SPEC = dict(
    domain="caching",
    name="fid-caching",
    domain_kwargs={
        "workloads": [
            {"name": "caching/zipf-hot", "num_requests": 500, "num_objects": 150},
            {"name": "caching/scan-storm", "num_requests": 500, "num_objects": 150},
        ],
        "reducer": "mean",
    },
    search={"rounds": 2, "candidates_per_round": 8},
)

CC_SPEC = dict(
    domain="cc",
    name="fid-cc",
    domain_kwargs={"duration_s": 0.8},
    search={"rounds": 2, "candidates_per_round": 6},
)

DOMAINS = pytest.mark.parametrize(
    "base", [CACHING_SPEC, CC_SPEC], ids=["caching", "cc"]
)


def result_bytes(outcome):
    return (outcome.artifact_dir / "result.json").read_bytes()


@DOMAINS
def test_shadow_ladder_is_byte_identical_to_ladder_off(base, tmp_path):
    off = run(RunSpec(**base), store=tmp_path / "off", eval_store=None)
    shadow = run(
        RunSpec(**base, fidelity={**LADDER, "mode": "shadow"}),
        store=tmp_path / "shadow",
        eval_store=None,
    )
    assert result_bytes(off) == result_bytes(shadow)
    # The ladder really ran: rung decisions were taken and recorded live.
    assert shadow.setup.engine.rung_evaluations > 0
    assert shadow.setup.engine.rung_eliminations > 0


@DOMAINS
def test_screen_ladder_is_byte_identical_across_store_states(base, tmp_path):
    spec = RunSpec(**base, fidelity=dict(LADDER))
    shared = tmp_path / "store"
    disabled = run(spec, store=tmp_path / "a", eval_store=None)
    cold = run(spec, store=tmp_path / "b", eval_store=shared)
    warm = run(spec, store=tmp_path / "c", eval_store=shared)
    assert result_bytes(disabled) == result_bytes(cold) == result_bytes(warm)
    # The warm run re-ran no rung evaluations: every rung score and every
    # promoted full evaluation was served from the store.
    assert warm.setup.engine.rung_evaluations == 0
    assert warm.setup.engine.store_hits == warm.setup.engine.store_lookups > 0


@DOMAINS
def test_screen_ladder_reaches_equal_final_quality(base, tmp_path):
    off = run(RunSpec(**base), store=tmp_path / "off", eval_store=None)
    screen = run(
        RunSpec(**base, fidelity=dict(LADDER)),
        store=tmp_path / "screen",
        eval_store=None,
    )
    assert off.result.best is not None and screen.result.best is not None
    assert (
        screen.result.best.candidate.candidate_id
        == off.result.best.candidate.candidate_id
    )
    assert screen.result.best.score == off.result.best.score
    assert screen.result.best.evaluation.full_fidelity
    # The ladder actually screened: some candidates stopped at a cheap rung,
    # and every such record is visibly sub-full in result.json.
    screened = [
        c
        for c in screen.result.candidates
        if c.evaluation is not None and not c.evaluation.full_fidelity
    ]
    assert screened
    assert all(c.evaluation.fidelity < 1.0 for c in screened)
    # Metadata records the ladder's live telemetry.
    import json

    metadata = json.loads(
        (screen.artifact_dir / "metadata.json").read_text(encoding="utf-8")
    )
    assert metadata["fidelity"]["schedule"]["rungs"] == [0.1, 0.3, 1.0]
    assert metadata["fidelity"]["rung_eliminations"] == len(screened) > 0
