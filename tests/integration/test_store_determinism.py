"""Acceptance: fixed-seed determinism in every store mode and executor.

The evaluation store and the executor backends are pure mechanism: for a
fixed seed, ``result.json`` must be byte-identical whether the store is
disabled, cold (populated by the run itself) or pre-populated (every
evaluation a disk hit), under the serial, thread and process backends, in
both shipped domains.
"""

import json

import pytest

from repro.core.spec import RunSpec, run

CACHING_SPEC = dict(
    domain="caching",
    name="det-caching",
    domain_kwargs={
        "workloads": [
            {"name": "caching/zipf-hot", "num_requests": 400, "num_objects": 120},
            {"name": "caching/scan-storm", "num_requests": 400, "num_objects": 120},
        ],
        "reducer": "mean",
    },
    search={"rounds": 1, "candidates_per_round": 3},
)

CC_SPEC = dict(
    domain="cc",
    name="det-cc",
    domain_kwargs={"duration_s": 0.6},
    search={"rounds": 1, "candidates_per_round": 3},
)

EXECUTORS = [
    {},  # serial (max_workers=1 default)
    {"max_workers": 2, "executor": "thread"},
    {"max_workers": 2, "executor": "process"},
]


@pytest.mark.parametrize("base", [CACHING_SPEC, CC_SPEC], ids=["caching", "cc"])
def test_result_json_identical_across_store_modes_and_executors(base, tmp_path):
    results = {}
    for index, engine in enumerate(EXECUTORS):
        spec = RunSpec(**base, engine=engine)
        shared_store = tmp_path / f"store-{index}"

        disabled = run(
            spec, store=tmp_path / f"off-{index}", eval_store=None
        ).artifact_dir
        cold = run(
            spec, store=tmp_path / f"cold-{index}", eval_store=shared_store
        ).artifact_dir
        warm_outcome = run(
            spec, store=tmp_path / f"warm-{index}", eval_store=shared_store
        )
        warm = warm_outcome.artifact_dir

        blobs = {
            mode: (path / "result.json").read_bytes()
            for mode, path in (("disabled", disabled), ("cold", cold), ("warm", warm))
        }
        assert blobs["disabled"] == blobs["cold"] == blobs["warm"]
        # The warm run really did come from disk.
        assert warm_outcome.setup.engine.store_hits > 0
        assert warm_outcome.setup.engine.store_hits == warm_outcome.setup.engine.store_lookups
        results[index] = blobs["disabled"]
    # ... and the executors agree with each other.
    assert results[0] == results[1] == results[2]


def test_sweep_seeds_share_the_store(tmp_path):
    """Seeds of one sweep warm-start from each other's evaluations."""
    from repro.core.spec import run_sweep

    spec = RunSpec(**CACHING_SPEC, seeds=[0, 1])
    sweep = run_sweep(spec, store=tmp_path, max_parallel=1)
    hits = sum(o.setup.engine.store_hits for o in sweep.outcomes)
    assert hits > 0  # the seeds share candidates (same seed programs at least)
    # Re-running the whole sweep over the populated store is all disk hits.
    again = run_sweep(spec, store=tmp_path, max_parallel=1)
    for first, second in zip(sweep.outcomes, again.outcomes):
        assert second.setup.engine.store_hits == second.setup.engine.store_lookups
        assert (
            (first.artifact_dir / "result.json").read_bytes()
            == (second.artifact_dir / "result.json").read_bytes()
        )
    # Resuming one seed directory by hand ("auto" store) must find the store
    # the sweep populated at the artifact root, not plant one in the sweep.
    seed_dir = sweep.outcomes[0].artifact_dir
    redone = run(spec.for_seed(0), run_dir=seed_dir)
    assert redone.setup.engine.store_hits == redone.setup.engine.store_lookups > 0
    assert not (seed_dir.parent / "evalstore").exists()


def test_resume_warm_starts_from_the_store(tmp_path):
    """A re-run/resume under the same artifact root reuses stored evaluations.

    The harshest resume case: the run crashed before its first checkpoint
    write, so the engine memo is gone -- but every evaluation the lost
    attempt performed is still in the store, and the retry pays only for
    generation and checking.
    """
    spec = RunSpec(**CACHING_SPEC, checkpoint=True)
    first = run(spec, store=tmp_path)
    assert first.setup.engine.store_writes > 0
    first_result = (first.artifact_dir / "result.json").read_bytes()
    (first.artifact_dir / "checkpoint.json").unlink()  # simulate the crash
    resumed = run(spec, run_dir=first.artifact_dir)
    assert resumed.setup.engine.store_hits == resumed.setup.engine.store_lookups
    assert resumed.setup.engine.store_hits > 0
    assert first_result == (resumed.artifact_dir / "result.json").read_bytes()


def test_metadata_records_live_store_statistics(tmp_path):
    spec = RunSpec(**CACHING_SPEC)
    cold = run(spec, store=tmp_path)
    warm = run(spec, store=tmp_path)
    cold_meta = json.loads((cold.artifact_dir / "metadata.json").read_text())
    warm_meta = json.loads((warm.artifact_dir / "metadata.json").read_text())
    # Same directory (identical spec): the warm rerun overwrote the metadata.
    assert cold.artifact_dir == warm.artifact_dir
    record = warm_meta["eval_store"]
    assert record["hits"] == record["lookups"] > 0
    assert record["eval_config_hash"] == spec.eval_config_hash()
    assert cold_meta["artifact_version"] == warm_meta["artifact_version"]
    # result.json itself carries only zeroed (spec-determined) counters.
    result = json.loads((warm.artifact_dir / "result.json").read_text())
    assert result["store_hits"] == 0 and result["store_lookups"] == 0
    for round_data in result["rounds"]:
        assert round_data["store_hits"] == 0
