"""Acceptance: distributed runs are byte-identical to serial ones.

The distributed executor is pure mechanism, like every other backend: for a
fixed seed, ``result.json`` must be byte-identical across serial,
distributed with one worker, and distributed with four workers -- in both
shipped domains, with the evaluation store cold and warm.  The fabric's
volatile telemetry (worker pids, queue paths, who won which task) may only
ever appear in ``metadata.json``.
"""

import json

import pytest

from repro.core.spec import RunSpec, run

CACHING_SPEC = dict(
    domain="caching",
    name="dist-caching",
    domain_kwargs={
        "workloads": [
            {"name": "caching/zipf-hot", "num_requests": 400, "num_objects": 120},
            {"name": "caching/scan-storm", "num_requests": 400, "num_objects": 120},
        ],
        "reducer": "mean",
    },
    search={"rounds": 1, "candidates_per_round": 3},
)

CC_SPEC = dict(
    domain="cc",
    name="dist-cc",
    domain_kwargs={"duration_s": 0.6},
    search={"rounds": 1, "candidates_per_round": 3},
)

ENGINES = [
    {},  # serial reference
    {"executor": "distributed", "max_workers": 1, "lease_ttl_s": 10.0},
    {"executor": "distributed", "max_workers": 4, "lease_ttl_s": 10.0},
]
ENGINE_IDS = ["serial", "dist-1", "dist-4"]


@pytest.mark.parametrize("base", [CACHING_SPEC, CC_SPEC], ids=["caching", "cc"])
def test_result_json_identical_serial_vs_distributed(base, tmp_path):
    blobs = {}
    metadata = {}
    for engine_id, engine in zip(ENGINE_IDS, ENGINES):
        spec = RunSpec(**base, engine=engine)
        shared_store = tmp_path / f"store-{engine_id}"
        cold = run(spec, store=tmp_path / f"cold-{engine_id}", eval_store=shared_store)
        warm = run(spec, store=tmp_path / f"warm-{engine_id}", eval_store=shared_store)
        cold_blob = (cold.artifact_dir / "result.json").read_bytes()
        warm_blob = (warm.artifact_dir / "result.json").read_bytes()
        assert cold_blob == warm_blob, f"{engine_id}: warm != cold"
        blobs[engine_id] = cold_blob
        metadata[engine_id] = json.loads(
            (cold.artifact_dir / "metadata.json").read_text(encoding="utf-8")
        )
    assert blobs["serial"] == blobs["dist-1"] == blobs["dist-4"]

    # The fabric record is metadata-only telemetry: present for distributed
    # runs (with every dispatched task accounted for), absent for serial.
    assert "distributed" not in metadata["serial"]
    for engine_id in ("dist-1", "dist-4"):
        record = metadata[engine_id]["distributed"]
        assert record["tasks_dispatched"] > 0
        assert record["workers_joined"] >= 1
        completed = sum(w["completed"] for w in record["workers"].values())
        assert completed + record["tasks_rescued"] >= record["tasks_dispatched"] - record[
            "tasks_reclaimed"
        ]
    # ... and result.json never mentions it.
    assert b"tasks_dispatched" not in blobs["dist-4"]
