"""Acceptance: pipelining and the prompt cache never change ``result.json``.

Generation/evaluation overlap and the on-disk prompt cache are pure
wall-clock mechanisms.  For a fixed seed the search trajectory -- and
therefore ``result.json`` -- must be byte-for-byte identical with
pipelining on or off, and with the prompt cache cold, warm or disabled, in
both shipped domains.  Live scheduling telemetry lands in
``metadata.json["pipeline"]`` (which, like wall time, is allowed to
differ).
"""

import json

import pytest

from repro.core.spec import RunSpec, run

CACHING_SPEC = dict(
    domain="caching",
    name="pipeline-caching",
    domain_kwargs={
        "workloads": [
            {"name": "caching/zipf-hot", "num_requests": 400, "num_objects": 120},
            {"name": "caching/scan-storm", "num_requests": 400, "num_objects": 120},
        ],
        "reducer": "mean",
    },
    search={"rounds": 2, "candidates_per_round": 4},
)

CC_SPEC = dict(
    domain="cc",
    name="pipeline-cc",
    domain_kwargs={"duration_s": 0.3},
    search={"rounds": 2, "candidates_per_round": 4},
)


def result_bytes(base, tmp_path, tag, *, pipeline=False, provider=None):
    spec_dict = dict(base)
    if pipeline:
        spec_dict["search"] = {**spec_dict["search"], "pipeline": True}
    if provider is not None:
        spec_dict["llm"] = {"provider": provider}
    outcome = run(RunSpec(**spec_dict), store=tmp_path / tag, eval_store=None)
    metadata = json.loads((outcome.artifact_dir / "metadata.json").read_text())
    return (outcome.artifact_dir / "result.json").read_bytes(), metadata


@pytest.mark.parametrize("base", [CACHING_SPEC, CC_SPEC], ids=["caching", "cc"])
def test_result_json_identical_across_scheduling(base, tmp_path):
    cache_dir = str(tmp_path / "promptcache")
    provider = {"name": "synthetic", "batch_size": 2, "prompt_cache": cache_dir}

    serial, serial_meta = result_bytes(base, tmp_path, "serial")
    piped, piped_meta = result_bytes(base, tmp_path, "piped", pipeline=True)
    cold, cold_meta = result_bytes(
        base, tmp_path, "cold", pipeline=True, provider=provider
    )
    warm, warm_meta = result_bytes(
        base, tmp_path, "warm", pipeline=True, provider=provider
    )
    serial_warm, _ = result_bytes(base, tmp_path, "serial-warm", provider=provider)

    assert piped == serial
    assert cold == serial
    assert warm == serial
    assert serial_warm == serial

    # The volatile scheduling telemetry lives in metadata.json only.
    assert serial_meta["pipeline"]["enabled"] is False
    assert piped_meta["pipeline"]["enabled"] is True
    assert piped_meta["pipeline"]["generation_s"] > 0
    assert piped_meta["pipeline"]["evaluation_s"] > 0
    assert "prompt_cache" not in piped_meta["pipeline"]

    cold_cache = cold_meta["pipeline"]["prompt_cache"]
    warm_cache = warm_meta["pipeline"]["prompt_cache"]
    assert cold_cache["hits"] == 0 and cold_cache["misses"] > 0
    # Same seed, same calls: the warm run replays entirely from disk.
    assert warm_cache["misses"] == 0
    assert warm_cache["hits"] == cold_cache["misses"]


def test_round_timings_are_zeroed_in_result_json(tmp_path):
    spec_dict = dict(CACHING_SPEC)
    spec_dict["search"] = {**spec_dict["search"], "pipeline": True}
    outcome = run(RunSpec(**spec_dict), store=tmp_path, eval_store=None)
    result = json.loads((outcome.artifact_dir / "result.json").read_text())
    for round_record in result["rounds"]:
        assert round_record["generation_s"] == 0.0
        assert round_record["evaluation_s"] == 0.0
        assert round_record["overlap_s"] == 0.0
    # The live sums made it to metadata instead.
    metadata = json.loads((outcome.artifact_dir / "metadata.json").read_text())
    assert metadata["pipeline"]["generation_s"] > 0
