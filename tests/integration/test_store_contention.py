"""Acceptance: concurrent runs can share one evaluation store safely.

Several searches pointed at the same store tree at the same time must not
corrupt each other: every run's ``result.json`` stays byte-identical to what
an isolated run of the same seed produces, and the store ends up with every
run registered in its writers ledger.
"""

import threading

from repro.core.spec import RunSpec, run
from repro.core.store import EvaluationStore

BASE_SPEC = dict(
    domain="caching",
    name="contend",
    domain_kwargs={
        "workloads": [
            {"name": "caching/zipf-hot", "num_requests": 400, "num_objects": 120},
        ],
        "reducer": "mean",
    },
    search={"rounds": 1, "candidates_per_round": 3},
)

SEEDS = [0, 1, 2, 3]


def test_concurrent_runs_share_one_store_tree(tmp_path):
    shared = tmp_path / "shared-store"

    # Reference: each seed in isolation, each with a private store.
    isolated = {}
    for seed in SEEDS:
        spec = RunSpec(**BASE_SPEC, seeds=[seed])
        outcome = run(
            spec.for_seed(seed),
            store=tmp_path / f"iso-{seed}",
            eval_store=tmp_path / f"iso-store-{seed}",
        )
        isolated[seed] = (outcome.artifact_dir / "result.json").read_bytes()

    # Contended: all four seeds at once, one store tree.
    contended = {}
    errors = []

    def one(seed):
        try:
            spec = RunSpec(**BASE_SPEC, seeds=[seed])
            outcome = run(
                spec.for_seed(seed),
                store=tmp_path / f"con-{seed}",
                eval_store=shared,
            )
            contended[seed] = (outcome.artifact_dir / "result.json").read_bytes()
        except Exception as exc:  # pragma: no cover - failure path
            errors.append((seed, exc))

    threads = [threading.Thread(target=one, args=(seed,)) for seed in SEEDS]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors, errors
    for seed in SEEDS:
        assert contended[seed] == isolated[seed], f"seed {seed} diverged under contention"

    # Every run left a writer record behind, and the store is intact.
    store = EvaluationStore(shared)
    stats = store.stats()
    assert stats.writers == len(SEEDS)
    labels = {record["writer_id"] for record in stats.writer_records}
    assert len(labels) == len(SEEDS)
    assert stats.entries > 0

    # A fresh run over the contended store is pure disk hits.
    warm = run(
        RunSpec(**BASE_SPEC, seeds=[0]).for_seed(0),
        store=tmp_path / "warm",
        eval_store=shared,
    )
    assert warm.setup.engine.store_hits == warm.setup.engine.store_lookups > 0
    assert (warm.artifact_dir / "result.json").read_bytes() == isolated[0]
