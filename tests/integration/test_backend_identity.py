"""Acceptance: fixed-seed ``result.json`` is byte-identical across DSL backends.

The execution backend (interpreter / compiled / vectorized) is pure
mechanism: it may only change how fast candidates are scored, never what
they score.  For a fixed seed the entire search trajectory -- and therefore
``result.json`` -- must be byte-for-byte identical under every backend, in
both shipped domains.  The requested backend and any fallbacks are recorded
in ``metadata.json`` (which, like wall time, is allowed to differ).
"""

import json

import pytest

from repro.cache.search import CachingEvaluator
from repro.core.spec import RunSpec, run
from repro.dsl.parser import parse
from repro.workloads import build_trace

BACKENDS = ("interpreter", "compiled", "vectorized")

CACHING_SPEC = dict(
    domain="caching",
    name="backend-caching",
    domain_kwargs={
        "workloads": [
            {"name": "caching/zipf-hot", "num_requests": 400, "num_objects": 120},
            {"name": "caching/scan-storm", "num_requests": 400, "num_objects": 120},
        ],
        "reducer": "mean",
    },
    search={"rounds": 1, "candidates_per_round": 3},
)

CC_SPEC = dict(
    domain="cc",
    name="backend-cc",
    domain_kwargs={"duration_s": 0.4},
    search={"rounds": 1, "candidates_per_round": 3},
)


@pytest.mark.parametrize("base", [CACHING_SPEC, CC_SPEC], ids=["caching", "cc"])
def test_result_json_identical_across_backends(base, tmp_path):
    results = {}
    for backend in BACKENDS:
        spec = RunSpec(**base, engine={"dsl_backend": backend})
        outcome = run(spec, store=tmp_path / backend, eval_store=None)
        results[backend] = (outcome.artifact_dir / "result.json").read_bytes()
        metadata = json.loads((outcome.artifact_dir / "metadata.json").read_text())
        record = metadata["dsl_backend"]
        assert record["requested"] == backend
        assert sum(record["resolved"].values()) > 0
        assert record["fallbacks"] == 0  # grammar candidates all vectorize
    assert results["compiled"] == results["interpreter"]
    assert results["vectorized"] == results["interpreter"]


def test_engine_config_rejects_unknown_backend():
    with pytest.raises(ValueError, match="dsl_backend"):
        RunSpec(**CC_SPEC, engine={"dsl_backend": "numba"}).engine_config()


def test_explicit_domain_backend_wins_over_engine_default(tmp_path):
    spec = RunSpec(
        domain="cc",
        name="backend-explicit",
        domain_kwargs={"duration_s": 0.2, "backend": "compiled"},
        search={"rounds": 1, "candidates_per_round": 2},
        engine={"dsl_backend": "vectorized"},
    )
    outcome = run(spec, store=tmp_path, eval_store=None)
    metadata = json.loads((outcome.artifact_dir / "metadata.json").read_text())
    assert metadata["dsl_backend"]["requested"] == "compiled"


def test_caching_evaluator_counts_fallbacks():
    trace = build_trace("caching/zipf-hot", num_requests=200, num_objects=60)
    evaluator = CachingEvaluator(trace, backend="vectorized")
    sig = "def f(now, obj_id, obj_info, counts, ages, sizes, history)"
    evaluator.evaluate(parse(f"{sig} {{ return obj_info.count }}"))
    # An expression method-argument is unvectorizable: resolves one rung down.
    evaluator.evaluate(parse(f"{sig} {{ return counts.percentile(now % 1) }}"))
    assert evaluator.backend_stats == {
        "requested": "vectorized",
        "resolved": {"vectorized": 1, "compiled": 1},
    }
