"""Netsim scenario workloads: lossy links, cross traffic, fairness, p99."""

import pytest

from repro.cc.evaluator import CCObjective, CongestionControlEvaluator
from repro.cc.policies.reno import RenoController
from repro.netsim.link import LinkConfig
from repro.netsim.simulator import NetworkSimulator, SimulationConfig
from repro.workloads import build_scenario
from repro.workloads.netsim import (
    BurstWindowController,
    CrossTrafficSpec,
    NetSimScenario,
)


def _run(scenario: NetSimScenario, controller_factory=RenoController):
    simulator, candidate_ids = scenario.build(lambda: controller_factory())
    return simulator.run(), candidate_ids


def test_single_flow_scenario_matches_paper_defaults():
    scenario = build_scenario("cc/single-flow")
    config = scenario.simulation_config()
    assert config.link.rate_bps == 12_000_000
    assert config.link.one_way_delay_us == 10_000
    assert config.link.queue_bytes == 60_000
    assert scenario.base_rtt_ms == pytest.approx(20.0)
    metrics, candidate_ids = _run(
        NetSimScenario(name="short", duration_s=2.0)
    )
    assert candidate_ids == [0]
    assert metrics.utilization > 0.5
    assert metrics.jain_fairness(candidate_ids) == 1.0


def test_lossy_link_drops_deterministically():
    scenario = build_scenario("cc/lossy-link", duration_s=2.0)
    assert scenario.loss_rate == 0.01
    first, _ = _run(scenario)
    second, _ = _run(scenario)
    assert first.loss_rate > 0
    assert first.loss_rate == second.loss_rate
    assert first.utilization == second.utilization
    # A different loss seed yields a different (but still deterministic) run.
    reseeded, _ = _run(build_scenario("cc/lossy-link", duration_s=2.0, loss_seed=99))
    assert reseeded.loss_rate != first.loss_rate or reseeded.utilization != first.utilization


def test_random_loss_happens_even_with_empty_queue():
    """loss_rate drops are non-congestive: they occur below queue capacity."""
    config = LinkConfig(loss_rate=0.05, loss_seed=3)
    scenario = NetSimScenario(
        name="lossy", loss_rate=0.05, loss_seed=3, duration_s=2.0
    )
    metrics, _ = _run(scenario)
    assert metrics.loss_rate > 0.0
    assert config.loss_rate == 0.05


def test_invalid_loss_rate_rejected():
    with pytest.raises(ValueError, match="loss_rate"):
        NetworkSimulator(SimulationConfig(link=LinkConfig(loss_rate=1.5)))


def test_multi_flow_scenario_measures_candidate_fairness():
    scenario = build_scenario("cc/multi-flow", duration_s=2.0)
    metrics, candidate_ids = _run(scenario)
    assert len(candidate_ids) == 3
    assert len(metrics.flows) == 3
    fairness = metrics.jain_fairness(candidate_ids)
    assert 0.0 < fairness <= 1.0
    # Identical Reno flows should share reasonably fairly.
    assert fairness > 0.5


def test_bursty_cross_traffic_runs_and_excludes_cross_flow_from_fairness():
    scenario = build_scenario("cc/bursty-cross", duration_s=2.0)
    metrics, candidate_ids = _run(scenario)
    assert candidate_ids == [0]
    assert len(metrics.flows) == 2  # candidate + cross-traffic flow
    cross = [f for f in metrics.flows if f.flow_id not in candidate_ids]
    assert cross[0].packets_sent > 0  # the burst source actually transmitted


def test_burst_window_controller_alternates():
    controller = BurstWindowController(high=40, low=2, period_us=1000, duty=0.5)
    assert controller._window(0) == 40
    assert controller._window(499) == 40
    assert controller._window(500) == 2
    assert controller._window(999) == 2
    assert controller._window(1000) == 40
    steady = CrossTrafficSpec(duty=1.0).controller()
    assert steady._window(0) == steady._window(123456) == 40


def test_p99_queueing_delay_reported_and_ordered():
    metrics, _ = _run(NetSimScenario(name="short", duration_s=2.0))
    assert metrics.p99_queueing_delay_ms >= metrics.p95_queueing_delay_ms >= 0


def test_objective_penalises_tail_delay_and_unfairness():
    metrics, ids = _run(NetSimScenario(name="short", duration_s=2.0))
    base = CCObjective().score(metrics, 20.0)
    with_p99 = CCObjective(p99_penalty=0.5).score(metrics, 20.0)
    assert with_p99 <= base
    fair = CCObjective(fairness_weight=1.0).score(metrics, 20.0, fairness=1.0)
    unfair = CCObjective(fairness_weight=1.0).score(metrics, 20.0, fairness=0.5)
    assert unfair == pytest.approx(fair - 0.5)


def test_evaluator_scenario_and_legacy_config_paths_agree():
    """The legacy config= keyword wraps into an equivalent scenario."""
    from repro.cc.evaluator import default_cc_simulation_config
    from repro.cc.template import cc_template

    program = cc_template().seed_programs[0]
    legacy = CongestionControlEvaluator(config=default_cc_simulation_config(2.0))
    scenario = CongestionControlEvaluator(
        scenario=build_scenario("cc/single-flow", duration_s=2.0)
    )
    a = legacy.evaluate(program)
    b = scenario.evaluate(program)
    assert a.score == b.score
    assert a.details["jain_fairness"] == 1.0


def test_legacy_config_wrap_preserves_mss():
    custom = SimulationConfig(duration_s=1.0, mss=500)
    evaluator = CongestionControlEvaluator(config=custom)
    assert evaluator.scenario.mss == 500
    assert evaluator.config.mss == 500


def test_scenario_evaluator_reports_new_detail_metrics():
    evaluator = CongestionControlEvaluator(
        scenario=build_scenario("cc/multi-flow", duration_s=2.0)
    )
    from repro.cc.template import cc_template

    result = evaluator.evaluate(cc_template().seed_programs[0])
    assert result.valid
    assert "jain_fairness" in result.details
    assert "p99_queueing_delay_ms" in result.details


def test_scenario_validation():
    with pytest.raises(ValueError, match="candidate flow"):
        NetSimScenario(name="bad", flow_count=0)
    with pytest.raises(ValueError, match="duration"):
        NetSimScenario(name="bad", duration_s=0)
    with pytest.raises(ValueError, match="either a scenario or a raw config"):
        CongestionControlEvaluator(
            config=SimulationConfig(), scenario=build_scenario("cc/single-flow")
        )
