"""Workload registry: specs, overrides, builders, RNG hygiene."""

import json
import random

import numpy as np
import pytest

from repro.cache.request import Trace
from repro.workloads import (
    WorkloadSpec,
    available_workloads,
    build_trace,
    build_workload,
    get_workload,
    resolve_workload_ref,
)
from repro.workloads.cache import (
    generate_adversarial_trace,
    generate_shifting_trace,
)
from repro.workloads.netsim import NetSimScenario


def test_builtin_workloads_registered_for_both_domains():
    names = available_workloads()
    assert "caching/cloudphysics" in names
    assert "caching/adversarial-loop" in names
    assert "cc/single-flow" in names
    assert "cc/lossy-link" in names
    assert available_workloads(domain="cc") == [n for n in names if n.startswith("cc/")]


def test_get_workload_with_overrides_and_unknown_param():
    spec = get_workload("caching/zipf-hot", num_requests=1000, seed=99)
    assert spec.param("num_requests") == 1000
    assert spec.param("seed") == 99
    # The registered entry is untouched.
    assert get_workload("caching/zipf-hot").param("num_requests") == 6000
    with pytest.raises(ValueError, match="no parameter"):
        get_workload("caching/zipf-hot", num_request=1000)
    with pytest.raises(KeyError, match="unknown workload"):
        get_workload("caching/does-not-exist")


def test_workload_spec_json_round_trip():
    spec = get_workload("cc/bursty-cross")
    clone = WorkloadSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert clone == spec
    labelled = spec.with_overrides(label="bursty@2s", duration_s=2.0)
    assert labelled.display_name == "bursty@2s"
    assert labelled.param("duration_s") == 2.0
    round_tripped = WorkloadSpec.from_dict(labelled.to_dict())
    assert round_tripped == labelled


def test_resolve_workload_ref_forms():
    by_name = resolve_workload_ref("caching/scan-storm")
    by_dict = resolve_workload_ref({"name": "caching/scan-storm", "seed": 5})
    assert by_dict.param("seed") == 5
    assert by_dict.name == by_name.name
    inline = resolve_workload_ref(
        {
            "name": "tiny",
            "domain": "caching",
            "kind": "synthetic",
            "params": {"num_requests": 50, "num_objects": 10, "seed": 1},
        }
    )
    trace = build_workload(inline)
    assert len(trace) == 50
    with pytest.raises(ValueError, match="'name' key"):
        resolve_workload_ref({"seed": 1})


def test_build_trace_rejects_wrong_domain():
    with pytest.raises(ValueError, match="not 'caching'"):
        build_trace("cc/single-flow")


def test_every_builtin_workload_builds():
    for name in available_workloads():
        if name == "caching/csv":
            continue  # needs an on-disk file; covered in test_streaming
        spec = get_workload(name)
        if spec.domain == "caching":
            built = build_workload(spec.with_overrides(num_requests=300))
            assert isinstance(built, Trace)
            assert len(built) == 300
        else:
            built = build_workload(name)
            assert isinstance(built, NetSimScenario)


# -- RNG hygiene --------------------------------------------------------------------


def test_generators_take_explicit_seed_and_are_deterministic():
    a = generate_shifting_trace(num_requests=400, num_objects=100, seed=7)
    b = generate_shifting_trace(num_requests=400, num_objects=100, seed=7)
    c = generate_shifting_trace(num_requests=400, num_objects=100, seed=8)
    assert [(r.key, r.size) for r in a] == [(r.key, r.size) for r in b]
    assert [r.key for r in a] != [r.key for r in c]

    x = generate_adversarial_trace(num_requests=400, num_objects=100, seed=7)
    y = generate_adversarial_trace(num_requests=400, num_objects=100, seed=7)
    z = generate_adversarial_trace(num_requests=400, num_objects=100, seed=8)
    assert [(r.key, r.size) for r in x] == [(r.key, r.size) for r in y]
    assert [r.key for r in x] != [r.key for r in z]


def test_generators_do_not_touch_module_global_rng_state():
    """Sweep/pool workers must not perturb (or depend on) global RNGs."""
    random.seed(1234)
    np.random.seed(1234)
    global_state = random.getstate()
    np_state = np.random.get_state()

    generate_shifting_trace(num_requests=200, num_objects=50, seed=1)
    generate_adversarial_trace(num_requests=200, num_objects=50, seed=1)
    build_workload(get_workload("caching/zipf-hot", num_requests=200))

    assert random.getstate() == global_state
    assert repr(np.random.get_state()) == repr(np_state)

    # And the other direction: reseeding globals does not change outputs.
    random.seed(1)
    first = generate_adversarial_trace(num_requests=100, num_objects=30, seed=3)
    random.seed(999)
    second = generate_adversarial_trace(num_requests=100, num_objects=30, seed=3)
    assert [r.key for r in first] == [r.key for r in second]


def test_adversarial_loop_defeats_lru():
    """The loop re-touches objects just after LRU evicts them; LFU-style
    retention of the hot set must beat LRU here."""
    from repro.cache.policies.lfu import LFUCache
    from repro.cache.policies.lru import LRUCache
    from repro.cache.simulator import simulate

    trace = build_workload(get_workload("caching/adversarial-loop", num_requests=4000))
    lru = simulate(LRUCache, trace, cache_fraction=0.10)
    lfu = simulate(LFUCache, trace, cache_fraction=0.10)
    assert lfu.miss_ratio < lru.miss_ratio


def test_shifting_trace_shifts_working_set():
    trace = generate_shifting_trace(
        num_requests=2400, num_objects=600, seed=5, phase_length=800, hot_weight=0.9
    )
    phases = [
        {r.key for r in list(trace)[start : start + 800]} for start in (0, 800, 1600)
    ]
    # Consecutive phases share little of their hot sets.
    overlap = len(phases[0] & phases[1]) / max(1, len(phases[0]))
    assert overlap < 0.6


def test_estimated_length_rendering():
    assert "reqs" in get_workload("caching/zipf-hot").estimated_length()
    assert "sim" in get_workload("cc/single-flow").estimated_length()
