"""Multi-scenario fitness: reducers, engine sharding, determinism, artifacts."""

import json

import pytest

from repro.core import artifacts
from repro.core.evaluator import EvaluationResult, FunctionEvaluator
from repro.core.events import CandidateEvaluated, RoundCompleted
from repro.core.scenarios import MultiScenarioEvaluator, ScoreReducer
from repro.core.spec import RunSpec, run

CACHING_MATRIX = [
    {"name": "caching/zipf-hot", "num_requests": 900, "num_objects": 250},
    {"name": "caching/scan-storm", "num_requests": 900, "num_objects": 250},
    {"name": "caching/adversarial-loop", "num_requests": 900, "num_objects": 250},
]

CC_MATRIX = [
    {"name": "cc/single-flow", "duration_s": 1.0},
    {"name": "cc/multi-flow", "duration_s": 1.0},
    {"name": "cc/lossy-link", "duration_s": 1.0},
]


def _matrix_spec(domain, matrix, engine=None, reducer="mean", seed=5):
    return RunSpec(
        domain=domain,
        name=f"{domain}-matrix",
        domain_kwargs={"workloads": matrix, "reducer": reducer},
        search={"rounds": 2, "candidates_per_round": 4},
        engine=engine or {},
        seed=seed,
    )


# -- reducers -----------------------------------------------------------------------


def test_reducer_kinds():
    scores = {"a": 1.0, "b": 0.0, "c": -1.0}
    assert ScoreReducer.from_ref("mean").reduce(scores) == pytest.approx(0.0)
    assert ScoreReducer.from_ref("worst").reduce(scores) == -1.0
    weighted = ScoreReducer.from_ref(
        {"kind": "weighted", "weights": {"a": 2.0, "b": 1.0, "c": 1.0}}
    )
    assert weighted.reduce(scores) == pytest.approx((2.0 - 1.0) / 4.0)


def test_reducer_validation():
    with pytest.raises(ValueError, match="unknown reducer kind"):
        ScoreReducer.from_ref("median")
    with pytest.raises(ValueError, match="weights"):
        ScoreReducer.create("weighted")
    with pytest.raises(ValueError, match="does not take weights"):
        ScoreReducer.create("mean", weights={"a": 1.0})
    reducer = ScoreReducer.create("weighted", weights={"a": 1.0})
    with pytest.raises(ValueError, match="cover the scenario matrix"):
        reducer.validate_names(["a", "b"])
    # Round trip through the declarative form.
    assert ScoreReducer.from_ref(reducer.to_ref()) == reducer
    assert ScoreReducer.from_ref("worst").to_ref() == "worst"


# -- MultiScenarioEvaluator ---------------------------------------------------------


def _constant_evaluators(values):
    return [
        (name, FunctionEvaluator(lambda _p, v=value: v, name=name))
        for name, value in values.items()
    ]


def test_combine_records_scenario_scores_and_details():
    from repro.dsl.parser import parse

    program = parse(
        "def priority(now, obj_id, obj_info, counts, ages, sizes, history) "
        "{\n    return 1\n}\n"
    )
    evaluator = MultiScenarioEvaluator(
        _constant_evaluators({"s1": 2.0, "s2": 4.0}), ScoreReducer.from_ref("mean")
    )
    result = evaluator.evaluate(program)
    assert result.valid
    assert result.score == pytest.approx(3.0)
    assert result.scenario_scores == {"s1": 2.0, "s2": 4.0}


def test_combine_invalid_when_any_scenario_fails():
    evaluator = MultiScenarioEvaluator(
        _constant_evaluators({"ok": 1.0, "bad": 0.0}), ScoreReducer.from_ref("mean")
    )
    results = [
        EvaluationResult(score=1.0, valid=True),
        EvaluationResult.failure("boom", score=-5.0),
    ]
    combined = evaluator.combine(results)
    assert not combined.valid
    assert "bad: boom" in combined.error
    assert combined.score == pytest.approx(-2.0)
    # Transient sub-failures poison memoization of the aggregate.
    results[1] = EvaluationResult.failure("timeout", score=-5.0, transient=True)
    assert evaluator.combine(results).transient


def test_duplicate_scenario_names_rejected():
    with pytest.raises(ValueError, match="duplicate scenario name"):
        MultiScenarioEvaluator(_constant_evaluators({"s": 1.0}) * 2)


def test_failure_score_reduces_over_scenarios():
    evaluator = MultiScenarioEvaluator(
        _constant_evaluators({"a": 0.0, "b": 0.0}), ScoreReducer.from_ref("worst")
    )
    assert evaluator.failure_score == float("-inf")


# -- engine sharding ----------------------------------------------------------------


@pytest.mark.parametrize(
    "engine",
    [
        {"max_workers": 1},
        {"max_workers": 4, "executor": "thread"},
        {"max_workers": 2, "executor": "process", "eval_timeout_s": 120.0},
    ],
    ids=["serial", "thread", "process"],
)
def test_matrix_results_identical_across_executors(engine):
    baseline = run(_matrix_spec("caching", CACHING_MATRIX)).result
    result = run(_matrix_spec("caching", CACHING_MATRIX, engine=engine)).result
    assert artifacts.search_result_to_dict(result) == artifacts.search_result_to_dict(
        baseline
    )
    assert result.best.evaluation.scenario_scores.keys() == {
        "caching/zipf-hot",
        "caching/scan-storm",
        "caching/adversarial-loop",
    }


def test_worst_case_reducer_changes_fitness_not_scenarios():
    mean_run = run(_matrix_spec("caching", CACHING_MATRIX, reducer="mean")).result
    worst_run = run(_matrix_spec("caching", CACHING_MATRIX, reducer="worst")).result
    best = worst_run.best
    assert best.score == pytest.approx(min(best.evaluation.scenario_scores.values()))
    mean_best = mean_run.best
    assert mean_best.score == pytest.approx(
        sum(mean_best.evaluation.scenario_scores.values())
        / len(mean_best.evaluation.scenario_scores)
    )


# -- events / rounds / artifacts ----------------------------------------------------


def test_scenario_scores_flow_into_rounds_events_and_artifacts(tmp_path):
    events = []
    spec = _matrix_spec("cc", CC_MATRIX, seed=2)
    outcome = run(spec, store=tmp_path, subscribers=[events.append])
    names = {"cc/single-flow", "cc/multi-flow", "cc/lossy-link"}

    # RoundSummary carries per-scenario bests.
    for summary in outcome.result.rounds:
        if summary.evaluated:
            assert set(summary.scenario_best) == names

    # Events carry the breakdown.
    evaluated = [e for e in events if isinstance(e, CandidateEvaluated) and e.valid]
    assert evaluated and all(set(e.scenario_scores) == names for e in evaluated)
    rounds = [e for e in events if isinstance(e, RoundCompleted)]
    assert rounds and set(rounds[-1].scenario_best) == names

    # Artifacts: result.json and rounds.jsonl record the breakdown...
    stored = json.loads((outcome.artifact_dir / "result.json").read_text())
    best = next(
        c
        for c in stored["candidates"]
        if c["candidate"]["candidate_id"] == stored["best_candidate_id"]
    )
    assert set(best["evaluation"]["scenario_scores"]) == names
    rounds_lines = [
        json.loads(line)
        for line in (outcome.artifact_dir / "rounds.jsonl").read_text().splitlines()
    ]
    assert set(rounds_lines[-1]["scenario_best"]) == names
    # ... and events.jsonl too.
    event_lines = [
        json.loads(line)
        for line in (outcome.artifact_dir / "events.jsonl").read_text().splitlines()
    ]
    candidate_events = [
        e for e in event_lines if e["event"] == "candidate_evaluated" and e["valid"]
    ]
    assert candidate_events and set(candidate_events[0]["scenario_scores"]) == names


@pytest.mark.parametrize(
    "domain,matrix", [("caching", CACHING_MATRIX), ("cc", CC_MATRIX)]
)
def test_fixed_seed_matrix_run_is_byte_identical(tmp_path, domain, matrix):
    """Acceptance: identical RunSpec with a 3-scenario matrix (each domain)
    produces byte-identical result.json across reruns."""
    spec = _matrix_spec(domain, matrix, seed=7)
    first = run(spec, store=tmp_path / "a")
    second = run(spec, store=tmp_path / "b")
    first_bytes = (first.artifact_dir / "result.json").read_bytes()
    second_bytes = (second.artifact_dir / "result.json").read_bytes()
    assert first_bytes == second_bytes
    assert b"scenario_scores" in first_bytes


# -- spec / build_search validation -------------------------------------------------


def test_workloads_must_match_domain():
    spec = _matrix_spec("cc", [{"name": "caching/zipf-hot"}])
    with pytest.raises(ValueError, match="do not belong to domain"):
        run(spec)


def test_reducer_without_workloads_rejected():
    from repro.core.domain import build_search

    with pytest.raises(ValueError, match="reducer= only applies"):
        build_search("cc", reducer="mean", duration_s=1.0)


def test_single_scenario_kwargs_rejected_alongside_matrix():
    """Per-scenario kwargs must fail loudly in matrix mode, not be ignored."""
    from repro.core.domain import build_search

    with pytest.raises(TypeError, match="no effect alongside a workloads"):
        build_search(
            "caching", workloads=["caching/zipf-hot"], cache_fraction=0.02
        )
    with pytest.raises(TypeError, match="workload references"):
        build_search("cc", workloads=["cc/single-flow"], duration_s=1.0)
    # backend= stays meaningful (shared by every scenario evaluator).
    setup = build_search(
        "caching",
        workloads=[{"name": "caching/zipf-hot", "num_requests": 300}],
        backend="interpreter",
    )
    assert setup.evaluator.scenarios[0][1].backend == "interpreter"


def test_checkpointed_matrix_run_resumes_identically(tmp_path):
    spec = RunSpec(
        domain="caching",
        name="matrix-ckpt",
        domain_kwargs={"workloads": CACHING_MATRIX, "reducer": "mean"},
        search={"rounds": 3, "candidates_per_round": 3},
        checkpoint=True,
        seed=11,
    )
    full = run(spec, store=tmp_path / "full")

    # Interrupt after round 1 by running a 1-round copy into the resume dir,
    # then resume with the full spec.
    partial_spec = RunSpec.from_dict(
        {**spec.to_dict(), "search": {"rounds": 1, "candidates_per_round": 3}}
    )
    resume_dir = tmp_path / "resumed" / "run"
    run(partial_spec, run_dir=resume_dir)
    resumed = run(spec, run_dir=resume_dir)
    assert artifacts.search_result_to_dict(
        resumed.result
    ) == artifacts.search_result_to_dict(full.result)
