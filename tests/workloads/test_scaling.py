"""Tests of fidelity scaling at the workload and evaluator layers."""

import pytest

from repro.cache.request import Trace, prefix_trace
from repro.cache.search import CachingEvaluator
from repro.cc.evaluator import CongestionControlEvaluator
from repro.core.scenarios import MultiScenarioEvaluator
from repro.workloads import build_workload, get_workload
from repro.workloads.netsim import build_scenario


def test_workload_scale_shrinks_num_requests():
    base = get_workload("caching/zipf-hot")
    scaled = base.scale(0.25)
    assert scaled.param("num_requests") == base.param("num_requests") // 4
    assert scaled.label == "caching/zipf-hot@0.25"
    # Non-budget parameters are untouched; the trace still builds.
    assert scaled.param("zipf_alpha") == base.param("zipf_alpha")
    assert len(build_workload(scaled)) == scaled.param("num_requests")


def test_workload_scale_shrinks_netsim_duration():
    base = get_workload("cc/satellite")
    scaled = base.scale(0.5)
    assert scaled.param("duration_s") == pytest.approx(base.param("duration_s") / 2)
    scenario = build_workload(scaled)
    assert scenario.duration_s == pytest.approx(6.0)


def test_workload_scale_edge_cases():
    base = get_workload("caching/zipf-hot")
    assert base.scale(1.0) is base
    reseeded = base.scale(0.5, seed=99)
    assert reseeded.param("seed") == 99
    # A reseed-only copy is a full-budget workload, not a rung variant: it
    # keeps its label (and so its scenario name).
    reseed_only = base.scale(1.0, seed=99)
    assert reseed_only.param("seed") == 99
    assert reseed_only.display_name == base.display_name
    with pytest.raises(ValueError, match="fraction"):
        base.scale(0.0)
    with pytest.raises(ValueError, match="cannot be fidelity-scaled"):
        get_workload("caching/csv").scale(0.5)


def test_every_builtin_workload_scales_except_file_backed():
    from repro.workloads import available_workloads

    for name in available_workloads():
        workload = get_workload(name)
        if "path" in workload.param_dict:
            continue  # file-backed: refuses to scale (asserted above)
        scaled = workload.scale(0.3)
        params = scaled.param_dict
        assert "num_requests" in params or "duration_s" in params


def test_prefix_trace_is_an_exact_prefix():
    trace = build_workload(get_workload("caching/shifting", num_requests=200))
    scaled = prefix_trace(trace, 0.25)
    assert isinstance(scaled, Trace)
    assert len(scaled) == 50
    assert list(scaled)[:50] == list(trace)[:50]
    with pytest.raises(ValueError):
        prefix_trace(trace, 1.5)


def test_caching_evaluator_at_fidelity_keeps_cache_size():
    trace = build_workload(get_workload("caching/zipf-hot", num_requests=400))
    evaluator = CachingEvaluator(trace)
    scaled = evaluator.at_fidelity(0.25)
    assert evaluator.at_fidelity(1.0) is evaluator
    assert len(scaled.trace) == 100
    # The cache under test keeps its full-trace size: a rung simulation is a
    # prefix of the full simulation, not a smaller deployment.
    assert scaled.cache_size == evaluator.cache_size
    assert scaled.backend == evaluator.backend


def test_caching_evaluator_at_fidelity_scales_warmup():
    trace = build_workload(get_workload("caching/zipf-hot", num_requests=400))
    evaluator = CachingEvaluator(trace, warmup=100)
    scaled = evaluator.at_fidelity(0.25)
    # An absolute warmup of 100 would swallow the whole 100-request prefix
    # and leave every candidate tied at zero measured requests.
    assert scaled.warmup == 25
    assert scaled.warmup < len(scaled.trace)


def test_cc_evaluator_at_fidelity_shortens_the_run():
    evaluator = CongestionControlEvaluator(scenario=build_scenario("cc/multi-flow"))
    scaled = evaluator.at_fidelity(0.25)
    assert scaled.scenario.duration_s == pytest.approx(2.0)
    assert scaled.scenario.rate_bps == evaluator.scenario.rate_bps
    assert scaled.objective is evaluator.objective
    # Scaled runs still score: a shorter run of the same scenario.
    assert evaluator.at_fidelity(1.0) is evaluator


def test_netsim_scenario_scaled_bounds_events_too():
    scenario = build_scenario("cc/single-flow")
    scaled = scenario.scaled(0.5)
    assert scaled.duration_s == pytest.approx(scenario.duration_s / 2)
    assert scaled.max_events == scenario.max_events // 2
    with pytest.raises(ValueError):
        scenario.scaled(0)


def test_multi_scenario_evaluator_scales_every_scenario():
    traces = [
        build_workload(get_workload("caching/zipf-hot", num_requests=200)),
        build_workload(get_workload("caching/scan-storm", num_requests=200)),
    ]
    evaluator = MultiScenarioEvaluator(
        [(trace.name, CachingEvaluator(trace)) for trace in traces]
    )
    scaled = evaluator.at_fidelity(0.5)
    assert scaled.scenario_names == evaluator.scenario_names
    assert all(
        len(sub.trace) == 100 for _name, sub in scaled.scenarios
    )
    assert scaled.reducer is evaluator.reducer
