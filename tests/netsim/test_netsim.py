"""Network-simulator tests: event queue, link, flows, end-to-end metrics."""

import pytest

from repro.cc.policies import FixedWindowController, RenoController
from repro.netsim.events import EventQueue
from repro.netsim.link import DropTailLink, LinkConfig
from repro.netsim.packet import Packet
from repro.netsim.simulator import (
    NetworkSimulator,
    SimulationConfig,
    run_single_flow,
)


# -- EventQueue ------------------------------------------------------------------


def test_event_queue_orders_by_time_then_fifo():
    queue = EventQueue()
    order = []
    queue.schedule(20, lambda now: order.append("b"))
    queue.schedule(10, lambda now: order.append("a"))
    queue.schedule(20, lambda now: order.append("c"))
    while queue.step():
        pass
    assert order == ["a", "b", "c"]
    assert queue.now == 20
    assert queue.processed == 3


def test_event_queue_rejects_past_events():
    queue = EventQueue()
    queue.schedule(10, lambda now: queue.schedule(5, lambda n: None))
    with pytest.raises(ValueError):
        while queue.step():
            pass


def test_run_until_respects_horizon_and_budget():
    queue = EventQueue()
    for t in range(1, 11):
        queue.schedule(t, lambda now: None)
    assert queue.run_until(5) == 5
    assert queue.now == 5
    assert queue.run_until(100, max_events=2) == 2


# -- LinkConfig / DropTailLink -----------------------------------------------------


def test_link_config_serialization_and_bdp():
    config = LinkConfig(rate_bps=12_000_000, one_way_delay_us=10_000)
    # A 1500-byte packet at 12 Mbps takes 1 ms to serialise.
    assert config.serialization_us(1500) == pytest.approx(1000, abs=1)
    assert config.bdp_bytes() == pytest.approx(30_000, rel=0.01)


def test_link_delivers_packets_with_correct_latency():
    queue = EventQueue()
    config = LinkConfig(rate_bps=12_000_000, one_way_delay_us=10_000, queue_bytes=100_000)
    deliveries = []
    link = DropTailLink(queue, config, on_delivery=lambda p, now: deliveries.append((p, now)))
    packet = Packet(flow_id=0, sequence=0, size=1500, sent_at=0)
    link.send(packet)
    queue.run_until(1_000_000)
    assert len(deliveries) == 1
    _p, arrival = deliveries[0]
    assert arrival == pytest.approx(config.serialization_us(1500) + 10_000, abs=2)


def test_link_queueing_delay_accumulates():
    queue = EventQueue()
    config = LinkConfig(rate_bps=12_000_000, one_way_delay_us=1_000, queue_bytes=1_000_000)
    link = DropTailLink(queue, config)
    for seq in range(5):
        link.send(Packet(flow_id=0, sequence=seq, size=1500, sent_at=0))
    queue.run_until(1_000_000)
    delays = link.stats.queueing_delays_us
    assert len(delays) == 5
    assert delays[0] == 0
    assert delays[-1] > delays[1] > 0


def test_link_drops_when_buffer_full():
    queue = EventQueue()
    config = LinkConfig(rate_bps=1_000_000, one_way_delay_us=1_000, queue_bytes=3_000)
    drops = []
    link = DropTailLink(queue, config, on_drop=lambda p, now: drops.append(p))
    for seq in range(10):
        link.send(Packet(flow_id=0, sequence=seq, size=1500, sent_at=0))
    assert len(drops) == 8          # only two 1500-byte packets fit
    assert link.stats.dropped_packets == 8
    assert link.stats.loss_rate() == pytest.approx(8 / 10)


def test_link_utilization_bounded():
    metrics_stats = DropTailLink(EventQueue(), LinkConfig()).stats
    assert metrics_stats.utilization(12_000_000, 0) == 0.0


# -- Flows and end-to-end -----------------------------------------------------------------


def test_fixed_window_flow_throughput_matches_window():
    # With a 10-packet window and ~21.x ms RTT, throughput ~ cwnd*mss/rtt.
    config = SimulationConfig(duration_s=5.0)
    metrics = run_single_flow(FixedWindowController(10), config)
    flow = metrics.flows[0]
    rtt_s = flow.mean_rtt_ms / 1000
    expected_bps = 10 * config.mss * 8 / rtt_s
    assert flow.throughput_bps == pytest.approx(expected_bps, rel=0.15)
    assert metrics.loss_rate == 0.0
    assert metrics.mean_queueing_delay_ms < 1.0


def test_small_window_underutilises_link():
    metrics = run_single_flow(FixedWindowController(3), SimulationConfig(duration_s=4.0))
    assert metrics.utilization < 0.4


def test_reno_fills_the_link():
    metrics = run_single_flow(RenoController(), SimulationConfig(duration_s=6.0))
    assert metrics.utilization > 0.85
    assert metrics.flows[0].packets_lost > 0          # it probes until loss
    assert 0 < metrics.mean_queueing_delay_ms < 45


def test_rtt_measured_close_to_configured_delay():
    metrics = run_single_flow(FixedWindowController(4), SimulationConfig(duration_s=3.0))
    # 2 * 10 ms propagation plus ~1 ms serialisation and ACK return.
    assert 20 <= metrics.flows[0].mean_rtt_ms <= 25


def test_two_flows_share_the_link_fairly():
    simulator = NetworkSimulator(SimulationConfig(duration_s=6.0))
    simulator.add_flow(RenoController())
    simulator.add_flow(RenoController())
    metrics = simulator.run()
    assert len(metrics.flows) == 2
    assert metrics.jain_fairness() > 0.7
    assert metrics.utilization > 0.85
    assert metrics.aggregate_throughput_bps() <= 12_000_000 * 1.05


def test_simulator_requires_flows():
    with pytest.raises(ValueError):
        NetworkSimulator(SimulationConfig(duration_s=1.0)).run()


def test_duplicate_flow_ids_rejected():
    simulator = NetworkSimulator(SimulationConfig(duration_s=1.0))
    simulator.add_flow(FixedWindowController(4), flow_id=1)
    with pytest.raises(ValueError):
        simulator.add_flow(FixedWindowController(4), flow_id=1)


def test_simulation_deterministic():
    first = run_single_flow(RenoController(), SimulationConfig(duration_s=3.0))
    second = run_single_flow(RenoController(), SimulationConfig(duration_s=3.0))
    assert first.utilization == second.utilization
    assert first.mean_queueing_delay_ms == second.mean_queueing_delay_ms
