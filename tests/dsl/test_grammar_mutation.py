"""Grammar sampling and evolutionary-operator tests."""

import random


from repro.dsl import analyze, parse, to_source
from repro.dsl.ast import Program, Return
from repro.dsl.grammar import FeatureSpec, GrammarConfig, random_program
from repro.dsl.mutation import MutationConfig, crossover, mutate


def cc_like_spec(integer_only=True):
    return FeatureSpec(
        function_name="cong_control",
        params=["cwnd", "rtt", "min_rtt", "losses", "history"],
        scalar_params=["cwnd", "rtt", "min_rtt", "losses"],
        object_attrs={},
        object_methods={"history": [("rtt_at", "fraction"), ("total_losses", "none")]},
        key_params=[],
        integer_only=integer_only,
        result_var="new_cwnd",
    )


def test_random_programs_parse_and_have_returns(caching_spec, rng):
    for _ in range(30):
        program = random_program(caching_spec, rng)
        assert isinstance(program, Program)
        assert program.returns()
        assert parse(to_source(program)) == program


def test_random_programs_signature_matches_spec(caching_spec, rng):
    program = random_program(caching_spec, rng)
    assert program.name == caching_spec.function_name
    assert program.params == caching_spec.params


def test_integer_only_grammar_avoids_floats_and_true_division(rng):
    spec = cc_like_spec(integer_only=True)
    for _ in range(30):
        facts = analyze(random_program(spec, rng))
        assert not facts.uses_float_arithmetic


def test_grammar_respects_statement_budget(caching_spec, rng):
    config = GrammarConfig(min_statements=2, max_statements=4)
    for _ in range(10):
        program = random_program(caching_spec, rng, config)
        # seed assign + updates + return
        assert len(program.body) <= 4 + 2


def test_grammar_determinism(caching_spec):
    a = random_program(caching_spec, random.Random(99))
    b = random_program(caching_spec, random.Random(99))
    assert a == b


def test_mutation_produces_parseable_variants(caching_spec, rng):
    base = random_program(caching_spec, rng)
    for _ in range(30):
        mutant = mutate(base, caching_spec, rng)
        assert mutant.returns()
        assert parse(to_source(mutant)) == mutant


def test_mutation_does_not_modify_parent(caching_spec, rng):
    base = random_program(caching_spec, rng)
    snapshot = to_source(base)
    for _ in range(10):
        mutate(base, caching_spec, rng)
    assert to_source(base) == snapshot


def test_mutation_changes_something_eventually(caching_spec):
    rng = random.Random(5)
    base = random_program(caching_spec, rng)
    changed = any(
        to_source(mutate(base, caching_spec, rng)) != to_source(base) for _ in range(10)
    )
    assert changed


def test_mutation_integer_only_does_not_introduce_float_arithmetic(rng):
    spec = cc_like_spec(integer_only=True)
    base = random_program(spec, rng)
    for _ in range(30):
        mutant = mutate(base, spec, rng)
        assert not analyze(mutant).uses_float_arithmetic


def test_crossover_mixes_parents_and_keeps_return(caching_spec, rng):
    first = random_program(caching_spec, rng)
    second = random_program(caching_spec, rng)
    for _ in range(20):
        child = crossover(first, second, rng)
        assert child.returns()
        assert isinstance(child.body[-1], Return)
        assert parse(to_source(child)) == child


def test_crossover_with_empty_bodies(rng):
    spec = cc_like_spec()
    empty = Program(name="cong_control", params=list(spec.params), body=[Return(value=parse("def f() { return 1 }").body[0].value)])
    other = random_program(spec, rng)
    child = crossover(empty, other, rng)
    assert child.returns()


def test_mutation_config_bounds(caching_spec, rng):
    config = MutationConfig(max_mutations=1)
    base = random_program(caching_spec, rng)
    mutant = mutate(base, caching_spec, rng, config)
    assert mutant.returns()
