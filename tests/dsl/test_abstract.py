"""Tests for the interval abstract interpreter (dsl/abstract.py).

The load-bearing property is *soundness*: for any program and any concrete
inputs inside the declared intervals, the concrete interpreter's output must
lie within the certified bounds, and a concrete DslError implies the
analysis flagged ``may_error``.  The hypothesis suites below check this
differentially against :class:`repro.dsl.Interpreter` for both domains'
declarations, plus the screening consequence: a program the screener marks
degenerate never produces two distinct outputs (and never raises).
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.search import caching_feature_spec, caching_input_intervals
from repro.cc.evaluator import cc_input_intervals
from repro.cc.template import cc_feature_spec
from repro.dsl import (
    Certificate,
    Interpreter,
    InputIntervals,
    Interval,
    StaticScreener,
    analyze_intervals,
    certify_program,
    parse,
)
from repro.dsl.abstract import TOP
from repro.dsl.errors import DslError
from repro.dsl.grammar import random_program
from repro.netsim.flow import Flow

from tests.conftest import StubAggregate, StubHistory, StubObjectInfo
from repro.cc.signals import HistoryView
from repro.netsim.flow import HistoryInterval

CACHE_SPEC = caching_feature_spec()
CC_SPEC = cc_feature_spec()
CACHE_INTERVALS = caching_input_intervals()
CC_INTERVALS = cc_input_intervals()
MAX_EXAMPLES = 40

CACHE_SIG = (
    "def priority(now, obj_id, obj_info, counts, ages, sizes, history)"
)
CC_SIG = (
    "def cong_control(now, cwnd, mss, acked, inflight, rtt, min_rtt, srtt, "
    "losses, history)"
)


def _cache_env(count, last_accessed, size, now, in_history):
    return {
        "now": now,
        "obj_id": 7,
        "obj_info": StubObjectInfo(
            count=count, last_accessed=last_accessed, inserted_at=0, size=size
        ),
        "counts": StubAggregate(max(1, count // 2)),
        "ages": StubAggregate(max(1, now - last_accessed)),
        "sizes": StubAggregate(size),
        "history": StubHistory(members={7} if in_history else set()),
    }


def _cc_env(now, cwnd, acked, rtt, losses):
    history = HistoryView(
        [
            HistoryInterval(delivered_bytes=12_000, avg_rtt_us=rtt, losses=losses),
            HistoryInterval(delivered_bytes=9_000, avg_rtt_us=rtt + 50, losses=0),
        ]
    )
    return {
        "now": now,
        "cwnd": cwnd,
        "mss": 1500,
        "acked": acked,
        "inflight": max(0, cwnd - 1),
        "rtt": rtt,
        "min_rtt": max(1, rtt // 2),
        "srtt": rtt,
        "losses": losses,
        "history": history,
    }


# --------------------------------------------------------------------------
# Interval arithmetic units
# --------------------------------------------------------------------------


def test_interval_basic_arithmetic():
    a = Interval(1, 3)
    b = Interval(-2, 4)
    assert a.add(b) == Interval(-1, 7)
    assert a.sub(b) == Interval(-3, 5)
    assert a.mul(b) == Interval(-6, 12)
    assert Interval(-2, 3).iabs() == Interval(0, 3)
    assert Interval(2, 5).join(Interval(-1, 3)) == Interval(-1, 5)


def test_interval_division_by_zero_widens_and_flags():
    iv, may = Interval(1, 2).truediv(Interval(-1, 1))
    assert iv == TOP
    assert may
    iv, may = Interval(4, 8).truediv(Interval(2, 4))
    assert iv == Interval(1, 4)
    assert not may


def test_interval_trunc_and_clamp():
    assert Interval(-2.7, 3.9).trunc() == Interval(-2, 3)
    assert Interval(-10, 100).clamp_into(0, 50) == Interval(0, 50)
    assert Interval(5, 7).clamp_into(0, 50) == Interval(5, 7)
    inf = float("inf")
    assert Interval(-inf, inf).trunc() == Interval(-inf, inf)


def test_interval_mul_zero_times_infinity_is_zero():
    # Concrete values are finite, so 0 * [0, inf) must stay [0, anything].
    assert Interval(0, 0).mul(Interval(0, float("inf"))) == Interval(0, 0)


# --------------------------------------------------------------------------
# Screening verdict units
# --------------------------------------------------------------------------


def test_screen_constant_program():
    program = parse(f"{CACHE_SIG} {{ return 5 }}")
    verdict = StaticScreener(CACHE_INTERVALS).screen(program)
    assert verdict.screened
    assert verdict.reason == "constant"
    assert "5" in verdict.detail
    assert verdict.error.startswith("static-screen: constant")


def test_screen_input_independent_program():
    # 5 % 3 abstracts to the non-point interval [0, 3] but is untainted:
    # the output is unreachable from every input signal.
    program = parse(f"{CACHE_SIG} {{ return 5 % 3 }}")
    verdict = StaticScreener(CACHE_INTERVALS).screen(program)
    assert verdict.screened
    assert verdict.reason == "input-independent"


def test_screen_pinned_min_and_max():
    screener = StaticScreener(CC_INTERVALS)
    low = parse(f"{CC_SIG} {{ return cwnd - 100000 }}")
    verdict = screener.screen(low)
    assert verdict.screened and verdict.reason == "pinned-min"
    high = parse(f"{CC_SIG} {{ return cwnd + 5000 }}")
    verdict = screener.screen(high)
    assert verdict.screened and verdict.reason == "pinned-max"


def test_screen_passes_live_program():
    program = parse(f"{CC_SIG} {{ return cwnd + acked / 1500 }}")
    verdict = StaticScreener(CC_INTERVALS).screen(program)
    assert not verdict.screened


def test_may_error_disables_screening():
    # losses may be zero, so 1 / losses may raise: never screened even
    # though the bound alone would pin it below the clamp floor.
    erroring = parse(f"{CC_SIG} {{ return 1 / losses - 100000 }}")
    verdict = StaticScreener(CC_INTERVALS).screen(erroring)
    assert not verdict.screened
    assert analyze_intervals(erroring, CC_INTERVALS).may_error


def test_caching_domain_has_no_output_clamp():
    assert CACHE_INTERVALS.output_clamp is None
    assert CC_INTERVALS.output_clamp == (
        float(Flow.MIN_CWND),
        float(Flow.MAX_CWND),
    )


# --------------------------------------------------------------------------
# Certification units
# --------------------------------------------------------------------------


def test_certify_pinned_cc_program():
    program = parse(f"{CC_SIG} {{ return cwnd + 5000 }}")
    cert = certify_program(program, CC_INTERVALS)
    assert isinstance(cert, Certificate)
    assert cert.lo == Flow.MIN_CWND + 5000
    assert cert.hi == Flow.MAX_CWND + 5000
    assert (cert.clamped_lo, cert.clamped_hi) == (Flow.MAX_CWND, Flow.MAX_CWND)
    assert not cert.constant
    assert cert.depends_on_inputs
    record = cert.to_dict()
    assert record["bounds"] == {"lo": 5002, "hi": 9096}
    assert record["clamped_bounds"] == {"lo": 4096, "hi": 4096}
    assert "applied window in [4096, 4096]" in cert.describe()


def test_certify_constant_caching_program():
    program = parse(f"{CACHE_SIG} {{ return 42 }}")
    cert = certify_program(program, CACHE_INTERVALS)
    assert cert.constant
    assert (cert.lo, cert.hi) == (42, 42)
    assert not cert.may_error
    record = cert.to_dict()
    assert "clamped_bounds" not in record  # caching output is unclamped
    assert record["constant"] is True
    assert "constant output" in cert.describe()


def test_certify_unbounded_program_serializes_none_endpoints():
    program = parse(f"{CACHE_SIG} {{ return now - obj_info.last_accessed }}")
    cert = certify_program(program, CACHE_INTERVALS)
    record = cert.to_dict()
    # now - last_accessed over [0, inf) x [0, inf) is unbounded both ways.
    assert record["bounds"] == {"lo": None, "hi": None}
    assert "in [-inf, +inf]" in cert.describe()


def test_input_intervals_join_is_pointwise_hull():
    a = InputIntervals(
        scalars={"x": Interval(0, 10), "y": Interval(0, 1)},
        output_clamp=(2.0, 100.0),
    )
    b = InputIntervals(
        scalars={"x": Interval(5, 20)},
        output_clamp=(1.0, 50.0),
    )
    joined = a.join(b)
    assert joined.scalars == {"x": Interval(0, 20)}  # y is one-sided: dropped
    assert joined.output_clamp == (1.0, 100.0)
    # One side without a clamp disables clamp-based screening entirely.
    assert a.join(InputIntervals(scalars={"x": Interval(0, 1)})).output_clamp is None


# --------------------------------------------------------------------------
# Differential soundness (hypothesis)
# --------------------------------------------------------------------------


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    count=st.integers(min_value=1, max_value=1_000),
    last_accessed=st.integers(min_value=0, max_value=100_000),
    size=st.integers(min_value=1, max_value=1_000_000),
    now_offset=st.integers(min_value=0, max_value=100_000),
    in_history=st.booleans(),
)
def test_caching_outputs_stay_within_certified_bounds(
    seed, count, last_accessed, size, now_offset, in_history
):
    program = random_program(CACHE_SPEC, random.Random(seed))
    abstract = analyze_intervals(program, CACHE_INTERVALS)
    env = _cache_env(
        count, last_accessed, size, last_accessed + now_offset, in_history
    )
    try:
        value = Interpreter().run(program, env)
    except DslError:
        assert abstract.may_error
        return
    assert isinstance(value, (int, float, bool))
    assert not math.isnan(float(value))
    assert abstract.value.iv.lo <= float(value) <= abstract.value.iv.hi


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    now=st.integers(min_value=0, max_value=10_000_000),
    cwnd=st.integers(min_value=Flow.MIN_CWND, max_value=Flow.MAX_CWND),
    acked=st.integers(min_value=0, max_value=1_000_000),
    rtt=st.integers(min_value=1, max_value=500_000),
    losses=st.integers(min_value=0, max_value=50),
)
def test_cc_outputs_stay_within_certified_bounds(
    seed, now, cwnd, acked, rtt, losses
):
    program = random_program(CC_SPEC, random.Random(seed))
    abstract = analyze_intervals(program, CC_INTERVALS)
    env = _cc_env(now, cwnd, acked, rtt, losses)
    try:
        value = Interpreter().run(program, env)
    except DslError:
        assert abstract.may_error
        return
    assert isinstance(value, (int, float, bool))
    assert abstract.value.iv.lo <= float(value) <= abstract.value.iv.hi


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    env_seed=st.integers(min_value=0, max_value=10_000),
)
def test_screened_programs_never_vary_or_raise(seed, env_seed):
    """A screened caching program is provably degenerate: across any two
    environments inside the declared intervals it returns one value and
    never raises (the screener requires ``may_error`` to be False)."""
    program = random_program(CACHE_SPEC, random.Random(seed))
    verdict = StaticScreener(CACHE_INTERVALS).screen(program)
    if not verdict.screened:
        return
    rng = random.Random(env_seed)
    outputs = set()
    for _ in range(4):
        last = rng.randint(0, 10_000)
        env = _cache_env(
            rng.randint(1, 100),
            last,
            rng.randint(1, 100_000),
            last + rng.randint(0, 10_000),
            rng.random() < 0.5,
        )
        outputs.add(Interpreter().run(program, env))
    assert len(outputs) == 1


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    cwnd=st.integers(min_value=Flow.MIN_CWND, max_value=Flow.MAX_CWND),
    rtt=st.integers(min_value=1, max_value=500_000),
)
def test_cc_screened_pinned_programs_clamp_to_one_window(seed, cwnd, rtt):
    """A pinned-min/max verdict means the *applied* window is one point for
    every signal value inside the declaration."""
    program = random_program(CC_SPEC, random.Random(seed))
    verdict = StaticScreener(CC_INTERVALS).screen(program)
    if not verdict.screened or verdict.reason not in ("pinned-min", "pinned-max"):
        return
    env = _cc_env(1_000, cwnd, 30_000, rtt, 0)
    value = Interpreter().run(program, env)
    applied = min(max(int(value), Flow.MIN_CWND), Flow.MAX_CWND)
    expected = Flow.MIN_CWND if verdict.reason == "pinned-min" else Flow.MAX_CWND
    assert applied == expected


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_certificates_are_json_safe(seed):
    import json

    program = random_program(CC_SPEC, random.Random(seed))
    record = certify_program(program, CC_INTERVALS).to_dict()
    json.dumps(record)  # no inf/nan leaks into the artifact
    assert set(record) >= {
        "function",
        "bounds",
        "constant",
        "depends_on_inputs",
        "may_error",
    }


def test_listing_one_is_not_screened(priority_env):
    """The paper's Listing-1 heuristic must survive screening untouched."""
    from tests.conftest import LISTING_1

    program = parse(LISTING_1)
    verdict = StaticScreener(CACHE_INTERVALS).screen(program)
    assert not verdict.screened
    cert = certify_program(program, CACHE_INTERVALS)
    concrete = Interpreter().run(program, priority_env)
    assert cert.lo <= concrete <= cert.hi


def test_analysis_respects_step_budget():
    body = "\n".join(f"    x{i} = {i}" for i in range(30))
    program = parse(f"{CACHE_SIG} {{\n{body}\n    return x1\n}}")
    tight = analyze_intervals(program, CACHE_INTERVALS, max_steps=5)
    assert tight.may_error  # may exhaust the concrete step budget
    loose = analyze_intervals(program, CACHE_INTERVALS)
    assert not loose.may_error


@pytest.mark.parametrize(
    "source,reason",
    [
        ("return 0 - 1", "constant"),
        ("return min(3, 4)", "constant"),
        ("return clamp(99, 0, 10)", "constant"),
    ],
)
def test_screen_constant_folding_through_builtins(source, reason):
    program = parse(f"{CACHE_SIG} {{ {source} }}")
    verdict = StaticScreener(CACHE_INTERVALS).screen(program)
    assert verdict.screened
    assert verdict.reason == reason
