"""Static-analysis tests."""

from repro.dsl import analyze, parse

from tests.conftest import LISTING_1


def test_float_detection():
    assert analyze(parse("def f(a) { return a * 0.5 }")).uses_float_literal
    assert analyze(parse("def f(a) { return a / 2 }")).uses_true_division
    assert analyze(parse("def f(a) { return a / 2 }")).uses_float_arithmetic
    facts = analyze(parse("def f(a) { return a // 2 }"))
    assert not facts.uses_float_arithmetic


def test_division_sites_checked_vs_unchecked():
    facts = analyze(parse("def f(a, b) { return a // 2 + a // b }"))
    assert len(facts.division_sites) == 2
    checked = [site for site in facts.division_sites if site.checked]
    unchecked = [site for site in facts.division_sites if not site.checked]
    assert len(checked) == 1 and len(unchecked) == 1
    assert facts.has_unchecked_division
    assert unchecked[0].divisor_repr == "b"


def test_division_by_zero_literal_is_unchecked():
    facts = analyze(parse("def f(a) { return a // 0 }"))
    assert facts.has_unchecked_division


def test_loop_detection():
    facts = analyze(parse("def f(a) {\n while (a > 0) { a -= 1 }\n return a\n}"))
    assert facts.while_loop_count == 1
    assert facts.has_potentially_unbounded_loop

    facts = analyze(parse("def f(a) {\n for (i in range(5)) { a += i }\n return a\n}"))
    assert facts.for_loop_count == 1
    assert facts.unbounded_for_count == 0
    assert not facts.has_potentially_unbounded_loop

    facts = analyze(parse("def f(a) {\n for (i in range(a)) { a += i }\n return a\n}"))
    assert facts.unbounded_for_count == 1
    assert facts.has_potentially_unbounded_loop


def test_return_detection():
    assert analyze(parse("def f(a) { return a }")).has_return
    assert not analyze(parse("def f(a) { a = 1 }")).has_return
    assert analyze(parse("def f(a) {\n if (a > 0) { return 1 }\n return 2\n}")).return_count == 2


def test_attribute_and_method_tracking():
    facts = analyze(
        parse("def f(o, s, k) { return o.count + o.size - s.percentile(0.5) + s.mean() }")
    )
    assert ("o", "count") in facts.attributes_read
    assert ("o", "size") in facts.attributes_read
    assert ("s", "percentile") in facts.methods_called
    assert ("s", "mean") in facts.methods_called
    # Method calls are not double-counted as attribute reads.
    assert ("s", "percentile") not in facts.attributes_read


def test_free_names():
    facts = analyze(parse("def f(a) { b = a + missing\n return b }"))
    assert facts.free_names == ["missing"]
    facts = analyze(parse("def f(a) { b = a\n return b }"))
    assert facts.free_names == []


def test_builtin_calls_tracked_as_builtin():
    facts = analyze(parse("def f(a) { return max(1, a) }"))
    assert ("<builtin>", "max") in facts.methods_called


def test_listing_1_facts():
    facts = analyze(parse(LISTING_1))
    assert facts.has_return
    assert facts.uses_float_arithmetic          # priority code may use floats
    assert not facts.has_unchecked_division     # all divisors are constants
    assert not facts.has_potentially_unbounded_loop
    assert {"count", "last_accessed", "size"} <= facts.feature_attributes()
    assert facts.node_count > 50


def test_node_count_and_depth():
    small = analyze(parse("def f(a) { return a }"))
    big = analyze(parse("def f(a) { return ((a + 1) * (a + 2)) // (a * a + 3) }"))
    assert big.node_count > small.node_count
    assert big.max_expression_depth > small.max_expression_depth
