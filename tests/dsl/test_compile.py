"""Tests of the compiled DSL fast path, including the differential property
test: the compiled callable and the tree-walking interpreter must agree on
the result (or on failing) for arbitrary generated programs/environments."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.search import caching_feature_spec
from repro.dsl import DslCompileError, Interpreter, compile_program, parse
from repro.dsl.compile import make_runner, to_callable_source
from repro.dsl.errors import DslError, DslRuntimeError
from repro.dsl.grammar import random_program
from repro.dsl.mutation import mutate

from tests.conftest import LISTING_1, StubAggregate, StubHistory, StubObjectInfo

SPEC = caching_feature_spec()
MAX_EXAMPLES = 50


def _env(count, last_accessed, size, now, in_history):
    return {
        "now": now,
        "obj_id": 7,
        "obj_info": StubObjectInfo(
            count=count, last_accessed=last_accessed, inserted_at=0, size=size
        ),
        "counts": StubAggregate(max(1, count // 2)),
        "ages": StubAggregate(max(1, now - last_accessed)),
        "sizes": StubAggregate(size),
        "history": StubHistory(members={7} if in_history else set()),
    }


def _outcome(run):
    """Normalise a program run to ("value", v) or ("error",)."""
    try:
        return ("value", run())
    except DslError:
        return ("error",)


# -- differential property test -----------------------------------------------------


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    mutations=st.integers(min_value=0, max_value=2),
    mutation_seed=st.integers(min_value=0, max_value=10_000),
    count=st.integers(min_value=1, max_value=1_000),
    last_accessed=st.integers(min_value=0, max_value=100_000),
    size=st.integers(min_value=1, max_value=1_000_000),
    now_offset=st.integers(min_value=0, max_value=100_000),
    in_history=st.booleans(),
)
def test_compiled_and_interpreter_agree(
    seed, mutations, mutation_seed, count, last_accessed, size, now_offset, in_history
):
    program = random_program(SPEC, random.Random(seed))
    mut_rng = random.Random(mutation_seed)
    for _ in range(mutations):
        program = mutate(program, SPEC, mut_rng)
    env = _env(count, last_accessed, size, last_accessed + now_offset, in_history)

    try:
        compiled = compile_program(program)
    except DslCompileError:
        return  # e.g. a mutated-in loop: the adapters use the interpreter
    interpreted = _outcome(lambda: Interpreter().run(program, env))
    fast = _outcome(lambda: compiled.run(env))

    assert interpreted[0] == fast[0], (
        f"outcome mismatch for:\n{to_callable_source(program)}"
    )
    if interpreted[0] == "value":
        assert interpreted[1] == fast[1], (
            f"value mismatch for:\n{to_callable_source(program)}"
        )


# -- fixed-case parity --------------------------------------------------------------


def test_listing_1_compiled_matches_interpreter(priority_env):
    program = parse(LISTING_1)
    assert compile_program(program).run(priority_env) == Interpreter().run(
        program, priority_env
    )


def test_division_by_zero_is_dsl_error():
    program = parse("def f(x) { return 1 / (x - x) }")
    with pytest.raises(DslRuntimeError):
        compile_program(program).run({"x": 3})


def test_unknown_attribute_is_dsl_error(priority_env):
    program = parse(
        "def priority(now, obj_id, obj_info, counts, ages, sizes, history) "
        "{ return obj_info.magic }"
    )
    with pytest.raises(DslRuntimeError):
        compile_program(program).run(priority_env)


def test_unknown_function_is_dsl_error():
    program = parse("def f(x) { return frobnicate(x) }")
    with pytest.raises(DslRuntimeError):
        compile_program(program).run({"x": 1})


def test_missing_parameter_binding_rejected():
    program = parse("def f(x, y) { return x + y }")
    with pytest.raises(DslRuntimeError):
        compile_program(program).run({"x": 1})


def test_loops_are_not_compiled():
    # The interpreter's per-node step budget has no faithful compiled
    # equivalent, so loop programs must be refused (callers fall back).
    for source in (
        "def f(x) { s = 0\n while (1) { s += 1 }\n return s }",
        "def f(n) { s = 0\n for (i in range(n)) { s += i }\n return s }",
    ):
        with pytest.raises(DslCompileError):
            compile_program(parse(source))


def test_make_runner_falls_back_to_interpreter_for_loops():
    program = parse(
        "def f(n) { s = 0\n for (i in range(n)) { s += i }\n return s }"
    )
    runner, backend = make_runner(program, "compiled")
    assert backend == "interpreter"
    assert runner.run({"n": 10}) == 45
    with pytest.raises(ValueError):
        make_runner(program, "gpu")


def test_fallthrough_returns_zero():
    program = parse("def f(x) { y = x + 1 }")
    assert compile_program(program).run({"x": 5}) == 0
    assert Interpreter().run(program, {"x": 5}) == 0


def test_boolop_yields_booleans_like_interpreter():
    # Python's `and` would return the operand (5); the interpreter folds to a
    # boolean, and the compiled path must match.
    program = parse("def f(x) { return (x and 5) + 1 }")
    env = {"x": 2}
    assert Interpreter().run(program, env) == compile_program(program).run(env) == 2


def test_builtin_calls_bypass_local_shadowing():
    # The interpreter resolves *calls* of builtin names through the builtin
    # table even when a local variable shadows the name.
    program = parse("def f(x) { max = 3\n return max(x, 10) }")
    env = {"x": 4}
    assert Interpreter().run(program, env) == compile_program(program).run(env) == 10


def test_compiled_source_is_inspectable():
    program = parse("def f(x) { return x + 1 }")
    source = compile_program(program).python_source
    assert source.startswith("def f(x):")
    assert "return (x + 1)" in source


def test_python_keyword_identifier_raises_compile_error():
    # Legal DSL, illegal Python: callers fall back to the interpreter.
    program = parse("def f(x) { lambda = x + 1\n return lambda }")
    assert Interpreter().run(program, {"x": 2}) == 3
    with pytest.raises(DslCompileError):
        compile_program(program)


def test_helper_namespace_collision_raises_compile_error():
    # A candidate must not be able to shadow the compiler's injected helpers.
    program = parse("def f(x) { __dsl_truthy = 0\n return __dsl_truthy }")
    with pytest.raises(DslCompileError):
        compile_program(program)


def test_keyword_identifier_candidate_falls_back_to_interpreter(priority_env):
    from repro.cache.priority_cache import DslPriorityFunction

    program = parse(
        "def priority(now, obj_id, obj_info, counts, ages, sizes, history) "
        "{ lambda = obj_info.size + 1\n return lambda }"
    )
    fn = DslPriorityFunction(program)
    assert fn.backend == "interpreter"
    assert fn.evaluate(priority_env) == priority_env["obj_info"].size + 1
