"""Code generation tests: round-trip, Python back end, C-like back end."""

import pytest

from repro.dsl import parse, to_c_like, to_python, to_source

from tests.conftest import LISTING_1


ROUNDTRIP_SOURCES = [
    "def f(x) { return x }",
    "def f(x, y) { return x + y * 2 - 3 }",
    "def f(x) { return (x + 1) * (x - 1) }",
    "def f(x) { return x > 3 ? x + 1 : x - 1 }",
    "def f(x) { return x // 2 + x % 3 }",
    "def f(x, y) { return x > 1 and y < 2 or not x }",
    "def f(o) { return o.count * 2 }",
    "def f(s) { return s.percentile(0.75) }",
    "def f(h, k) { return h.contains(k) ? 1 : 0 }",
    "def f(x) {\n y = 0\n if (x > 1) { y = 1 } else { y = 2 }\n return y\n}",
    "def f(x) {\n s = 0\n for (i in range(4)) { s += i }\n return s\n}",
    "def f(x) {\n while (x > 0) { x -= 1 }\n return x\n}",
    "def f(x) { return max(1, min(x, 10)) }",
    "def f(x) { return -x }",
    LISTING_1,
]


@pytest.mark.parametrize("source", ROUNDTRIP_SOURCES)
def test_roundtrip_parse_render_parse(source):
    program = parse(source)
    rendered = to_source(program)
    assert parse(rendered) == program


def test_to_source_is_stable():
    program = parse(LISTING_1)
    once = to_source(program)
    twice = to_source(parse(once))
    assert once == twice


def test_to_python_is_executable_and_equivalent(priority_env):
    from repro.dsl import Interpreter

    program = parse(LISTING_1)
    python_source = to_python(program)
    namespace = {}
    exec(python_source, namespace)  # noqa: S102 - test-controlled input
    python_fn = namespace["priority"]

    interpreted = Interpreter().run(program, priority_env)
    native = python_fn(**priority_env)
    assert native == pytest.approx(interpreted)


def test_to_python_simple_equivalence():
    from repro.dsl import Interpreter

    source = "def f(x) {\n s = 0\n for (i in range(6)) { s += i * x }\n return s\n}"
    program = parse(source)
    namespace = {}
    exec(to_python(program), namespace)  # noqa: S102
    assert namespace["f"](3) == Interpreter().run(program, {"x": 3})


def test_to_c_like_output():
    program = parse("def f(x) {\n y = x + 1\n if (y > 2) { y -= 1 }\n return y\n}")
    rendered = to_c_like(program)
    assert "y = x + 1;" in rendered
    assert "if (y > 2) {" in rendered
    assert rendered.strip().endswith("}")


def test_operator_precedence_preserved():
    from repro.dsl import Interpreter

    source = "def f(a, b, c) { return a - b - c + a * (b + c) }"
    program = parse(source)
    reparsed = parse(to_source(program))
    env = {"a": 7, "b": 3, "c": 2}
    assert Interpreter().run(program, env) == Interpreter().run(reparsed, env)


def test_ternary_rendering_nested():
    source = "def f(x) { return x > 2 ? 1 : x > 1 ? 2 : 3 }"
    program = parse(source)
    assert parse(to_source(program)) == program
