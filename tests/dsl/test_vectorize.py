"""Differential tests of the vectorized lowering backend (hypothesis).

The contract under test is the one the fused simulation loops rely on:
``run_batch`` over arbitrary feature columns is *bit-identical* to evaluating
the scalar kernel row by row, and the kernel itself agrees with the
tree-walking interpreter oracle -- including NaN/inf propagation, rows whose
integers exceed the float64-exact range (2**53), and rows that raise.
Programs the lowering cannot handle must fall back down the
``vectorized -> compiled -> interpreter`` chain, never fail.
"""

import math
import random
import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.search import caching_feature_spec
from repro.dsl import Interpreter, parse
from repro.dsl.analysis import vectorizability
from repro.dsl.compile import make_runner
from repro.dsl.errors import DslError
from repro.dsl.grammar import random_program
from repro.dsl.vectorize import DslVectorizeError, VectorizedProgram, vectorize_program

from tests.conftest import StubAggregate, StubHistory, StubObjectInfo

SPEC = caching_feature_spec()
MAX_EXAMPLES = 50

#: Numeric lanes mix plain magnitudes with the documented edge cases: NaN,
#: +/-inf, signed zero, and integers at/over the float64-exact boundary.
_EDGES = [
    float("nan"),
    float("inf"),
    float("-inf"),
    -0.0,
    0,
    2**53,
    2**53 + 1,
    -(2**53) - 1,
    2**63,
    1e308,
]
_LANE_VALUE = st.one_of(
    st.integers(min_value=-(2**53) - 2, max_value=2**53 + 2),
    st.floats(width=64),  # allows NaN and infinities
    st.sampled_from(_EDGES),
)


def _bits(x: float) -> bytes:
    return struct.pack("<d", x)


def _same_float(a: float, b: float) -> bool:
    """Bit-identity modulo NaN payload (any NaN matches any NaN)."""
    if math.isnan(a) or math.isnan(b):
        return math.isnan(a) and math.isnan(b)
    return _bits(float(a)) == _bits(float(b))


def _oracle_rows(vp: VectorizedProgram, rows):
    """Interpret the kernel program row by row: ("value", v) or ("error",)."""
    interpreter = Interpreter()
    params = vp.kernel.program.params
    outcomes = []
    for row in rows:
        try:
            outcomes.append(("value", interpreter.run(vp.kernel.program, dict(zip(params, row)))))
        except DslError:
            outcomes.append(("error",))
    return outcomes


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), data=st.data())
def test_run_batch_matches_interpreter_oracle(seed, data):
    program = random_program(SPEC, random.Random(seed))
    report = vectorizability(program)
    assert report.ok, "grammar programs stay within the vectorizable subset"
    vp = vectorize_program(program)

    n = data.draw(st.integers(min_value=1, max_value=12), label="rows")
    rows = [
        tuple(data.draw(_LANE_VALUE, label=f"row{i}") for _ in vp.columns)
        for i in range(n)
    ]
    oracle = _oracle_rows(vp, rows)

    first_error = next((i for i, o in enumerate(oracle) if o[0] == "error"), None)
    if first_error is not None:
        with pytest.raises(DslError):
            vp.run_batch_rows(rows)
        return
    out = vp.run_batch_rows(rows)
    assert out.dtype == np.float64 and len(out) == n
    for i, (_tag, value) in enumerate(oracle):
        assert _same_float(out[i], float(value)), (
            f"row {i}: batch {out[i]!r} != oracle {value!r} for {rows[i]}"
        )


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    count=st.integers(min_value=1, max_value=1_000),
    last_accessed=st.integers(min_value=0, max_value=100_000),
    size=st.integers(min_value=1, max_value=1_000_000),
    now=st.integers(min_value=0, max_value=200_000),
    in_history=st.booleans(),
)
def test_vectorized_run_matches_interpreter_on_full_env(
    seed, count, last_accessed, size, now, in_history
):
    """The single-row ``run(env)`` path agrees with the interpreter on the
    *original* program against full feature objects (the evaluator path)."""
    program = random_program(SPEC, random.Random(seed))
    runner, backend = make_runner(program, "vectorized")
    assert backend == "vectorized"

    def env():
        return {
            "now": now,
            "obj_id": 7,
            "obj_info": StubObjectInfo(
                count=count, last_accessed=last_accessed, inserted_at=0, size=size
            ),
            "counts": StubAggregate(max(1, count // 2)),
            "ages": StubAggregate(max(1, now - last_accessed)),
            "sizes": StubAggregate(size),
            "history": StubHistory(members={7} if in_history else set()),
        }

    try:
        expected = Interpreter().run(program, env())
    except DslError:
        with pytest.raises(DslError):
            runner.run(env())
        return
    assert runner.run(env()) == expected


# -- explicit edge cases -------------------------------------------------------------


def test_batch_exact_beyond_float64_integers():
    """Rows whose integers lose precision as float64 are recomputed exactly."""
    vp = vectorize_program(parse("def f(a) { return a * 3 }"))
    big = 2**53 + 1
    out = vp.run_batch({"a": [big, 5, -big]})
    assert _bits(out[0]) == _bits(float(3 * big))
    assert _bits(out[0]) != _bits(float(float(big) * 3))  # the lossy answer
    assert out[1] == 15.0
    assert _bits(out[2]) == _bits(float(3 * -big))


def test_batch_nan_inf_propagation():
    vp = vectorize_program(parse("def f(a, b) { return a + b * 2 }"))
    nan, inf = float("nan"), float("inf")
    out = vp.run_batch({"a": [nan, inf, 1.0, inf], "b": [1.0, 2.0, nan, -inf]})
    assert math.isnan(out[0])
    assert out[1] == inf
    assert math.isnan(out[2])
    assert math.isnan(out[3])  # inf + -inf


def test_batch_division_error_raised_in_row_order():
    vp = vectorize_program(parse("def f(a, b) { return a / b }"))
    with pytest.raises(DslError):
        vp.run_batch({"a": [1.0, 2.0], "b": [2.0, 0.0]})
    out = vp.run_batch({"a": [1.0, 9.0], "b": [2.0, 3.0]})
    assert list(out) == [0.5, 3.0]


def test_batch_rejects_missing_and_ragged_columns():
    vp = vectorize_program(parse("def f(a, b) { return a + b }"))
    with pytest.raises(DslError):
        vp.run_batch({"a": [1.0]})
    with pytest.raises(DslError):
        vp.run_batch({"a": [1.0, 2.0], "b": [1.0]})


# -- fallback chain ------------------------------------------------------------------


def test_unvectorizable_program_falls_back_to_compiled():
    # An expression (not a literal or bare parameter) as a method argument is
    # outside the columnar vocabulary: the program still runs, one rung down.
    source = """def f(now, obj_id, obj_info, counts, ages, sizes, history) {
        return counts.percentile(now % 1)
    }"""
    program = parse(source)
    assert not vectorizability(program).ok
    with pytest.raises(DslVectorizeError):
        vectorize_program(program)
    runner, backend = make_runner(program, "vectorized")
    assert backend == "compiled"


def test_requested_backend_is_respected():
    program = random_program(SPEC, random.Random(0))
    for requested in ("interpreter", "compiled", "vectorized"):
        _runner, resolved = make_runner(program, requested)
        assert resolved == requested


def test_make_runner_rejects_unknown_backend():
    with pytest.raises(ValueError):
        make_runner(random_program(SPEC, random.Random(0)), "numba")
