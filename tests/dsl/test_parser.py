"""Parser and tokenizer tests."""

import pytest

from repro.dsl import (
    Assign,
    AugAssign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    ForRange,
    If,
    Number,
    Return,
    Ternary,
    UnaryOp,
    While,
    parse,
)
from repro.dsl.errors import DslSyntaxError
from repro.dsl.parser import tokenize

from tests.conftest import LISTING_1


def test_parse_minimal_function():
    program = parse("def f(x) { return x }")
    assert program.name == "f"
    assert program.params == ["x"]
    assert isinstance(program.body[0], Return)


def test_parse_listing_1_structure():
    program = parse(LISTING_1)
    assert program.name == "priority"
    assert program.params == [
        "now", "obj_id", "obj_info", "counts", "ages", "sizes", "history",
    ]
    # Listing 1 has one ternary, several ifs, and exactly one return.
    assert len(program.returns()) == 1
    assert any(isinstance(node, Ternary) for node in program.walk())
    assert sum(1 for node in program.walk() if isinstance(node, If)) >= 5


def test_parse_assignment_and_augassign():
    program = parse("def f(x) {\n y = x + 1\n y += 2\n y -= 3\n y *= 4\n return y\n}")
    kinds = [type(stmt) for stmt in program.body]
    assert kinds[:4] == [Assign, AugAssign, AugAssign, AugAssign]


def test_parse_if_else_chain():
    source = """
def f(x) {
    if (x > 10) {
        y = 1
    } else if (x > 5) {
        y = 2
    } else {
        y = 3
    }
    return y
}
"""
    program = parse(source)
    outer = program.body[0]
    assert isinstance(outer, If)
    assert isinstance(outer.orelse[0], If)
    assert isinstance(outer.orelse[0].orelse[0], Assign)


def test_parse_for_and_while():
    program = parse(
        "def f(x) {\n s = 0\n for (i in range(5)) { s += i }\n while (s > 100) { s -= 1 }\n return s\n}"
    )
    assert isinstance(program.body[1], ForRange)
    assert isinstance(program.body[2], While)


def test_parse_ternary_precedence():
    program = parse("def f(x) { return x > 3 ? x + 1 : x - 1 }")
    ret = program.body[0]
    assert isinstance(ret.value, Ternary)
    assert isinstance(ret.value.condition, Compare)


def test_parse_boolean_operators():
    program = parse("def f(x, y) { return x > 1 and y < 2 or not x }")
    ret = program.body[0]
    assert isinstance(ret.value, BoolOp)
    assert ret.value.op == "or"


def test_parse_method_calls_and_attributes():
    program = parse("def f(o, h, k) { return o.size + h.percentile(0.75) - h.count_of(k) }")
    calls = [node for node in program.walk() if isinstance(node, Call)]
    assert len(calls) == 2


def test_parse_operator_precedence():
    program = parse("def f(a, b, c) { return a + b * c }")
    expr = program.body[0].value
    assert isinstance(expr, BinOp) and expr.op == "+"
    assert isinstance(expr.right, BinOp) and expr.right.op == "*"


def test_parse_integer_division_and_modulo():
    program = parse("def f(a) { return a // 2 + a % 3 }")
    ops = {node.op for node in program.walk() if isinstance(node, BinOp)}
    assert ops == {"+", "//", "%"}


def test_parse_unary_minus_and_floats():
    program = parse("def f(a) { return -a * 0.5 }")
    assert any(isinstance(node, UnaryOp) and node.op == "-" for node in program.walk())
    assert any(
        isinstance(node, Number) and isinstance(node.value, float)
        for node in program.walk()
    )


def test_parse_comments_and_semicolons():
    program = parse(
        "def f(x) {\n  # a comment\n  y = 1; y += x\n  return y  # trailing\n}"
    )
    assert len(program.body) == 3


def test_parse_true_false_literals():
    program = parse("def f() { return true }")
    assert program.body[0].value == Number(value=1)


@pytest.mark.parametrize(
    "source",
    [
        "def f(x) { return }",               # missing expression
        "def f(x) { y = }",                  # missing rhs
        "f(x) { return x }",                 # missing def
        "def f(x) return x",                 # missing braces
        "def f(x) { return x ",              # unterminated block
        "def f(x) { return x @ 1 }",         # illegal character
        "def f(x) { if x > 1 { return x } return 0 }",  # missing parens
    ],
)
def test_parse_errors(source):
    with pytest.raises(DslSyntaxError):
        parse(source)


def test_syntax_error_carries_location():
    try:
        parse("def f(x) {\n  y = 1\n  z = @\n  return z\n}")
    except DslSyntaxError as exc:
        assert exc.line == 3
    else:  # pragma: no cover
        pytest.fail("expected a syntax error")


def test_trailing_garbage_rejected():
    with pytest.raises(DslSyntaxError):
        parse("def f(x) { return x }\nreturn 2")


def test_tokenize_positions():
    tokens = tokenize("def f(x) {\n  return x\n}")
    names = [t for t in tokens if t.kind in ("name", "keyword")]
    assert names[0].text == "def" and names[0].line == 1
    return_token = next(t for t in tokens if t.text == "return")
    assert return_token.line == 2


def test_structural_equality_of_parses():
    source = "def f(x) { return x * 2 + 1 }"
    assert parse(source) == parse(source)
    assert parse(source) != parse("def f(x) { return x * 2 + 2 }")
