"""Interpreter semantics and sandboxing tests."""

import pytest

from repro.dsl import EvalContext, Interpreter, parse
from repro.dsl.errors import DslRuntimeError, DslTimeoutError
from repro.dsl.interpreter import FeatureObject

from tests.conftest import LISTING_1


def run(source, **env):
    return Interpreter().run(parse(source), env)


def test_arithmetic_and_precedence():
    assert run("def f(a, b) { return a + b * 2 }", a=1, b=3) == 7
    assert run("def f(a) { return (a + 1) * 2 }", a=2) == 6
    assert run("def f(a) { return a // 4 }", a=10) == 2
    assert run("def f(a) { return a % 4 }", a=10) == 2
    assert run("def f(a) { return a / 4 }", a=10) == 2.5
    assert run("def f(a) { return -a }", a=5) == -5


def test_comparisons_and_booleans():
    assert run("def f(a) { return a > 3 ? 1 : 0 }", a=5) == 1
    assert run("def f(a) { return a > 3 ? 1 : 0 }", a=2) == 0
    assert run("def f(a, b) { return (a > 1 and b > 1) ? 10 : 20 }", a=2, b=0) == 20
    assert run("def f(a, b) { return (a > 1 or b > 1) ? 10 : 20 }", a=2, b=0) == 10
    assert run("def f(a) { return (not (a > 1)) ? 1 : 0 }", a=0) == 1


def test_if_else_execution():
    source = """
def f(x) {
    y = 0
    if (x > 10) {
        y = 1
    } else if (x > 5) {
        y = 2
    } else {
        y = 3
    }
    return y
}
"""
    assert run(source, x=20) == 1
    assert run(source, x=7) == 2
    assert run(source, x=1) == 3


def test_for_range_loop():
    source = "def f(n) {\n s = 0\n for (i in range(n)) { s += i }\n return s\n}"
    assert run(source, n=5) == 10
    assert run(source, n=0) == 0


def test_while_loop():
    source = "def f(n) {\n s = 0\n while (n > 0) { s += n\n n -= 1 }\n return s\n}"
    assert run(source, n=4) == 10


def test_missing_return_yields_zero():
    assert run("def f(x) { y = x + 1 }", x=3) == 0


def test_first_return_wins():
    source = "def f(x) {\n if (x > 0) { return 1 }\n return 2\n}"
    assert run(source, x=5) == 1
    assert run(source, x=-5) == 2


def test_builtins():
    assert run("def f(a, b) { return min(a, b) + max(a, b) }", a=3, b=7) == 10
    assert run("def f(a) { return abs(a) }", a=-4) == 4
    assert run("def f(a) { return clamp(a, 0, 10) }", a=25) == 10
    assert run("def f(a) { return clamp(a, 0, 10) }", a=-5) == 0


def test_division_by_zero_raises():
    with pytest.raises(DslRuntimeError):
        run("def f(a) { return 1 / a }", a=0)
    with pytest.raises(DslRuntimeError):
        run("def f(a) { return 1 // a }", a=0)
    with pytest.raises(DslRuntimeError):
        run("def f(a) { return 1 % a }", a=0)


def test_undefined_variable_raises():
    with pytest.raises(DslRuntimeError):
        run("def f(a) { return b }", a=1)


def test_augassign_of_undefined_variable_raises():
    with pytest.raises(DslRuntimeError):
        run("def f(a) { b += 1\n return a }", a=1)


def test_missing_parameter_binding_raises():
    with pytest.raises(DslRuntimeError):
        Interpreter().run(parse("def f(a, b) { return a + b }"), {"a": 1})


def test_step_budget_stops_infinite_loops():
    interpreter = Interpreter(EvalContext(max_steps=500))
    program = parse("def f(x) {\n while (1 > 0) { x += 1 }\n return x\n}")
    with pytest.raises(DslTimeoutError):
        interpreter.run(program, {"x": 0})


def test_feature_object_attribute_allowlist():
    class Thing(FeatureObject):
        exported_attrs = frozenset({"visible"})

        def __init__(self):
            self.visible = 1
            self.hidden = 2

    assert run("def f(t) { return t.visible }", t=Thing()) == 1
    with pytest.raises(DslRuntimeError):
        run("def f(t) { return t.hidden }", t=Thing())


def test_feature_object_method_allowlist():
    class Thing(FeatureObject):
        exported_methods = frozenset({"ok"})

        def ok(self):
            return 5

        def secret(self):  # pragma: no cover - must not be reachable
            return 6

    assert run("def f(t) { return t.ok() }", t=Thing()) == 5
    with pytest.raises(DslRuntimeError):
        run("def f(t) { return t.secret() }", t=Thing())


def test_attribute_access_on_plain_value_rejected():
    with pytest.raises(DslRuntimeError):
        run("def f(a) { return a.count }", a=5)


def test_unknown_function_rejected():
    with pytest.raises(DslRuntimeError):
        run("def f(a) { return launch_missiles(a) }", a=1)


def test_listing_1_evaluates(priority_env):
    value = Interpreter().run(parse(LISTING_1), priority_env)
    assert isinstance(value, (int, float))
    # With the stub environment (count=5, in history) the score is positive.
    assert value > 0


def test_listing_1_prefers_hot_small_objects(priority_env):
    from tests.conftest import StubObjectInfo, StubHistory

    program = parse(LISTING_1)
    interpreter = Interpreter()
    hot = dict(priority_env)
    hot["obj_info"] = StubObjectInfo(count=50, last_accessed=999, size=100)
    cold = dict(priority_env)
    cold["obj_info"] = StubObjectInfo(count=1, last_accessed=10, size=500000)
    cold["history"] = StubHistory(members=set())
    assert interpreter.run(program, hot) > interpreter.run(program, cold)
