"""Property-based tests for the DSL (hypothesis).

The invariants checked here are what the rest of the system relies on:

* any program produced by the grammar round-trips through the renderer and
  parser unchanged;
* mutation and crossover always produce parseable programs with a return;
* interpreting any grammar/mutated program against a full feature
  environment either returns a number or raises a DslError -- never an
  arbitrary exception and never a host crash.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.dsl import Interpreter, analyze, parse, to_source
from repro.dsl.errors import DslError
from repro.dsl.grammar import random_program
from repro.dsl.mutation import crossover, mutate
from repro.cache.search import caching_feature_spec

from tests.conftest import StubAggregate, StubHistory, StubObjectInfo

SPEC = caching_feature_spec()
MAX_EXAMPLES = 40


def _env(count, last_accessed, size, now, in_history):
    return {
        "now": now,
        "obj_id": 7,
        "obj_info": StubObjectInfo(
            count=count, last_accessed=last_accessed, inserted_at=0, size=size
        ),
        "counts": StubAggregate(max(1, count // 2)),
        "ages": StubAggregate(max(1, now - last_accessed)),
        "sizes": StubAggregate(size),
        "history": StubHistory(members={7} if in_history else set()),
    }


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_grammar_programs_roundtrip(seed):
    program = random_program(SPEC, random.Random(seed))
    assert parse(to_source(program)) == program


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_grammar_programs_always_return(seed):
    program = random_program(SPEC, random.Random(seed))
    facts = analyze(program)
    assert facts.has_return
    assert facts.free_names == []


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    mutation_seed=st.integers(min_value=0, max_value=10_000),
)
def test_mutation_preserves_parseability(seed, mutation_seed):
    rng = random.Random(seed)
    program = random_program(SPEC, rng)
    mutant = mutate(program, SPEC, random.Random(mutation_seed))
    assert mutant.returns()
    assert parse(to_source(mutant)) == mutant


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    seed_a=st.integers(min_value=0, max_value=5_000),
    seed_b=st.integers(min_value=0, max_value=5_000),
    cross_seed=st.integers(min_value=0, max_value=5_000),
)
def test_crossover_preserves_parseability(seed_a, seed_b, cross_seed):
    first = random_program(SPEC, random.Random(seed_a))
    second = random_program(SPEC, random.Random(seed_b))
    child = crossover(first, second, random.Random(cross_seed))
    assert child.returns()
    assert parse(to_source(child)) == child


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    count=st.integers(min_value=1, max_value=1_000),
    last_accessed=st.integers(min_value=0, max_value=100_000),
    size=st.integers(min_value=1, max_value=1_000_000),
    now_offset=st.integers(min_value=0, max_value=100_000),
    in_history=st.booleans(),
)
def test_interpreting_random_programs_is_safe(
    seed, count, last_accessed, size, now_offset, in_history
):
    program = random_program(SPEC, random.Random(seed))
    env = _env(count, last_accessed, size, last_accessed + now_offset, in_history)
    interpreter = Interpreter()
    try:
        value = interpreter.run(program, env)
    except DslError:
        return  # rejected safely (e.g. division by zero at runtime)
    assert isinstance(value, (int, float, bool))


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    env_seed=st.integers(min_value=0, max_value=10_000),
)
def test_interpreter_is_deterministic(seed, env_seed):
    program = random_program(SPEC, random.Random(seed))
    rng = random.Random(env_seed)
    env = _env(
        rng.randint(1, 100),
        rng.randint(0, 10_000),
        rng.randint(1, 100_000),
        rng.randint(10_000, 20_000),
        rng.random() < 0.5,
    )
    interpreter = Interpreter()
    try:
        first = interpreter.run(program, env)
        second = interpreter.run(program, env)
    except DslError:
        return
    assert first == second
