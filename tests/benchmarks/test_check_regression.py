"""Tests of the benchmark-regression comparator (benchmarks/check_regression.py)."""

import json

import pytest

from benchmarks.check_regression import compare, main, tracked_metrics

BASELINE = {
    "bench_full": False,
    "simulate_compiled": {"requests_per_sec": 60000},
    "store_warm_start": {
        "cold_s": 3.2,
        "warm_s": 0.2,
        "speedup": 16.0,
        "disk_hit_rate": 1.0,
    },
    "fidelity_ladder": {"speedup": 2.0, "screened_out": 20},
}


def write(tmp_path, name, data):
    path = tmp_path / name
    path.write_text(json.dumps(data), encoding="utf-8")
    return str(path)


def test_tracked_metrics_select_rate_shaped_numbers():
    metrics = tracked_metrics(BASELINE)
    assert set(metrics) == {
        "simulate_compiled.requests_per_sec",
        "store_warm_start.speedup",
        "store_warm_start.disk_hit_rate",
        "fidelity_ladder.speedup",
    }
    # Wall-clock seconds, counters and flags are untracked by design.
    assert "store_warm_start.cold_s" not in metrics
    assert "fidelity_ladder.screened_out" not in metrics


def test_relative_profile_excludes_absolute_throughputs():
    metrics = tracked_metrics(BASELINE, profile="relative")
    assert set(metrics) == {
        "store_warm_start.speedup",
        "store_warm_start.disk_hit_rate",
        "fidelity_ladder.speedup",
    }


def test_main_relative_profile_ignores_throughput_regressions(tmp_path):
    baseline = write(tmp_path, "baseline.json", BASELINE)
    worse = json.loads(json.dumps(BASELINE))
    worse["simulate_compiled"]["requests_per_sec"] = 30000  # -50% absolute
    current = write(tmp_path, "current.json", worse)
    # A different machine class explains an absolute delta; relative gating
    # (what CI uses) must not fail on it, while the default profile does.
    assert main(["--baseline", baseline, "--current", current]) == 1
    assert (
        main(
            ["--baseline", baseline, "--current", current, "--profile", "relative"]
        )
        == 0
    )


def test_compare_flags_only_regressions_beyond_threshold():
    current = json.loads(json.dumps(BASELINE))
    current["simulate_compiled"]["requests_per_sec"] = 46000  # -23%
    current["store_warm_start"]["speedup"] = 13.0  # -19%: within threshold
    rows, regressions, missing, _notes = compare(BASELINE, current, threshold=0.20)
    assert len(rows) == 4
    assert not missing
    assert [name for name, *_rest in regressions] == [
        "simulate_compiled.requests_per_sec"
    ]


def test_compare_reports_missing_and_new_metrics():
    current = json.loads(json.dumps(BASELINE))
    del current["fidelity_ladder"]
    current["new_bench"] = {"requests_per_sec": 5.0}
    _rows, regressions, missing, notes = compare(BASELINE, current, threshold=0.20)
    assert not regressions
    assert missing == ["fidelity_ladder.speedup"]
    assert any("new metric new_bench.requests_per_sec" in note for note in notes)


def test_main_fails_when_a_baseline_metric_vanishes(tmp_path, capsys):
    """A benchmark that stops emitting a tracked metric must fail the gate
    (a partial benchmark run produces a subset BENCH file), unless the
    caller explicitly tolerates it."""
    baseline = write(tmp_path, "baseline.json", BASELINE)
    partial = json.loads(json.dumps(BASELINE))
    del partial["store_warm_start"]
    current = write(tmp_path, "partial.json", partial)
    assert main(["--baseline", baseline, "--current", current]) == 1
    out = capsys.readouterr().out
    assert "missing: store_warm_start.speedup" in out
    assert (
        main(["--baseline", baseline, "--current", current, "--allow-missing"]) == 0
    )


def test_main_exit_codes(tmp_path, capsys):
    baseline = write(tmp_path, "baseline.json", BASELINE)

    # Identical numbers: success.
    assert main(["--baseline", baseline, "--current", baseline]) == 0

    # A >20% regression fails with exit 1.
    worse = json.loads(json.dumps(BASELINE))
    worse["store_warm_start"]["speedup"] = 10.0
    current = write(tmp_path, "current.json", worse)
    assert main(["--baseline", baseline, "--current", current]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out

    # Improvements never fail, whatever their size.
    better = json.loads(json.dumps(BASELINE))
    better["store_warm_start"]["speedup"] = 100.0
    assert (
        main(["--baseline", baseline, "--current", write(tmp_path, "b.json", better)])
        == 0
    )

    # Mismatched benchmark scales warn (to stderr) but still compare: a full
    # baseline must not block a smoke run, and vice versa.
    full = json.loads(json.dumps(BASELINE))
    full["bench_full"] = True
    assert (
        main(["--baseline", baseline, "--current", write(tmp_path, "f.json", full)])
        == 0
    )
    assert "different benchmark scales" in capsys.readouterr().err

    # Unreadable input is a usage error.
    assert main(["--baseline", str(tmp_path / "nope.json"), "--current", current]) == 2


def test_main_threshold_is_tunable(tmp_path):
    baseline = write(tmp_path, "baseline.json", BASELINE)
    slightly_worse = json.loads(json.dumps(BASELINE))
    slightly_worse["store_warm_start"]["speedup"] = 14.0  # -12.5%
    current = write(tmp_path, "current.json", slightly_worse)
    assert main(["--baseline", baseline, "--current", current]) == 0
    assert (
        main(["--baseline", baseline, "--current", current, "--threshold", "0.10"])
        == 1
    )
    with pytest.raises(SystemExit):
        main(["--baseline", baseline, "--current", current, "--threshold", "2"])
