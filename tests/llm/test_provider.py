"""Tests for the provider block and the resilience wrapper."""

import time

import pytest

from repro.llm.cache import CachingClient
from repro.llm.client import (
    ChatMessage,
    CompletionResponse,
    LLMError,
    LLMTimeoutError,
    ProviderConfig,
    ResilientClient,
    complete_async,
    complete_batch,
    wrap_client,
)

PROMPT = [ChatMessage(role="user", content="hello")]


def response(text, model="fake"):
    return CompletionResponse(
        text=text, prompt_tokens=1, completion_tokens=1, model=model
    )


class FlakyClient:
    """Fails the first ``failures`` calls, then succeeds forever."""

    model = "flaky"

    def __init__(self, failures=0, delay_s=0.0):
        self.failures = failures
        self.delay_s = delay_s
        self.calls = 0

    def complete(self, messages, n=1, temperature=1.0):
        self.calls += 1
        if self.delay_s:
            time.sleep(self.delay_s)
        if self.calls <= self.failures:
            raise RuntimeError(f"transient #{self.calls}")
        return [response(f"ok-{self.calls}") for _ in range(n)]


# -- ResilientClient ----------------------------------------------------------------


def test_retries_absorb_transient_failures():
    sleeps = []
    client = ResilientClient(FlakyClient(failures=2), retries=2, sleep=sleeps.append)
    [reply] = client.complete(PROMPT)
    assert reply.text == "ok-3"
    assert client.attempts == 3
    assert client.failures == 2
    # Exponential backoff before each re-attempt: backoff_s * 2**(attempt-1).
    assert sleeps == [pytest.approx(0.1), pytest.approx(0.2)]


def test_backoff_sequence_and_terminal_error():
    sleeps = []
    client = ResilientClient(
        FlakyClient(failures=99), retries=3, backoff_s=0.1, sleep=sleeps.append
    )
    with pytest.raises(LLMError, match=r"after 4 attempt\(s\).*transient #4"):
        client.complete(PROMPT)
    assert sleeps == [pytest.approx(0.1), pytest.approx(0.2), pytest.approx(0.4)]
    assert client.attempts == 4
    assert client.failures == 4


def test_zero_retries_fails_on_first_error():
    sleeps = []
    client = ResilientClient(FlakyClient(failures=1), retries=0, sleep=sleeps.append)
    with pytest.raises(LLMError, match=r"after 1 attempt\(s\)"):
        client.complete(PROMPT)
    assert sleeps == []


def test_llm_errors_propagate_unwrapped():
    class Refusing:
        model = "refusing"

        def complete(self, messages, n=1, temperature=1.0):
            raise LLMTimeoutError("upstream timeout")

    client = ResilientClient(Refusing(), retries=1, sleep=lambda _s: None)
    # The terminal error keeps its type (and LLMTimeoutError is an LLMError).
    with pytest.raises(LLMTimeoutError, match="upstream timeout"):
        client.complete(PROMPT)


def test_timeout_raises_llm_timeout_error():
    client = ResilientClient(
        FlakyClient(delay_s=0.5), retries=0, timeout_s=0.05, sleep=lambda _s: None
    )
    with pytest.raises(LLMTimeoutError, match="timed out after 0.05s"):
        client.complete(PROMPT)


def test_timeout_then_success_within_retries():
    class SlowOnce:
        model = "slow-once"

        def __init__(self):
            self.calls = 0

        def complete(self, messages, n=1, temperature=1.0):
            self.calls += 1
            if self.calls == 1:
                time.sleep(0.5)
            return [response("fast")]

    client = ResilientClient(SlowOnce(), retries=1, timeout_s=0.1, sleep=lambda _s: None)
    [reply] = client.complete(PROMPT)
    assert reply.text == "fast"
    assert client.failures == 1


def test_batch_retries_per_prompt():
    # One transient failure mid-batch must only re-request that prompt.
    inner = FlakyClient(failures=0)
    calls = {"n": 0}

    def flaky_second(messages, n=1, temperature=1.0):
        calls["n"] += 1
        if calls["n"] == 2:
            raise RuntimeError("transient")
        return [response(f"ok-{calls['n']}")]

    inner.complete = flaky_second
    client = ResilientClient(inner, retries=1, sleep=lambda _s: None)
    replies = client.complete_batch([PROMPT, PROMPT, PROMPT])
    assert [r[0].text for r in replies] == ["ok-1", "ok-3", "ok-4"]
    assert client.failures == 1


def test_module_level_batch_and_async_helpers():
    class Minimal:
        """No batch/async methods: the helpers must fall back to complete()."""

        model = "minimal"

        def complete(self, messages, n=1, temperature=1.0):
            return [response("one") for _ in range(n)]

    minimal = Minimal()
    replies = complete_batch(minimal, [PROMPT, PROMPT], n=2)
    assert [len(r) for r in replies] == [2, 2]

    import asyncio

    assert asyncio.run(complete_async(minimal, PROMPT))[0].text == "one"


def test_state_passthrough():
    class Stateful(FlakyClient):
        def get_state(self):
            return {"calls": self.calls}

    client = ResilientClient(Stateful(), retries=0)
    client.complete(PROMPT)
    assert client.get_state() == {"calls": 1}
    assert client.model == "flaky"


# -- ProviderConfig -----------------------------------------------------------------


def test_provider_config_from_ref_forms():
    assert ProviderConfig.from_ref(None) is None
    assert ProviderConfig.from_ref("synthetic").name == "synthetic"
    config = ProviderConfig.from_ref(
        {"name": "synthetic", "retries": 3, "batch_size": 4}
    )
    assert (config.retries, config.batch_size) == (3, 4)
    assert ProviderConfig.from_ref(config) is config
    # Round-trip: the canonical ref rebuilds an equal config.
    assert ProviderConfig.from_ref(config.to_ref()) == config


@pytest.mark.parametrize(
    "ref, match",
    [
        ("openai", "unknown LLM provider"),
        ({"name": "synthetic", "retry": 1}, "unknown provider key"),
        ({"retries": -1}, "retries cannot be negative"),
        ({"timeout_s": 0}, "timeout_s must be positive"),
        ({"batch_size": 0}, "batch_size must be positive"),
        (42, "must be a name or a mapping"),
    ],
)
def test_provider_config_rejects_bad_refs(ref, match):
    with pytest.raises(ValueError, match=match):
        ProviderConfig.from_ref(ref)


# -- wrap_client --------------------------------------------------------------------


def test_wrap_client_layers(tmp_path):
    base = FlakyClient()
    assert wrap_client(base, None) is base
    assert wrap_client(base, ProviderConfig()) is base  # all-default block

    resilient = wrap_client(base, ProviderConfig(retries=2))
    assert isinstance(resilient, ResilientClient)

    layered = wrap_client(
        base,
        ProviderConfig(retries=1, prompt_cache=str(tmp_path / "pc")),
    )
    # Cache outermost: a hit must cost neither an attempt nor a retry loop.
    assert isinstance(layered, CachingClient)
    assert isinstance(layered.inner, ResilientClient)
    assert layered.inner.inner is base
