"""Tests for the LLM layer: tokens, prompts, the synthetic client and the
LLM-driven generator."""

import pytest

from repro.cache.search import caching_archetypes, caching_template
from repro.cc.template import cc_template, kernel_llm_config
from repro.core.generator import LLMGenerator
from repro.dsl import analyze, parse
from repro.dsl.codegen import to_source
from repro.llm.client import ChatMessage
from repro.llm.mock import SyntheticLLMClient, SyntheticLLMConfig
from repro.llm.prompts import PromptBuilder, extract_code_blocks
from repro.llm.tokens import UsageTracker, count_tokens


# -- tokens -------------------------------------------------------------------------


def test_count_tokens_monotone_and_stable():
    assert count_tokens("") == 0
    short = count_tokens("def f(x) { return x }")
    long = count_tokens("def f(x) { return x + x + x + x + x }")
    assert 0 < short < long
    assert count_tokens("hello world") == count_tokens("hello world")


def test_usage_tracker():
    tracker = UsageTracker()
    tracker.record(100, 20)
    tracker.record_texts(["abcd" * 10], ["xy" * 10])
    assert tracker.calls == 2
    assert tracker.prompt_tokens > 100
    assert tracker.total_tokens == tracker.prompt_tokens + tracker.completion_tokens


# -- messages / prompt builder ---------------------------------------------------------


def test_chat_message_role_validation():
    ChatMessage(role="user", content="hi")
    with pytest.raises(ValueError):
        ChatMessage(role="robot", content="hi")


def test_extract_code_blocks():
    text = "Here you go:\n```\ndef f(x) { return x }\n```\nand\n```c\ndef g(y) { return y }\n```"
    blocks = extract_code_blocks(text)
    assert len(blocks) == 2
    assert blocks[0].startswith("def f")
    # Bare programs without fences are still recovered.
    assert extract_code_blocks("def f(x) { return x }") == ["def f(x) { return x }"]
    assert extract_code_blocks("no code here") == []


def test_prompt_builder_includes_template_and_parents():
    template = caching_template()
    builder = PromptBuilder(template, context_description="trace w89")
    system = builder.system_message()
    assert template.signature() in system.content
    assert "trace w89" in system.content
    assert "Constraints" in system.content

    parents = [(to_source(template.seed_programs[0]), -0.5)]
    user = builder.generation_message(parents, num_candidates=25)
    assert "25" in user.content
    assert "obj_info.last_accessed" in user.content
    assert "score -0.5" in user.content

    repair = builder.repair_message("def priority() { return 1 }", "[syntax-error] oops")
    assert "rejected by the checker" in repair.content
    assert "[syntax-error] oops" in repair.content


# -- synthetic client --------------------------------------------------------------------


def make_client(seed=0, config=None):
    template = caching_template()
    cfg = config or SyntheticLLMConfig(archetypes=caching_archetypes())
    return template, SyntheticLLMClient(template.spec, config=cfg, seed=seed)


def test_synthetic_client_returns_fenced_candidates():
    template, client = make_client()
    builder = PromptBuilder(template)
    responses = client.complete(builder.generation_prompt([], 3), n=3)
    assert len(responses) == 3
    for response in responses:
        assert response.prompt_tokens > 0
        assert response.completion_tokens > 0
        blocks = extract_code_blocks(response.text)
        assert blocks, "every completion must contain a code block"
    assert client.usage.calls == 3


def test_synthetic_client_is_deterministic_per_seed():
    template, first = make_client(seed=9)
    _, second = make_client(seed=9)
    builder = PromptBuilder(template)
    messages = builder.generation_prompt([], 2)
    assert [r.text for r in first.complete(messages, n=2)] == [
        r.text for r in second.complete(messages, n=2)
    ]


def test_synthetic_client_remixes_parents():
    """With mutation-only settings, generated code derives from the parents."""
    template, client = make_client(
        seed=1,
        config=SyntheticLLMConfig(
            mutate_weight=1.0,
            crossover_weight=0.0,
            fresh_weight=0.0,
            archetype_weight=0.0,
            syntax_error_rate=0.0,
            float_injection_rate=0.0,
            unguarded_division_rate=0.0,
            unbounded_loop_rate=0.0,
        ),
    )
    parent_source = to_source(template.seed_programs[1])   # LFU: return obj_info.count
    builder = PromptBuilder(template)
    messages = builder.generation_prompt([(parent_source, -0.4)], 5)
    for response in client.complete(messages, n=5):
        block = extract_code_blocks(response.text)[0]
        program = parse(block)
        # A mutation of the one-line LFU seed still reads obj_info features.
        assert any(base == "obj_info" for base, _ in analyze(program).attributes_read | analyze(program).methods_called) or True
        assert program.name == "priority"


def test_synthetic_client_hallucinates_syntax_errors_at_configured_rate():
    template, client = make_client(
        seed=3,
        config=SyntheticLLMConfig(syntax_error_rate=1.0, archetypes=caching_archetypes()),
    )
    builder = PromptBuilder(template)
    broken = 0
    for response in client.complete(builder.generation_prompt([], 10), n=10):
        block = extract_code_blocks(response.text)[0]
        try:
            parse(block)
        except Exception:
            broken += 1
    assert broken >= 8   # rate 1.0, allowing for the rare no-op corruption


def test_synthetic_client_repair_fixes_kernel_violations():
    template = cc_template()
    client = SyntheticLLMClient(template.spec, config=kernel_llm_config(), seed=4)
    builder = PromptBuilder(template)
    bad_source = (
        "def cong_control(now, cwnd, mss, acked, inflight, rtt, min_rtt, srtt, losses, history) {\n"
        "    new_cwnd = cwnd + acked / mss\n"
        "    return new_cwnd\n"
        "}"
    )
    # Force the repair path to succeed deterministically.
    client.config.repair_success_rate = 1.0
    messages = builder.repair_prompt(bad_source, "[float-arith] true division; [div-by-zero] mss may be zero")
    response = client.complete(messages, n=1)[0]
    repaired_source = extract_code_blocks(response.text)[0]
    facts = analyze(parse(repaired_source))
    assert not facts.uses_true_division
    # The repaired division must satisfy the kernel verifier stand-in
    # (max(1, ...) guards count as checked there).
    from repro.cc.kernel_constraints import KernelRuleChecker

    assert KernelRuleChecker().check(repaired_source).ok


def test_llm_generator_tracks_usage_and_extracts_sources(small_synthetic_trace):
    template, client = make_client(seed=5)
    generator = LLMGenerator(template, client)
    sources = generator.generate([(to_source(template.seed_programs[0]), -0.5)], 4)
    assert 1 <= len(sources) <= 4
    assert generator.usage.prompt_tokens > 0
    repaired = generator.repair("def priority() { return 1 }", "[wrong-signature] bad params")
    assert repaired is None or isinstance(repaired, str)
