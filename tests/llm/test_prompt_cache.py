"""Tests for the on-disk prompt cache and the caching client wrapper.

The contract under test: a malformed entry is always a *miss*, never a
wrong completion -- and for the stateful synthetic client, cold-cache,
warm-cache and cache-disabled runs produce the identical completion stream.
"""

import json

from repro.cache.search import caching_archetypes, caching_template
from repro.llm.cache import (
    CachingClient,
    PROMPT_CACHE_SCHEMA_VERSION,
    PromptCache,
    prompt_key,
    state_fingerprint,
)
from repro.llm.client import ChatMessage, CompletionResponse
from repro.llm.mock import SyntheticLLMClient, SyntheticLLMConfig

PROMPT = [
    ChatMessage(role="system", content="you are a heuristic generator"),
    ChatMessage(role="user", content="propose 3 candidates"),
]


def make_synthetic(seed=7):
    template = caching_template()
    return SyntheticLLMClient(
        template.spec,
        config=SyntheticLLMConfig(archetypes=caching_archetypes()),
        seed=seed,
    )


def response(text):
    return CompletionResponse(
        text=text, prompt_tokens=3, completion_tokens=5, model="fake"
    )


def one_entry(cache):
    files = [
        p
        for p in cache.schema_root.rglob("*.json")
        if p.is_file()
    ]
    assert len(files) == 1
    return files[0]


# -- keying -------------------------------------------------------------------------


def test_prompt_key_sensitivity():
    base = prompt_key("m", PROMPT, 2, 1.0)
    assert base != prompt_key("other", PROMPT, 2, 1.0)
    assert base != prompt_key("m", PROMPT[:1], 2, 1.0)
    assert base != prompt_key("m", PROMPT, 3, 1.0)
    assert base != prompt_key("m", PROMPT, 2, 0.5)
    assert base != prompt_key("m", PROMPT, 2, 1.0, fingerprint="abc")
    # Stable across calls (content-addressed, no incidental state).
    assert base == prompt_key("m", PROMPT, 2, 1.0)
    assert state_fingerprint({"a": 1}) == state_fingerprint({"a": 1})
    assert state_fingerprint({"a": 1}) != state_fingerprint({"a": 2})


# -- store-level robustness ---------------------------------------------------------


def test_round_trip(tmp_path):
    cache = PromptCache(tmp_path)
    key = prompt_key("m", PROMPT, 1, 1.0)
    assert cache.get(key) is None
    assert cache.put(key, [response("hello")], state_after={"rng": [1, 2]})
    entry = cache.get(key)
    assert entry["responses"][0]["text"] == "hello"
    assert entry["state_after"] == {"rng": [1, 2]}
    assert cache.corrupt_reads == 0


def test_truncated_entry_is_a_miss(tmp_path):
    cache = PromptCache(tmp_path)
    key = prompt_key("m", PROMPT, 1, 1.0)
    cache.put(key, [response("hello")])
    path = one_entry(cache)
    path.write_text(path.read_text()[: len(path.read_text()) // 2])
    assert cache.get(key) is None
    assert cache.corrupt_reads == 1


def test_schema_mismatch_is_a_silent_miss(tmp_path):
    cache = PromptCache(tmp_path)
    key = prompt_key("m", PROMPT, 1, 1.0)
    cache.put(key, [response("hello")])
    path = one_entry(cache)
    payload = json.loads(path.read_text())
    payload["schema_version"] = PROMPT_CACHE_SCHEMA_VERSION + 1
    path.write_text(json.dumps(payload))
    # Another schema's entry is not corruption -- just not ours to read.
    assert cache.get(key) is None
    assert cache.corrupt_reads == 0


def test_key_echo_mismatch_is_a_miss(tmp_path):
    cache = PromptCache(tmp_path)
    key = prompt_key("m", PROMPT, 1, 1.0)
    other = prompt_key("m", PROMPT, 2, 1.0)
    cache.put(other, [response("wrong")])
    # Simulate a moved/renamed file: other's payload under key's address.
    path = cache.entry_path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(cache.entry_path(other).read_text())
    assert cache.get(key) is None
    assert cache.corrupt_reads == 1


def test_malformed_response_lists_are_misses(tmp_path):
    cache = PromptCache(tmp_path)
    key = prompt_key("m", PROMPT, 1, 1.0)
    for responses in ([], "nope", [{"text": 3}], [{"text": "x"}]):
        payload = {
            "schema_version": PROMPT_CACHE_SCHEMA_VERSION,
            "key": key,
            "responses": responses,
            "state_after": None,
        }
        path = cache.entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload))
        assert cache.get(key) is None
    assert cache.corrupt_reads == 4


def test_stats_gc_and_clear(tmp_path):
    cache = PromptCache(tmp_path)
    keys = [prompt_key("m", PROMPT, n, 1.0) for n in range(1, 5)]
    for key in keys:
        cache.put(key, [response(key[:8])])
    assert cache.stats().entries == 4
    outcome = cache.gc(max_entries=2)
    assert outcome.removed_entries == 2
    assert outcome.remaining_entries == 2
    assert cache.clear() == 2
    assert cache.stats().entries == 0


def test_read_only_root_degrades_to_passthrough(tmp_path, monkeypatch):
    cache = PromptCache(tmp_path)
    monkeypatch.setattr(
        PromptCache,
        "_atomic_write_text",
        staticmethod(lambda path, text: (_ for _ in ()).throw(OSError("read-only"))),
    )
    assert cache.put(prompt_key("m", PROMPT, 1, 1.0), [response("x")]) is False
    assert cache.write_errors == 1


# -- CachingClient ------------------------------------------------------------------


def drive(client, calls=4):
    """A fixed call sequence; returns the flat list of completion texts."""
    texts = []
    for n in (2, 1, 3, 1)[:calls]:
        for reply in client.complete(PROMPT, n=n):
            texts.append(reply.text)
    return texts


def test_cold_warm_disabled_streams_identical(tmp_path):
    # Cache disabled: the reference stream.
    reference = drive(make_synthetic())

    # Cold: every call misses but returns the same stream.
    cache = PromptCache(tmp_path)
    cold = CachingClient(make_synthetic(), cache)
    assert drive(cold) == reference
    assert (cold.hits, cold.misses) == (0, 4)

    # Warm: every call hits -- and state restoration keeps the stream exact.
    warm = CachingClient(make_synthetic(), cache)
    assert drive(warm) == reference
    assert (warm.hits, warm.misses) == (4, 0)
    assert warm.get_state() == cold.get_state()


def test_corruption_mid_run_regenerates_identical_stream(tmp_path):
    reference = drive(make_synthetic())
    cache = PromptCache(tmp_path)
    drive(CachingClient(make_synthetic(), cache))

    # Corrupt every entry: the warm run degrades to cold, not to wrong data.
    for path in cache.schema_root.rglob("*.json"):
        path.write_text("{broken")
    client = CachingClient(make_synthetic(), cache)
    assert drive(client) == reference
    assert (client.hits, client.misses) == (0, 4)
    assert cache.corrupt_reads == 4


def test_stateful_entry_without_state_is_not_trusted(tmp_path):
    cache = PromptCache(tmp_path)
    client = CachingClient(make_synthetic(), cache)
    fingerprint = state_fingerprint(client.inner.get_state())
    key = prompt_key(client.model, PROMPT, 1, 1.0, fingerprint)
    # An entry recorded without a post-call state cannot restore the RNG.
    cache.put(key, [response("stale")], state_after=None)
    [reply] = client.complete(PROMPT, n=1)
    assert reply.text != "stale"
    assert client.misses == 1


def test_stateless_client_hits_across_instances(tmp_path):
    class Stateless:
        model = "api"

        def __init__(self):
            self.calls = 0

        def complete(self, messages, n=1, temperature=1.0):
            self.calls += 1
            return [response(f"call-{self.calls}") for _ in range(n)]

    cache = PromptCache(tmp_path)
    first = CachingClient(Stateless(), cache)
    assert [r.text for r in first.complete(PROMPT)] == ["call-1"]

    second = CachingClient(Stateless(), cache)
    # Same prompt, fresh client: content-addressed hit, no inner call.
    assert [r.text for r in second.complete(PROMPT)] == ["call-1"]
    assert second.inner.calls == 0
    assert (second.hits, second.misses) == (1, 0)
