"""Experiment-harness tests on reduced corpora / candidate counts.

These tests verify the harness mechanics and the qualitative *shape* of the
paper's results (see EXPERIMENTS.md); the benchmark suite runs the larger
versions.
"""

import json

import pytest

from repro.experiments.cc_behaviour import format_behaviour, run_cc_behaviour
from repro.experiments.cc_compilation import format_compilation, run_cc_compilation
from repro.experiments.corpus import evaluate_corpus
from repro.experiments.cost_accounting import format_cost_report, run_cost_accounting
from repro.experiments.figure2 import (
    figure2_from_evaluation,
    figure2_payload,
    format_figure2,
    render_figure2,
)
from repro.experiments.registry import (
    available_experiments,
    get_experiment,
    merge_params,
    run_experiment,
)
from repro.experiments.table2 import format_table2, table2_from_evaluation


@pytest.fixture(scope="module")
def small_cloudphysics_evaluation():
    """8 CloudPhysics-like traces with shortened requests: shared by tests."""
    return evaluate_corpus("cloudphysics", trace_count=8, num_requests=2500)


def test_corpus_evaluation_structure(small_cloudphysics_evaluation):
    evaluation = small_cloudphysics_evaluation
    assert len(evaluation.traces()) == 8
    assert len(evaluation.baseline_names) == 14
    assert len(evaluation.heuristic_names) == 4
    for trace, per_policy in evaluation.results.items():
        assert "FIFO" in per_policy
        for result in per_policy.values():
            assert result.trace == trace
            assert 0 < result.miss_ratio <= 1


def test_figure2_shape(small_cloudphysics_evaluation):
    figure = figure2_from_evaluation(small_cloudphysics_evaluation)
    policies = {row.policy for row in figure.rows}
    assert {"GDSF", "FIFO", "Heuristic A", "B-Oracle", "PS-Oracle"} <= policies

    fifo = figure.row("FIFO")
    assert fifo.mean_improvement == pytest.approx(0.0)

    b_oracle = figure.row("B-Oracle")
    ps_oracle = figure.row("PS-Oracle")
    # Oracles dominate: per trace they pick the best candidate.
    for row in figure.rows:
        if row.kind == "baseline":
            assert b_oracle.mean_improvement >= row.mean_improvement - 1e-9
    assert ps_oracle.mean_improvement >= b_oracle.mean_improvement - 1e-9

    # The strongest synthesized heuristics sit near the top of the ordering
    # (the paper: second only to GDSF on average).
    ordered = [row.policy for row in figure.ordered_rows()]
    top_half = ordered[len(ordered) // 2 :]
    assert any(name.startswith("Heuristic") for name in top_half)

    text = format_figure2(figure, top_baselines=5)
    assert "Figure 2" in text and "GDSF" in text


def test_figure2_json_roundtrip(small_cloudphysics_evaluation):
    import json

    figure = figure2_from_evaluation(small_cloudphysics_evaluation)
    payload = json.loads(figure.to_json())
    assert payload["dataset"] == "cloudphysics"
    assert len(payload["rows"]) == len(figure.rows)


def test_table2_shape(small_cloudphysics_evaluation):
    entries = table2_from_evaluation(small_cloudphysics_evaluation)
    assert len(entries) == 4
    for entry in entries:
        assert 0 <= entry.wins <= entry.traces == 8
        assert 0.0 <= entry.win_fraction <= 1.0
    # At least one synthesized heuristic wins on a substantial share of
    # traces (the paper reports 14-48 % for CloudPhysics).
    assert max(entry.win_fraction for entry in entries) >= 0.25
    assert "Table 2" in format_table2(entries)


def test_cc_compilation_rates_match_paper_shape():
    reports = run_cc_compilation(num_candidates=60, seed=11, include_caching=True)
    by_name = {report.template: report for report in reports}
    kernel = by_name["cong-control"]
    caching = by_name["cache-priority"]
    # Kernel-constrained generation passes much less often on the first try
    # than caching generation (paper: 63 % vs 92 %)...
    assert kernel.first_pass_rate < caching.first_pass_rate
    assert 0.4 <= kernel.first_pass_rate <= 0.85
    assert caching.first_pass_rate >= 0.8
    # ...and checker feedback repairs a meaningful share of the rejects.
    assert kernel.repaired_rate > 0.05
    assert kernel.first_pass + kernel.repaired + kernel.failed == kernel.candidates
    # Dominant failure causes are the ones the paper names.
    assert set(kernel.failure_codes) & {"float-arith", "div-by-zero"}
    assert "first pass" in format_compilation(reports)


def test_cc_behaviour_spread():
    report = run_cc_behaviour(num_candidates=12, seed=23, duration_s=2.0)
    assert len(report.candidates) >= 8
    util_lo, util_hi = report.utilization_range()
    delay_lo, delay_hi = report.delay_range_ms()
    # Wide behavioural diversity, as in §5.0.3 (23-98 % util, 2-40 ms delay).
    assert util_hi - util_lo > 0.3
    assert 0 <= delay_lo <= delay_hi <= 60
    assert report.baselines and report.baselines[0].utilization > 0.8
    assert "bandwidth utilisation" in format_behaviour(report)


def test_cost_accounting_report():
    report = run_cost_accounting(trace_indices=[89], rounds=1, candidates_per_round=4,
                                 num_requests=1200)
    assert report.runs == 1
    assert report.prompt_tokens > 0
    assert report.completion_tokens > 0
    assert report.total_cost_usd > 0
    assert report.evaluation_cpu_seconds > 0
    text = format_cost_report(report)
    assert "TOTAL" in text and "CPU-hours" in text


# -- the experiment registry --------------------------------------------------------


def test_all_seven_experiments_registered():
    assert available_experiments() == [
        "ablations",
        "caching-search",
        "cc-behaviour",
        "cc-compilation",
        "cost-accounting",
        "figure2",
        "table2",
    ]


def test_merge_params_rejects_unknown_keys():
    experiment = get_experiment("table2")
    with pytest.raises(ValueError, match="no parameter"):
        merge_params(experiment, {"bogus": 1})
    merged = merge_params(experiment, {"traces": 3})
    assert merged["traces"] == 3
    assert merged["dataset"] == "both"


def test_renderers_are_pure_reducers(small_cloudphysics_evaluation):
    """render(payload) must survive a JSON round-trip byte-identically --
    that is the contract `repro report` relies on."""
    payload = figure2_payload(
        figure2_from_evaluation(small_cloudphysics_evaluation), top_baselines=5
    )
    rendered = render_figure2(payload)
    rendered_from_disk_form = render_figure2(json.loads(json.dumps(payload)))
    assert rendered == rendered_from_disk_form
    assert "Figure 2" in rendered


def test_cost_accounting_accepts_scalar_trace_index():
    payload = run_experiment(
        "cost-accounting", traces=89, rounds=1, candidates=3, requests=800
    )
    assert len(payload["per_run"]) == 1
    assert "w89" in payload["per_run"][0]["name"]


def test_run_experiment_end_to_end():
    payload = run_experiment("cc-compilation", candidates=30)
    experiment = get_experiment("cc-compilation")
    text = experiment.renderer(payload)
    assert "first pass" in text
    assert payload["kind"] == "cc-compilation"
    json.dumps(payload)  # payloads must be JSON-serializable
