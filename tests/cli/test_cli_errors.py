"""CLI error paths and the ``--fidelity`` override.

Every user mistake must exit 2 with a one-line ``error:`` message on stderr
-- never a traceback -- and ``repro store gc`` must handle degenerate stores.
"""

import json
from pathlib import Path

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
SMOKE_SPEC = REPO_ROOT / "examples" / "specs" / "smoke_caching.json"


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def write_spec(tmp_path, data) -> str:
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(data), encoding="utf-8")
    return str(path)


# -- bad specs ----------------------------------------------------------------------


def test_run_malformed_spec_json_exits_2(capsys, tmp_path):
    path = tmp_path / "broken.json"
    path.write_text('{"domain": "caching",', encoding="utf-8")
    code, _out, err = run_cli(capsys, "run", str(path), "--no-artifacts")
    assert code == 2
    assert err.startswith("error:")
    assert "Traceback" not in err


def test_run_spec_with_unknown_workload_name_exits_2(capsys, tmp_path):
    spec = write_spec(
        tmp_path,
        {
            "domain": "caching",
            "name": "bad-workload",
            "domain_kwargs": {"workloads": ["caching/no-such-trace"]},
            "search": {"rounds": 1, "candidates_per_round": 2},
        },
    )
    code, _out, err = run_cli(capsys, "run", spec, "--no-artifacts", "--quiet")
    assert code == 2
    assert "unknown workload 'caching/no-such-trace'" in err
    assert "available:" in err
    assert "Traceback" not in err


def test_run_spec_with_unknown_domain_exits_2(capsys, tmp_path):
    spec = write_spec(
        tmp_path, {"domain": "quantum", "search": {"rounds": 1}}
    )
    code, _out, err = run_cli(capsys, "run", spec, "--no-artifacts", "--quiet")
    assert code == 2
    assert "unknown search domain" in err


def test_workloads_show_unknown_name_exits_2(capsys):
    code, _out, err = run_cli(capsys, "workloads", "show", "caching/nope")
    assert code == 2
    assert "unknown workload" in err


# -- engine overrides ---------------------------------------------------------------


def test_run_unknown_executor_exits_2_listing_names(capsys):
    code, _out, err = run_cli(
        capsys, "run", str(SMOKE_SPEC), "--no-artifacts", "--executor", "quantum"
    )
    assert code == 2
    assert "unknown executor 'quantum'" in err
    for name in ("serial", "thread", "process", "async", "distributed"):
        assert name in err
    assert "Traceback" not in err


def test_worker_rejects_nonpositive_poll(capsys, tmp_path):
    code, _out, err = run_cli(capsys, "worker", str(tmp_path), "--poll-s", "0")
    assert code == 2
    assert "--poll-s" in err
    assert "Traceback" not in err


def test_worker_once_on_an_empty_queue_exits_0(capsys, tmp_path):
    # --once drains whatever is pending (here: nothing) and returns cleanly.
    code, _out, _err = run_cli(
        capsys, "worker", str(tmp_path / "queue"), "--once", "--quiet"
    )
    assert code == 0


# -- the --fidelity override --------------------------------------------------------


def test_fidelity_flag_rung_list_applies(capsys, tmp_path):
    code, _out, err = run_cli(
        capsys,
        "run",
        str(SMOKE_SPEC),
        "--artifacts",
        str(tmp_path),
        "--fidelity",
        "0.2,1.0",
        "--quiet",
    )
    assert code == 0
    run_dirs = [p for p in tmp_path.iterdir() if (p / "spec.json").exists()]
    spec = json.loads((run_dirs[0] / "spec.json").read_text(encoding="utf-8"))
    assert spec["fidelity"]["rungs"] == [0.2, 1.0]
    assert spec["fidelity"]["mode"] == "screen"
    metadata = json.loads((run_dirs[0] / "metadata.json").read_text(encoding="utf-8"))
    assert metadata["fidelity"]["schedule"]["rungs"] == [0.2, 1.0]


def test_fidelity_flag_json_and_off_forms(capsys, tmp_path):
    spec = write_spec(
        tmp_path,
        {
            "domain": "caching",
            "name": "fid-off",
            "domain_kwargs": {
                "workloads": [
                    {"name": "caching/zipf-hot", "num_requests": 300, "num_objects": 100}
                ]
            },
            "search": {"rounds": 1, "candidates_per_round": 2},
            "fidelity": {"rungs": [0.5, 1.0]},
        },
    )
    code, _out, _err = run_cli(
        capsys, "run", spec, "--artifacts", str(tmp_path / "a"),
        "--fidelity", '{"rungs": [0.25, 1.0], "mode": "shadow", "eta": 4}', "--quiet",
    )
    assert code == 0
    run_dir = next(
        p for p in (tmp_path / "a").iterdir() if (p / "spec.json").exists()
    )
    stored = json.loads((run_dir / "spec.json").read_text(encoding="utf-8"))
    assert stored["fidelity"] == {
        "rungs": [0.25, 1.0], "eta": 4.0, "min_keep": 2, "mode": "shadow",
    }
    # "off" strips the spec's own ladder.
    code, _out, _err = run_cli(
        capsys, "run", spec, "--artifacts", str(tmp_path / "b"),
        "--fidelity", "off", "--quiet",
    )
    assert code == 0
    run_dir = next(
        p for p in (tmp_path / "b").iterdir() if (p / "spec.json").exists()
    )
    stored = json.loads((run_dir / "spec.json").read_text(encoding="utf-8"))
    assert stored["fidelity"] is None


def test_fidelity_flag_rejects_garbage(capsys):
    code, _out, err = run_cli(
        capsys, "run", str(SMOKE_SPEC), "--no-artifacts", "--fidelity", "fast,please"
    )
    assert code == 2
    assert "--fidelity expects" in err


def test_fidelity_flag_rejects_a_bare_number(capsys):
    # json.loads happily parses "0.5"; it still is not a schedule.
    code, _out, err = run_cli(
        capsys, "run", str(SMOKE_SPEC), "--no-artifacts", "--fidelity", "0.5"
    )
    assert code == 2
    assert "--fidelity expects" in err
    assert "Traceback" not in err


def test_fidelity_flag_rejects_bad_ladders(capsys):
    # Valid syntax, invalid schedule (last rung must be 1.0).
    code, _out, err = run_cli(
        capsys, "run", str(SMOKE_SPEC), "--no-artifacts", "--fidelity", "0.1,0.5"
    )
    assert code == 2
    assert "final rung" in err


def test_fidelity_flag_rejected_for_experiments(capsys):
    code, _out, err = run_cli(
        capsys, "run", "figure2", "--no-artifacts", "--fidelity", "0.1,1.0"
    )
    assert code == 2
    assert "--fidelity applies to RunSpec runs" in err


# -- report on broken run directories -----------------------------------------------


def make_run_dir(tmp_path, name="broken-run"):
    """A structurally-valid run directory missing its result.json."""
    run_dir = tmp_path / name
    run_dir.mkdir()
    (run_dir / "spec.json").write_text(
        json.dumps({"domain": "caching", "name": name}), encoding="utf-8"
    )
    (run_dir / "metadata.json").write_text(
        json.dumps({"artifact_version": 1, "kind": "search"}), encoding="utf-8"
    )
    return run_dir


def test_report_missing_result_json_exits_2_naming_path(capsys, tmp_path):
    run_dir = make_run_dir(tmp_path)
    code, _out, err = run_cli(capsys, "report", str(run_dir))
    assert code == 2
    assert err.startswith("error:")
    assert str(run_dir / "result.json") in err
    assert "repro resume" in err
    assert "Traceback" not in err


def test_report_truncated_result_json_exits_2_naming_path(capsys, tmp_path):
    run_dir = make_run_dir(tmp_path)
    # A write interrupted mid-flush: syntactically invalid JSON.
    (run_dir / "result.json").write_text('{"rounds": [{"round_in', encoding="utf-8")
    code, _out, err = run_cli(capsys, "report", str(run_dir))
    assert code == 2
    assert str(run_dir / "result.json") in err
    assert "corrupt or truncated" in err
    assert "Traceback" not in err


# -- certify ------------------------------------------------------------------------


CC_PROGRAM = (
    "def cong_control(now, cwnd, mss, acked, inflight, rtt, min_rtt, srtt, "
    "losses, history) { return cwnd + 5000 }"
)


def write_program(tmp_path, source, name="prog.dsl") -> str:
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return str(path)


def test_certify_program_file_infers_cc_domain(capsys, tmp_path):
    path = write_program(tmp_path, CC_PROGRAM)
    code, out, _err = run_cli(capsys, "certify", path)
    assert code == 0
    assert "domain     : cc" in out
    assert "cong_control in [5002, 9096]" in out
    assert "applied window in [4096, 4096]" in out


def test_certify_program_file_json_output(capsys, tmp_path):
    path = write_program(tmp_path, CC_PROGRAM)
    code, out, _err = run_cli(capsys, "certify", path, "--json")
    assert code == 0
    record = json.loads(out)
    assert record["bounds"] == {"lo": 5002, "hi": 9096}
    assert record["clamped_bounds"] == {"lo": 4096, "hi": 4096}
    assert record["function"] == "cong_control"


def test_certify_caching_program_file(capsys, tmp_path):
    source = (
        "def priority(now, obj_id, obj_info, counts, ages, sizes, history) "
        "{ return obj_info.count }"
    )
    path = write_program(tmp_path, source)
    code, out, _err = run_cli(capsys, "certify", path)
    assert code == 0
    assert "domain     : caching" in out
    assert "priority in [0, +inf]" in out


def test_certify_unknown_function_name_needs_domain(capsys, tmp_path):
    path = write_program(tmp_path, "def mystery(x) { return x }")
    code, _out, err = run_cli(capsys, "certify", path)
    assert code == 2
    assert "cannot infer a domain" in err
    assert "--domain" in err


def test_certify_nonexistent_target_exits_2(capsys, tmp_path):
    code, _out, err = run_cli(capsys, "certify", str(tmp_path / "nope"))
    assert code == 2
    assert "neither a run directory nor a DSL program file" in err
    assert "Traceback" not in err


def test_certify_invalid_dsl_file_exits_2(capsys, tmp_path):
    path = write_program(tmp_path, "def broken( { nope")
    code, _out, err = run_cli(capsys, "certify", path)
    assert code == 2
    assert "not a valid DSL program" in err
    assert "Traceback" not in err


def test_certify_run_dir_missing_result_json_exits_2(capsys, tmp_path):
    run_dir = make_run_dir(tmp_path)
    code, _out, err = run_cli(capsys, "certify", str(run_dir))
    assert code == 2
    assert str(run_dir / "result.json") in err


# -- store maintenance on degenerate stores -----------------------------------------


def test_store_gc_on_missing_directory(capsys, tmp_path):
    code, out, _err = run_cli(
        capsys, "store", "gc", "--store", str(tmp_path / "nope"), "--max-bytes", "0"
    )
    assert code == 0
    assert "removed 0 entries" in out


def test_store_gc_requires_a_bound(capsys, tmp_path):
    code, _out, err = run_cli(capsys, "store", "gc", "--store", str(tmp_path))
    assert code == 2
    assert "needs a bound" in err
