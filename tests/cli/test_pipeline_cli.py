"""CLI surface of the pipelined scheduler: ``--pipeline`` / ``--provider``
on run/sweep, and ``repro store --prompt-cache`` maintenance."""

import json
from pathlib import Path

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
SMOKE_SPEC = REPO_ROOT / "examples" / "specs" / "smoke_caching.json"


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_pipeline_flag_keeps_report_identical(capsys, tmp_path):
    code, serial_out, _ = run_cli(
        capsys, "run", str(SMOKE_SPEC), "--artifacts", str(tmp_path / "a"), "--quiet"
    )
    assert code == 0
    code, piped_out, _ = run_cli(
        capsys,
        "run", str(SMOKE_SPEC),
        "--artifacts", str(tmp_path / "b"),
        "--quiet",
        "--pipeline",
    )
    assert code == 0
    assert piped_out == serial_out


def test_provider_flag_and_prompt_cache_store_commands(capsys, tmp_path):
    cache_dir = tmp_path / "pc"
    provider = json.dumps(
        {"name": "synthetic", "retries": 1, "batch_size": 2,
         "prompt_cache": str(cache_dir)}
    )
    code, _out, _err = run_cli(
        capsys,
        "run", str(SMOKE_SPEC),
        "--artifacts", str(tmp_path / "runs"),
        "--quiet", "--no-eval-store",
        "--pipeline", "--provider", provider,
    )
    assert code == 0
    assert cache_dir.exists()

    code, out, _ = run_cli(
        capsys, "store", "stats", "--prompt-cache", "--store", str(cache_dir), "--json"
    )
    assert code == 0
    stats = json.loads(out)
    assert stats["entries"] > 0

    code, out, _ = run_cli(
        capsys, "store", "gc", "--prompt-cache", "--store", str(cache_dir),
        "--max-entries", "1",
    )
    assert code == 0
    assert "1 entries" in out

    code, out, _ = run_cli(
        capsys, "store", "clear", "--prompt-cache", "--store", str(cache_dir)
    )
    assert code == 0
    assert out.startswith("removed 1 entries")

    code, out, _ = run_cli(
        capsys, "store", "stats", "--prompt-cache", "--store", str(cache_dir), "--json"
    )
    assert code == 0
    assert json.loads(out)["entries"] == 0


def test_bare_provider_name_accepted(capsys, tmp_path):
    code, _out, _err = run_cli(
        capsys,
        "run", str(SMOKE_SPEC),
        "--artifacts", str(tmp_path),
        "--quiet", "--provider", "synthetic",
    )
    assert code == 0


def test_unknown_provider_is_a_clean_error(capsys, tmp_path):
    code, _out, err = run_cli(
        capsys,
        "run", str(SMOKE_SPEC), "--no-artifacts", "--quiet",
        "--provider", "openai",
    )
    assert code == 2
    assert "unknown LLM provider" in err


def test_malformed_provider_json_is_a_clean_error(capsys):
    code, _out, err = run_cli(
        capsys,
        "run", str(SMOKE_SPEC), "--no-artifacts", "--quiet",
        "--provider", "[1, 2]",
    )
    assert code == 2
    assert "--provider expects" in err


def test_pipeline_flags_rejected_for_experiments(capsys):
    code, _out, err = run_cli(capsys, "run", "caching-search", "--pipeline")
    assert code == 2
    assert "--pipeline/--provider apply to RunSpec runs" in err

    code, _out, err = run_cli(
        capsys, "run", "caching-search", "--provider", "synthetic"
    )
    assert code == 2
    assert "--pipeline/--provider apply to RunSpec runs" in err


def test_sweep_accepts_pipeline_flags(capsys, tmp_path):
    code, out, _err = run_cli(
        capsys,
        "sweep", str(SMOKE_SPEC),
        "--seeds", "3", "4",
        "--artifacts", str(tmp_path),
        "--quiet", "--no-eval-store",
        "--pipeline",
        "--provider", json.dumps({"name": "synthetic", "batch_size": 2}),
    )
    assert code == 0
    assert "seed" in out
