"""CLI coverage for `repro workloads list|show` and matrix-run reports."""

import subprocess
import sys
from pathlib import Path

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
MATRIX_SPEC = REPO_ROOT / "examples" / "specs" / "smoke_matrix.json"


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def artifact_dir_from(err: str) -> Path:
    for line in err.splitlines():
        if line.startswith("artifacts: "):
            return Path(line.split("artifacts: ", 1)[1])
    raise AssertionError(f"no artifacts line in stderr:\n{err}")


def test_workloads_list(capsys):
    code, out, _err = run_cli(capsys, "workloads", "list")
    assert code == 0
    for name in (
        "caching/cloudphysics",
        "caching/adversarial-loop",
        "caching/shifting",
        "cc/single-flow",
        "cc/bursty-cross",
        "cc/lossy-link",
    ):
        assert name in out
    assert "est. length" in out


def test_workloads_list_domain_filter(capsys):
    code, out, _err = run_cli(capsys, "workloads", "list", "--domain", "cc")
    assert code == 0
    assert "cc/single-flow" in out
    assert "caching/" not in out


def test_workloads_show(capsys):
    code, out, _err = run_cli(capsys, "workloads", "show", "cc/lossy-link")
    assert code == 0
    assert "workload   : cc/lossy-link" in out
    assert "kind       : netsim" in out
    assert '"loss_rate" = 0.01' in out or "loss_rate = 0.01" in out


def test_workloads_show_unknown_name(capsys):
    code, _out, err = run_cli(capsys, "workloads", "show", "caching/nope")
    assert code == 2
    assert "unknown workload" in err


def test_workloads_show_requires_name(capsys):
    code, _out, err = run_cli(capsys, "workloads", "show")
    assert code == 2
    assert "needs a workload name" in err


def test_matrix_run_report_byte_identical_with_scenario_table(capsys, tmp_path):
    code, run_out, run_err = run_cli(
        capsys, "run", str(MATRIX_SPEC), "--artifacts", str(tmp_path), "--quiet"
    )
    assert code == 0
    assert "Per-scenario scores" in run_out
    assert "caching/zipf-hot" in run_out
    assert "caching/adversarial-loop" in run_out

    run_dir = artifact_dir_from(run_err)
    code, report_out, _ = run_cli(capsys, "report", str(run_dir))
    assert code == 0
    assert report_out == run_out


def test_workloads_list_subprocess_entry_point():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "workloads", "list", "--domain", "caching"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr
    assert "caching/zipf-hot" in proc.stdout
