"""CLI smoke tests: run / sweep / resume / experiments list / report.

``repro report`` must reproduce ``repro run`` stdout byte-for-byte from the
stored artifacts, which is what most of these tests pin down.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
SMOKE_SPEC = REPO_ROOT / "examples" / "specs" / "smoke_caching.json"


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def artifact_dir_from(err: str) -> Path:
    for line in err.splitlines():
        if line.startswith("artifacts: "):
            return Path(line.split("artifacts: ", 1)[1])
    raise AssertionError(f"no artifacts line in stderr:\n{err}")


# -- experiments list ---------------------------------------------------------------


def test_experiments_list(capsys):
    code, out, _err = run_cli(capsys, "experiments", "list")
    assert code == 0
    for name in (
        "caching-search",
        "figure2",
        "table2",
        "ablations",
        "cost-accounting",
        "cc-compilation",
        "cc-behaviour",
    ):
        assert name in out
    assert "defaults:" in out


# -- run: spec file -----------------------------------------------------------------


def test_run_spec_then_report_byte_identical(capsys, tmp_path):
    code, run_out, run_err = run_cli(
        capsys, "run", str(SMOKE_SPEC), "--artifacts", str(tmp_path), "--quiet"
    )
    assert code == 0
    assert "Search run: smoke-caching" in run_out
    run_dir = artifact_dir_from(run_err)
    assert run_dir.exists()

    code, report_out, _ = run_cli(capsys, "report", str(run_dir))
    assert code == 0
    assert report_out == run_out


def test_run_spec_progress_on_stderr(capsys, tmp_path):
    _code, out, err = run_cli(
        capsys, "run", str(SMOKE_SPEC), "--artifacts", str(tmp_path)
    )
    assert "run started:" in err
    assert "run started:" not in out


def test_resume_completed_run_is_stable(capsys, tmp_path):
    _code, run_out, run_err = run_cli(
        capsys, "run", str(SMOKE_SPEC), "--artifacts", str(tmp_path), "--quiet"
    )
    run_dir = artifact_dir_from(run_err)
    code, resume_out, _ = run_cli(capsys, "resume", str(run_dir), "--quiet")
    assert code == 0
    assert resume_out == run_out


def test_resume_refuses_uncheckpointed_spec(capsys, tmp_path):
    spec = json.loads(SMOKE_SPEC.read_text())
    spec["checkpoint"] = False
    spec["name"] = "no-ckpt"
    spec_file = tmp_path / "spec.json"
    spec_file.write_text(json.dumps(spec))
    _code, _out, err = run_cli(
        capsys, "run", str(spec_file), "--artifacts", str(tmp_path), "--quiet"
    )
    run_dir = artifact_dir_from(err)
    code, _out, err = run_cli(capsys, "resume", str(run_dir))
    assert code == 2
    assert "nothing to resume" in err


# -- run: registered experiments ----------------------------------------------------


def test_run_experiment_then_report_byte_identical(capsys, tmp_path):
    code, run_out, run_err = run_cli(
        capsys,
        "run",
        "table2",
        "--set",
        "traces=4",
        "--set",
        "requests=1200",
        "--artifacts",
        str(tmp_path),
    )
    assert code == 0
    assert "Table 2" in run_out
    run_dir = artifact_dir_from(run_err)
    spec = json.loads((run_dir / "spec.json").read_text())
    assert spec["experiment"] == "table2"
    assert spec["params"]["traces"] == 4

    code, report_out, _ = run_cli(capsys, "report", str(run_dir))
    assert code == 0
    assert report_out == run_out


def test_run_experiment_seed_flag_applies(capsys, tmp_path):
    _code, _out, err = run_cli(
        capsys, "run", "cc-compilation", "--set", "candidates=10",
        "--set", "caching=false", "--seed", "99", "--artifacts", str(tmp_path),
    )
    run_dir = artifact_dir_from(err)
    spec = json.loads((run_dir / "spec.json").read_text())
    assert spec["params"]["seed"] == 99


def test_run_experiment_seed_flag_rejected_when_unsupported(capsys):
    code, _out, err = run_cli(capsys, "run", "figure2", "--seed", "1")
    assert code == 2
    assert "no seed parameter" in err


def test_run_figure2_quiet_suppresses_progress(capsys):
    _code, out, err = run_cli(
        capsys, "run", "figure2", "--set", "traces=2", "--set", "requests=600",
        "--no-artifacts", "--quiet",
    )
    assert "Figure 2" in out
    assert "simulating" not in err
    _code, _out, err = run_cli(
        capsys, "run", "figure2", "--set", "traces=2", "--set", "requests=600",
        "--no-artifacts",
    )
    assert "simulating" in err


def test_run_experiment_unknown_param(capsys):
    code, _out, err = run_cli(capsys, "run", "table2", "--set", "bogus=1")
    assert code == 2
    assert "bogus" in err


def test_run_unknown_target(capsys):
    code, _out, err = run_cli(capsys, "run", "not-an-experiment")
    assert code == 2
    assert "unknown experiment" in err


def test_stray_file_cannot_shadow_an_experiment(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "table2").write_text("not json")
    code, out, _err = run_cli(
        capsys, "run", "table2", "--set", "traces=2", "--set", "requests=600",
        "--no-artifacts", "--quiet",
    )
    assert code == 0
    assert "Table 2" in out


def test_run_on_directory_gives_friendly_error(capsys, tmp_path):
    code, _out, err = run_cli(capsys, "run", str(tmp_path))
    assert code == 2
    assert "not a RunSpec file" in err
    assert "repro report" in err


def test_run_on_sweep_spec_points_to_sweep_command(capsys, tmp_path):
    spec = json.loads(SMOKE_SPEC.read_text())
    spec["seeds"] = [0, 1]
    spec["checkpoint"] = False  # --no-artifacts below precludes checkpoints
    spec_file = tmp_path / "sweep_spec.json"
    spec_file.write_text(json.dumps(spec))
    code, _out, err = run_cli(capsys, "run", str(spec_file))
    assert code == 2
    assert "repro sweep" in err
    # --seed pins one seed and proceeds.
    code, out, _err = run_cli(
        capsys, "run", str(spec_file), "--seed", "1", "--no-artifacts", "--quiet"
    )
    assert code == 0
    assert "seed 1" in out


def test_run_no_artifacts_flag(capsys, tmp_path):
    code, out, err = run_cli(
        capsys,
        "run",
        "table2",
        "--set",
        "traces=2",
        "--set",
        "requests=800",
        "--no-artifacts",
    )
    assert code == 0
    assert "Table 2" in out
    assert "artifacts:" not in err


# -- sweep --------------------------------------------------------------------------


def test_sweep_and_report(capsys, tmp_path):
    code, out, err = run_cli(
        capsys,
        "sweep",
        str(SMOKE_SPEC),
        "--seeds",
        "0",
        "1",
        "--artifacts",
        str(tmp_path),
        "--quiet",
    )
    assert code == 0
    assert "Seed sweep: smoke-caching" in out
    sweep_dir = artifact_dir_from(err)
    assert (sweep_dir / "sweep.json").exists()
    assert (sweep_dir / "seed-0" / "result.json").exists()
    code, report_out, _ = run_cli(capsys, "report", str(sweep_dir))
    assert code == 0
    assert report_out == out


# -- the evaluation store -----------------------------------------------------------


def test_run_populates_eval_store_and_second_run_hits_it(capsys, tmp_path):
    # checkpoint=false so the rerun re-searches (a completed checkpoint
    # would short-circuit the whole run) and warm-starts from the store.
    spec = json.loads(SMOKE_SPEC.read_text())
    spec["checkpoint"] = False
    spec_file = tmp_path / "spec.json"
    spec_file.write_text(json.dumps(spec))
    first_code, first_out, _ = run_cli(
        capsys, "run", str(spec_file), "--artifacts", str(tmp_path), "--quiet"
    )
    assert first_code == 0
    evalstore = tmp_path / "evalstore"
    assert evalstore.exists()
    code, out, err = run_cli(
        capsys, "run", str(spec_file), "--artifacts", str(tmp_path), "--quiet"
    )
    assert code == 0
    assert out == first_out
    run_dir = artifact_dir_from(err)
    metadata = json.loads((run_dir / "metadata.json").read_text())
    record = metadata["eval_store"]
    assert record["hits"] == record["lookups"] > 0


def test_no_eval_store_flag(capsys, tmp_path):
    code, _out, _err = run_cli(
        capsys, "run", str(SMOKE_SPEC), "--artifacts", str(tmp_path),
        "--no-eval-store", "--quiet",
    )
    assert code == 0
    assert not (tmp_path / "evalstore").exists()


def test_explicit_eval_store_path(capsys, tmp_path):
    store_dir = tmp_path / "shared-cache"
    code, _out, _err = run_cli(
        capsys, "run", str(SMOKE_SPEC), "--artifacts", str(tmp_path / "runs"),
        "--eval-store", str(store_dir), "--quiet",
    )
    assert code == 0
    assert store_dir.exists()


def test_store_stats_gc_clear(capsys, tmp_path):
    run_cli(capsys, "run", str(SMOKE_SPEC), "--artifacts", str(tmp_path), "--quiet")
    store_dir = str(tmp_path / "evalstore")

    code, out, _ = run_cli(capsys, "store", "stats", "--store", store_dir)
    assert code == 0
    assert "entries" in out
    assert "writers" in out

    code, out, _ = run_cli(capsys, "store", "stats", "--store", store_dir, "--json")
    assert code == 0
    stats = json.loads(out)
    assert stats["entries"] > 0
    assert stats["eval_configs"] == 1
    # The run announced itself in the writers ledger.
    assert stats["writers"]["count"] == 1
    (record,) = stats["writers"]["records"]
    assert record["label"].startswith("run-")
    assert record["pid"] and record["host"]

    code, out, _ = run_cli(
        capsys, "store", "gc", "--store", store_dir, "--max-entries", "2"
    )
    assert code == 0
    assert "removed" in out
    code, out, _ = run_cli(capsys, "store", "stats", "--store", store_dir, "--json")
    assert json.loads(out)["entries"] <= 2

    code, out, _ = run_cli(capsys, "store", "clear", "--store", store_dir)
    assert code == 0
    code, out, _ = run_cli(capsys, "store", "stats", "--store", store_dir, "--json")
    stats = json.loads(out)
    assert stats["entries"] == 0
    assert stats["writers"]["count"] == 0  # clear removes the ledger too


def test_store_gc_requires_a_bound(capsys, tmp_path):
    code, _out, err = run_cli(
        capsys, "store", "gc", "--store", str(tmp_path / "evalstore")
    )
    assert code == 2
    assert "--max-bytes" in err


# -- engine overrides ---------------------------------------------------------------


def test_executor_and_max_workers_flags(capsys, tmp_path):
    baseline_code, baseline_out, _ = run_cli(
        capsys, "run", str(SMOKE_SPEC), "--artifacts", str(tmp_path / "a"), "--quiet"
    )
    assert baseline_code == 0
    code, out, err = run_cli(
        capsys, "run", str(SMOKE_SPEC), "--artifacts", str(tmp_path / "b"),
        "--executor", "thread", "--max-workers", "2", "--quiet",
    )
    assert code == 0
    # Same search trajectory, different engine configuration.
    assert out.splitlines()[0] == baseline_out.splitlines()[0]
    run_dir = artifact_dir_from(err)
    stored = json.loads((run_dir / "spec.json").read_text())
    assert stored["engine"] == {"executor": "thread", "max_workers": 2}


def test_static_screen_flag_records_metadata_and_certifies(capsys, tmp_path):
    code, run_out, run_err = run_cli(
        capsys, "run", str(SMOKE_SPEC), "--artifacts", str(tmp_path),
        "--static-screen", "--no-eval-store", "--quiet",
    )
    assert code == 0
    run_dir = artifact_dir_from(run_err)
    stored = json.loads((run_dir / "spec.json").read_text())
    assert stored["engine"] == {"static_screen": True}
    metadata = json.loads((run_dir / "metadata.json").read_text())
    record = metadata["static_screen"]
    assert record["enabled"] is True
    assert record["checks"] >= record["screened"] >= 0
    assert 0.0 <= record["screen_rate"] <= 1.0
    # The winner's certificate is part of the stored result...
    result = json.loads((run_dir / "result.json").read_text())
    assert result["certification"]["function"] == "priority"
    # ...rendered identically by run and report...
    code, report_out, _ = run_cli(capsys, "report", str(run_dir))
    assert code == 0
    assert report_out == run_out
    assert "Certified bounds:" in report_out
    # ...and re-derivable from the run directory alone.
    code, out, _err = run_cli(capsys, "certify", str(run_dir))
    assert code == 0
    assert "domain     : caching" in out
    assert "priority in" in out


def test_static_screen_off_keeps_result_json_byte_identical(capsys, tmp_path):
    """The knob must not leak into result.json when nothing screens --
    volatile screen counters are stripped, certification is unconditional."""
    run_cli(
        capsys, "run", str(SMOKE_SPEC), "--artifacts", str(tmp_path / "off"),
        "--no-eval-store", "--quiet",
    )
    run_cli(
        capsys, "run", str(SMOKE_SPEC), "--artifacts", str(tmp_path / "on"),
        "--static-screen", "--no-eval-store", "--quiet",
    )
    off_dir = next(p for p in (tmp_path / "off").iterdir() if (p / "spec.json").exists())
    on_dir = next(p for p in (tmp_path / "on").iterdir() if (p / "spec.json").exists())
    metadata = json.loads((on_dir / "metadata.json").read_text())
    if metadata["static_screen"]["screened"] == 0:
        assert (on_dir / "result.json").read_bytes() == (
            off_dir / "result.json"
        ).read_bytes()
    else:
        # The only divergence is the screened candidates' sentinel entries;
        # the search trajectory and winner are unchanged.
        on_result = json.loads((on_dir / "result.json").read_text())
        off_result = json.loads((off_dir / "result.json").read_text())
        assert on_result["best_candidate_id"] == off_result["best_candidate_id"]
        assert on_result["certification"] == off_result["certification"]
        assert on_result["total_candidates"] == off_result["total_candidates"]
        sentinels = [
            c
            for c in on_result["candidates"]
            if ((c["evaluation"] or {}).get("error") or "").startswith(
                "static-screen:"
            )
        ]
        assert sentinels


def test_engine_flags_rejected_for_experiments(capsys):
    code, _out, err = run_cli(
        capsys, "run", "table2", "--executor", "thread"
    )
    assert code == 2
    assert "RunSpec" in err


def test_eval_store_flags_rejected_for_experiments(capsys, tmp_path):
    code, _out, err = run_cli(
        capsys, "run", "table2", "--eval-store", str(tmp_path / "es")
    )
    assert code == 2
    assert "RunSpec" in err
    code, _out, err = run_cli(capsys, "run", "table2", "--no-eval-store")
    assert code == 2
    assert "RunSpec" in err


def test_invalid_max_workers(capsys, tmp_path):
    code, _out, err = run_cli(
        capsys, "run", str(SMOKE_SPEC), "--max-workers", "0", "--no-artifacts"
    )
    assert code == 2
    assert "positive" in err


# -- report errors ------------------------------------------------------------------


def test_report_on_non_run_dir(capsys, tmp_path):
    code, _out, err = run_cli(capsys, "report", str(tmp_path))
    assert code == 2
    assert "not a run directory" in err


# -- the real entry point -----------------------------------------------------------


def test_python_dash_m_repro_subprocess(tmp_path):
    """`python -m repro` end to end, in a real subprocess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    run_proc = subprocess.run(
        [sys.executable, "-m", "repro", "run", str(SMOKE_SPEC),
         "--artifacts", str(tmp_path), "--quiet"],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT, timeout=300,
    )
    assert run_proc.returncode == 0, run_proc.stderr
    run_dir = artifact_dir_from(run_proc.stderr)
    report_proc = subprocess.run(
        [sys.executable, "-m", "repro", "report", str(run_dir)],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT, timeout=120,
    )
    assert report_proc.returncode == 0, report_proc.stderr
    assert report_proc.stdout == run_proc.stdout
