"""CLI smoke tests: run / sweep / resume / experiments list / report.

``repro report`` must reproduce ``repro run`` stdout byte-for-byte from the
stored artifacts, which is what most of these tests pin down.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
SMOKE_SPEC = REPO_ROOT / "examples" / "specs" / "smoke_caching.json"


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def artifact_dir_from(err: str) -> Path:
    for line in err.splitlines():
        if line.startswith("artifacts: "):
            return Path(line.split("artifacts: ", 1)[1])
    raise AssertionError(f"no artifacts line in stderr:\n{err}")


# -- experiments list ---------------------------------------------------------------


def test_experiments_list(capsys):
    code, out, _err = run_cli(capsys, "experiments", "list")
    assert code == 0
    for name in (
        "caching-search",
        "figure2",
        "table2",
        "ablations",
        "cost-accounting",
        "cc-compilation",
        "cc-behaviour",
    ):
        assert name in out
    assert "defaults:" in out


# -- run: spec file -----------------------------------------------------------------


def test_run_spec_then_report_byte_identical(capsys, tmp_path):
    code, run_out, run_err = run_cli(
        capsys, "run", str(SMOKE_SPEC), "--artifacts", str(tmp_path), "--quiet"
    )
    assert code == 0
    assert "Search run: smoke-caching" in run_out
    run_dir = artifact_dir_from(run_err)
    assert run_dir.exists()

    code, report_out, _ = run_cli(capsys, "report", str(run_dir))
    assert code == 0
    assert report_out == run_out


def test_run_spec_progress_on_stderr(capsys, tmp_path):
    _code, out, err = run_cli(
        capsys, "run", str(SMOKE_SPEC), "--artifacts", str(tmp_path)
    )
    assert "run started:" in err
    assert "run started:" not in out


def test_resume_completed_run_is_stable(capsys, tmp_path):
    _code, run_out, run_err = run_cli(
        capsys, "run", str(SMOKE_SPEC), "--artifacts", str(tmp_path), "--quiet"
    )
    run_dir = artifact_dir_from(run_err)
    code, resume_out, _ = run_cli(capsys, "resume", str(run_dir), "--quiet")
    assert code == 0
    assert resume_out == run_out


def test_resume_refuses_uncheckpointed_spec(capsys, tmp_path):
    spec = json.loads(SMOKE_SPEC.read_text())
    spec["checkpoint"] = False
    spec["name"] = "no-ckpt"
    spec_file = tmp_path / "spec.json"
    spec_file.write_text(json.dumps(spec))
    _code, _out, err = run_cli(
        capsys, "run", str(spec_file), "--artifacts", str(tmp_path), "--quiet"
    )
    run_dir = artifact_dir_from(err)
    code, _out, err = run_cli(capsys, "resume", str(run_dir))
    assert code == 2
    assert "nothing to resume" in err


# -- run: registered experiments ----------------------------------------------------


def test_run_experiment_then_report_byte_identical(capsys, tmp_path):
    code, run_out, run_err = run_cli(
        capsys,
        "run",
        "table2",
        "--set",
        "traces=4",
        "--set",
        "requests=1200",
        "--artifacts",
        str(tmp_path),
    )
    assert code == 0
    assert "Table 2" in run_out
    run_dir = artifact_dir_from(run_err)
    spec = json.loads((run_dir / "spec.json").read_text())
    assert spec["experiment"] == "table2"
    assert spec["params"]["traces"] == 4

    code, report_out, _ = run_cli(capsys, "report", str(run_dir))
    assert code == 0
    assert report_out == run_out


def test_run_experiment_seed_flag_applies(capsys, tmp_path):
    _code, _out, err = run_cli(
        capsys, "run", "cc-compilation", "--set", "candidates=10",
        "--set", "caching=false", "--seed", "99", "--artifacts", str(tmp_path),
    )
    run_dir = artifact_dir_from(err)
    spec = json.loads((run_dir / "spec.json").read_text())
    assert spec["params"]["seed"] == 99


def test_run_experiment_seed_flag_rejected_when_unsupported(capsys):
    code, _out, err = run_cli(capsys, "run", "figure2", "--seed", "1")
    assert code == 2
    assert "no seed parameter" in err


def test_run_figure2_quiet_suppresses_progress(capsys):
    _code, out, err = run_cli(
        capsys, "run", "figure2", "--set", "traces=2", "--set", "requests=600",
        "--no-artifacts", "--quiet",
    )
    assert "Figure 2" in out
    assert "simulating" not in err
    _code, _out, err = run_cli(
        capsys, "run", "figure2", "--set", "traces=2", "--set", "requests=600",
        "--no-artifacts",
    )
    assert "simulating" in err


def test_run_experiment_unknown_param(capsys):
    code, _out, err = run_cli(capsys, "run", "table2", "--set", "bogus=1")
    assert code == 2
    assert "bogus" in err


def test_run_unknown_target(capsys):
    code, _out, err = run_cli(capsys, "run", "not-an-experiment")
    assert code == 2
    assert "unknown experiment" in err


def test_stray_file_cannot_shadow_an_experiment(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "table2").write_text("not json")
    code, out, _err = run_cli(
        capsys, "run", "table2", "--set", "traces=2", "--set", "requests=600",
        "--no-artifacts", "--quiet",
    )
    assert code == 0
    assert "Table 2" in out


def test_run_on_directory_gives_friendly_error(capsys, tmp_path):
    code, _out, err = run_cli(capsys, "run", str(tmp_path))
    assert code == 2
    assert "not a RunSpec file" in err
    assert "repro report" in err


def test_run_on_sweep_spec_points_to_sweep_command(capsys, tmp_path):
    spec = json.loads(SMOKE_SPEC.read_text())
    spec["seeds"] = [0, 1]
    spec["checkpoint"] = False  # --no-artifacts below precludes checkpoints
    spec_file = tmp_path / "sweep_spec.json"
    spec_file.write_text(json.dumps(spec))
    code, _out, err = run_cli(capsys, "run", str(spec_file))
    assert code == 2
    assert "repro sweep" in err
    # --seed pins one seed and proceeds.
    code, out, _err = run_cli(
        capsys, "run", str(spec_file), "--seed", "1", "--no-artifacts", "--quiet"
    )
    assert code == 0
    assert "seed 1" in out


def test_run_no_artifacts_flag(capsys, tmp_path):
    code, out, err = run_cli(
        capsys,
        "run",
        "table2",
        "--set",
        "traces=2",
        "--set",
        "requests=800",
        "--no-artifacts",
    )
    assert code == 0
    assert "Table 2" in out
    assert "artifacts:" not in err


# -- sweep --------------------------------------------------------------------------


def test_sweep_and_report(capsys, tmp_path):
    code, out, err = run_cli(
        capsys,
        "sweep",
        str(SMOKE_SPEC),
        "--seeds",
        "0",
        "1",
        "--artifacts",
        str(tmp_path),
        "--quiet",
    )
    assert code == 0
    assert "Seed sweep: smoke-caching" in out
    sweep_dir = artifact_dir_from(err)
    assert (sweep_dir / "sweep.json").exists()
    assert (sweep_dir / "seed-0" / "result.json").exists()
    code, report_out, _ = run_cli(capsys, "report", str(sweep_dir))
    assert code == 0
    assert report_out == out


# -- report errors ------------------------------------------------------------------


def test_report_on_non_run_dir(capsys, tmp_path):
    code, _out, err = run_cli(capsys, "report", str(tmp_path))
    assert code == 2
    assert "not a run directory" in err


# -- the real entry point -----------------------------------------------------------


def test_python_dash_m_repro_subprocess(tmp_path):
    """`python -m repro` end to end, in a real subprocess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    run_proc = subprocess.run(
        [sys.executable, "-m", "repro", "run", str(SMOKE_SPEC),
         "--artifacts", str(tmp_path), "--quiet"],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT, timeout=300,
    )
    assert run_proc.returncode == 0, run_proc.stderr
    run_dir = artifact_dir_from(run_proc.stderr)
    report_proc = subprocess.run(
        [sys.executable, "-m", "repro", "report", str(run_dir)],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT, timeout=120,
    )
    assert report_proc.returncode == 0, report_proc.stderr
    assert report_proc.stdout == run_proc.stdout
