"""Synthetic workload generator tests."""

import numpy as np
import pytest

from repro.traces.synthetic import SyntheticWorkloadConfig, generate_trace, zipf_weights


def test_zipf_weights_normalised_and_decreasing():
    weights = zipf_weights(100, alpha=1.0)
    assert weights.sum() == pytest.approx(1.0)
    assert all(weights[i] >= weights[i + 1] for i in range(len(weights) - 1))
    with pytest.raises(ValueError):
        zipf_weights(0, 1.0)


def test_zipf_alpha_controls_skew():
    skewed = zipf_weights(1000, alpha=1.2)
    flat = zipf_weights(1000, alpha=0.3)
    assert skewed[0] > flat[0]


def test_generate_trace_basic_properties():
    config = SyntheticWorkloadConfig(name="t", num_requests=2000, num_objects=400, seed=1)
    trace = generate_trace(config)
    assert len(trace) == 2000
    assert trace.name == "t"
    assert trace.unique_objects() <= 400
    assert all(r.size > 0 for r in trace)
    timestamps = [r.timestamp for r in trace]
    assert timestamps == sorted(timestamps)


def test_generate_trace_deterministic_per_seed():
    config = SyntheticWorkloadConfig(num_requests=500, num_objects=100, seed=42)
    a = generate_trace(config)
    b = generate_trace(config)
    assert [(r.timestamp, r.key, r.size) for r in a] == [(r.timestamp, r.key, r.size) for r in b]


def test_generate_trace_seed_changes_output():
    a = generate_trace(SyntheticWorkloadConfig(num_requests=500, num_objects=100, seed=1))
    b = generate_trace(SyntheticWorkloadConfig(num_requests=500, num_objects=100, seed=2))
    assert [r.key for r in a] != [r.key for r in b]


def test_object_sizes_fixed_per_object():
    trace = generate_trace(SyntheticWorkloadConfig(num_requests=2000, num_objects=200, seed=3))
    sizes = {}
    for request in trace:
        assert sizes.setdefault(request.key, request.size) == request.size


def test_sizes_are_block_aligned_and_bounded():
    config = SyntheticWorkloadConfig(num_requests=1000, num_objects=200, seed=4)
    trace = generate_trace(config)
    for request in trace:
        assert request.size % config.size_block == 0
        assert config.size_block <= request.size <= config.max_size


def test_reuse_exists():
    trace = generate_trace(SyntheticWorkloadConfig(num_requests=3000, num_objects=300, seed=5))
    assert trace.compulsory_miss_ratio() < 0.5     # plenty of re-references


def test_scan_heavy_config_produces_more_unique_objects():
    base = dict(num_requests=3000, num_objects=1500, seed=6)
    scan_heavy = generate_trace(
        SyntheticWorkloadConfig(zipf_weight=0.1, churn_weight=0.1, scan_weight=0.8,
                                recent_weight=0.0, **base)
    )
    reuse_heavy = generate_trace(
        SyntheticWorkloadConfig(zipf_weight=0.2, churn_weight=0.7, scan_weight=0.0,
                                recent_weight=0.1, **base)
    )
    assert scan_heavy.unique_objects() > reuse_heavy.unique_objects()


@pytest.mark.parametrize(
    "kwargs",
    [
        {"num_requests": 0},
        {"num_objects": 0},
        {"working_set_fraction": 0.0},
        {"working_set_fraction": 1.5},
        {"scan_length": 0},
        {"zipf_weight": 0, "churn_weight": 0, "scan_weight": 0, "recent_weight": 0},
        {"zipf_weight": -1.0},
    ],
)
def test_invalid_configs_rejected(kwargs):
    config = SyntheticWorkloadConfig(**kwargs)
    with pytest.raises(ValueError):
        generate_trace(config)


def test_mixture_normalisation():
    config = SyntheticWorkloadConfig(zipf_weight=2, churn_weight=2, scan_weight=0, recent_weight=0)
    assert np.allclose(config.mixture(), [0.5, 0.5, 0, 0])
