"""CloudPhysics-like and MSR-like corpus tests (via the workload registry)."""

import pytest

import repro.traces
from repro.traces import cloudphysics, msr
from repro.traces.cloudphysics import cloudphysics_config
from repro.traces.msr import msr_config
from repro.workloads import build_trace, corpus_traces


def test_corpus_sizes_match_paper():
    assert cloudphysics.NUM_TRACES == 105
    assert msr.NUM_TRACES == 14


def test_trace_names_follow_dataset_conventions():
    assert cloudphysics.trace_names(3) == ["w01", "w02", "w03"]
    assert build_trace("caching/cloudphysics", index=89, num_requests=200).name == "w89"
    assert msr.trace_names(2) == ["msr-proj", "msr-prxy"]
    assert build_trace("caching/msr", index=2, num_requests=200).name == "msr-prxy"


def test_invalid_indices_rejected():
    with pytest.raises(ValueError):
        cloudphysics_config(0)
    with pytest.raises(ValueError):
        cloudphysics_config(106)
    with pytest.raises(ValueError):
        msr_config(15)


def test_traces_are_deterministic():
    a = build_trace("caching/cloudphysics", index=7, num_requests=500)
    b = build_trace("caching/cloudphysics", index=7, num_requests=500)
    assert [(r.timestamp, r.key, r.size) for r in a] == [(r.timestamp, r.key, r.size) for r in b]
    x = build_trace("caching/msr", index=3, num_requests=500)
    y = build_trace("caching/msr", index=3, num_requests=500)
    assert [r.key for r in x] == [r.key for r in y]


def test_corpus_traces_differ_from_each_other():
    traces = list(corpus_traces("cloudphysics", count=5, num_requests=800))
    keys = [tuple(r.key for r in t) for t in traces]
    assert len(set(keys)) == len(keys)
    # Workload parameters should vary across the corpus (diversity!).
    alphas = {round(cloudphysics_config(i).zipf_alpha, 3) for i in range(1, 11)}
    assert len(alphas) > 5


def test_corpus_diversity_of_archetypes():
    """Different traces should favour different policies (instance-optimality)."""
    from repro.cache.policies.lru import LRUCache
    from repro.cache.policies.lfu import LFUCache
    from repro.cache.simulator import simulate

    winners = set()
    for index in (1, 4, 9, 13, 17, 22):
        trace = build_trace(
            "caching/cloudphysics", index=index, num_requests=1500, num_objects=400
        )
        lru = simulate(LRUCache, trace, cache_fraction=0.08)
        lfu = simulate(LFUCache, trace, cache_fraction=0.08)
        winners.add("LRU" if lru.miss_ratio < lfu.miss_ratio else "LFU")
    assert len(winners) >= 1  # sanity: simulation ran; diversity checked loosely


def test_corpus_count_limits():
    assert len(list(corpus_traces("cloudphysics", count=3, num_requests=300))) == 3
    assert len(list(corpus_traces("msr", count=2, num_requests=300))) == 2
    assert len(list(corpus_traces("msr", count=99, num_requests=300))) == 14


def test_removed_loaders_point_at_the_workload_registry():
    """The one-release deprecation policy completed: the old entry points
    are gone, and reaching for one names its replacement."""
    for name in (
        "cloudphysics_trace",
        "msr_trace",
        "cloudphysics_corpus",
        "msr_corpus",
    ):
        with pytest.raises(AttributeError, match="workloads"):
            getattr(repro.traces, name)
    with pytest.raises(ImportError):
        from repro.traces.cloudphysics import cloudphysics_trace  # noqa: F401


def test_msr_archetypes_cover_all_roles():
    archetypes = {role for _name, role in msr.SERVER_ROLES}
    assert archetypes == {"zipf", "churn", "scan", "mixed"}


def test_config_parameters_within_documented_ranges():
    for index in (1, 50, 105):
        config = cloudphysics_config(index)
        assert 0.6 <= config.zipf_alpha <= 1.3
        assert 0.04 <= config.working_set_fraction <= 0.15
    for index in (1, 7, 14):
        config = msr_config(index)
        assert 0.75 <= config.zipf_alpha <= 1.25
