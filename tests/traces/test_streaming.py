"""Streaming trace pipeline: equivalence, memory bounds, cached decode."""

import pickle
import tracemalloc

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.policies.lru import LRUCache
from repro.cache.policies.s3fifo import S3FIFOCache
from repro.cache.request import Request, Trace
from repro.cache.simulator import simulate
from repro.traces.cloudphysics import cloudphysics_config
from repro.traces.msr import msr_config
from repro.traces.streaming import (
    CsvRequestSource,
    DecodedArraySource,
    StreamingTrace,
    ensure_decoded_cache,
    open_csv_trace,
)
from repro.traces.synthetic import SyntheticWorkloadConfig, generate_trace


def _request_tuples(trace):
    return [(r.timestamp, r.key, r.size) for r in trace]


def _bundled_traces():
    """A cross-section of the bundled corpora plus a synthetic mix."""
    return [
        generate_trace(cloudphysics_config(1, num_requests=1200, num_objects=300)),
        generate_trace(cloudphysics_config(89, num_requests=1200, num_objects=300)),
        generate_trace(msr_config(1, num_requests=1200, num_objects=300)),
        generate_trace(msr_config(11, num_requests=1200, num_objects=300)),
        generate_trace(
            SyntheticWorkloadConfig(name="mix", num_requests=1000, num_objects=250, seed=3)
        ),
    ]


# -- equivalence --------------------------------------------------------------------


@pytest.mark.parametrize("cache_decoded", [False, True])
def test_streaming_equals_materialized_on_bundled_traces(tmp_path, cache_decoded):
    """Byte-identical request sequences and identical simulator stats."""
    for index, trace in enumerate(_bundled_traces()):
        path = tmp_path / f"trace-{index}.csv"
        trace.to_csv(path)
        streaming = open_csv_trace(path, cache_decoded=cache_decoded)
        assert _request_tuples(streaming) == _request_tuples(trace)
        assert len(streaming) == len(trace)
        assert streaming.unique_objects() == trace.unique_objects()
        assert streaming.footprint_bytes() == trace.footprint_bytes()
        assert streaming.duration() == trace.duration()

        for policy in (LRUCache, S3FIFOCache):
            materialized = simulate(policy, trace, cache_fraction=0.1)
            streamed = simulate(policy, streaming, cache_fraction=0.1)
            assert (materialized.hits, materialized.misses, materialized.evictions) == (
                streamed.hits,
                streamed.misses,
                streamed.evictions,
            )


@settings(max_examples=25, deadline=None)
@given(
    entries=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10_000),
            st.integers(min_value=0, max_value=50),
            st.integers(min_value=1, max_value=1 << 20),
        ),
        min_size=0,
        max_size=120,
    ),
    chunk_size=st.sampled_from([7, 64, 4096]),
)
def test_streaming_equivalence_property(tmp_path_factory, entries, chunk_size):
    """Chunked decode yields the exact request sequence for arbitrary traces,
    at any chunk size (including chunks smaller than one line)."""
    tmp_path = tmp_path_factory.mktemp("prop")
    trace = Trace([Request(t, k, s) for t, k, s in entries], name="prop")
    path = tmp_path / "prop.csv"
    trace.to_csv(path)
    streaming = StreamingTrace(CsvRequestSource(path, chunk_size=chunk_size), name="prop")
    assert _request_tuples(streaming) == _request_tuples(trace)
    assert streaming.footprint_bytes() == trace.footprint_bytes()
    assert streaming.compulsory_miss_ratio() == trace.compulsory_miss_ratio()


def test_streaming_trace_is_reiterable(tmp_path):
    trace = generate_trace(
        SyntheticWorkloadConfig(num_requests=400, num_objects=80, seed=5)
    )
    path = tmp_path / "reiter.csv"
    trace.to_csv(path)
    streaming = open_csv_trace(path)
    first = _request_tuples(streaming)
    second = _request_tuples(streaming)
    assert first == second == _request_tuples(trace)


# -- memory -------------------------------------------------------------------------


def test_streaming_memory_is_chunk_bounded(tmp_path):
    """Iterating + stats hold O(chunk) live memory; materializing is O(trace)."""
    trace = generate_trace(
        SyntheticWorkloadConfig(num_requests=30_000, num_objects=600, seed=9)
    )
    path = tmp_path / "big.csv"
    trace.to_csv(path)

    streaming = open_csv_trace(path, chunk_size=16 * 1024)
    tracemalloc.start()
    count = sum(1 for _request in streaming)
    footprint = streaming.footprint_bytes()
    _current, streaming_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert count == 30_000
    assert footprint == trace.footprint_bytes()

    tracemalloc.start()
    materialized = Trace.from_csv(path)
    _current, materialized_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert len(materialized) == 30_000

    # The streaming pass keeps a chunk, a per-unique-key dict and a fixed
    # reservoir alive; well under 2 MiB here, where the request list alone
    # is several MiB.
    assert streaming_peak < 2 * 1024 * 1024
    assert materialized_peak > 2 * streaming_peak


# -- cached-decode fast path --------------------------------------------------------


def test_decoded_cache_created_and_reused(tmp_path):
    trace = generate_trace(
        SyntheticWorkloadConfig(num_requests=500, num_objects=100, seed=2)
    )
    path = tmp_path / "cached.csv"
    trace.to_csv(path)

    cache_path = ensure_decoded_cache(path)
    assert cache_path.exists()
    first_mtime = cache_path.stat().st_mtime_ns
    # A second call must reuse the sidecar, not rebuild it.
    assert ensure_decoded_cache(path) == cache_path
    assert cache_path.stat().st_mtime_ns == first_mtime

    streaming = StreamingTrace(DecodedArraySource(cache_path, chunk_rows=64), name="c")
    assert _request_tuples(streaming) == _request_tuples(trace)


def test_decoded_cache_invalidated_on_source_change(tmp_path):
    first = generate_trace(
        SyntheticWorkloadConfig(num_requests=300, num_objects=50, seed=1)
    )
    path = tmp_path / "changing.csv"
    first.to_csv(path)
    ensure_decoded_cache(path)

    second = generate_trace(
        SyntheticWorkloadConfig(num_requests=320, num_objects=50, seed=4)
    )
    second.to_csv(path)
    streaming = open_csv_trace(path, cache_decoded=True)
    assert _request_tuples(streaming) == _request_tuples(second)


def test_streaming_trace_pickles_for_process_pools(tmp_path):
    trace = generate_trace(
        SyntheticWorkloadConfig(num_requests=200, num_objects=40, seed=6)
    )
    path = tmp_path / "pickled.csv"
    trace.to_csv(path)
    streaming = open_csv_trace(path, cache_decoded=True)
    clone = pickle.loads(pickle.dumps(streaming))
    assert _request_tuples(clone) == _request_tuples(trace)


# -- error handling -----------------------------------------------------------------


def test_whitespace_header_and_fields_accepted(tmp_path):
    """from_csv tolerates header/field whitespace; the streaming reader must too."""
    path = tmp_path / "spaced.csv"
    path.write_text("timestamp, key, size\n1, 2, 3\n4, 5, 6\n")
    streaming = open_csv_trace(path)
    materialized = Trace.from_csv(path)
    assert _request_tuples(streaming) == _request_tuples(materialized) == [
        (1, 2, 3),
        (4, 5, 6),
    ]


def test_concurrent_decoded_cache_builds_are_safe(tmp_path):
    """Parallel sweep seeds may build the same sidecar; readers never see a
    partial file and all builders converge on identical content."""
    from concurrent.futures import ThreadPoolExecutor

    trace = generate_trace(
        SyntheticWorkloadConfig(num_requests=2000, num_objects=200, seed=12)
    )
    path = tmp_path / "shared.csv"
    trace.to_csv(path)

    def build_and_read(_i):
        streaming = open_csv_trace(path, cache_decoded=True)
        return _request_tuples(streaming)

    with ThreadPoolExecutor(max_workers=4) as pool:
        results = list(pool.map(build_and_read, range(4)))
    expected = _request_tuples(trace)
    assert all(result == expected for result in results)
    # No stray temp files left behind.
    assert not list(tmp_path.glob("*.tmp"))


def test_bad_header_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("time,object,bytes\n1,2,3\n")
    with pytest.raises(ValueError, match="unexpected header"):
        list(open_csv_trace(path))


def test_malformed_line_rejected(tmp_path):
    path = tmp_path / "bad2.csv"
    path.write_text("timestamp,key,size\n1,2,3\nnot-a-line\n")
    with pytest.raises(ValueError, match="malformed"):
        list(open_csv_trace(path))


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(ValueError, match="empty"):
        list(open_csv_trace(path))


def test_reservoir_sample_is_seeded(tmp_path):
    trace = generate_trace(
        SyntheticWorkloadConfig(num_requests=5000, num_objects=500, seed=8)
    )
    path = tmp_path / "sampled.csv"
    trace.to_csv(path)
    a = open_csv_trace(path).stats.size_sample
    b = open_csv_trace(path).stats.size_sample
    assert a == b
    assert len(a) == 1024
