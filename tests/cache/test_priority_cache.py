"""Tests of the PolicySmith priority-queue Template cache."""

import pytest

from repro.cache.policies.lru import LRUCache
from repro.cache.policies.lfu import LFUCache
from repro.cache.priority_cache import (
    CallablePriorityFunction,
    DslPriorityFunction,
    PriorityFunctionCache,
    as_priority_function,
)
from repro.cache.simulator import CacheSimulator, cache_size_for, simulate
from repro.dsl import parse
from repro.dsl.errors import DslRuntimeError

from tests.cache.test_policies_basic import feed, resident
from tests.conftest import LISTING_1, PRIORITY_SIGNATURE


LRU_PRIORITY = parse(f"{PRIORITY_SIGNATURE} {{ return obj_info.last_accessed }}")
LFU_PRIORITY = parse(f"{PRIORITY_SIGNATURE} {{ return obj_info.count }}")


def test_signature_validation():
    with pytest.raises(ValueError):
        DslPriorityFunction(parse("def priority(now) { return now }"))


def test_as_priority_function_accepts_all_forms():
    assert isinstance(as_priority_function(LRU_PRIORITY), DslPriorityFunction)
    fn = as_priority_function(lambda now, *_rest: now)
    assert isinstance(fn, CallablePriorityFunction)
    with pytest.raises(TypeError):
        as_priority_function(42)


def test_lowest_score_is_evicted():
    # Priority = key value, so the smallest key is always the victim.
    def priority(now, obj_id, obj_info, counts, ages, sizes, history):
        return obj_id

    cache = PriorityFunctionCache(300, priority)
    feed(cache, [(1, 5, 100), (2, 9, 100), (3, 7, 100), (4, 11, 100)])
    assert resident(cache) == {9, 7, 11}
    feed(cache, [(5, 20, 100)])
    assert resident(cache) == {9, 11, 20}


def test_lru_priority_program_matches_lru_policy(small_synthetic_trace):
    size = cache_size_for(small_synthetic_trace, 0.08)
    lru = CacheSimulator().run(LRUCache(size), small_synthetic_trace)
    ps_lru = CacheSimulator().run(
        PriorityFunctionCache(size, LRU_PRIORITY, name="PS-LRU"), small_synthetic_trace
    )
    assert ps_lru.miss_ratio == pytest.approx(lru.miss_ratio, abs=1e-12)


def test_lfu_priority_program_close_to_lfu_policy(small_synthetic_trace):
    # LFU tie-breaking differs (insertion order vs heap order), so allow a
    # small tolerance rather than exact equality.
    size = cache_size_for(small_synthetic_trace, 0.08)
    lfu = CacheSimulator().run(LFUCache(size), small_synthetic_trace)
    ps_lfu = CacheSimulator().run(
        PriorityFunctionCache(size, LFU_PRIORITY, name="PS-LFU"), small_synthetic_trace
    )
    assert ps_lfu.miss_ratio == pytest.approx(lfu.miss_ratio, abs=0.05)


def test_listing_1_runs_on_synthetic_trace(small_synthetic_trace):
    result = simulate(
        lambda size: PriorityFunctionCache(size, parse(LISTING_1), name="Heuristic A"),
        small_synthetic_trace,
        cache_fraction=0.08,
    )
    assert 0 < result.miss_ratio < 1
    assert result.policy == "Heuristic A"


def test_history_feature_is_populated():
    cache = PriorityFunctionCache(200, lambda now, *_rest: now, history_size=16)
    feed(cache, [(1, 1, 100), (2, 2, 100), (3, 3, 100), (4, 4, 100)])
    assert cache.history.length() >= 1


def test_aggregate_refresh_interval_controls_snapshot():
    seen_counts = []

    def priority(now, obj_id, obj_info, counts, ages, sizes, history):
        seen_counts.append(counts.count())
        return obj_info.last_accessed

    cache = PriorityFunctionCache(10_000, priority, refresh_interval=4)
    feed(cache, [(t, t, 100) for t in range(1, 10)])
    # The first snapshot is empty (refresh happens before any admission) and
    # later snapshots grow as the cache fills.
    assert seen_counts[0] == 0
    assert max(seen_counts) > 0


def test_runtime_error_in_priority_function_propagates():
    bad = parse(f"{PRIORITY_SIGNATURE} {{ return 1 / (now - now) }}")
    cache = PriorityFunctionCache(300, bad)
    with pytest.raises(DslRuntimeError):
        feed(cache, [(1, 1, 100)])


def test_non_numeric_priority_rejected():
    cache = PriorityFunctionCache(300, lambda *args: "high")
    with pytest.raises(ValueError):
        feed(cache, [(1, 1, 100)])


def test_invalid_constructor_arguments():
    with pytest.raises(ValueError):
        PriorityFunctionCache(100, LRU_PRIORITY, refresh_interval=0)


def test_current_score_inspection():
    cache = PriorityFunctionCache(300, lambda now, obj_id, *_rest: obj_id * 10)
    feed(cache, [(1, 3, 100)])
    assert cache.current_score(3) == 30
    assert cache.current_score(99) is None


def test_priority_evaluations_counted():
    cache = PriorityFunctionCache(10_000, lambda now, *_rest: now)
    feed(cache, [(1, 1, 100), (2, 1, 100), (3, 2, 100)])
    # One evaluation per admission or hit: 1 admit + 1 hit + 1 admit.
    assert cache.priority_evaluations == 3
