"""Fused columnar cache-loop tests.

The fused loop (:func:`repro.cache.columnar.fused_cache_run`) must be an
*exact* replacement for the classic simulator loop: identical
:class:`SimulationResult`, identical final policy state (resident objects,
heap, eviction history, counters), identical exceptions -- for the same
vectorized kernel.  When exact replication is not guaranteed it must decline
(return ``None``) so the classic loop runs instead.
"""

import random

import pytest

from repro.cache.columnar import (
    _LOOP_CODE_CACHE,
    _build_fused_loop,
    fused_cache_run,
)
from repro.cache.policies.fifo import FIFOCache
from repro.cache.priority_cache import PriorityFunctionCache
from repro.cache.simulator import CacheSimulator
from repro.dsl.errors import DslError
from repro.dsl.parser import parse

from tests.conftest import make_trace

_SIG = "def f(now, obj_id, obj_info, counts, ages, sizes, history)"

PROGRAMS = {
    "lru-like": f"{_SIG} {{ return 0 - (now - obj_info.last_accessed) }}",
    "aggregates": f"""{_SIG} {{
        score = obj_info.count * 10
        if (obj_info.size > sizes.percentile(0.75)) {{ score = score - 100 }}
        if (obj_info.count > counts.mean()) {{ score = score + ages.maximum() }}
        return score - sizes.minimum() / 10
    }}""",
    "history": f"""{_SIG} {{
        score = obj_info.count * 30
        if (history.contains(obj_id)) {{
            score = score + history.count_of(obj_id) * 20
            score = score - history.time_since_eviction(obj_id) / 50
        }}
        return score + history.length() - (now - obj_info.last_accessed) / 200
    }}""",
    "param-arg-aggregate": f"{_SIG} {{ return counts.percentile(now) + ages.percentile(obj_id) }}",
    "bool-return": f"{_SIG} {{ return obj_info.count > 2 }}",
}


def _workload_trace(seed=0, n=600, keys=40):
    rng = random.Random(seed)
    return make_trace(
        [(t, rng.randint(1, keys), rng.choice([50, 80, 120, 200])) for t in range(n)],
        name=f"workload-{seed}",
    )


def _policy(source, capacity=1_000, backend="vectorized", **kwargs):
    return PriorityFunctionCache(
        capacity, parse(source), name="candidate", backend=backend, **kwargs
    )


def _state(policy):
    """Full observable end state of a priority cache."""
    return {
        "objects": [
            (k, o.size, o.insert_time, o.last_access_time, o.access_count, dict(o.extra))
            for k, o in policy._objects.items()
        ],
        "used": policy._used,
        "evictions": policy.eviction_count,
        "admissions": policy.admission_count,
        "priority_evaluations": policy.priority_evaluations,
        "generation": policy._generation,
        "since_refresh": policy._requests_since_refresh,
        "heap": list(policy._heap),
        "history": [
            (k, r.evicted_at, r.access_count, r.age_at_eviction, r.size)
            for k, r in policy.history._records.items()
        ],
        "history_now": policy.history._now,
    }


def _run_pair(source, trace, warmup=0, capacity=1_000):
    """(fused result+state, classic result+state) for the same kernel."""
    fused_policy = _policy(source, capacity)
    fused = fused_cache_run(CacheSimulator(), fused_policy, trace, warmup)
    assert fused is not None, "expected the fused loop to take this run"
    # A never-firing invariant check forces the classic loop with the *same*
    # vectorized kernel: a pure control oracle.
    classic_policy = _policy(source, capacity)
    classic = CacheSimulator(check_invariants_every=10**9).run(
        classic_policy, trace, warmup=warmup
    )
    return (fused, _state(fused_policy)), (classic, _state(classic_policy))


@pytest.mark.parametrize("name", sorted(PROGRAMS))
@pytest.mark.parametrize("warmup", [0, 100])
def test_fused_matches_classic_exactly(name, warmup):
    (fused, fused_state), (classic, classic_state) = _run_pair(
        PROGRAMS[name], _workload_trace(), warmup=warmup
    )
    assert fused == classic
    assert fused_state == classic_state
    assert fused.evictions > 0, "workload too easy to exercise eviction"


def test_fused_matches_classic_warmup_beyond_trace():
    trace = _workload_trace(n=50)
    (fused, fused_state), (classic, classic_state) = _run_pair(
        PROGRAMS["lru-like"], trace, warmup=500
    )
    assert fused == classic
    assert fused.requests == 0
    assert fused_state == classic_state


def test_fused_matches_compiled_backend_scores():
    """Cross-backend contract: compiled-backend classic run, same result."""
    trace = _workload_trace(seed=3)
    fused_policy = _policy(PROGRAMS["aggregates"])
    fused = fused_cache_run(CacheSimulator(), fused_policy, trace, 0)
    compiled = CacheSimulator().run(_policy(PROGRAMS["aggregates"], backend="compiled"), trace)
    assert fused == compiled


def test_fused_raises_same_error_as_classic():
    source = f"{_SIG} {{ return 1 / (obj_info.count - 2) }}"
    trace = _workload_trace()
    with pytest.raises(DslError) as fused_exc:
        fused_cache_run(CacheSimulator(), _policy(source), trace, 0)
    with pytest.raises(DslError) as classic_exc:
        CacheSimulator(check_invariants_every=10**9).run(_policy(source), trace)
    assert type(fused_exc.value) is type(classic_exc.value)
    assert str(fused_exc.value) == str(classic_exc.value)


# -- gating: every ineligible shape must decline, not misbehave ----------------------


def test_declines_invariant_checking_simulator():
    sim = CacheSimulator(check_invariants_every=1)
    assert fused_cache_run(sim, _policy(PROGRAMS["lru-like"]), _workload_trace(), 0) is None


def test_declines_non_priority_policy():
    assert fused_cache_run(CacheSimulator(), FIFOCache(1_000), _workload_trace(), 0) is None


def test_declines_priority_cache_subclass():
    class Subclassed(PriorityFunctionCache):
        pass

    policy = Subclassed(1_000, parse(PROGRAMS["lru-like"]), backend="vectorized")
    assert fused_cache_run(CacheSimulator(), policy, _workload_trace(), 0) is None


def test_declines_eviction_listeners():
    policy = _policy(PROGRAMS["lru-like"])
    policy.add_eviction_listener(lambda obj, now: None)
    assert fused_cache_run(CacheSimulator(), policy, _workload_trace(), 0) is None


def test_declines_non_vectorized_backend():
    policy = _policy(PROGRAMS["lru-like"], backend="compiled")
    assert fused_cache_run(CacheSimulator(), policy, _workload_trace(), 0) is None


def test_declines_unvectorizable_program():
    # Expression method-arg: make_runner resolves to "compiled", so the
    # policy reports a non-vectorized backend and the gate declines.
    source = f"{_SIG} {{ return counts.percentile(now % 1) }}"
    policy = _policy(source)
    assert policy._priority.backend == "compiled"
    assert fused_cache_run(CacheSimulator(), policy, _workload_trace(), 0) is None


def test_declines_used_policy():
    trace = _workload_trace()
    policy = _policy(PROGRAMS["lru-like"])
    assert fused_cache_run(CacheSimulator(), policy, trace, 0) is not None
    assert fused_cache_run(CacheSimulator(), policy, trace, 0) is None  # stateful now


def test_declines_trace_without_columns():
    class RowsOnly:
        name = "workload-0"  # match the wrapped trace so results compare equal

        def __init__(self, trace):
            self._trace = trace

        def __iter__(self):
            return iter(self._trace)

        def footprint_bytes(self):
            return self._trace.footprint_bytes()

    trace = _workload_trace()
    assert fused_cache_run(CacheSimulator(), _policy(PROGRAMS["lru-like"]), RowsOnly(trace), 0) is None
    # ...and the simulator still produces the right answer via the classic loop.
    classic = CacheSimulator().run(_policy(PROGRAMS["lru-like"]), RowsOnly(trace))
    fused = CacheSimulator().run(_policy(PROGRAMS["lru-like"]), trace)
    assert fused == classic


def test_simulator_run_uses_fused_path_transparently():
    """CacheSimulator.run on a vectorized policy equals an explicit fused run."""
    trace = _workload_trace(seed=7)
    via_run = CacheSimulator().run(_policy(PROGRAMS["history"]), trace, warmup=50)
    explicit = fused_cache_run(CacheSimulator(), _policy(PROGRAMS["history"]), trace, 50)
    assert via_run == explicit


def test_loop_code_cache_shared_across_same_column_programs():
    policy_a = _policy(PROGRAMS["lru-like"])
    built_a = _build_fused_loop(policy_a._priority._runner, policy_a)
    before = len(_LOOP_CODE_CACHE)
    # Same column vocabulary, different kernel constant: same code object.
    policy_b = _policy(f"{_SIG} {{ return 5 - (now - obj_info.last_accessed) }}")
    built_b = _build_fused_loop(policy_b._priority._runner, policy_b)
    assert built_a is not None and built_b is not None
    assert len(_LOOP_CODE_CACHE) == before
