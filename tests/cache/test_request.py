"""Request / Trace data-model tests."""

import pytest

from repro.cache.request import Request, Trace

from tests.conftest import make_trace


def test_request_validation():
    Request(timestamp=1, key=2, size=3)
    with pytest.raises(ValueError):
        Request(timestamp=1, key=2, size=0)
    with pytest.raises(ValueError):
        Request(timestamp=1, key=2, size=-5)


def test_trace_basic_stats(tiny_trace):
    assert len(tiny_trace) == 12
    assert tiny_trace.unique_objects() == 7
    assert tiny_trace.footprint_bytes() == 7 * 100
    assert tiny_trace.duration() == 11
    assert tiny_trace.compulsory_miss_ratio() == pytest.approx(7 / 12)


def test_trace_footprint_uses_largest_size_per_key():
    trace = make_trace([(1, 1, 100), (2, 1, 300), (3, 2, 50)])
    assert trace.footprint_bytes() == 350


def test_trace_iteration_and_indexing(tiny_trace):
    assert tiny_trace[0].key == 1
    keys = [r.key for r in tiny_trace]
    assert keys[:3] == [1, 2, 3]


def test_trace_slice(tiny_trace):
    sub = tiny_trace.slice(0, 5, name="head")
    assert len(sub) == 5
    assert sub.name == "head"


def test_trace_csv_roundtrip(tmp_path, tiny_trace):
    path = tmp_path / "trace.csv"
    tiny_trace.to_csv(path)
    loaded = Trace.from_csv(path)
    assert len(loaded) == len(tiny_trace)
    assert [r.key for r in loaded] == [r.key for r in tiny_trace]
    assert [r.size for r in loaded] == [r.size for r in tiny_trace]


def test_trace_csv_string(tiny_trace):
    text = tiny_trace.to_csv_string()
    assert text.splitlines()[0] == "timestamp,key,size"
    assert len(text.splitlines()) == len(tiny_trace) + 1


def test_trace_from_csv_rejects_bad_header(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("a,b,c\n1,2,3\n")
    with pytest.raises(ValueError):
        Trace.from_csv(path)


def test_trace_from_requests_builder():
    trace = Trace.from_requests([(1, 10, 100), (2, 11, 200)], name="built")
    assert trace.name == "built"
    assert trace.footprint_bytes() == 300
