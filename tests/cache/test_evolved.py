"""Tests of the shipped evolved heuristics (Listing 1 and friends)."""

import pytest

from repro.cache.policies.evolved import (
    CLOUDPHYSICS_HEURISTICS,
    EVOLVED_HEURISTICS,
    HEURISTIC_A_SOURCE,
    LFU_SEED_SOURCE,
    LRU_SEED_SOURCE,
    MSR_HEURISTICS,
    evolved_policy_factories,
    policy_factory,
    program_for,
)
from repro.cache.priority_cache import TEMPLATE_PARAMS
from repro.cache.simulator import simulate
from repro.dsl import analyze, parse


def test_eight_heuristics_shipped():
    assert len(EVOLVED_HEURISTICS) == 8
    assert set(CLOUDPHYSICS_HEURISTICS) == {
        "Heuristic A", "Heuristic B", "Heuristic C", "Heuristic D",
    }
    assert set(MSR_HEURISTICS) == {
        "Heuristic W", "Heuristic X", "Heuristic Y", "Heuristic Z",
    }


@pytest.mark.parametrize("name", sorted(EVOLVED_HEURISTICS))
def test_heuristics_parse_with_template_signature(name):
    program = program_for(name)
    assert program.name == "priority"
    assert tuple(program.params) == TEMPLATE_PARAMS
    facts = analyze(program)
    assert facts.has_return
    assert facts.free_names == []


def test_heuristic_a_matches_listing_1_structure():
    """Heuristic A must keep the feature usage of the paper's Listing 1."""
    facts = analyze(parse(HEURISTIC_A_SOURCE))
    # Listing 1 reads count, last access, size; queries history and all three
    # aggregate percentiles; and contains a ternary on the frequency percentile.
    assert {"count", "last_accessed", "size"} <= facts.feature_attributes()
    assert ("history", "contains") in facts.methods_called
    assert ("history", "count_of") in facts.methods_called
    assert ("history", "age_at_eviction") in facts.methods_called
    assert ("ages", "percentile") in facts.methods_called
    assert ("sizes", "percentile") in facts.methods_called
    assert ("counts", "percentile") in facts.methods_called


def test_seed_sources_are_one_liners():
    lru = parse(LRU_SEED_SOURCE)
    lfu = parse(LFU_SEED_SOURCE)
    assert len(lru.body) == 1 and len(lfu.body) == 1


def test_unknown_heuristic_name_raises():
    with pytest.raises(KeyError):
        program_for("Heuristic Q")


def test_policy_factories_run_on_trace(small_synthetic_trace):
    factories = evolved_policy_factories({"Heuristic A": EVOLVED_HEURISTICS["Heuristic A"],
                                          "Heuristic B": EVOLVED_HEURISTICS["Heuristic B"]})
    for name, factory in factories.items():
        result = simulate(factory, small_synthetic_trace, cache_fraction=0.08)
        assert 0 < result.miss_ratio < 1
        assert result.policy == name


def test_evolved_heuristics_beat_fifo_on_average(small_synthetic_trace):
    from repro.cache.policies.fifo import FIFOCache

    fifo = simulate(FIFOCache, small_synthetic_trace, cache_fraction=0.08)
    improvements = []
    for name in ("Heuristic B", "Heuristic X"):
        result = simulate(policy_factory(name), small_synthetic_trace, cache_fraction=0.08)
        improvements.append(result.improvement_over(fifo))
    assert max(improvements) > 0
