"""Behavioural unit tests for the simple eviction policies."""

import pytest

from repro.cache.policies.fifo import FIFOCache
from repro.cache.policies.fifo_reinsertion import FIFOReinsertionCache
from repro.cache.policies.lfu import LFUCache
from repro.cache.policies.lru import LRUCache
from repro.cache.policies.mru import MRUCache
from repro.cache.policies.sieve import SieveCache
from repro.cache.request import Request


def feed(policy, entries):
    """Replay (timestamp, key, size) entries through the policy."""
    for t, k, s in entries:
        request = Request(t, k, s)
        if not policy.lookup(request):
            if policy.should_admit(request):
                policy.admit(request)


def resident(policy):
    return set(policy.keys())


def test_fifo_evicts_in_insertion_order():
    policy = FIFOCache(capacity=300)
    feed(policy, [(1, 1, 100), (2, 2, 100), (3, 3, 100)])
    # Accessing object 1 must not save it: FIFO ignores recency.
    feed(policy, [(4, 1, 100)])
    feed(policy, [(5, 4, 100)])
    assert resident(policy) == {2, 3, 4}


def test_lru_evicts_least_recently_used():
    policy = LRUCache(capacity=300)
    feed(policy, [(1, 1, 100), (2, 2, 100), (3, 3, 100)])
    feed(policy, [(4, 1, 100)])     # 1 becomes most recent
    feed(policy, [(5, 4, 100)])     # evicts 2
    assert resident(policy) == {1, 3, 4}


def test_mru_evicts_most_recently_used():
    policy = MRUCache(capacity=300)
    feed(policy, [(1, 1, 100), (2, 2, 100), (3, 3, 100)])
    feed(policy, [(4, 4, 100)])     # evicts 3 (the most recently used resident)
    assert resident(policy) == {1, 2, 4}


def test_lfu_evicts_least_frequent_with_lru_tiebreak():
    policy = LFUCache(capacity=300)
    feed(policy, [(1, 1, 100), (2, 2, 100), (3, 3, 100)])
    feed(policy, [(4, 1, 100), (5, 1, 100), (6, 2, 100)])   # freqs: 1->3, 2->2, 3->1
    feed(policy, [(7, 4, 100)])
    assert resident(policy) == {1, 2, 4}
    # Now 3 is gone; freqs: 1->3, 2->2, 4->1; adding 5 evicts 4.
    feed(policy, [(8, 5, 100)])
    assert resident(policy) == {1, 2, 5}


def test_fifo_reinsertion_grants_second_chance():
    policy = FIFOReinsertionCache(capacity=300)
    feed(policy, [(1, 1, 100), (2, 2, 100), (3, 3, 100)])
    feed(policy, [(4, 1, 100)])     # mark 1 as accessed
    feed(policy, [(5, 4, 100)])     # 1 is reinserted, 2 evicted instead
    assert resident(policy) == {1, 3, 4}


def test_sieve_keeps_visited_objects():
    policy = SieveCache(capacity=300)
    feed(policy, [(1, 1, 100), (2, 2, 100), (3, 3, 100)])
    feed(policy, [(4, 1, 100)])     # visit object 1
    feed(policy, [(5, 4, 100)])     # hand skips 1 (clears bit), evicts 2
    assert resident(policy) == {1, 3, 4}
    # The hand now points at 3 (unvisited), so the next eviction takes it.
    feed(policy, [(6, 5, 100)])
    assert resident(policy) == {1, 4, 5}


def test_capacity_accounting_with_variable_sizes():
    policy = LRUCache(capacity=1000)
    feed(policy, [(1, 1, 400), (2, 2, 400), (3, 3, 400)])
    assert policy.used_bytes <= 1000
    policy.check_invariants()
    assert len(policy) == 2


def test_single_object_larger_than_capacity_rejected():
    policy = LRUCache(capacity=100)
    with pytest.raises(ValueError):
        policy.admit(Request(1, 1, 200))


def test_duplicate_admit_is_noop():
    policy = LRUCache(capacity=300)
    policy.admit(Request(1, 1, 100))
    policy.admit(Request(2, 1, 100))
    assert len(policy) == 1
    assert policy.used_bytes == 100


def test_eviction_listener_called():
    policy = FIFOCache(capacity=200)
    evicted = []
    policy.add_eviction_listener(lambda obj, now: evicted.append((obj.key, now)))
    feed(policy, [(1, 1, 100), (2, 2, 100), (3, 3, 100)])
    assert evicted == [(1, 3)]


def test_metadata_updates_on_hit():
    policy = LRUCache(capacity=1000)
    feed(policy, [(1, 1, 100), (5, 1, 100), (9, 1, 100)])
    obj = policy.get(1)
    assert obj.access_count == 3
    assert obj.last_access_time == 9
    assert obj.insert_time == 1


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        LRUCache(capacity=0)
