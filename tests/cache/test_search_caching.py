"""Tests of the caching PolicySmith instantiation (Template, Evaluator, search)."""

import pytest

from repro.cache.search import (
    CachingEvaluator,
    build_caching_search,
    caching_archetypes,
    caching_seed_programs,
    caching_template,
)
from repro.core.checker import StructuralChecker
from repro.dsl import parse

from tests.conftest import LISTING_1, PRIORITY_SIGNATURE


def test_template_structure():
    template = caching_template()
    assert template.name == "cache-priority"
    assert template.signature().startswith("def priority(now, obj_id, obj_info")
    assert len(template.seed_programs) == 2        # LRU and LFU seeds (§4.2.1)
    assert any("O(log N)" in c for c in template.constraints)
    assert "percentile" in template.description


def test_seed_programs_pass_checker():
    template = caching_template()
    checker = StructuralChecker(template)
    for source in template.seeds_as_source():
        assert checker.check(source).ok


def test_archetypes_pass_checker():
    template = caching_template()
    checker = StructuralChecker(template)
    for source in caching_archetypes():
        result = checker.check(source)
        assert result.ok, result.feedback


def test_listing_1_passes_checker():
    checker = StructuralChecker(caching_template())
    assert checker.check(LISTING_1).ok


def test_checker_rejects_unknown_feature():
    checker = StructuralChecker(caching_template())
    bad = f"{PRIORITY_SIGNATURE} {{ return obj_info.magic }}"
    result = checker.check(bad)
    assert not result.ok
    assert "unknown-feature" in result.issue_codes()


def test_evaluator_scores_lru_seed(small_synthetic_trace):
    evaluator = CachingEvaluator(small_synthetic_trace, cache_fraction=0.08)
    lru, lfu = caching_seed_programs()
    lru_result = evaluator.evaluate(lru)
    assert lru_result.valid
    assert -1.0 <= lru_result.score <= 0.0
    assert lru_result.details["miss_ratio"] == pytest.approx(-lru_result.score)


def test_evaluator_handles_broken_candidate(small_synthetic_trace):
    evaluator = CachingEvaluator(small_synthetic_trace, cache_fraction=0.08)
    broken = parse(f"{PRIORITY_SIGNATURE} {{ return 1 / (now - now) }}")
    result = evaluator.evaluate(broken)
    assert not result.valid
    assert result.score == evaluator.failure_score
    assert "runtime error" in result.error


def test_small_search_run_finds_valid_heuristic(small_synthetic_trace):
    setup = build_caching_search(
        small_synthetic_trace, rounds=2, candidates_per_round=5, seed=3
    )
    result = setup.search.run()
    assert result.total_candidates == 2 + 2 * 5    # seeds + 2 rounds
    assert result.best is not None
    # The winner can never be worse than the better of the two seeds.
    seed_scores = [c.score for c in result.candidates if c.candidate.origin == "seed"]
    assert result.best.score >= max(seed_scores)
    assert result.prompt_tokens > 0
    assert result.estimated_cost_usd > 0


def test_search_is_deterministic_per_seed(small_synthetic_trace):
    first = build_caching_search(small_synthetic_trace, rounds=1, candidates_per_round=4, seed=11)
    second = build_caching_search(small_synthetic_trace, rounds=1, candidates_per_round=4, seed=11)
    assert first.search.run().best_source() == second.search.run().best_source()
