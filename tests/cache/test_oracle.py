"""Oracle (B-Oracle / PS-Oracle) tests."""

import pytest

from repro.cache.metrics import SimulationResult
from repro.cache.oracle import Oracle, baseline_oracle, policysmith_oracle


def result(policy, trace, miss_ratio, requests=1000):
    misses = int(miss_ratio * requests)
    return SimulationResult(
        policy=policy,
        trace=trace,
        cache_size=1,
        requests=requests,
        misses=misses,
        hits=requests - misses,
    )


@pytest.fixture
def results_by_trace():
    return {
        "t1": {
            "FIFO": result("FIFO", "t1", 0.50),
            "LRU": result("LRU", "t1", 0.40),
            "GDSF": result("GDSF", "t1", 0.30),
            "Heuristic A": result("Heuristic A", "t1", 0.25),
        },
        "t2": {
            "FIFO": result("FIFO", "t2", 0.60),
            "LRU": result("LRU", "t2", 0.35),
            "GDSF": result("GDSF", "t2", 0.45),
            "Heuristic A": result("Heuristic A", "t2", 0.50),
        },
    }


def test_baseline_oracle_picks_best_baseline(results_by_trace):
    oracle = baseline_oracle(["FIFO", "LRU", "GDSF"])
    selections = {s.trace: s for s in oracle.select(results_by_trace)}
    assert selections["t1"].chosen_policy == "GDSF"
    assert selections["t2"].chosen_policy == "LRU"
    assert selections["t1"].improvement_over_fifo == pytest.approx((0.5 - 0.3) / 0.5)


def test_policysmith_oracle_includes_heuristics(results_by_trace):
    oracle = policysmith_oracle(["FIFO", "LRU", "GDSF"], ["Heuristic A"])
    selections = {s.trace: s for s in oracle.select(results_by_trace)}
    assert selections["t1"].chosen_policy == "Heuristic A"
    assert selections["t2"].chosen_policy == "LRU"


def test_ps_oracle_never_worse_than_b_oracle(results_by_trace):
    b = baseline_oracle(["FIFO", "LRU", "GDSF"])
    ps = policysmith_oracle(["FIFO", "LRU", "GDSF"], ["Heuristic A"])
    assert ps.mean_improvement(results_by_trace) >= b.mean_improvement(results_by_trace)


def test_oracle_requires_fifo_result(results_by_trace):
    del results_by_trace["t1"]["FIFO"]
    oracle = baseline_oracle(["LRU", "GDSF"])
    with pytest.raises(KeyError):
        oracle.select(results_by_trace)


def test_oracle_with_no_candidates_raises(results_by_trace):
    oracle = Oracle("empty", ["NotAPolicy"])
    with pytest.raises(KeyError):
        oracle.select(results_by_trace)


def test_oracle_ignores_missing_candidates(results_by_trace):
    oracle = Oracle("partial", ["GDSF", "NotAPolicy"])
    selections = oracle.select(results_by_trace)
    assert all(s.chosen_policy == "GDSF" for s in selections)
