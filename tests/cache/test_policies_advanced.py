"""Behavioural tests for the structurally richer eviction policies."""

import pytest

from repro.cache.policies.arc import ARCCache
from repro.cache.policies.cacheus import CacheusCache
from repro.cache.policies.cr_lfu import CRLFUCache
from repro.cache.policies.gdsf import GDSFCache
from repro.cache.policies.lecar import LeCaRCache
from repro.cache.policies.lhd import LHDCache
from repro.cache.policies.lirs import LIRSCache
from repro.cache.policies.s3fifo import S3FIFOCache
from repro.cache.policies.sr_lru import SRLRUCache
from repro.cache.policies.twoq import TwoQCache
from repro.cache.policies import ALL_POLICIES, BASELINES
from repro.cache.simulator import CacheSimulator, cache_size_for, simulate

from tests.cache.test_policies_basic import feed, resident


def test_baselines_registry_matches_paper():
    # The paper's fourteen baselines (§4.2.2) must all be present.
    expected = {
        "GDSF", "S3-FIFO", "SIEVE", "LIRS", "LHD", "Cacheus", "FIFO-Re",
        "LeCaR", "SR-LRU", "CR-LFU", "LRU", "MRU", "FIFO", "LFU",
    }
    assert expected == set(BASELINES)
    assert {"ARC", "TwoQ"} <= set(ALL_POLICIES)


def test_gdsf_prefers_small_frequent_objects():
    policy = GDSFCache(capacity=1000)
    # A large cold object and small hot objects.
    feed(policy, [(1, 1, 600), (2, 2, 100), (3, 3, 100), (4, 2, 100), (5, 3, 100)])
    feed(policy, [(6, 4, 300)])   # needs room: the big cold object 1 should go
    assert 1 not in resident(policy)
    assert {2, 3} <= resident(policy)


def test_gdsf_clock_inflation_monotone():
    policy = GDSFCache(capacity=200)
    feed(policy, [(1, 1, 100), (2, 2, 100)])
    first_clock = policy._clock
    feed(policy, [(3, 3, 100), (4, 4, 100)])
    assert policy._clock >= first_clock


def test_s3fifo_promotes_reaccessed_small_queue_objects():
    policy = S3FIFOCache(capacity=1000, small_fraction=0.3)
    feed(policy, [(1, 1, 100), (2, 2, 100), (3, 3, 100)])
    feed(policy, [(4, 1, 100)])            # object 1 gains frequency in small
    # Force small-queue evictions: one-hit wonders should leave before 1.
    feed(policy, [(5, 4, 100), (6, 5, 100), (7, 6, 100), (8, 7, 100), (9, 8, 100), (10, 9, 100)])
    assert 1 in resident(policy)


def test_s3fifo_ghost_hit_goes_to_main():
    policy = S3FIFOCache(capacity=400, small_fraction=0.25)
    feed(policy, [(1, 1, 100), (2, 2, 100), (3, 3, 100), (4, 4, 100), (5, 5, 100)])
    # Object 1 was evicted from the small queue without reuse -> ghost.
    assert 1 not in resident(policy)
    feed(policy, [(6, 1, 100)])
    obj = policy.get(1)
    assert obj is not None and obj.extra["queue"] == "main"


def test_arc_ghost_hit_adapts_target():
    policy = ARCCache(capacity=300)
    feed(policy, [(1, 1, 100), (2, 2, 100), (3, 3, 100), (4, 4, 100)])
    assert len(policy) == 3
    evicted = ({1, 2, 3, 4} - resident(policy)).pop()
    before = policy._p
    feed(policy, [(5, evicted, 100)])      # hit in B1 -> p grows
    assert policy._p >= before
    obj = policy.get(evicted)
    assert obj is not None and obj.extra["arc_list"] == "t2"


def test_arc_hit_moves_object_to_t2():
    policy = ARCCache(capacity=400)
    feed(policy, [(1, 1, 100), (2, 2, 100)])
    feed(policy, [(3, 1, 100)])
    assert policy.get(1).extra["arc_list"] == "t2"


def test_twoq_promotes_a1out_hits():
    policy = TwoQCache(capacity=400, kin_fraction=0.25, kout_fraction=0.5)
    feed(policy, [(1, 1, 100), (2, 2, 100), (3, 3, 100), (4, 4, 100), (5, 5, 100)])
    missing = {1, 2, 3, 4, 5} - resident(policy)
    assert missing, "at least one object must have been evicted from A1in"
    victim = min(missing)
    feed(policy, [(6, victim, 100)])
    assert policy.get(victim).extra["twoq_list"] == "am"


def test_lirs_keeps_hot_working_set_under_scan():
    policy = LIRSCache(capacity=1000)
    # Establish a hot working set of 1..8 (re-referenced), then scan 100..140.
    hot = [(t, k, 100) for t, k in enumerate([1, 2, 3, 4, 5, 6, 7, 8] * 3, start=1)]
    feed(policy, hot)
    scan = [(100 + i, 100 + i, 100) for i in range(40)]
    feed(policy, scan)
    hot_resident = sum(1 for k in [1, 2, 3, 4, 5, 6, 7, 8] if k in policy)
    assert hot_resident >= 6


def test_lhd_runs_and_respects_capacity(small_synthetic_trace):
    result = simulate(LHDCache, small_synthetic_trace, cache_fraction=0.1)
    assert 0 < result.miss_ratio < 1


def test_lecar_weights_stay_normalised(small_synthetic_trace):
    policy = LeCaRCache(cache_size_for(small_synthetic_trace, 0.05))
    CacheSimulator().run(policy, small_synthetic_trace)
    assert policy.lru_weight + policy.lfu_weight == pytest.approx(1.0)
    assert 0 < policy.lru_weight < 1


def test_cr_lfu_breaks_ties_by_evicting_mru():
    policy = CRLFUCache(capacity=300)
    feed(policy, [(1, 1, 100), (2, 2, 100), (3, 3, 100)])
    # All have frequency 1; the most recently used is 3, so it goes first.
    feed(policy, [(4, 4, 100)])
    assert resident(policy) == {1, 2, 4}


def test_sr_lru_protects_reused_objects_from_scans():
    policy = SRLRUCache(capacity=1000)
    # Objects 1 and 2 are reused (promoted to R); then a scan floods SR.
    feed(policy, [(1, 1, 100), (2, 2, 100), (3, 1, 100), (4, 2, 100)])
    scan = [(10 + i, 50 + i, 100) for i in range(20)]
    feed(policy, scan)
    assert 1 in resident(policy)
    assert 2 in resident(policy)


def test_cacheus_adapts_learning_rate(small_synthetic_trace):
    policy = CacheusCache(cache_size_for(small_synthetic_trace, 0.05))
    CacheSimulator().run(policy, small_synthetic_trace)
    assert CacheusCache.MIN_LEARNING_RATE <= policy.learning_rate <= CacheusCache.MAX_LEARNING_RATE
    assert policy.recency_weight + policy.frequency_weight == pytest.approx(1.0)


@pytest.mark.parametrize("name", sorted(ALL_POLICIES))
def test_every_policy_simulates_correctly(name, small_synthetic_trace):
    """Every policy handles a realistic trace without violating invariants."""
    factory = ALL_POLICIES[name]
    policy = factory(cache_size_for(small_synthetic_trace, 0.08))
    simulator = CacheSimulator(check_invariants_every=200)
    result = simulator.run(policy, small_synthetic_trace)
    assert result.requests == len(small_synthetic_trace)
    assert result.hits + result.misses == result.requests
    assert 0.0 < result.miss_ratio <= 1.0
    # No policy can beat compulsory misses.
    assert result.miss_ratio >= small_synthetic_trace.compulsory_miss_ratio() - 1e-9
    policy.check_invariants()


@pytest.mark.parametrize("name", ["LRU", "GDSF", "S3-FIFO", "SIEVE", "Cacheus"])
def test_policies_are_deterministic(name, small_synthetic_trace):
    factory = ALL_POLICIES[name]
    size = cache_size_for(small_synthetic_trace, 0.08)
    first = CacheSimulator().run(factory(size), small_synthetic_trace)
    second = CacheSimulator().run(factory(size), small_synthetic_trace)
    assert first.miss_ratio == second.miss_ratio
    assert first.evictions == second.evictions
