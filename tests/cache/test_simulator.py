"""Cache simulator loop tests."""

import pytest

from repro.cache.policies.fifo import FIFOCache
from repro.cache.policies.lru import LRUCache
from repro.cache.simulator import (
    CacheSimulator,
    cache_size_for,
    simulate,
    simulate_many,
)

from tests.conftest import make_trace


def test_hit_and_miss_counting(tiny_trace):
    # Cache big enough to hold everything: misses == compulsory misses.
    result = simulate(LRUCache, tiny_trace, cache_size=10_000)
    assert result.requests == len(tiny_trace)
    assert result.misses == tiny_trace.unique_objects()
    assert result.hits == len(tiny_trace) - tiny_trace.unique_objects()
    assert result.miss_ratio == pytest.approx(7 / 12)
    assert result.hit_ratio == pytest.approx(5 / 12)


def test_byte_miss_ratio(tiny_trace):
    result = simulate(LRUCache, tiny_trace, cache_size=10_000)
    assert result.byte_miss_ratio == pytest.approx(result.miss_ratio)  # equal sizes


def test_cache_size_for_fraction(tiny_trace):
    assert cache_size_for(tiny_trace, 0.10) == max(1, int(700 * 0.10))
    assert cache_size_for(tiny_trace, 1.0) == 700


def test_simulate_accepts_prebuilt_policy(tiny_trace):
    policy = FIFOCache(300)
    result = simulate(policy, tiny_trace)
    assert result.cache_size == 300
    assert result.policy == "FIFO"


def test_oversized_objects_are_bypassed():
    trace = make_trace([(1, 1, 500), (2, 2, 50), (3, 1, 500)])
    result = simulate(FIFOCache, trace, cache_size=100)
    assert result.bypassed == 2          # the two oversized requests
    assert result.misses == 3
    assert result.admissions == 1


def test_warmup_requests_not_counted(tiny_trace):
    full = simulate(LRUCache, tiny_trace, cache_size=10_000)
    warm = CacheSimulator().run(LRUCache(10_000), tiny_trace, warmup=6)
    assert warm.requests == len(tiny_trace) - 6
    assert warm.misses <= full.misses


def test_improvement_over_baseline(tiny_trace):
    results = simulate_many({"LRU": LRUCache, "FIFO": FIFOCache}, tiny_trace, cache_size=250)
    lru, fifo = results["LRU"], results["FIFO"]
    improvement = lru.improvement_over(fifo)
    assert improvement == pytest.approx((fifo.miss_ratio - lru.miss_ratio) / fifo.miss_ratio)


def test_simulate_many_uses_same_capacity(tiny_trace):
    results = simulate_many({"LRU": LRUCache, "FIFO": FIFOCache}, tiny_trace)
    sizes = {r.cache_size for r in results.values()}
    assert len(sizes) == 1


def test_invariant_checking_mode(small_synthetic_trace):
    simulator = CacheSimulator(check_invariants_every=100)
    policy = LRUCache(cache_size_for(small_synthetic_trace))
    result = simulator.run(policy, small_synthetic_trace)
    assert result.requests == len(small_synthetic_trace)


def test_eviction_count_reported(small_synthetic_trace):
    result = simulate(LRUCache, small_synthetic_trace, cache_fraction=0.05)
    assert result.evictions > 0
    assert result.admissions >= result.evictions
