"""Property-based tests over the eviction policies.

For randomly generated request streams, every policy must maintain its
byte-accounting invariants, never exceed capacity, and produce hit/miss
counts that add up.  These are exactly the invariants that, if broken,
would silently corrupt every experiment built on top of the simulator.
"""

from hypothesis import given, settings, strategies as st

from repro.cache.policies import ALL_POLICIES
from repro.cache.request import Request, Trace
from repro.cache.simulator import CacheSimulator

POLICY_NAMES = sorted(ALL_POLICIES)

request_streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),     # key
        st.integers(min_value=1, max_value=400),    # size
    ),
    min_size=1,
    max_size=120,
)


def build_trace(pairs):
    return Trace(
        [Request(timestamp=i + 1, key=key, size=size) for i, (key, size) in enumerate(pairs)],
        name="hypothesis",
    )


@settings(max_examples=25, deadline=None)
@given(pairs=request_streams, policy_index=st.integers(min_value=0, max_value=len(POLICY_NAMES) - 1))
def test_policies_never_exceed_capacity(pairs, policy_index):
    name = POLICY_NAMES[policy_index]
    trace = build_trace(pairs)
    capacity = 800
    policy = ALL_POLICIES[name](capacity)
    result = CacheSimulator(check_invariants_every=7).run(policy, trace)
    policy.check_invariants()
    assert policy.used_bytes <= capacity
    assert result.hits + result.misses == result.requests == len(trace)
    assert result.admissions <= result.misses
    assert result.evictions <= result.admissions


@settings(max_examples=25, deadline=None)
@given(pairs=request_streams)
def test_unbounded_cache_only_has_compulsory_misses(pairs):
    trace = build_trace(pairs)
    policy = ALL_POLICIES["LRU"](10_000_000)
    result = CacheSimulator().run(policy, trace)
    assert result.misses == trace.unique_objects()


@settings(max_examples=15, deadline=None)
@given(
    pairs=request_streams,
    policy_index=st.integers(min_value=0, max_value=len(POLICY_NAMES) - 1),
)
def test_policies_deterministic_over_random_traces(pairs, policy_index):
    name = POLICY_NAMES[policy_index]
    trace = build_trace(pairs)
    first = CacheSimulator().run(ALL_POLICIES[name](600), trace)
    second = CacheSimulator().run(ALL_POLICIES[name](600), trace)
    assert first.miss_ratio == second.miss_ratio
    assert first.evictions == second.evictions
