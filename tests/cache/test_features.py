"""Tests of the Table-1 feature view (per-object, aggregates, history)."""

import pytest

from repro.cache.features import (
    EvictionHistory,
    FeatureAggregates,
    ObjectInfoView,
)
from repro.cache.policies.base import CachedObject
from repro.dsl.errors import DslRuntimeError


def make_object(key=1, size=100, insert=10, last=50, count=3):
    return CachedObject(
        key=key, size=size, insert_time=insert, last_access_time=last, access_count=count
    )


# -- ObjectInfoView -------------------------------------------------------------


def test_object_info_view_mirrors_cached_object():
    view = ObjectInfoView(make_object(key=9, size=256, insert=5, last=42, count=7))
    assert view.count == 7
    assert view.last_accessed == 42
    assert view.inserted_at == 5
    assert view.size == 256


def test_object_info_view_dsl_access_control():
    view = ObjectInfoView(make_object())
    assert view.dsl_getattr("count") == 3
    with pytest.raises(DslRuntimeError):
        view.dsl_getattr("secret")
    with pytest.raises(DslRuntimeError):
        view.dsl_call("count", [])


# -- FeatureAggregates ------------------------------------------------------------


def test_aggregates_percentile_nearest_rank():
    agg = FeatureAggregates([10, 20, 30, 40, 50])
    assert agg.percentile(0.0) == 10
    assert agg.percentile(0.5) == 30
    assert agg.percentile(1.0) == 50
    assert agg.percentile(0.75) == 40


def test_aggregates_percentile_accepts_percent_form():
    agg = FeatureAggregates([10, 20, 30, 40, 50])
    assert agg.percentile(75) == agg.percentile(0.75)


def test_aggregates_summary_stats():
    agg = FeatureAggregates([4, 2, 8])
    assert agg.mean() == pytest.approx(14 / 3)
    assert agg.minimum() == 2
    assert agg.maximum() == 8
    assert agg.count() == 3


def test_aggregates_empty_behaviour():
    agg = FeatureAggregates()
    assert agg.percentile(0.5) == 0.0
    assert agg.mean() == 0.0
    assert agg.minimum() == 0.0
    assert agg.maximum() == 0.0
    assert agg.count() == 0


def test_aggregates_update_replaces_snapshot():
    agg = FeatureAggregates([1, 2, 3])
    agg.update([100, 200])
    assert agg.maximum() == 200
    assert agg.count() == 2


def test_aggregates_rejects_non_numeric_percentile():
    agg = FeatureAggregates([1, 2, 3])
    with pytest.raises(DslRuntimeError):
        agg.percentile("high")


# -- EvictionHistory ------------------------------------------------------------------


def test_history_records_eviction_metadata():
    history = EvictionHistory(max_entries=10)
    history.record(make_object(key=5, last=40, count=4, size=123), now=100)
    history.set_now(150)
    assert history.contains(5)
    assert history.count_of(5) == 4
    assert history.age_at_eviction(5) == 60
    assert history.size_of(5) == 123
    assert history.time_since_eviction(5) == 50
    assert history.length() == 1


def test_history_misses_return_neutral_values():
    history = EvictionHistory()
    assert not history.contains(99)
    assert history.count_of(99) == 0
    assert history.age_at_eviction(99) == 0
    assert history.size_of(99) == 0
    assert history.time_since_eviction(99) == 0


def test_history_bounded_by_max_entries():
    history = EvictionHistory(max_entries=3)
    for key in range(6):
        history.record(make_object(key=key), now=100 + key)
    assert history.length() == 3
    assert not history.contains(0)
    assert history.contains(5)


def test_history_rerecord_moves_to_front():
    history = EvictionHistory(max_entries=2)
    history.record(make_object(key=1), now=10)
    history.record(make_object(key=2), now=20)
    history.record(make_object(key=1, count=9), now=30)   # re-evicted later
    history.record(make_object(key=3), now=40)
    assert history.contains(1)
    assert history.count_of(1) == 9
    assert not history.contains(2)


def test_history_requires_positive_capacity():
    with pytest.raises(ValueError):
        EvictionHistory(max_entries=0)
