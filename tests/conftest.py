"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.cache.request import Request, Trace
from repro.cache.search import caching_template
from repro.dsl.grammar import FeatureSpec
from repro.dsl.interpreter import FeatureObject
from repro.traces.synthetic import SyntheticWorkloadConfig, generate_trace


PRIORITY_SIGNATURE = "def priority(now, obj_id, obj_info, counts, ages, sizes, history)"

LISTING_1 = f"""
{PRIORITY_SIGNATURE} {{
    score = obj_info.count * 20
    age = now - obj_info.last_accessed
    score -= age / 300
    score -= obj_info.size / 500
    if (history.contains(obj_id)) {{
        score += history.count_of(obj_id) * 15
        score += history.age_at_eviction(obj_id) / 150
    }} else {{
        score -= 40
    }}
    recent = ages.percentile(0.75)
    if (obj_info.last_accessed < recent) {{
        score -= 30
    }}
    big = sizes.percentile(0.75)
    if (obj_info.size > big) {{
        score -= 25
    }} else {{
        score += 10
    }}
    frequent = counts.percentile(0.7)
    score += (obj_info.count > frequent) ? 50 : -5
    if (age < 1000) {{
        score += 25
    }}
    if (obj_info.count < 3) {{
        score -= 15
    }}
    return score
}}
"""


class StubObjectInfo(FeatureObject):
    """Minimal per-object feature stub for interpreter tests."""

    exported_attrs = frozenset({"count", "last_accessed", "inserted_at", "size"})

    def __init__(self, count=5, last_accessed=900, inserted_at=100, size=1000):
        self.count = count
        self.last_accessed = last_accessed
        self.inserted_at = inserted_at
        self.size = size


class StubAggregate(FeatureObject):
    """Aggregate stub returning a fixed value for every query."""

    exported_methods = frozenset({"percentile", "mean", "minimum", "maximum", "count"})

    def __init__(self, value=42):
        self.value = value

    def percentile(self, fraction):
        return self.value

    def mean(self):
        return self.value

    def minimum(self):
        return self.value

    def maximum(self):
        return self.value

    def count(self):
        return 10


class StubHistory(FeatureObject):
    """History stub with a configurable membership set."""

    exported_methods = frozenset(
        {"contains", "count_of", "age_at_eviction", "size_of", "time_since_eviction", "length"}
    )

    def __init__(self, members=()):
        self.members = set(members)

    def contains(self, key):
        return key in self.members

    def count_of(self, key):
        return 3 if key in self.members else 0

    def age_at_eviction(self, key):
        return 600 if key in self.members else 0

    def size_of(self, key):
        return 512 if key in self.members else 0

    def time_since_eviction(self, key):
        return 100 if key in self.members else 0

    def length(self):
        return len(self.members)


@pytest.fixture
def priority_env():
    """A complete Table-1 environment for interpreting priority programs."""
    return {
        "now": 1000,
        "obj_id": 7,
        "obj_info": StubObjectInfo(),
        "counts": StubAggregate(4),
        "ages": StubAggregate(200),
        "sizes": StubAggregate(2048),
        "history": StubHistory(members={7}),
    }


@pytest.fixture
def caching_spec() -> FeatureSpec:
    return caching_template().spec


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


def make_trace(entries, name="test-trace"):
    """Build a trace from (timestamp, key, size) tuples."""
    return Trace([Request(t, k, s) for t, k, s in entries], name=name)


@pytest.fixture
def tiny_trace() -> Trace:
    """A 12-request trace with obvious reuse (used by policy unit tests)."""
    return make_trace(
        [
            (1, 1, 100),
            (2, 2, 100),
            (3, 3, 100),
            (4, 1, 100),
            (5, 4, 100),
            (6, 2, 100),
            (7, 5, 100),
            (8, 1, 100),
            (9, 6, 100),
            (10, 2, 100),
            (11, 7, 100),
            (12, 1, 100),
        ]
    )


@pytest.fixture
def small_synthetic_trace() -> Trace:
    """A deterministic ~1500-request synthetic trace for integration tests."""
    config = SyntheticWorkloadConfig(
        name="unit-small", num_requests=1500, num_objects=300, seed=7
    )
    return generate_trace(config)
