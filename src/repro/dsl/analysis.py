"""Static analysis over candidate programs.

The facts gathered here feed two consumers:

* **Checkers** -- the caching Checker verifies the program is well-formed
  (has a return, references only known features); the kernel-constraint
  Checker (our eBPF-verifier stand-in, :mod:`repro.cc.kernel_constraints`)
  additionally rejects floating point, unchecked division, and loops that
  cannot be proven bounded, which the paper reports as the dominant causes
  of verifier failures (§5.0.3).
* **Experiments** -- complexity and feature-usage statistics of discovered
  heuristics (the paper discusses Listing 1's structure in §4.2.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.dsl.ast import (
    Assign,
    Attribute,
    AugAssign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Expr,
    ForRange,
    If,
    Name,
    Number,
    Program,
    Return,
    Stmt,
    Ternary,
    UnaryOp,
    While,
)


@dataclass
class DivisionSite:
    """One division or modulo in the program.

    ``checked`` is True when the divisor is a non-zero numeric literal --
    i.e. the division can be statically proven safe.  Divisions by arbitrary
    expressions are reported as unchecked; the kernel checker rejects them
    (the paper lists "missing checks for division by zero" among the most
    common failures).
    """

    op: str
    checked: bool
    divisor_repr: str


@dataclass
class ProgramFacts:
    """Everything the checkers need to know about a candidate, in one pass."""

    has_return: bool
    return_count: int
    uses_float_literal: bool
    uses_true_division: bool
    division_sites: List[DivisionSite] = field(default_factory=list)
    while_loop_count: int = 0
    for_loop_count: int = 0
    unbounded_for_count: int = 0
    attributes_read: Set[Tuple[str, str]] = field(default_factory=set)
    methods_called: Set[Tuple[str, str]] = field(default_factory=set)
    names_read: Set[str] = field(default_factory=set)
    free_names: List[str] = field(default_factory=list)
    node_count: int = 0
    max_expression_depth: int = 0

    @property
    def uses_float_arithmetic(self) -> bool:
        """True if the candidate relies on floating point anywhere."""
        return self.uses_float_literal or self.uses_true_division

    @property
    def has_unchecked_division(self) -> bool:
        return any(not site.checked for site in self.division_sites)

    @property
    def has_potentially_unbounded_loop(self) -> bool:
        return self.while_loop_count > 0 or self.unbounded_for_count > 0

    def feature_attributes(self) -> Set[str]:
        """Attribute names read across all feature objects (e.g. ``count``)."""
        return {attr for _obj, attr in self.attributes_read}


def _expression_depth(node) -> int:
    children = list(node.children())
    if not children:
        return 1
    return 1 + max(_expression_depth(child) for child in children)


def analyze(program: Program) -> ProgramFacts:
    """Compute :class:`ProgramFacts` for ``program`` in a single AST walk."""
    facts = ProgramFacts(
        has_return=False,
        return_count=0,
        uses_float_literal=False,
        uses_true_division=False,
    )
    facts.node_count = program.size()
    facts.free_names = list(program.free_names())

    for node in program.walk():
        if isinstance(node, Return):
            facts.has_return = True
            facts.return_count += 1
        elif isinstance(node, Number):
            if node.is_float():
                facts.uses_float_literal = True
        elif isinstance(node, Name):
            facts.names_read.add(node.id)
        elif isinstance(node, While):
            facts.while_loop_count += 1
        elif isinstance(node, ForRange):
            facts.for_loop_count += 1
            if not isinstance(node.limit, Number):
                facts.unbounded_for_count += 1
        elif isinstance(node, Attribute):
            base = node.value
            base_name = base.id if isinstance(base, Name) else "<expr>"
            facts.attributes_read.add((base_name, node.attr))
        elif isinstance(node, Call):
            func = node.func
            if isinstance(func, Attribute):
                base = func.value
                base_name = base.id if isinstance(base, Name) else "<expr>"
                facts.methods_called.add((base_name, func.attr))
                # A method call is not an attribute *read*; remove the entry
                # the Attribute branch will add when it visits func.
            elif isinstance(func, Name):
                facts.methods_called.add(("<builtin>", func.id))
        elif isinstance(node, BinOp):
            if node.op == "/":
                facts.uses_true_division = True
            if node.op in ("/", "//", "%"):
                divisor = node.right
                checked = isinstance(divisor, Number) and divisor.value != 0
                facts.division_sites.append(
                    DivisionSite(
                        op=node.op,
                        checked=checked,
                        divisor_repr=_brief_repr(divisor),
                    )
                )
        depth = _expression_depth(node)
        if depth > facts.max_expression_depth:
            facts.max_expression_depth = depth

    # Method calls also show up as attribute reads because Call.func is an
    # Attribute node; strip them so "attributes_read" means data accesses.
    facts.attributes_read -= facts.methods_called
    return facts


def _brief_repr(node) -> str:
    """A short human-readable rendering of an expression for diagnostics."""
    from repro.dsl.codegen import expr_to_source

    text = expr_to_source(node)
    if len(text) > 40:
        text = text[:37] + "..."
    return text


# --------------------------------------------------------------------------
# Vectorizability (feeds the numpy batch backend, repro.dsl.vectorize)
# --------------------------------------------------------------------------

#: Builtin functions the batch lowering can translate, with the arities it
#: supports (min/max accept 2+; anything else errors at runtime, so such
#: programs fall back to the scalar backends which produce the right error).
_VECTOR_BUILTINS = {"min", "max", "abs", "clamp"}

#: Integer literals at or beyond 2**53 are not exactly representable as
#: float64 lanes, so programs containing them take the scalar backends.
_EXACT_INT_BOUND = 2**53


@dataclass(frozen=True)
class ColumnSpec:
    """One per-row input column of a vectorized kernel.

    ``kind`` is ``"scalar"`` (a plain numeric parameter read), ``"attr"``
    (``param.attr``) or ``"method"`` (``param.method(args)``).  ``args`` are
    ``("lit", value)`` / ``("param", name)`` pairs; canonicalisation is by
    *value* (``percentile(0.7)`` and ``percentile(0.70)`` share a column).
    """

    key: str
    kind: str
    param: str
    attr: Optional[str] = None
    args: Tuple[Tuple[str, Any], ...] = ()


@dataclass
class VectorizabilityReport:
    """Outcome of :func:`vectorizability`: either a column plan or reasons."""

    ok: bool
    reasons: List[str] = field(default_factory=list)
    columns: List[ColumnSpec] = field(default_factory=list)


def _column_key(kind: str, param: str, attr: Optional[str], args) -> str:
    if kind == "scalar":
        return param
    if kind == "attr":
        return f"{param}.{attr}"
    rendered = ", ".join(repr(v) if k == "lit" else v for k, v in args)
    return f"{param}.{attr}({rendered})"


def vectorizability(program: Program) -> VectorizabilityReport:
    """Decide whether ``program`` can be lowered to numpy batch kernels.

    The check is conservative: it accepts straight-line numeric programs
    whose feature accesses can be captured as per-row columns ahead of time
    (attribute reads and method calls on parameter objects, with literal or
    never-reassigned-parameter arguments), and rejects everything whose
    batch semantics could diverge from the scalar backends -- loops, huge
    integer literals, feature objects used as values, unknown functions.
    Rejected programs simply run on the compiled/interpreter backends.
    """
    params = set(program.params)
    reasons: List[str] = []
    columns: List[ColumnSpec] = []
    seen_keys: Set[str] = set()
    assigned: Set[str] = set()
    feature_params: Set[str] = set()
    bare_reads: Set[str] = set()

    # Pass 1: names assigned anywhere (targets are mutable locals; a feature
    # or method-argument parameter must never be one of them).
    for node in program.walk():
        if isinstance(node, (Assign, AugAssign)):
            assigned.add(node.target.id)
        elif isinstance(node, ForRange):
            assigned.add(node.var.id)

    def add_column(kind: str, param: str, attr: Optional[str], args=()) -> None:
        key = _column_key(kind, param, attr, args)
        if key not in seen_keys:
            seen_keys.add(key)
            columns.append(
                ColumnSpec(key=key, kind=kind, param=param, attr=attr, args=tuple(args))
            )

    def visit_feature_base(base: Expr, what: str) -> Optional[str]:
        if not isinstance(base, Name):
            reasons.append(f"{what} on a non-parameter expression")
            return None
        if base.id not in params:
            reasons.append(f"{what} on non-parameter name {base.id!r}")
            return None
        feature_params.add(base.id)
        return base.id

    def visit_expr(expr: Expr) -> None:
        if isinstance(expr, Number):
            if isinstance(expr.value, int) and abs(expr.value) >= _EXACT_INT_BOUND:
                reasons.append(
                    f"integer literal {expr.value} is not exact in float64 lanes"
                )
        elif isinstance(expr, Name):
            bare_reads.add(expr.id)
            if expr.id in params:
                add_column("scalar", expr.id, None)
            elif expr.id not in assigned:
                reasons.append(f"name {expr.id!r} is neither a parameter nor assigned")
        elif isinstance(expr, Attribute):
            param = visit_feature_base(expr.value, f"attribute read .{expr.attr}")
            if param is not None:
                add_column("attr", param, expr.attr)
        elif isinstance(expr, Call):
            func = expr.func
            if isinstance(func, Attribute):
                param = visit_feature_base(func.value, f"method call .{func.attr}()")
                if param is None:
                    return
                args: List[Tuple[str, Any]] = []
                for arg in expr.args:
                    if isinstance(arg, Number):
                        args.append(("lit", arg.value))
                    elif isinstance(arg, Name) and arg.id in params:
                        bare_reads.add(arg.id)
                        if arg.id in assigned:
                            reasons.append(
                                f"method argument {arg.id!r} is reassigned, so its "
                                "capture-time column would go stale"
                            )
                        args.append(("param", arg.id))
                        add_column("scalar", arg.id, None)
                    else:
                        reasons.append(
                            f"method argument of .{func.attr}() is not a literal "
                            "or parameter"
                        )
                        return
                add_column("method", param, func.attr, args)
            elif isinstance(func, Name):
                if func.id not in _VECTOR_BUILTINS:
                    reasons.append(f"unknown function {func.id!r}")
                    return
                arity = len(expr.args)
                if func.id in ("min", "max") and arity < 2:
                    reasons.append(f"{func.id}() with {arity} argument(s)")
                elif func.id == "abs" and arity != 1:
                    reasons.append(f"abs() with {arity} argument(s)")
                elif func.id == "clamp" and arity != 3:
                    reasons.append(f"clamp() with {arity} argument(s)")
                for arg in expr.args:
                    visit_expr(arg)
            else:
                reasons.append("unsupported call target")
        elif isinstance(expr, UnaryOp):
            visit_expr(expr.operand)
        elif isinstance(expr, (BinOp, Compare)):
            visit_expr(expr.left)
            visit_expr(expr.right)
        elif isinstance(expr, BoolOp):
            for value in expr.values:
                visit_expr(value)
        elif isinstance(expr, Ternary):
            visit_expr(expr.condition)
            visit_expr(expr.if_true)
            visit_expr(expr.if_false)
        else:
            reasons.append(f"unsupported expression {type(expr).__name__}")

    def visit_block(stmts: List[Stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, Assign):
                visit_expr(stmt.value)
            elif isinstance(stmt, AugAssign):
                # Desugars to a read of the target followed by a binary op.
                bare_reads.add(stmt.target.id)
                if stmt.target.id in params:
                    add_column("scalar", stmt.target.id, None)
                visit_expr(stmt.value)
            elif isinstance(stmt, If):
                visit_expr(stmt.condition)
                visit_block(stmt.body)
                visit_block(stmt.orelse)
            elif isinstance(stmt, Return):
                visit_expr(stmt.value)
            elif isinstance(stmt, (ForRange, While)):
                reasons.append(f"{type(stmt).__name__} loops are not vectorized")
            else:
                reasons.append(f"unsupported statement {type(stmt).__name__}")

    visit_block(program.body)

    for name in sorted(feature_params & assigned):
        reasons.append(f"feature parameter {name!r} is reassigned")
    for name in sorted(feature_params & bare_reads):
        reasons.append(f"feature parameter {name!r} is used as a plain value")

    if reasons:
        return VectorizabilityReport(ok=False, reasons=reasons)
    return VectorizabilityReport(ok=True, columns=columns)
