"""Static analysis over candidate programs.

The facts gathered here feed two consumers:

* **Checkers** -- the caching Checker verifies the program is well-formed
  (has a return, references only known features); the kernel-constraint
  Checker (our eBPF-verifier stand-in, :mod:`repro.cc.kernel_constraints`)
  additionally rejects floating point, unchecked division, and loops that
  cannot be proven bounded, which the paper reports as the dominant causes
  of verifier failures (§5.0.3).
* **Experiments** -- complexity and feature-usage statistics of discovered
  heuristics (the paper discusses Listing 1's structure in §4.2.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

from repro.dsl.ast import (
    Attribute,
    BinOp,
    Call,
    ForRange,
    Name,
    Number,
    Program,
    Return,
    While,
)


@dataclass
class DivisionSite:
    """One division or modulo in the program.

    ``checked`` is True when the divisor is a non-zero numeric literal --
    i.e. the division can be statically proven safe.  Divisions by arbitrary
    expressions are reported as unchecked; the kernel checker rejects them
    (the paper lists "missing checks for division by zero" among the most
    common failures).
    """

    op: str
    checked: bool
    divisor_repr: str


@dataclass
class ProgramFacts:
    """Everything the checkers need to know about a candidate, in one pass."""

    has_return: bool
    return_count: int
    uses_float_literal: bool
    uses_true_division: bool
    division_sites: List[DivisionSite] = field(default_factory=list)
    while_loop_count: int = 0
    for_loop_count: int = 0
    unbounded_for_count: int = 0
    attributes_read: Set[Tuple[str, str]] = field(default_factory=set)
    methods_called: Set[Tuple[str, str]] = field(default_factory=set)
    names_read: Set[str] = field(default_factory=set)
    free_names: List[str] = field(default_factory=list)
    node_count: int = 0
    max_expression_depth: int = 0

    @property
    def uses_float_arithmetic(self) -> bool:
        """True if the candidate relies on floating point anywhere."""
        return self.uses_float_literal or self.uses_true_division

    @property
    def has_unchecked_division(self) -> bool:
        return any(not site.checked for site in self.division_sites)

    @property
    def has_potentially_unbounded_loop(self) -> bool:
        return self.while_loop_count > 0 or self.unbounded_for_count > 0

    def feature_attributes(self) -> Set[str]:
        """Attribute names read across all feature objects (e.g. ``count``)."""
        return {attr for _obj, attr in self.attributes_read}


def _expression_depth(node) -> int:
    children = list(node.children())
    if not children:
        return 1
    return 1 + max(_expression_depth(child) for child in children)


def analyze(program: Program) -> ProgramFacts:
    """Compute :class:`ProgramFacts` for ``program`` in a single AST walk."""
    facts = ProgramFacts(
        has_return=False,
        return_count=0,
        uses_float_literal=False,
        uses_true_division=False,
    )
    facts.node_count = program.size()
    facts.free_names = list(program.free_names())

    for node in program.walk():
        if isinstance(node, Return):
            facts.has_return = True
            facts.return_count += 1
        elif isinstance(node, Number):
            if node.is_float():
                facts.uses_float_literal = True
        elif isinstance(node, Name):
            facts.names_read.add(node.id)
        elif isinstance(node, While):
            facts.while_loop_count += 1
        elif isinstance(node, ForRange):
            facts.for_loop_count += 1
            if not isinstance(node.limit, Number):
                facts.unbounded_for_count += 1
        elif isinstance(node, Attribute):
            base = node.value
            base_name = base.id if isinstance(base, Name) else "<expr>"
            facts.attributes_read.add((base_name, node.attr))
        elif isinstance(node, Call):
            func = node.func
            if isinstance(func, Attribute):
                base = func.value
                base_name = base.id if isinstance(base, Name) else "<expr>"
                facts.methods_called.add((base_name, func.attr))
                # A method call is not an attribute *read*; remove the entry
                # the Attribute branch will add when it visits func.
            elif isinstance(func, Name):
                facts.methods_called.add(("<builtin>", func.id))
        elif isinstance(node, BinOp):
            if node.op == "/":
                facts.uses_true_division = True
            if node.op in ("/", "//", "%"):
                divisor = node.right
                checked = isinstance(divisor, Number) and divisor.value != 0
                facts.division_sites.append(
                    DivisionSite(
                        op=node.op,
                        checked=checked,
                        divisor_repr=_brief_repr(divisor),
                    )
                )
        depth = _expression_depth(node)
        if depth > facts.max_expression_depth:
            facts.max_expression_depth = depth

    # Method calls also show up as attribute reads because Call.func is an
    # Attribute node; strip them so "attributes_read" means data accesses.
    facts.attributes_read -= facts.methods_called
    return facts


def _brief_repr(node) -> str:
    """A short human-readable rendering of an expression for diagnostics."""
    from repro.dsl.codegen import expr_to_source

    text = expr_to_source(node)
    if len(text) > 40:
        text = text[:37] + "..."
    return text
