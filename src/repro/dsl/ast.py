"""AST node definitions for the heuristic DSL.

The language is a small imperative subset designed to express priority
functions (caching) and congestion-window update rules (congestion control):

* expressions: numbers, variable names, attribute access (``obj.count``),
  calls (``ages.percentile(0.75)``, ``history.contains(obj_id)``), unary and
  binary arithmetic, comparisons, boolean connectives, ternaries;
* statements: assignment, augmented assignment, ``if``/``else``, bounded
  ``for`` over ``range``, ``while``, ``return``.

Nodes are plain dataclasses with structural equality, which the evolutionary
operators rely on (two independently generated but identical candidates
deduplicate naturally).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, fields
from typing import Iterator, List, Sequence, Union


# --------------------------------------------------------------------------
# Base node
# --------------------------------------------------------------------------


@dataclass(eq=True)
class Node:
    """Common behaviour for every AST node."""

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (depth 1)."""
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    def walk(self) -> Iterator["Node"]:
        """Yield this node and every descendant, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def clone(self) -> "Node":
        """Return a deep copy of this subtree."""
        return copy.deepcopy(self)

    def size(self) -> int:
        """Number of nodes in the subtree (a crude complexity measure)."""
        return sum(1 for _ in self.walk())


Expr = Node
Stmt = Node


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass(eq=True)
class Number(Node):
    """A numeric literal.  ``value`` may be int or float.

    Whether a literal is an int or a float matters: the kernel-constraint
    checker rejects float literals outright (§5 of the paper reports
    floating-point arithmetic as the most common verifier failure).
    """

    value: Union[int, float]

    def is_float(self) -> bool:
        return isinstance(self.value, float)


@dataclass(eq=True)
class Name(Node):
    """A bare variable reference (``now``, ``score``, ``cwnd``)."""

    id: str


@dataclass(eq=True)
class Attribute(Node):
    """Attribute access on a feature object (``obj_info.count``)."""

    value: Expr
    attr: str


@dataclass(eq=True)
class Call(Node):
    """A call on a feature object or builtin (``sizes.percentile(0.75)``)."""

    func: Expr
    args: List[Expr] = field(default_factory=list)


@dataclass(eq=True)
class UnaryOp(Node):
    """Unary operation: ``-x`` or ``not x``."""

    op: str  # "-" | "not"
    operand: Expr


@dataclass(eq=True)
class BinOp(Node):
    """Binary arithmetic: + - * / // % min max (min/max as infix helpers)."""

    op: str
    left: Expr
    right: Expr


@dataclass(eq=True)
class Compare(Node):
    """A single comparison (no chaining): < <= > >= == !=."""

    op: str
    left: Expr
    right: Expr


@dataclass(eq=True)
class BoolOp(Node):
    """Boolean connective over two or more operands: ``and`` / ``or``."""

    op: str  # "and" | "or"
    values: List[Expr] = field(default_factory=list)


@dataclass(eq=True)
class Ternary(Node):
    """Conditional expression: ``cond ? a : b`` (C style in source form)."""

    condition: Expr
    if_true: Expr
    if_false: Expr


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass(eq=True)
class Assign(Node):
    """``target = value``.  ``target`` is always a bare :class:`Name`."""

    target: Name
    value: Expr


@dataclass(eq=True)
class AugAssign(Node):
    """``target op= value`` for op in + - * / // %."""

    target: Name
    op: str
    value: Expr


@dataclass(eq=True)
class If(Node):
    """``if (cond) { body } else { orelse }`` -- ``orelse`` may be empty."""

    condition: Expr
    body: List[Stmt] = field(default_factory=list)
    orelse: List[Stmt] = field(default_factory=list)


@dataclass(eq=True)
class ForRange(Node):
    """``for (i in range(limit)) { body }`` -- the only bounded loop form."""

    var: Name
    limit: Expr
    body: List[Stmt] = field(default_factory=list)


@dataclass(eq=True)
class While(Node):
    """``while (cond) { body }``.

    Allowed by the grammar but rejected by the kernel-constraint checker
    (it cannot generally be proven bounded), mirroring the eBPF verifier.
    """

    condition: Expr
    body: List[Stmt] = field(default_factory=list)


@dataclass(eq=True)
class Return(Node):
    """``return expr``."""

    value: Expr


# --------------------------------------------------------------------------
# Program
# --------------------------------------------------------------------------


@dataclass(eq=True)
class Program(Node):
    """A complete candidate heuristic.

    ``name`` is the function name, ``params`` the formal parameters supplied
    by the Template (e.g. ``priority(now, obj_id, obj_info, ...)``), and
    ``body`` the list of statements generated by the Generator.
    """

    name: str
    params: List[str] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)

    def statements(self) -> Sequence[Stmt]:
        return list(self.body)

    def returns(self) -> List[Return]:
        """All return statements anywhere in the program."""
        return [node for node in self.walk() if isinstance(node, Return)]

    def free_names(self) -> List[str]:
        """Names read before ever being assigned at the top level.

        Used by checkers to verify the candidate only references parameters
        and locally-defined variables.
        """
        assigned = set(self.params)
        free: List[str] = []

        def visit_expr(expr: Expr) -> None:
            for node in expr.walk():
                if isinstance(node, Name) and node.id not in assigned:
                    if node.id not in free:
                        free.append(node.id)

        def visit_block(stmts: Sequence[Stmt]) -> None:
            for stmt in stmts:
                if isinstance(stmt, Assign):
                    visit_expr(stmt.value)
                    assigned.add(stmt.target.id)
                elif isinstance(stmt, AugAssign):
                    visit_expr(stmt.value)
                    if stmt.target.id not in assigned:
                        if stmt.target.id not in free:
                            free.append(stmt.target.id)
                    assigned.add(stmt.target.id)
                elif isinstance(stmt, If):
                    visit_expr(stmt.condition)
                    visit_block(stmt.body)
                    visit_block(stmt.orelse)
                elif isinstance(stmt, ForRange):
                    visit_expr(stmt.limit)
                    assigned.add(stmt.var.id)
                    visit_block(stmt.body)
                elif isinstance(stmt, While):
                    visit_expr(stmt.condition)
                    visit_block(stmt.body)
                elif isinstance(stmt, Return):
                    visit_expr(stmt.value)

        visit_block(self.body)
        return free


def iter_blocks(node: Node) -> Iterator[List[Stmt]]:
    """Yield every statement list in ``node`` (program body, if/loop bodies).

    Mutation operators use this to pick insertion/deletion points uniformly
    over all blocks rather than only the top level.
    """
    if isinstance(node, Program):
        yield node.body
    for descendant in node.walk():
        if isinstance(descendant, If):
            yield descendant.body
            if descendant.orelse:
                yield descendant.orelse
        elif isinstance(descendant, (ForRange, While)):
            yield descendant.body


def expressions_of(node: Node) -> List[Expr]:
    """Return all expression nodes in the subtree, in walk order."""
    expr_types = (Number, Name, Attribute, Call, UnaryOp, BinOp, Compare, BoolOp, Ternary)
    return [n for n in node.walk() if isinstance(n, expr_types)]
