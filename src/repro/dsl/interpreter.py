"""Tree-walking interpreter for the heuristic DSL.

The interpreter evaluates a :class:`~repro.dsl.ast.Program` against an
*environment*: a mapping from parameter names to values.  Values may be

* numbers (int/float/bool),
* arbitrary Python objects exposed by the Template as *feature objects* --
  the interpreter resolves attribute access and method calls on them through
  a small allow-list mechanism (see :class:`FeatureObject`).

Safety properties enforced here (generated code is untrusted):

* a step budget bounds total work per invocation (loops cannot hang the
  search; see :class:`EvalContext.max_steps`),
* division/modulo by zero raises :class:`DslRuntimeError` rather than
  crashing the host,
* only attributes/methods explicitly exported by feature objects are
  reachable -- there is no access to Python internals (no dunder traversal).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Mapping, Optional

from repro.dsl.ast import (
    Assign,
    Attribute,
    AugAssign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Expr,
    ForRange,
    If,
    Name,
    Number,
    Program,
    Return,
    Stmt,
    Ternary,
    UnaryOp,
    While,
)
from repro.dsl.errors import DslRuntimeError, DslTimeoutError


class FeatureObject:
    """Base class for objects the Template exposes to generated code.

    Subclasses declare which attributes and methods generated code may touch
    via ``exported_attrs`` and ``exported_methods``.  Anything else raises a
    :class:`DslRuntimeError`, which keeps candidates inside the sandbox and
    doubles as useful Checker feedback ("unknown feature 'foo'").
    """

    exported_attrs: frozenset = frozenset()
    exported_methods: frozenset = frozenset()

    def dsl_getattr(self, attr: str) -> Any:
        if attr in self.exported_attrs:
            return getattr(self, attr)
        raise DslRuntimeError(
            f"{type(self).__name__} has no feature attribute {attr!r}"
        )

    def dsl_call(self, method: str, args: Iterable[Any]) -> Any:
        if method in self.exported_methods:
            return getattr(self, method)(*args)
        raise DslRuntimeError(
            f"{type(self).__name__} has no feature method {method!r}"
        )


@dataclass
class EvalContext:
    """Per-invocation interpreter configuration.

    ``max_steps`` bounds the number of statements + expression nodes the
    interpreter will evaluate before raising :class:`DslTimeoutError`; the
    default is generous for straight-line priority functions but small enough
    that a runaway ``while`` loop is caught quickly.
    """

    max_steps: int = 20_000
    builtins: Dict[str, Callable[..., Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        defaults: Dict[str, Callable[..., Any]] = {
            "min": min,
            "max": max,
            "abs": abs,
            "clamp": _clamp,
        }
        for name, fn in defaults.items():
            self.builtins.setdefault(name, fn)


def _clamp(value: Any, lo: Any, hi: Any) -> Any:
    """Clamp ``value`` into ``[lo, hi]`` (a convenience builtin for CC code)."""
    if lo > hi:
        lo, hi = hi, lo
    return max(lo, min(hi, value))


class _ReturnSignal(Exception):
    """Internal control-flow signal carrying a return value."""

    def __init__(self, value: Any):
        self.value = value


class Interpreter:
    """Evaluates programs; one instance may be reused across invocations."""

    def __init__(self, context: Optional[EvalContext] = None):
        self.context = context or EvalContext()

    # -- public API ---------------------------------------------------------

    def run(self, program: Program, env: Mapping[str, Any]) -> Any:
        """Evaluate ``program`` with parameter bindings ``env``.

        Returns the value of the first executed ``return``; if the program
        falls off the end without returning, returns ``0`` (a neutral score),
        mirroring how C code with a missing return would be rejected earlier
        by the Checker but keeping the Evaluator robust.
        """
        missing = [p for p in program.params if p not in env]
        if missing:
            raise DslRuntimeError(f"missing parameter bindings: {missing}")
        scope: Dict[str, Any] = {p: env[p] for p in program.params}
        self._steps = 0
        try:
            self._exec_block(program.body, scope)
        except _ReturnSignal as signal:
            return signal.value
        return 0

    # -- statements ---------------------------------------------------------

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.context.max_steps:
            raise DslTimeoutError(
                f"candidate exceeded the {self.context.max_steps}-step budget"
            )

    def _exec_block(self, stmts: Iterable[Stmt], scope: Dict[str, Any]) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt, scope)

    def _exec_stmt(self, stmt: Stmt, scope: Dict[str, Any]) -> None:
        self._tick()
        if isinstance(stmt, Assign):
            scope[stmt.target.id] = self._eval(stmt.value, scope)
        elif isinstance(stmt, AugAssign):
            if stmt.target.id not in scope:
                raise DslRuntimeError(
                    f"augmented assignment to undefined variable {stmt.target.id!r}"
                )
            current = scope[stmt.target.id]
            operand = self._eval(stmt.value, scope)
            scope[stmt.target.id] = self._binary(stmt.op, current, operand)
        elif isinstance(stmt, If):
            if self._truthy(self._eval(stmt.condition, scope)):
                self._exec_block(stmt.body, scope)
            else:
                self._exec_block(stmt.orelse, scope)
        elif isinstance(stmt, ForRange):
            limit = self._eval(stmt.limit, scope)
            count = self._as_int(limit, "for-range limit")
            for i in range(max(0, count)):
                self._tick()
                scope[stmt.var.id] = i
                self._exec_block(stmt.body, scope)
        elif isinstance(stmt, While):
            while self._truthy(self._eval(stmt.condition, scope)):
                self._tick()
                self._exec_block(stmt.body, scope)
        elif isinstance(stmt, Return):
            raise _ReturnSignal(self._eval(stmt.value, scope))
        else:  # pragma: no cover - the parser cannot produce other nodes
            raise DslRuntimeError(f"unsupported statement {type(stmt).__name__}")

    # -- expressions --------------------------------------------------------

    def _eval(self, expr: Expr, scope: Dict[str, Any]) -> Any:
        self._tick()
        if isinstance(expr, Number):
            return expr.value
        if isinstance(expr, Name):
            if expr.id in scope:
                return scope[expr.id]
            if expr.id in self.context.builtins:
                return self.context.builtins[expr.id]
            raise DslRuntimeError(f"undefined variable {expr.id!r}")
        if isinstance(expr, Attribute):
            target = self._eval(expr.value, scope)
            return self._getattr(target, expr.attr)
        if isinstance(expr, Call):
            return self._call(expr, scope)
        if isinstance(expr, UnaryOp):
            operand = self._eval(expr.operand, scope)
            if expr.op == "-":
                return -operand
            if expr.op == "not":
                return not self._truthy(operand)
            raise DslRuntimeError(f"unsupported unary operator {expr.op!r}")
        if isinstance(expr, BinOp):
            left = self._eval(expr.left, scope)
            right = self._eval(expr.right, scope)
            return self._binary(expr.op, left, right)
        if isinstance(expr, Compare):
            left = self._eval(expr.left, scope)
            right = self._eval(expr.right, scope)
            return self._compare(expr.op, left, right)
        if isinstance(expr, BoolOp):
            if expr.op == "and":
                result = True
                for value in expr.values:
                    result = self._truthy(self._eval(value, scope))
                    if not result:
                        return False
                return result
            if expr.op == "or":
                for value in expr.values:
                    if self._truthy(self._eval(value, scope)):
                        return True
                return False
            raise DslRuntimeError(f"unsupported boolean operator {expr.op!r}")
        if isinstance(expr, Ternary):
            if self._truthy(self._eval(expr.condition, scope)):
                return self._eval(expr.if_true, scope)
            return self._eval(expr.if_false, scope)
        raise DslRuntimeError(f"unsupported expression {type(expr).__name__}")

    def _call(self, expr: Call, scope: Dict[str, Any]) -> Any:
        args = [self._eval(arg, scope) for arg in expr.args]
        func = expr.func
        if isinstance(func, Attribute):
            target = self._eval(func.value, scope)
            if isinstance(target, FeatureObject):
                return target.dsl_call(func.attr, args)
            raise DslRuntimeError(
                f"cannot call method {func.attr!r} on a plain value"
            )
        if isinstance(func, Name):
            if func.id in self.context.builtins:
                try:
                    return self.context.builtins[func.id](*args)
                except DslRuntimeError:
                    raise
                except Exception as exc:  # noqa: BLE001 - sandbox boundary
                    raise DslRuntimeError(f"builtin {func.id!r} failed: {exc}") from exc
            raise DslRuntimeError(f"unknown function {func.id!r}")
        raise DslRuntimeError("unsupported call target")

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _getattr(target: Any, attr: str) -> Any:
        if isinstance(target, FeatureObject):
            return target.dsl_getattr(attr)
        raise DslRuntimeError(
            f"attribute access {attr!r} on a value that is not a feature object"
        )

    @staticmethod
    def _truthy(value: Any) -> bool:
        if isinstance(value, (int, float, bool)):
            return bool(value)
        if value is None:
            return False
        return True

    @staticmethod
    def _as_int(value: Any, what: str) -> int:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise DslRuntimeError(f"{what} must be an integer, got {value!r}")

    @staticmethod
    def _numeric(value: Any, op: str) -> Any:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return value
        if isinstance(value, bool):
            return int(value)
        raise DslRuntimeError(f"operator {op!r} applied to non-numeric value {value!r}")

    def _binary(self, op: str, left: Any, right: Any) -> Any:
        left = self._numeric(left, op)
        right = self._numeric(right, op)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise DslRuntimeError("division by zero")
            return left / right
        if op == "//":
            if right == 0:
                raise DslRuntimeError("integer division by zero")
            return left // right
        if op == "%":
            if right == 0:
                raise DslRuntimeError("modulo by zero")
            return left % right
        raise DslRuntimeError(f"unsupported binary operator {op!r}")

    @staticmethod
    def _compare(op: str, left: Any, right: Any) -> bool:
        try:
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            if op == ">=":
                return left >= right
            if op == "==":
                return left == right
            if op == "!=":
                return left != right
        except TypeError as exc:
            raise DslRuntimeError(f"cannot compare {left!r} and {right!r}") from exc
        raise DslRuntimeError(f"unsupported comparison operator {op!r}")
