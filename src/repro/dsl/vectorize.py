"""Numpy batch lowering for DSL programs (the vectorized backend).

:class:`VectorizedProgram` evaluates one candidate heuristic over *batches*
of feature rows in a handful of numpy array operations instead of one
Python call per row: arithmetic broadcasts over whole columns, ``if``/
ternaries/boolean connectives become predicated ``np.where`` merges, and
builtin ``min``/``max``/``clamp`` calls become comparison folds.  The batch
path exists purely for throughput -- scores must stay **bit-identical** to
the scalar backends so fixed-seed search results do not depend on the
backend -- which drives the two unusual pieces of machinery here:

* **Exactness lanes.**  Python evaluates integer expressions with arbitrary
  precision; float64 lanes cannot.  Every lane tracks whether its value is
  an exact Python int, and any operation that could leave the float64-exact
  range (results/operands at or beyond 2**53, the 2**52 margin for floor
  division and modulo) marks the lane *suspect*.  Divisions by zero and
  reads of maybe-undefined locals are suspect too -- suspicion is sound,
  never precise: it must cover every lane whose batch value could differ
  from (or fail to reproduce an error of) the scalar evaluation, and false
  positives only cost speed.
* **Scalar recompute.**  After the batch pass, suspect lanes are re-run in
  row order through a compiled *kernel* -- the same program with each
  feature column access substituted by a positional parameter -- so their
  values, and crucially their exceptions (division by zero, undefined
  variables, overflow on huge integers), are exactly those of the compiled
  backend.

Python/IEEE mismatches the batch path corrects in place: integer ``0``
results are normalised to ``+0.0`` (numpy yields ``-0.0`` for e.g.
``0 * -5``); floor division and modulo replicate CPython's ``float_divmod``
branch structure elementwise; ``min``/``max`` are first-on-tie comparison
folds (``np.minimum`` has different NaN/tie semantics).

Programs the lowering cannot handle exactly are rejected up front by
:func:`repro.dsl.analysis.vectorizability`;
:func:`repro.dsl.compile.make_runner` then falls back to the compiled or
interpreter backend, so ``backend="vectorized"`` is always safe to request.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.dsl.analysis import ColumnSpec, vectorizability
from repro.dsl.ast import (
    Assign,
    Attribute,
    AugAssign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Expr,
    If,
    Name,
    Number,
    Program,
    Return,
    Stmt,
    Ternary,
    UnaryOp,
)
from repro.dsl.compile import CompiledProgram, DslCompileError, compile_program
from repro.dsl.errors import DslRuntimeError

#: Largest magnitude at which every integer is exactly representable in
#: float64; int-lane results at or beyond it are suspect.
_EXACT = float(2**53)
#: Margin for the floor-division/modulo emulation: with both integer
#: operands below 2**52 every intermediate (``a - mod``, ``mod + b``) stays
#: exactly representable, so the emulation is provably exact.
_DIVMOD_SAFE = float(2**52)


class DslVectorizeError(DslCompileError):
    """The program cannot be lowered to the numpy batch backend."""


def _mangle_prefix(program: Program) -> str:
    """A column-name prefix no identifier in ``program`` collides with."""
    names = set(program.params)
    for node in program.walk():
        if isinstance(node, Name):
            names.add(node.id)
    prefix = "__col"
    while any(name.startswith(prefix) for name in names):
        prefix += "_"
    return prefix


def _kernel_program(
    program: Program,
    columns: List[ColumnSpec],
    expr_key: Dict[int, str],
) -> Program:
    """``program`` with every feature-column expression replaced by a
    positional parameter, one per column, in column order."""
    prefix = _mangle_prefix(program)
    kernel_name: Dict[str, str] = {}
    params: List[str] = []
    for index, spec in enumerate(columns):
        name = spec.param if spec.kind == "scalar" else f"{prefix}{index}"
        kernel_name[spec.key] = name
        params.append(name)

    def rewrite_expr(expr: Expr) -> Expr:
        key = expr_key.get(id(expr))
        if key is not None:
            return Name(id=kernel_name[key])
        if isinstance(expr, (Number, Name)):
            return expr
        if isinstance(expr, UnaryOp):
            return UnaryOp(op=expr.op, operand=rewrite_expr(expr.operand))
        if isinstance(expr, BinOp):
            return BinOp(
                op=expr.op, left=rewrite_expr(expr.left), right=rewrite_expr(expr.right)
            )
        if isinstance(expr, Compare):
            return Compare(
                op=expr.op, left=rewrite_expr(expr.left), right=rewrite_expr(expr.right)
            )
        if isinstance(expr, BoolOp):
            return BoolOp(op=expr.op, values=[rewrite_expr(v) for v in expr.values])
        if isinstance(expr, Ternary):
            return Ternary(
                condition=rewrite_expr(expr.condition),
                if_true=rewrite_expr(expr.if_true),
                if_false=rewrite_expr(expr.if_false),
            )
        if isinstance(expr, Call):
            # Feature calls were substituted above; only builtins remain.
            return Call(func=expr.func, args=[rewrite_expr(a) for a in expr.args])
        raise DslVectorizeError(f"unsupported expression {type(expr).__name__}")

    def rewrite_block(stmts: Sequence[Stmt]) -> List[Stmt]:
        out: List[Stmt] = []
        for stmt in stmts:
            if isinstance(stmt, Assign):
                out.append(Assign(target=stmt.target, value=rewrite_expr(stmt.value)))
            elif isinstance(stmt, AugAssign):
                out.append(
                    AugAssign(
                        target=stmt.target, op=stmt.op, value=rewrite_expr(stmt.value)
                    )
                )
            elif isinstance(stmt, If):
                out.append(
                    If(
                        condition=rewrite_expr(stmt.condition),
                        body=rewrite_block(stmt.body),
                        orelse=rewrite_block(stmt.orelse),
                    )
                )
            elif isinstance(stmt, Return):
                out.append(Return(value=rewrite_expr(stmt.value)))
            else:
                raise DslVectorizeError(
                    f"unsupported statement {type(stmt).__name__}"
                )
        return out

    return Program(name=program.name, params=params, body=rewrite_block(program.body))


def _map_feature_exprs(program: Program) -> Dict[int, str]:
    """Map ``id(node) -> column key`` for every feature expression node."""
    from repro.dsl.analysis import _column_key

    mapping: Dict[int, str] = {}
    params = set(program.params)

    def record(expr: Expr) -> None:
        if isinstance(expr, Call) and isinstance(expr.func, Attribute):
            base = expr.func.value
            if isinstance(base, Name) and base.id in params:
                args = []
                for arg in expr.args:
                    if isinstance(arg, Number):
                        args.append(("lit", arg.value))
                    else:  # validated: a parameter Name
                        args.append(("param", arg.id))
                mapping[id(expr)] = _column_key(
                    "method", base.id, expr.func.attr, tuple(args)
                )
            return  # do not also record the Call.func Attribute node
        if isinstance(expr, Attribute):
            base = expr.value
            if isinstance(base, Name) and base.id in params:
                mapping[id(expr)] = _column_key("attr", base.id, expr.attr, ())
            return

    def visit(expr: Expr) -> None:
        record(expr)
        if id(expr) in mapping:
            if isinstance(expr, Call):
                return  # feature-call arguments are captured, not evaluated
            return
        for child in expr.children():
            if isinstance(expr, Call) and child is expr.func:
                continue  # builtin call target, not a value read
            visit(child)

    def visit_block(stmts: Sequence[Stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (Assign, AugAssign, Return)):
                visit(stmt.value)
            elif isinstance(stmt, If):
                visit(stmt.condition)
                visit_block(stmt.body)
                visit_block(stmt.orelse)

    visit_block(program.body)
    return mapping


# -- column coercion ----------------------------------------------------------------


class _Column:
    """A coerced input column: float64 lanes + int-exactness + load suspicion."""

    __slots__ = ("vals", "isint", "load_suspect", "raw")

    def __init__(self, vals, isint, load_suspect, raw):
        self.vals = vals
        self.isint = isint
        self.load_suspect = load_suspect
        self.raw = raw  # index -> original Python value (for scalar recompute)


def _coerce_column(col: Any, key: str) -> _Column:
    if isinstance(col, tuple):
        vals = np.asarray(col[0], dtype=np.float64)
        isint = np.asarray(col[1], dtype=bool)
        suspect = isint & ((vals >= _EXACT) | (vals <= -_EXACT))

        def raw_pair(i, vals=vals, isint=isint):
            return int(vals[i]) if isint[i] else float(vals[i])

        return _Column(vals, isint, suspect if suspect.any() else None, raw_pair)
    if isinstance(col, np.ndarray):
        if col.dtype.kind in "iu":
            bound = 2**53
            suspect = (col >= bound) | (col <= -bound)
            return _Column(
                col.astype(np.float64),
                np.ones(len(col), dtype=bool),
                suspect if suspect.any() else None,
                lambda i, col=col: int(col[i]),
            )
        if col.dtype.kind == "b":
            return _Column(
                col.astype(np.float64),
                np.ones(len(col), dtype=bool),
                None,
                lambda i, col=col: bool(col[i]),
            )
        return _Column(
            col.astype(np.float64),
            np.zeros(len(col), dtype=bool),
            None,
            lambda i, col=col: float(col[i]),
        )
    # A plain Python sequence, possibly of mixed int/float/bool values.
    n = len(col)
    vals = np.empty(n, dtype=np.float64)
    isint = np.empty(n, dtype=bool)
    suspect = np.zeros(n, dtype=bool)
    for i, v in enumerate(col):
        if isinstance(v, bool):
            vals[i] = float(v)
            isint[i] = True
        elif isinstance(v, int):
            isint[i] = True
            if -(2**53) < v < 2**53:
                vals[i] = float(v)
            else:
                suspect[i] = True
                try:
                    vals[i] = float(v)
                except OverflowError:
                    vals[i] = math.inf if v > 0 else -math.inf
        elif isinstance(v, float):
            vals[i] = v
            isint[i] = False
        else:
            raise DslRuntimeError(f"column {key!r} has non-numeric value {v!r}")
    return _Column(
        vals, isint, suspect if suspect.any() else None, lambda i, col=col: col[i]
    )


# -- the batch evaluator ------------------------------------------------------------


class _BatchEvaluator:
    """One predicated pass of a program over ``n`` lanes.

    Values are ``(float64 array, per-lane isint bool array)`` pairs; control
    flow is execution under lane masks.  ``suspect`` accumulates every lane
    whose result must be recomputed by the scalar kernel (see module
    docstring); updates are always ANDed with the active mask so errors in
    untaken branches/short-circuited operands stay unobservable, exactly as
    in lazy scalar evaluation.
    """

    def __init__(
        self,
        n: int,
        scalars: Dict[str, _Column],
        features: Dict[str, _Column],
        expr_key: Dict[int, str],
    ):
        self.n = n
        self.suspect = np.zeros(n, dtype=bool)
        self.features = features
        self.expr_key = expr_key
        self._true = np.ones(n, dtype=bool)
        self._false = np.zeros(n, dtype=bool)
        self._zeros = np.zeros(n, dtype=np.float64)
        self.load_suspect = {
            name: col.load_suspect
            for name, col in scalars.items()
            if col.load_suspect is not None
        }
        # name -> [vals, isint, defined]; parameters are defined everywhere.
        self.env: Dict[str, list] = {
            name: [col.vals, col.isint, self._true] for name, col in scalars.items()
        }
        self.returned = np.zeros(n, dtype=bool)
        self.ret_vals = np.zeros(n, dtype=np.float64)
        self.ret_isint = np.ones(n, dtype=bool)

    # -- entry point --------------------------------------------------------

    def run(self, program: Program) -> np.ndarray:
        self._exec_block(program.body, self._true)
        # Falling off the end returns integer 0; unreturned lanes are
        # already 0.0 in ret_vals.
        return np.where(self.returned, self.ret_vals, 0.0)

    # -- expressions --------------------------------------------------------

    def _eval(self, expr: Expr, mask) -> Tuple[np.ndarray, np.ndarray]:
        key = self.expr_key.get(id(expr))
        if key is not None:
            col = self.features[key]
            if col.load_suspect is not None:
                self.suspect |= mask & col.load_suspect
            return col.vals, col.isint
        if isinstance(expr, Number):
            if isinstance(expr.value, int):
                return np.full(self.n, float(expr.value)), self._true
            return np.full(self.n, expr.value), self._false
        if isinstance(expr, Name):
            return self._read_name(expr.id, mask)
        if isinstance(expr, UnaryOp):
            v, vi = self._eval(expr.operand, mask)
            if expr.op == "not":
                return (~(v != 0)).astype(np.float64), self._true
            r = -v
            zero = vi & (v == 0)
            if zero.any():
                r = np.where(zero, 0.0, r)  # int -0 is +0 in Python
            return r, vi
        if isinstance(expr, BinOp):
            a, ai = self._eval(expr.left, mask)
            b, bi = self._eval(expr.right, mask)
            return self._binop(expr.op, a, ai, b, bi, mask)
        if isinstance(expr, Compare):
            a, _ai = self._eval(expr.left, mask)
            b, _bi = self._eval(expr.right, mask)
            op = expr.op
            if op == "<":
                t = a < b
            elif op == "<=":
                t = a <= b
            elif op == ">":
                t = a > b
            elif op == ">=":
                t = a >= b
            elif op == "==":
                t = a == b
            else:
                t = a != b
            return t.astype(np.float64), self._true
        if isinstance(expr, BoolOp):
            return self._boolop(expr, mask)
        if isinstance(expr, Ternary):
            c, _ = self._eval(expr.condition, mask)
            taken = c != 0
            tv, ti = self._eval(expr.if_true, mask & taken)
            fv, fi = self._eval(expr.if_false, mask & ~taken)
            return np.where(taken, tv, fv), np.where(taken, ti, fi)
        if isinstance(expr, Call):
            return self._call(expr, mask)
        raise DslVectorizeError(f"unsupported expression {type(expr).__name__}")

    def _read_name(self, name: str, mask) -> Tuple[np.ndarray, np.ndarray]:
        entry = self.env.get(name)
        if entry is None:
            # Never assigned on any lane: the scalar backends raise; every
            # active lane must be recomputed to reproduce that error.
            self.suspect |= mask
            return self._zeros, self._true
        vals, isint, defined = entry
        if defined is not self._true:
            self.suspect |= mask & ~defined
        load = self.load_suspect.get(name)
        if load is not None:
            self.suspect |= mask & load
        return vals, isint

    def _binop(self, op, a, ai, b, bi, mask) -> Tuple[np.ndarray, np.ndarray]:
        if op == "+" or op == "-" or op == "*":
            if op == "+":
                r = a + b
            elif op == "-":
                r = a - b
            else:
                r = a * b
            ii = ai & bi
            big = ii & ((r >= _EXACT) | (r <= -_EXACT))
            if big.any():
                self.suspect |= mask & big
            zero = ii & (r == 0)
            if zero.any():
                r = np.where(zero, 0.0, r)  # Python int 0, not IEEE -0.0
            return r, ii
        if op == "/":
            bad = b == 0
            if bad.any():
                self.suspect |= mask & bad
            return a / b, self._false
        # Floor division / modulo: CPython's float_divmod, elementwise.
        ii = ai & bi
        bad = (b == 0) | (
            ii & ((np.abs(a) >= _DIVMOD_SAFE) | (np.abs(b) >= _DIVMOD_SAFE))
        )
        if bad.any():
            self.suspect |= mask & bad
        mod = np.fmod(a, b)
        div = (a - mod) / b
        nonzero = mod != 0
        fix = nonzero & ((b < 0) != (mod < 0))
        mod = np.where(fix, mod + b, mod)
        if op == "%":
            r = np.where(nonzero, mod, np.copysign(self._zeros, b))
        else:
            div = np.where(fix, div - 1.0, div)
            floordiv = np.floor(div)
            floordiv = np.where(div - floordiv > 0.5, floordiv + 1.0, floordiv)
            safe_b = np.where(b == 0, 1.0, b)
            r = np.where(div == 0, np.copysign(self._zeros, a / safe_b), floordiv)
        zero = ii & (r == 0)
        if zero.any():
            r = np.where(zero, 0.0, r)
        return r, ii

    def _boolop(self, expr: BoolOp, mask) -> Tuple[np.ndarray, np.ndarray]:
        conj = expr.op == "and"
        cur = None
        for operand in expr.values:
            if cur is None:
                m = mask
            else:
                m = mask & cur if conj else mask & ~cur
            v, _vi = self._eval(operand, m)
            t = v != 0
            if cur is None:
                cur = t
            else:
                cur = (cur & t) if conj else (cur | t)
        return cur.astype(np.float64), self._true

    def _call(self, expr: Call, mask) -> Tuple[np.ndarray, np.ndarray]:
        name = expr.func.id  # validated: a builtin Name
        args = [self._eval(arg, mask) for arg in expr.args]
        if name == "abs":
            v, vi = args[0]
            return np.abs(v), vi
        if name == "clamp":
            (v, vi), (lo, loi), (hi, hii) = args
            swap = lo > hi
            lo, hi, loi, hii = (
                np.where(swap, hi, lo),
                np.where(swap, lo, hi),
                np.where(swap, hii, loi),
                np.where(swap, loi, hii),
            )
            take = v < hi  # min(hi, value): value wins only when strictly less
            mv, mi = np.where(take, v, hi), np.where(take, vi, hii)
            take = mv > lo  # max(lo, ...): lo wins ties and NaN comparisons
            return np.where(take, mv, lo), np.where(take, mi, loi)
        # min/max: first-on-tie comparison folds (NOT np.minimum/maximum --
        # those differ on NaN and ties, and Python keeps the first winner).
        rv, ri = args[0]
        for v, vi in args[1:]:
            take = (v < rv) if name == "min" else (v > rv)
            rv, ri = np.where(take, v, rv), np.where(take, vi, ri)
        return rv, ri

    # -- statements ---------------------------------------------------------

    def _exec_block(self, stmts: Sequence[Stmt], mask) -> None:
        for stmt in stmts:
            active = mask & ~self.returned
            if not active.any():
                return
            self._exec_stmt(stmt, active)

    def _exec_stmt(self, stmt: Stmt, mask) -> None:
        if isinstance(stmt, Assign):
            v, vi = self._eval(stmt.value, mask)
            self._bind(stmt.target.id, v, vi, mask)
        elif isinstance(stmt, AugAssign):
            a, ai = self._read_name(stmt.target.id, mask)
            b, bi = self._eval(stmt.value, mask)
            v, vi = self._binop(stmt.op, a, ai, b, bi, mask)
            self._bind(stmt.target.id, v, vi, mask)
        elif isinstance(stmt, If):
            c, _ = self._eval(stmt.condition, mask)
            taken = c != 0
            branch = mask & taken
            if branch.any():
                self._exec_block(stmt.body, branch)
            branch = mask & ~taken
            if stmt.orelse and branch.any():
                self._exec_block(stmt.orelse, branch)
        elif isinstance(stmt, Return):
            v, vi = self._eval(stmt.value, mask)
            self.ret_vals = np.where(mask, v, self.ret_vals)
            self.ret_isint = np.where(mask, vi, self.ret_isint)
            self.returned = self.returned | mask
        else:
            raise DslVectorizeError(f"unsupported statement {type(stmt).__name__}")

    def _bind(self, name: str, v, vi, mask) -> None:
        entry = self.env.get(name)
        if entry is None:
            self.env[name] = [
                np.where(mask, v, 0.0),
                np.where(mask, vi, True),
                mask,
            ]
        else:
            vals, isint, defined = entry
            entry[0] = np.where(mask, v, vals)
            entry[1] = np.where(mask, vi, isint)
            entry[2] = defined | mask


# -- public surface -----------------------------------------------------------------


class VectorizedProgram:
    """A program lowered for batch evaluation over feature columns.

    ``run(env)`` delegates to the compiled scalar program (full fidelity for
    single evaluations, including feature-object error surfaces);
    ``kernel`` is the column-specialised compiled scalar function (one
    positional argument per column, in ``columns`` order); ``run_batch``
    evaluates whole columns at once, bit-identically to calling ``kernel``
    row by row.
    """

    backend_name = "vectorized"

    def __init__(self, program: Program, max_steps: int = 20_000):
        report = vectorizability(program)
        if not report.ok:
            raise DslVectorizeError(
                "not vectorizable: " + "; ".join(report.reasons[:3])
            )
        self.program = program
        self.columns: List[ColumnSpec] = report.columns
        self.column_keys: List[str] = [spec.key for spec in self.columns]
        self._expr_key = _map_feature_exprs(program)
        # Compile order matters: if the original program is uncompilable
        # (keyword identifiers, helper collisions) the kernel would be too;
        # raising DslCompileError here lets make_runner fall back cleanly.
        self._scalar = compile_program(program, max_steps=max_steps)
        self.kernel: CompiledProgram = compile_program(
            _kernel_program(program, self.columns, self._expr_key),
            max_steps=max_steps,
        )
        # The kernel only ever sees numeric values (columns are coerced, and
        # every DSL operation over numbers yields a number), and for numbers
        # the compiler's truthiness helper is exactly ``bool``.  Swapping in
        # the C builtin removes one Python frame per condition in the
        # hot-loop scalar path.
        self.kernel._fn.__globals__["__dsl_truthy"] = bool

    def run(self, env: Mapping[str, Any]) -> Any:
        """Single-row evaluation, identical to the compiled backend."""
        return self._scalar.run(env)

    def run_row(self, *values: Any) -> Any:
        """Evaluate one row of column values positionally (hot-loop path)."""
        return self.kernel(*values)

    def run_batch(
        self, columns: Mapping[str, Any], n: Optional[int] = None
    ) -> np.ndarray:
        """Evaluate all lanes of ``columns`` and return float64 results.

        ``columns`` maps each :attr:`column_keys` entry to a numpy array, a
        ``(float64 values, isint mask)`` pair, or a plain Python sequence.
        Results are bitwise identical to ``float(kernel(*row))`` per row;
        the first row that would raise under scalar evaluation raises here
        (in row order), with the scalar backend's exception.
        """
        scalars: Dict[str, _Column] = {}
        features: Dict[str, _Column] = {}
        ordered: List[_Column] = []
        for spec in self.columns:
            if spec.key not in columns:
                raise DslRuntimeError(f"missing column {spec.key!r}")
            col = _coerce_column(columns[spec.key], spec.key)
            if n is None:
                n = len(col.vals)
            elif len(col.vals) != n:
                raise DslRuntimeError(
                    f"column {spec.key!r} has {len(col.vals)} rows, expected {n}"
                )
            ordered.append(col)
            if spec.kind == "scalar":
                scalars[spec.param] = col
            else:
                features[spec.key] = col
        if n is None:
            raise DslRuntimeError("run_batch needs n= when the program has no columns")
        with np.errstate(all="ignore"):
            evaluator = _BatchEvaluator(n, scalars, features, self._expr_key)
            out = evaluator.run(self.program)
            suspect = evaluator.suspect
        if suspect.any():
            kernel = self.kernel
            for i in np.nonzero(suspect)[0]:
                row = [col.raw(i) for col in ordered]
                out[i] = float(kernel(*row))
        return out

    def run_batch_rows(self, rows: Sequence[Tuple[Any, ...]]) -> np.ndarray:
        """Evaluate row tuples (values in :attr:`columns` order)."""
        if not rows:
            return np.empty(0, dtype=np.float64)
        if not self.columns:
            return self.run_batch({}, n=len(rows))
        mapping = {
            spec.key: list(col)
            for spec, col in zip(self.columns, zip(*rows))
        }
        return self.run_batch(mapping, n=len(rows))


def vectorize_program(program: Program, max_steps: int = 20_000) -> VectorizedProgram:
    """Lower ``program``; raises :class:`DslVectorizeError` if unsupported."""
    return VectorizedProgram(program, max_steps=max_steps)
