"""Evolutionary operators over candidate programs.

The synthetic LLM "remixes" the parent heuristics it is shown exactly the way
the paper describes LLMs remixing known techniques: by perturbing constants,
swapping operators and comparisons, inserting new score adjustments sampled
from the grammar, deleting statements, and splicing statement blocks from two
parents (crossover).

All operators are pure: they deep-copy their inputs and never modify the
parents, so the search archive can safely keep references to earlier
generations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.dsl.ast import (
    Assign,
    AugAssign,
    BinOp,
    Compare,
    Number,
    Program,
    Return,
    Stmt,
    Ternary,
    iter_blocks,
)
from repro.dsl.grammar import FeatureSpec, GrammarConfig, _score_update


@dataclass
class MutationConfig:
    """Probabilities and magnitudes for the mutation operators."""

    constant_jitter: float = 0.5
    operator_swap: float = 0.25
    comparison_swap: float = 0.25
    insert_statement: float = 0.35
    delete_statement: float = 0.2
    flip_sign: float = 0.15
    max_mutations: int = 3


_ARITH_SWAPS = {
    "+": ["-", "*"],
    "-": ["+"],
    "*": ["+", "//"],
    "/": ["//", "*"],
    "//": ["/", "*"],
    "%": ["//"],
}

_COMPARE_SWAPS = {
    "<": [">", "<=", ">="],
    "<=": [">=", "<"],
    ">": ["<", ">=", "<="],
    ">=": ["<=", ">"],
    "==": ["!=", "<", ">"],
    "!=": ["=="],
}


def _jitter_constant(node: Number, rng: random.Random) -> None:
    """Perturb a numeric literal, preserving int-ness."""
    value = node.value
    if isinstance(value, bool):
        return
    if value == 0:
        node.value = rng.choice([1, 2, 5, -1])
        return
    factor = rng.choice([0.5, 0.75, 0.9, 1.1, 1.25, 1.5, 2.0])
    new_value = value * factor
    if isinstance(value, int):
        new_value = int(round(new_value))
        if new_value == value:
            new_value = value + rng.choice([-1, 1])
    node.value = new_value


def _mutable_statement_blocks(program: Program) -> List[List[Stmt]]:
    return [block for block in iter_blocks(program)]


def _is_protected(stmt: Stmt, block: List[Stmt]) -> bool:
    """Never delete the only return or the initial score assignment."""
    if isinstance(stmt, Return):
        return True
    if isinstance(stmt, Assign) and block and block[0] is stmt:
        return True
    return False


def mutate(
    program: Program,
    spec: FeatureSpec,
    rng: random.Random,
    config: Optional[MutationConfig] = None,
    grammar: Optional[GrammarConfig] = None,
) -> Program:
    """Return a mutated deep copy of ``program``.

    Applies between one and ``config.max_mutations`` randomly chosen
    operators.  The result is guaranteed to still contain a return statement;
    beyond that there is deliberately no validation -- the Checker is the
    arbiter of whether a candidate is acceptable, as in the paper.
    """
    config = config or MutationConfig()
    grammar = grammar or GrammarConfig()
    clone = program.clone()
    assert isinstance(clone, Program)

    mutation_count = rng.randint(1, config.max_mutations)
    applied = 0
    attempts = 0
    while applied < mutation_count and attempts < mutation_count * 6:
        attempts += 1
        if _apply_one(clone, spec, rng, config, grammar):
            applied += 1
    if not clone.returns():
        clone.body.append(Return(value=Number(value=0)))
    return clone


def _apply_one(
    program: Program,
    spec: FeatureSpec,
    rng: random.Random,
    config: MutationConfig,
    grammar: GrammarConfig,
) -> bool:
    """Apply a single randomly selected operator; return True on success."""
    operators = []
    operators.append(("constant", config.constant_jitter))
    operators.append(("arith", config.operator_swap))
    operators.append(("compare", config.comparison_swap))
    operators.append(("insert", config.insert_statement))
    operators.append(("delete", config.delete_statement))
    operators.append(("flip", config.flip_sign))
    total = sum(weight for _name, weight in operators)
    pick = rng.random() * total
    cumulative = 0.0
    choice = operators[-1][0]
    for name, weight in operators:
        cumulative += weight
        if pick <= cumulative:
            choice = name
            break

    if choice == "constant":
        numbers = [n for n in program.walk() if isinstance(n, Number)]
        if not numbers:
            return False
        _jitter_constant(rng.choice(numbers), rng)
        return True

    if choice == "arith":
        binops = [n for n in program.walk() if isinstance(n, BinOp) and n.op in _ARITH_SWAPS]
        if not binops:
            return False
        node = rng.choice(binops)
        node.op = rng.choice(_ARITH_SWAPS[node.op])
        if spec.integer_only and node.op == "/":
            node.op = "//"
        return True

    if choice == "compare":
        compares = [n for n in program.walk() if isinstance(n, Compare)]
        if not compares:
            return False
        node = rng.choice(compares)
        node.op = rng.choice(_COMPARE_SWAPS[node.op])
        return True

    if choice == "insert":
        blocks = _mutable_statement_blocks(program)
        block = rng.choice(blocks)
        new_stmt = _score_update(rng, spec, grammar)
        # Insert before the trailing return when present, otherwise append.
        insert_at = len(block)
        if block and isinstance(block[-1], Return):
            insert_at = len(block) - 1
        else:
            insert_at = rng.randint(0, len(block))
        block.insert(insert_at, new_stmt)
        return True

    if choice == "delete":
        blocks = _mutable_statement_blocks(program)
        rng.shuffle(blocks)
        for block in blocks:
            candidates = [
                (i, stmt)
                for i, stmt in enumerate(block)
                if not _is_protected(stmt, block)
            ]
            if candidates:
                index, _stmt = rng.choice(candidates)
                del block[index]
                return True
        return False

    if choice == "flip":
        targets = [
            n
            for n in program.walk()
            if isinstance(n, AugAssign) and n.op in ("+", "-")
        ]
        if targets:
            node = rng.choice(targets)
            node.op = "-" if node.op == "+" else "+"
            return True
        ternaries = [n for n in program.walk() if isinstance(n, Ternary)]
        if ternaries:
            node = rng.choice(ternaries)
            node.if_true, node.if_false = node.if_false, node.if_true
            return True
        return False

    return False


def crossover(
    first: Program,
    second: Program,
    rng: random.Random,
) -> Program:
    """Splice the top-level statement lists of two parents.

    The child keeps the first parent's signature, takes a prefix of the first
    parent's body and a suffix of the second parent's, and always ends with a
    return statement.  This is the cheapest recombination that still mixes
    behaviours from both parents, which is what matters for the search loop.
    """
    child = first.clone()
    assert isinstance(child, Program)
    donor = second.clone()
    assert isinstance(donor, Program)

    first_body = [s for s in child.body if not isinstance(s, Return)]
    second_body = [s for s in donor.body if not isinstance(s, Return)]

    if not first_body and not second_body:
        child.body = [Return(value=Number(value=0))]
        return child

    cut_first = rng.randint(0, len(first_body)) if first_body else 0
    cut_second = rng.randint(0, len(second_body)) if second_body else 0

    merged: List[Stmt] = first_body[:cut_first] + second_body[cut_second:]
    if not merged:
        merged = first_body or second_body

    returns = first.returns() or second.returns()
    tail: Return
    if returns:
        tail = returns[-1].clone()  # type: ignore[assignment]
    else:
        tail = Return(value=Number(value=0))
    merged = [s for s in merged if not isinstance(s, Return)]
    merged.append(tail)
    child.body = merged
    return child
