"""Exception hierarchy for the heuristic DSL.

Every error raised while handling generated code derives from
:class:`DslError` so callers (the Checker and Evaluator) can distinguish
"the candidate is broken" from genuine bugs in the framework.
"""

from __future__ import annotations


class DslError(Exception):
    """Base class for all DSL-related failures."""


class DslSyntaxError(DslError):
    """Raised when candidate text cannot be parsed.

    Attributes
    ----------
    line, column:
        1-based position of the offending token, when known.  They are kept
        on the exception so the Checker can hand structured feedback back to
        the Generator (mimicking a compiler's stderr).
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" (line {line}"
            if column is not None:
                location += f", column {column}"
            location += ")"
        super().__init__(f"{message}{location}")


class DslRuntimeError(DslError):
    """Raised when a candidate fails while being interpreted.

    Examples: division by zero, reference to an unknown feature, calling an
    unknown method on a feature object.
    """


class DslTimeoutError(DslRuntimeError):
    """Raised when a candidate exceeds its interpretation step budget.

    Generated code may contain loops; the interpreter enforces a step budget
    so a pathological candidate cannot stall the whole search.
    """


class DslConstraintError(DslError):
    """Raised (or collected) when a candidate violates Template constraints.

    The kernel-constraint checker reports violations with this type, carrying
    a machine-readable ``code`` (e.g. ``"float-arith"``) alongside the human
    readable message so tests and experiments can aggregate failure causes.
    """

    def __init__(self, code: str, message: str):
        self.code = code
        super().__init__(message)
