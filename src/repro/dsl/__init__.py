"""Heuristic mini-language used to represent synthesized policies.

PolicySmith candidates are small imperative programs (the paper's Listing 1 is
one example).  Representing them in a dedicated DSL -- rather than executing
raw generated C or Python -- gives the framework three properties it needs:

* **Safety**: candidates are interpreted inside a sandboxed environment and
  cannot touch the host process, no matter what the generator produced.
* **Analysability**: the kernel-constraint checker (our eBPF-verifier
  stand-in) and complexity checks are simple AST walks.
* **Evolvability**: mutation and crossover operators work on the AST, which
  is how the synthetic generator "remixes" parent heuristics.

The public surface:

``parse``             text -> :class:`Program`
``Interpreter``       evaluates a :class:`Program` against an environment
``analyze``           static facts used by checkers (floats, division, loops)
``mutate`` / ``crossover``   evolutionary operators
``random_program``    grammar-based sampling of fresh candidates
``to_source`` / ``to_c_like`` / ``to_python``  code generation back ends
``compile_program``   compiles a :class:`Program` to a native Python callable
                      (the hot-loop fast path; the interpreter stays as the
                      fallback and differential-testing oracle)
"""

from repro.dsl.ast import (
    Assign,
    Attribute,
    AugAssign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    ForRange,
    If,
    Name,
    Node,
    Number,
    Program,
    Return,
    Ternary,
    UnaryOp,
    While,
)
from repro.dsl.errors import (
    DslError,
    DslRuntimeError,
    DslSyntaxError,
    DslTimeoutError,
)
from repro.dsl.parser import parse
from repro.dsl.interpreter import Interpreter, EvalContext
from repro.dsl.compile import CompiledProgram, DslCompileError, compile_program
from repro.dsl.analysis import (
    ColumnSpec,
    ProgramFacts,
    VectorizabilityReport,
    analyze,
    vectorizability,
)
from repro.dsl.abstract import (
    AbstractResult,
    Certificate,
    InputIntervals,
    Interval,
    ScreenVerdict,
    StaticScreener,
    analyze_intervals,
    certify_program,
)
from repro.dsl.codegen import to_c_like, to_python, to_source
from repro.dsl.mutation import MutationConfig, crossover, mutate
from repro.dsl.grammar import GrammarConfig, FeatureSpec, random_program
from repro.dsl.vectorize import DslVectorizeError, VectorizedProgram, vectorize_program

__all__ = [
    "Assign",
    "Attribute",
    "AugAssign",
    "BinOp",
    "BoolOp",
    "Call",
    "Compare",
    "ForRange",
    "If",
    "Name",
    "Node",
    "Number",
    "Program",
    "Return",
    "Ternary",
    "UnaryOp",
    "While",
    "DslError",
    "DslRuntimeError",
    "DslSyntaxError",
    "DslTimeoutError",
    "parse",
    "Interpreter",
    "EvalContext",
    "CompiledProgram",
    "DslCompileError",
    "compile_program",
    "ProgramFacts",
    "analyze",
    "ColumnSpec",
    "VectorizabilityReport",
    "vectorizability",
    "AbstractResult",
    "Certificate",
    "InputIntervals",
    "Interval",
    "ScreenVerdict",
    "StaticScreener",
    "analyze_intervals",
    "certify_program",
    "DslVectorizeError",
    "VectorizedProgram",
    "vectorize_program",
    "to_source",
    "to_c_like",
    "to_python",
    "MutationConfig",
    "mutate",
    "crossover",
    "GrammarConfig",
    "FeatureSpec",
    "random_program",
]
