"""Interval-domain abstract interpretation over the DSL AST.

Two consumers, one analysis:

* **Screening** (:class:`StaticScreener.screen`) -- prove a candidate
  trivially degenerate *before* any simulation: a function whose return
  value is a single point interval (constant output), one whose output is
  unreachable from every input signal (taint analysis), or a cwnd update
  provably outside the flow's ``[MIN_CWND, MAX_CWND]`` clamp for all signal
  values (pinned to the floor or ceiling).  The engine runs this as rung
  "-1" below the fidelity ladder: screened candidates never touch an
  executor, the memo, or the evaluation store.
* **Certification** (:class:`StaticScreener.certify`) -- sound interval
  bounds on a winner's output ("priority in [lo, hi]", "cwnd stays within
  [2, 4096] for all signal values"), recorded in ``result.json`` and
  rendered by ``repro report`` / ``repro certify``.

The abstract domain is a product of an interval (endpoints are exact Python
numbers; ``+-inf`` for unbounded), an input-taint bit, and a may-be-bool bit
(feature methods reject boolean arguments, so bool-ness is error-relevant).
Soundness argument for the arithmetic: integer endpoint arithmetic is exact,
and float operations are correctly rounded and monotone in each argument, so
evaluating endpoint combinations bounds every interior point.  Anything the
analysis cannot bound precisely widens to ``[-inf, +inf]``; any operation
that *could* raise at runtime (division by an interval containing zero,
undeclared features, loops that may exhaust the step budget) sets
``may_error``, which disqualifies the program from screening.

Mirrors the tree walk of :mod:`repro.dsl.interpreter` statement-for-
statement (see the differential suite in ``tests/dsl/test_abstract.py``)
and the closure-visitor style of :mod:`repro.dsl.analysis`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.dsl.ast import (
    Assign,
    Attribute,
    AugAssign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Expr,
    ForRange,
    If,
    Name,
    Number,
    Program,
    Return,
    Stmt,
    Ternary,
    UnaryOp,
    While,
)

INF = math.inf

#: Builtins the interpreter installs by default (``EvalContext``).
_BUILTINS = frozenset({"min", "max", "abs", "clamp"})

#: Exact-unroll budget for ``for (i in range(<constant>))`` loops; larger
#: (or unknown) limits fall back to havoc + ``may_error``.
_UNROLL_LIMIT = 32

#: The interpreter's default step budget; an abstract tick count beyond it
#: means the concrete run may raise ``DslTimeoutError``.
_DEFAULT_MAX_STEPS = 20_000


# --------------------------------------------------------------------------
# Interval arithmetic
# --------------------------------------------------------------------------


def _nz(value: float, default: float) -> float:
    """Replace a NaN produced by inf arithmetic with a sound default."""
    return default if value != value else value


@dataclass(frozen=True)
class Interval:
    """A closed interval over the extended reals.  ``lo <= hi`` always."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:  # pragma: no cover - internal invariant
            raise ValueError(f"interval lo {self.lo} > hi {self.hi}")

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi and math.isfinite(self.lo)

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def neg(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def add(self, other: "Interval") -> "Interval":
        return Interval(
            _nz(self.lo + other.lo, -INF), _nz(self.hi + other.hi, INF)
        )

    def sub(self, other: "Interval") -> "Interval":
        return self.add(other.neg())

    def mul(self, other: "Interval") -> "Interval":
        # 0 * inf -> 0: concrete values are finite, so the zero endpoint
        # dominates any magnitude (the product of 0 and a finite number is 0).
        def prod(a: float, b: float) -> float:
            if a == 0 or b == 0:
                return 0
            return a * b

        combos = [
            prod(a, b) for a in (self.lo, self.hi) for b in (other.lo, other.hi)
        ]
        return Interval(min(combos), max(combos))

    def truediv(self, other: "Interval") -> Tuple["Interval", bool]:
        """``self / other`` -> (bounds, may_divide_by_zero)."""
        if other.contains(0):
            return TOP, True
        if not all(
            math.isfinite(v) for v in (self.lo, self.hi, other.lo, other.hi)
        ):
            return TOP, False
        combos = [a / b for a in (self.lo, self.hi) for b in (other.lo, other.hi)]
        return Interval(min(combos), max(combos)), False

    def floordiv(self, other: "Interval") -> Tuple["Interval", bool]:
        if other.contains(0):
            return TOP, True
        if not all(
            math.isfinite(v) for v in (self.lo, self.hi, other.lo, other.hi)
        ):
            return TOP, False
        combos = [a // b for a in (self.lo, self.hi) for b in (other.lo, other.hi)]
        return Interval(min(combos), max(combos)), False

    def mod(self, other: "Interval") -> Tuple["Interval", bool]:
        # Python's % takes the divisor's sign: y > 0 -> [0, y], y < 0 -> [y, 0].
        if other.lo > 0:
            return Interval(0, other.hi), False
        if other.hi < 0:
            return Interval(other.lo, 0), False
        # The divisor may be zero; the surviving values still obey the hull.
        return Interval(min(other.lo, 0), max(other.hi, 0)), True

    def trunc(self) -> "Interval":
        """Truncation toward zero (``int()``); monotone, so endpoints apply."""
        lo = math.trunc(self.lo) if math.isfinite(self.lo) else self.lo
        hi = math.trunc(self.hi) if math.isfinite(self.hi) else self.hi
        return Interval(lo, hi)

    def clamp_into(self, lo: float, hi: float) -> "Interval":
        return Interval(
            min(max(self.lo, lo), hi), min(max(self.hi, lo), hi)
        )

    def imin(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), min(self.hi, other.hi))

    def imax(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), max(self.hi, other.hi))

    def iabs(self) -> "Interval":
        if self.lo >= 0:
            return self
        if self.hi <= 0:
            return self.neg()
        return Interval(0, max(-self.lo, self.hi))


TOP = Interval(-INF, INF)
ZERO = Interval(0, 0)
BOOL = Interval(0, 1)


def point(value: float) -> Interval:
    return Interval(value, value)


# --------------------------------------------------------------------------
# Abstract values
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class AbsValue:
    """One abstract value: interval x taint x kind.

    ``kind`` is ``"num"`` for numbers (including bools), ``"object"`` for a
    feature object bound to parameter ``ref``, ``"builtin"`` for a bare
    builtin reference, and ``"any"`` for values we know nothing about (any
    use of an ``"any"`` value is treated as possibly erroring).
    ``is_bool`` tracks values that may be Python bools -- feature methods
    reject bool arguments, so the distinction is error-relevant.
    """

    iv: Interval = TOP
    tainted: bool = True
    kind: str = "num"
    ref: str = ""
    is_bool: bool = False

    def join(self, other: "AbsValue", extra_taint: bool = False) -> "AbsValue":
        if self.kind != other.kind or (
            self.kind == "object" and self.ref != other.ref
        ):
            return AbsValue(kind="any")
        differs = self.iv != other.iv
        return AbsValue(
            iv=self.iv.join(other.iv),
            tainted=self.tainted
            or other.tainted
            or (extra_taint and differs),
            kind=self.kind,
            ref=self.ref,
            is_bool=self.is_bool or other.is_bool,
        )


UNKNOWN = AbsValue()
HAVOC = AbsValue(kind="any")

# Three-valued truthiness.
_TRUE, _FALSE, _MAYBE = 1, 0, 2


# --------------------------------------------------------------------------
# Input declarations
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class InputIntervals:
    """Value ranges for a Template's inputs, declared by the evaluator.

    ``scalars`` maps scalar parameter names to intervals; ``attrs`` and
    ``methods`` map feature-object parameters to their exported attribute /
    method result intervals.  ``bool_methods`` names ``(param, method)``
    pairs whose result is a Python bool.  ``output_clamp`` is the range the
    substrate clamps the function's return value into (the flow's
    ``[MIN_CWND, MAX_CWND]`` for cong_control; ``None`` when the output is
    used as-is, as in caching).
    """

    scalars: Dict[str, Interval] = field(default_factory=dict)
    attrs: Dict[str, Dict[str, Interval]] = field(default_factory=dict)
    methods: Dict[str, Dict[str, Interval]] = field(default_factory=dict)
    bool_methods: FrozenSet[Tuple[str, str]] = frozenset()
    output_clamp: Optional[Tuple[float, float]] = None

    def initial_env(self, program: Program) -> Dict[str, AbsValue]:
        env: Dict[str, AbsValue] = {}
        for param in program.params:
            if param in self.scalars:
                env[param] = AbsValue(iv=self.scalars[param], tainted=True)
            elif param in self.attrs or param in self.methods:
                env[param] = AbsValue(kind="object", ref=param)
            else:
                env[param] = HAVOC
        return env

    def join(self, other: "InputIntervals") -> "InputIntervals":
        """Pointwise hull of two declarations (multi-scenario evaluators).

        Only features declared by *both* sides survive (a feature one
        scenario cannot bound must stay unbounded).  The joined clamp takes
        the loosest floor and ceiling so pinned-min/max screening stays
        sound for every scenario.
        """

        def join_map(a: Dict[str, Interval], b: Dict[str, Interval]):
            return {k: a[k].join(b[k]) for k in a.keys() & b.keys()}

        def join_nested(a, b):
            return {
                p: join_map(a[p], b[p]) for p in a.keys() & b.keys()
            }

        clamp = None
        if self.output_clamp is not None and other.output_clamp is not None:
            clamp = (
                min(self.output_clamp[0], other.output_clamp[0]),
                max(self.output_clamp[1], other.output_clamp[1]),
            )
        return InputIntervals(
            scalars=join_map(self.scalars, other.scalars),
            attrs=join_nested(self.attrs, other.attrs),
            methods=join_nested(self.methods, other.methods),
            bool_methods=self.bool_methods | other.bool_methods,
            output_clamp=clamp,
        )


# --------------------------------------------------------------------------
# The abstract interpreter
# --------------------------------------------------------------------------


@dataclass
class AbstractResult:
    """Joined return value of a program plus the global error bit."""

    value: AbsValue
    may_error: bool
    ticks: int


def analyze_intervals(
    program: Program,
    intervals: InputIntervals,
    max_steps: int = _DEFAULT_MAX_STEPS,
) -> AbstractResult:
    """Abstractly execute ``program`` over ``intervals``.

    Returns the join of every reachable return value (plus the implicit
    ``return 0`` fall-through) and whether any path may raise a
    :class:`~repro.dsl.errors.DslError`.
    """
    state = {"error": False, "ticks": 0}
    returns: List[AbsValue] = []

    def fail() -> AbsValue:
        state["error"] = True
        return UNKNOWN

    def tick(n: int = 1) -> None:
        state["ticks"] += n

    def truthiness(value: AbsValue) -> int:
        if value.kind in ("object", "builtin"):
            return _TRUE  # non-None objects are truthy
        if value.kind != "num":
            return _MAYBE
        if not value.iv.contains(0):
            return _TRUE
        if value.iv == ZERO:
            return _FALSE
        return _MAYBE

    def numeric(value: AbsValue) -> Optional[AbsValue]:
        """The operand as a number, or None if it may not be one."""
        if value.kind == "num":
            return value
        return None

    def binary(op: str, left: AbsValue, right: AbsValue) -> AbsValue:
        a, b = numeric(left), numeric(right)
        if a is None or b is None:
            return fail()
        tainted = a.tainted or b.tainted
        may = False
        if op == "+":
            iv = a.iv.add(b.iv)
        elif op == "-":
            iv = a.iv.sub(b.iv)
        elif op == "*":
            iv = a.iv.mul(b.iv)
        elif op == "/":
            iv, may = a.iv.truediv(b.iv)
        elif op == "//":
            iv, may = a.iv.floordiv(b.iv)
        elif op == "%":
            iv, may = a.iv.mod(b.iv)
        else:
            return fail()
        if may:
            state["error"] = True
        return AbsValue(iv=iv, tainted=tainted)

    def compare(op: str, left: AbsValue, right: AbsValue) -> AbsValue:
        a, b = numeric(left), numeric(right)
        if a is None or b is None:
            return fail()
        tainted = a.tainted or b.tainted
        x, y = a.iv, b.iv
        verdict = _MAYBE
        if op == "<":
            verdict = (
                _TRUE if x.hi < y.lo else _FALSE if x.lo >= y.hi else _MAYBE
            )
        elif op == "<=":
            verdict = (
                _TRUE if x.hi <= y.lo else _FALSE if x.lo > y.hi else _MAYBE
            )
        elif op == ">":
            verdict = (
                _TRUE if x.lo > y.hi else _FALSE if x.hi <= y.lo else _MAYBE
            )
        elif op == ">=":
            verdict = (
                _TRUE if x.lo >= y.hi else _FALSE if x.hi < y.lo else _MAYBE
            )
        elif op == "==":
            if x.is_point and y.is_point and x.lo == y.lo:
                verdict = _TRUE
            elif x.hi < y.lo or y.hi < x.lo:
                verdict = _FALSE
        elif op == "!=":
            if x.is_point and y.is_point and x.lo == y.lo:
                verdict = _FALSE
            elif x.hi < y.lo or y.hi < x.lo:
                verdict = _TRUE
        return bool_value(verdict, tainted)

    def bool_value(verdict: int, tainted: bool) -> AbsValue:
        iv = BOOL if verdict == _MAYBE else point(verdict)
        return AbsValue(iv=iv, tainted=tainted, is_bool=True)

    def method_result(obj: AbsValue, name: str, args: List[AbsValue]) -> AbsValue:
        declared = intervals.methods.get(obj.ref, {})
        if name not in declared:
            return fail()
        for arg in args:
            # Feature methods reject non-numeric and bool arguments.
            if arg.kind != "num" or arg.is_bool:
                state["error"] = True
        return AbsValue(
            iv=declared[name],
            tainted=True,
            is_bool=(obj.ref, name) in intervals.bool_methods,
        )

    def builtin_call(name: str, args: List[AbsValue]) -> AbsValue:
        nums = [numeric(a) for a in args]
        if any(n is None for n in nums):
            return fail()
        tainted = any(n.tainted for n in nums)
        is_bool = any(n.is_bool for n in nums)
        if name in ("min", "max") and len(nums) >= 2:
            iv = nums[0].iv
            for n in nums[1:]:
                iv = iv.imin(n.iv) if name == "min" else iv.imax(n.iv)
            # min/max return one of their operands, which may be a bool.
            return AbsValue(iv=iv, tainted=tainted, is_bool=is_bool)
        if name == "abs" and len(nums) == 1:
            return AbsValue(iv=nums[0].iv.iabs(), tainted=tainted)
        if name == "clamp" and len(nums) == 3:
            x, lo, hi = (n.iv for n in nums)
            straight = lo.imax(hi.imin(x))
            if lo.hi <= hi.lo:  # bounds provably ordered: no swap
                iv = straight
            elif lo.lo > hi.hi:  # provably inverted: always swapped
                iv = hi.imax(lo.imin(x))
            else:
                iv = straight.join(hi.imax(lo.imin(x)))
            return AbsValue(iv=iv, tainted=tainted, is_bool=is_bool)
        return fail()  # wrong arity -> "builtin ... failed"

    def visit_expr(expr: Expr, env: Dict[str, AbsValue]) -> AbsValue:
        tick()
        if isinstance(expr, Number):
            return AbsValue(iv=point(expr.value), tainted=False)
        if isinstance(expr, Name):
            if expr.id in env:
                return env[expr.id]
            if expr.id in _BUILTINS:
                return AbsValue(kind="builtin", ref=expr.id)
            return fail()  # undefined variable
        if isinstance(expr, Attribute):
            target = visit_expr(expr.value, env)
            if target.kind == "object":
                declared = intervals.attrs.get(target.ref, {})
                if expr.attr in declared:
                    return AbsValue(iv=declared[expr.attr], tainted=True)
            return fail()
        if isinstance(expr, Call):
            args = [visit_expr(arg, env) for arg in expr.args]
            func = expr.func
            if isinstance(func, Attribute):
                target = visit_expr(func.value, env)
                if target.kind == "object":
                    return method_result(target, func.attr, args)
                return fail()
            if isinstance(func, Name) and func.id in _BUILTINS:
                return builtin_call(func.id, args)
            return fail()
        if isinstance(expr, UnaryOp):
            operand = visit_expr(expr.operand, env)
            if expr.op == "-":
                n = numeric(operand)
                if n is None:
                    return fail()
                return AbsValue(iv=n.iv.neg(), tainted=n.tainted)
            if expr.op == "not":
                t = truthiness(operand)
                flipped = {_TRUE: _FALSE, _FALSE: _TRUE, _MAYBE: _MAYBE}[t]
                return bool_value(flipped, operand.tainted)
            return fail()
        if isinstance(expr, BinOp):
            left = visit_expr(expr.left, env)
            right = visit_expr(expr.right, env)
            return binary(expr.op, left, right)
        if isinstance(expr, Compare):
            left = visit_expr(expr.left, env)
            right = visit_expr(expr.right, env)
            return compare(expr.op, left, right)
        if isinstance(expr, BoolOp):
            # The interpreter may short-circuit; evaluating every operand
            # only over-counts ticks and over-joins errors (both sound).
            return boolop(expr.op, expr.values, env)
        if isinstance(expr, Ternary):
            cond = visit_expr(expr.condition, env)
            t = truthiness(cond)
            if t == _TRUE:
                return visit_expr(expr.if_true, env)
            if t == _FALSE:
                return visit_expr(expr.if_false, env)
            a = visit_expr(expr.if_true, env)
            b = visit_expr(expr.if_false, env)
            return a.join(b, extra_taint=cond.tainted)
        return fail()

    def boolop(op: str, values: List[Expr], env: Dict[str, AbsValue]) -> AbsValue:
        results = [visit_expr(v, env) for v in values]
        truths = [truthiness(r) for r in results]
        tainted = any(r.tainted for r in results)
        if op == "and":
            if any(t == _FALSE for t in truths):
                return bool_value(_FALSE, tainted)
            if all(t == _TRUE for t in truths):
                return bool_value(_TRUE, tainted)
            return bool_value(_MAYBE, tainted)
        if op == "or":
            if any(t == _TRUE for t in truths):
                return bool_value(_TRUE, tainted)
            if all(t == _FALSE for t in truths):
                return bool_value(_FALSE, tainted)
            return bool_value(_MAYBE, tainted)
        fail()
        return bool_value(_MAYBE, tainted)

    # Path taint: true while executing under a branch whose direction may
    # depend on an input.  Applied to return values (implicit flows).
    path_taint: List[bool] = [False]

    def add_return(value: AbsValue) -> None:
        if path_taint[0]:
            value = AbsValue(
                iv=value.iv,
                tainted=True,
                kind=value.kind,
                ref=value.ref,
                is_bool=value.is_bool,
            )
        returns.append(value)

    def join_env(
        a: Dict[str, AbsValue], b: Dict[str, AbsValue], extra_taint: bool
    ) -> Dict[str, AbsValue]:
        # Variables assigned on only one path are dropped: a later read is
        # then treated as a possible undefined-variable error.
        return {
            name: a[name].join(b[name], extra_taint=extra_taint)
            for name in a.keys() & b.keys()
        }

    def assigned_vars(stmts: List[Stmt]) -> List[str]:
        names: List[str] = []
        for stmt in stmts:
            for node in stmt.walk():
                if isinstance(node, (Assign, AugAssign)):
                    if node.target.id not in names:
                        names.append(node.target.id)
        return names

    def havoc_loop(
        stmts: List[Stmt],
        env: Dict[str, AbsValue],
        loop_vars: List[str],
    ) -> Optional[Dict[str, AbsValue]]:
        """Sound fixpoint for loops we do not unroll: widen every assigned
        variable to the unknown-value top, run the body once to collect
        returns and errors, and drop variables the loop may leave undefined."""
        state["error"] = True  # the step budget / int-ness cannot be proven
        havoced = dict(env)
        fresh = [v for v in assigned_vars(stmts) if v not in env]
        for name in assigned_vars(stmts):
            havoced[name] = HAVOC
        for name in loop_vars:
            havoced[name] = HAVOC
        old = path_taint[0]
        path_taint[0] = True
        exec_block(stmts, dict(havoced))
        path_taint[0] = old
        for name in fresh + [v for v in loop_vars if v not in env]:
            havoced.pop(name, None)
        return havoced

    def exec_block(
        stmts: List[Stmt], env: Dict[str, AbsValue]
    ) -> Optional[Dict[str, AbsValue]]:
        """Returns the fall-through environment, or None if every path
        returned."""
        current: Optional[Dict[str, AbsValue]] = env
        for stmt in stmts:
            if current is None:
                return None
            current = exec_stmt(stmt, current)
        return current

    def exec_stmt(
        stmt: Stmt, env: Dict[str, AbsValue]
    ) -> Optional[Dict[str, AbsValue]]:
        tick()
        if isinstance(stmt, Assign):
            env[stmt.target.id] = visit_expr(stmt.value, env)
            return env
        if isinstance(stmt, AugAssign):
            if stmt.target.id not in env:
                fail()  # augmented assignment to undefined variable
                env[stmt.target.id] = UNKNOWN
                visit_expr(stmt.value, env)
                return env
            operand = visit_expr(stmt.value, env)
            env[stmt.target.id] = binary(stmt.op, env[stmt.target.id], operand)
            return env
        if isinstance(stmt, If):
            cond = visit_expr(stmt.condition, env)
            t = truthiness(cond)
            if t == _TRUE:
                return exec_block(stmt.body, env)
            if t == _FALSE:
                return exec_block(stmt.orelse, env)
            old = path_taint[0]
            path_taint[0] = old or cond.tainted
            then_env = exec_block(stmt.body, dict(env))
            else_env = exec_block(stmt.orelse, dict(env))
            path_taint[0] = old
            if then_env is None:
                return else_env
            if else_env is None:
                return then_env
            return join_env(then_env, else_env, extra_taint=cond.tainted)
        if isinstance(stmt, ForRange):
            limit = visit_expr(stmt.limit, env)
            n = numeric(limit)
            if (
                n is not None
                and n.iv.is_point
                and float(n.iv.lo).is_integer()
                and n.iv.lo <= _UNROLL_LIMIT
            ):
                count = max(0, int(n.iv.lo))
                current: Optional[Dict[str, AbsValue]] = env
                for i in range(count):
                    tick()
                    current[stmt.var.id] = AbsValue(iv=point(i), tainted=False)
                    current = exec_block(stmt.body, current)
                    if current is None:
                        return None
                return current
            return havoc_loop(stmt.body, env, [stmt.var.id])
        if isinstance(stmt, While):
            cond = visit_expr(stmt.condition, env)
            if truthiness(cond) == _FALSE:
                return env
            return havoc_loop(stmt.body, env, [])
        if isinstance(stmt, Return):
            add_return(visit_expr(stmt.value, env))
            return None
        fail()
        return env

    final_env = exec_block(list(program.body), intervals.initial_env(program))
    if final_env is not None:
        # Falling off the end returns the neutral score 0.
        returns.append(AbsValue(iv=ZERO, tainted=False))
    if not returns:
        result = UNKNOWN
    else:
        result = returns[0]
        for other in returns[1:]:
            result = result.join(other)
    if result.kind != "num":
        # A non-numeric return (feature object, builtin) is rejected by
        # every substrate; treat it like an error for screening purposes.
        state["error"] = True
        result = AbsValue(iv=result.iv, tainted=result.tainted)
    if state["ticks"] > max_steps:
        state["error"] = True  # the concrete run may exhaust its step budget
    return AbstractResult(
        value=result, may_error=state["error"], ticks=state["ticks"]
    )


# --------------------------------------------------------------------------
# Certification and screening
# --------------------------------------------------------------------------


def _bound(value: float) -> Optional[float]:
    """JSON form of one interval endpoint (None = unbounded)."""
    if not math.isfinite(value):
        return None
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


@dataclass(frozen=True)
class Certificate:
    """Machine-checkable facts about one program's output."""

    function: str
    lo: float
    hi: float
    constant: bool
    depends_on_inputs: bool
    may_error: bool
    clamped_lo: Optional[float] = None
    clamped_hi: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "function": self.function,
            "bounds": {"lo": _bound(self.lo), "hi": _bound(self.hi)},
            "constant": self.constant,
            "depends_on_inputs": self.depends_on_inputs,
            "may_error": self.may_error,
        }
        if self.clamped_lo is not None and self.clamped_hi is not None:
            record["clamped_bounds"] = {
                "lo": _bound(self.clamped_lo),
                "hi": _bound(self.clamped_hi),
            }
        return record

    def describe(self) -> str:
        def fmt(v: float) -> str:
            if not math.isfinite(v):
                return "-inf" if v < 0 else "+inf"
            b = _bound(v)
            return str(b)

        parts = [f"{self.function} in [{fmt(self.lo)}, {fmt(self.hi)}]"]
        if self.clamped_lo is not None and self.clamped_hi is not None:
            parts.append(
                f"applied window in [{fmt(self.clamped_lo)}, {fmt(self.clamped_hi)}]"
            )
        if self.constant:
            parts.append("constant output")
        elif not self.depends_on_inputs:
            parts.append("independent of all inputs")
        if self.may_error:
            parts.append("may raise at runtime")
        return "; ".join(parts)


@dataclass(frozen=True)
class ScreenVerdict:
    """Outcome of the rung "-1" degeneracy check for one candidate."""

    screened: bool
    reason: str = ""
    detail: str = ""

    @property
    def error(self) -> str:
        return f"static-screen: {self.reason} ({self.detail})"


class StaticScreener:
    """Screens and certifies candidates against declared input intervals."""

    def __init__(self, intervals: InputIntervals, max_steps: int = _DEFAULT_MAX_STEPS):
        self.intervals = intervals
        self.max_steps = max_steps

    def certify(self, program: Program) -> Certificate:
        result = analyze_intervals(program, self.intervals, self.max_steps)
        value = result.value
        clamped_lo = clamped_hi = None
        clamp = self.intervals.output_clamp
        if clamp is not None:
            applied = value.iv.trunc().clamp_into(clamp[0], clamp[1])
            clamped_lo, clamped_hi = applied.lo, applied.hi
        return Certificate(
            function=program.name,
            lo=value.iv.lo,
            hi=value.iv.hi,
            constant=value.iv.is_point and not result.may_error,
            depends_on_inputs=value.tainted,
            may_error=result.may_error,
            clamped_lo=clamped_lo,
            clamped_hi=clamped_hi,
        )

    def screen(self, program: Program) -> ScreenVerdict:
        result = analyze_intervals(program, self.intervals, self.max_steps)
        value = result.value
        if result.may_error:
            # An erroring path means the output is not provably degenerate
            # (and the evaluator's own failure handling will score it).
            return ScreenVerdict(False)
        if value.iv.is_point:
            return ScreenVerdict(
                True, "constant", f"always returns {_bound(value.iv.lo)}"
            )
        if not value.tainted:
            return ScreenVerdict(
                True, "input-independent", "output unreachable from any input"
            )
        clamp = self.intervals.output_clamp
        if clamp is not None:
            if value.iv.hi <= clamp[0]:
                return ScreenVerdict(
                    True,
                    "pinned-min",
                    f"return <= {_bound(clamp[0])} for all inputs",
                )
            if value.iv.lo >= clamp[1]:
                return ScreenVerdict(
                    True,
                    "pinned-max",
                    f"return >= {_bound(clamp[1])} for all inputs",
                )
        return ScreenVerdict(False)


def certify_program(program: Program, intervals: InputIntervals) -> Certificate:
    """One-shot certification (the ``repro certify`` entry point)."""
    return StaticScreener(intervals).certify(program)
