"""Code generation: render AST programs back to text.

Three back ends:

* :func:`to_source` -- canonical DSL text; ``parse(to_source(p)) == p`` holds
  for every program the parser can produce (round-trip property, tested with
  hypothesis).
* :func:`to_c_like` -- C-flavoured rendering close to the paper's Listing 1,
  used when printing discovered heuristics in experiment reports.
* :func:`to_python` -- a Python function body, useful for inspection and for
  embedding a discovered heuristic in a pure-Python deployment.
"""

from __future__ import annotations

from typing import List

from repro.dsl.ast import (
    Assign,
    Attribute,
    AugAssign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Expr,
    ForRange,
    If,
    Name,
    Number,
    Program,
    Return,
    Stmt,
    Ternary,
    UnaryOp,
    While,
)

_PRECEDENCE = {
    "ternary": 1,
    "or": 2,
    "and": 3,
    "not": 4,
    "compare": 5,
    "+": 6,
    "-": 6,
    "*": 7,
    "/": 7,
    "//": 7,
    "%": 7,
    "unary": 8,
    "postfix": 9,
    "atom": 10,
}


def _format_number(value) -> str:
    if isinstance(value, float):
        text = repr(value)
        return text
    return str(value)


def expr_to_source(expr: Expr) -> str:
    """Render an expression in canonical DSL syntax."""
    text, _ = _render_expr(expr)
    return text


def _render_expr(expr: Expr) -> tuple[str, int]:
    """Return (text, precedence) so parents can parenthesise as needed."""
    if isinstance(expr, Number):
        if isinstance(expr.value, (int, float)) and expr.value < 0:
            return f"(-{_format_number(abs(expr.value))})", _PRECEDENCE["atom"]
        return _format_number(expr.value), _PRECEDENCE["atom"]
    if isinstance(expr, Name):
        return expr.id, _PRECEDENCE["atom"]
    if isinstance(expr, Attribute):
        base, base_prec = _render_expr(expr.value)
        if base_prec < _PRECEDENCE["postfix"]:
            base = f"({base})"
        return f"{base}.{expr.attr}", _PRECEDENCE["postfix"]
    if isinstance(expr, Call):
        func, func_prec = _render_expr(expr.func)
        if func_prec < _PRECEDENCE["postfix"]:
            func = f"({func})"
        args = ", ".join(expr_to_source(arg) for arg in expr.args)
        return f"{func}({args})", _PRECEDENCE["postfix"]
    if isinstance(expr, UnaryOp):
        operand, operand_prec = _render_expr(expr.operand)
        if expr.op == "not":
            if operand_prec < _PRECEDENCE["compare"]:
                operand = f"({operand})"
            return f"not {operand}", _PRECEDENCE["not"]
        if operand_prec < _PRECEDENCE["unary"]:
            operand = f"({operand})"
        return f"-{operand}", _PRECEDENCE["unary"]
    if isinstance(expr, BinOp):
        prec = _PRECEDENCE[expr.op]
        left, left_prec = _render_expr(expr.left)
        right, right_prec = _render_expr(expr.right)
        if left_prec < prec:
            left = f"({left})"
        # Right child needs parens at equal precedence for left-assoc ops.
        if right_prec <= prec:
            right = f"({right})"
        return f"{left} {expr.op} {right}", prec
    if isinstance(expr, Compare):
        prec = _PRECEDENCE["compare"]
        left, left_prec = _render_expr(expr.left)
        right, right_prec = _render_expr(expr.right)
        if left_prec <= prec:
            left = f"({left})"
        if right_prec <= prec:
            right = f"({right})"
        return f"{left} {expr.op} {right}", prec
    if isinstance(expr, BoolOp):
        prec = _PRECEDENCE[expr.op]
        parts: List[str] = []
        for value in expr.values:
            text, value_prec = _render_expr(value)
            if value_prec <= prec:
                text = f"({text})"
            parts.append(text)
        return f" {expr.op} ".join(parts), prec
    if isinstance(expr, Ternary):
        prec = _PRECEDENCE["ternary"]
        cond, cond_prec = _render_expr(expr.condition)
        if cond_prec <= prec:
            cond = f"({cond})"
        if_true, true_prec = _render_expr(expr.if_true)
        if true_prec <= prec:
            if_true = f"({if_true})"
        if_false, false_prec = _render_expr(expr.if_false)
        # ternary is right-associative: nested ternary on the right is fine
        if false_prec < prec:
            if_false = f"({if_false})"
        return f"{cond} ? {if_true} : {if_false}", prec
    raise TypeError(f"cannot render expression of type {type(expr).__name__}")


def _render_block(stmts: List[Stmt], indent: int) -> List[str]:
    pad = "    " * indent
    lines: List[str] = []
    for stmt in stmts:
        lines.extend(_render_stmt(stmt, indent))
    if not lines:
        lines = [pad + "# empty"]
    return lines


def _render_stmt(stmt: Stmt, indent: int) -> List[str]:
    pad = "    " * indent
    if isinstance(stmt, Assign):
        return [f"{pad}{stmt.target.id} = {expr_to_source(stmt.value)}"]
    if isinstance(stmt, AugAssign):
        return [f"{pad}{stmt.target.id} {stmt.op}= {expr_to_source(stmt.value)}"]
    if isinstance(stmt, Return):
        return [f"{pad}return {expr_to_source(stmt.value)}"]
    if isinstance(stmt, If):
        lines = [f"{pad}if ({expr_to_source(stmt.condition)}) {{"]
        lines.extend(_render_block(stmt.body, indent + 1))
        if stmt.orelse:
            lines.append(f"{pad}}} else {{")
            lines.extend(_render_block(stmt.orelse, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ForRange):
        lines = [
            f"{pad}for ({stmt.var.id} in range({expr_to_source(stmt.limit)})) {{"
        ]
        lines.extend(_render_block(stmt.body, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, While):
        lines = [f"{pad}while ({expr_to_source(stmt.condition)}) {{"]
        lines.extend(_render_block(stmt.body, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    raise TypeError(f"cannot render statement of type {type(stmt).__name__}")


def to_source(program: Program) -> str:
    """Render ``program`` as canonical DSL text (parseable by ``parse``)."""
    header = f"def {program.name}({', '.join(program.params)}) {{"
    lines = [header]
    lines.extend(_render_block(program.body, 1))
    lines.append("}")
    return "\n".join(lines) + "\n"


def to_c_like(program: Program) -> str:
    """Render ``program`` in a C-flavoured style (as in the paper's Listing 1)."""
    source = to_source(program)
    lines = []
    for line in source.splitlines():
        stripped = line.rstrip()
        if not stripped:
            continue
        body = stripped.strip()
        is_struct = (
            body.endswith("{")
            or body.endswith("}")
            or body.startswith("}")
            or body.startswith("def ")
            or body.startswith("#")
        )
        if is_struct:
            lines.append(stripped)
        else:
            lines.append(stripped + ";")
    return "\n".join(lines) + "\n"


def _python_expr(expr: Expr) -> str:
    if isinstance(expr, Ternary):
        return (
            f"({_python_expr(expr.if_true)} if {_python_expr(expr.condition)}"
            f" else {_python_expr(expr.if_false)})"
        )
    if isinstance(expr, BinOp):
        return f"({_python_expr(expr.left)} {expr.op} {_python_expr(expr.right)})"
    if isinstance(expr, Compare):
        return f"({_python_expr(expr.left)} {expr.op} {_python_expr(expr.right)})"
    if isinstance(expr, BoolOp):
        joined = f" {expr.op} ".join(_python_expr(v) for v in expr.values)
        return f"({joined})"
    if isinstance(expr, UnaryOp):
        if expr.op == "not":
            return f"(not {_python_expr(expr.operand)})"
        return f"(-{_python_expr(expr.operand)})"
    if isinstance(expr, Call):
        args = ", ".join(_python_expr(a) for a in expr.args)
        return f"{_python_expr(expr.func)}({args})"
    if isinstance(expr, Attribute):
        return f"{_python_expr(expr.value)}.{expr.attr}"
    if isinstance(expr, Name):
        return expr.id
    if isinstance(expr, Number):
        return _format_number(expr.value)
    raise TypeError(f"cannot render expression of type {type(expr).__name__}")


def _python_block(stmts: List[Stmt], indent: int) -> List[str]:
    pad = "    " * indent
    lines: List[str] = []
    for stmt in stmts:
        if isinstance(stmt, Assign):
            lines.append(f"{pad}{stmt.target.id} = {_python_expr(stmt.value)}")
        elif isinstance(stmt, AugAssign):
            lines.append(f"{pad}{stmt.target.id} {stmt.op}= {_python_expr(stmt.value)}")
        elif isinstance(stmt, Return):
            lines.append(f"{pad}return {_python_expr(stmt.value)}")
        elif isinstance(stmt, If):
            lines.append(f"{pad}if {_python_expr(stmt.condition)}:")
            lines.extend(_python_block(stmt.body, indent + 1) or [f"{pad}    pass"])
            if stmt.orelse:
                lines.append(f"{pad}else:")
                lines.extend(_python_block(stmt.orelse, indent + 1) or [f"{pad}    pass"])
        elif isinstance(stmt, ForRange):
            lines.append(
                f"{pad}for {stmt.var.id} in range({_python_expr(stmt.limit)}):"
            )
            lines.extend(_python_block(stmt.body, indent + 1) or [f"{pad}    pass"])
        elif isinstance(stmt, While):
            lines.append(f"{pad}while {_python_expr(stmt.condition)}:")
            lines.extend(_python_block(stmt.body, indent + 1) or [f"{pad}    pass"])
        else:
            raise TypeError(f"cannot render statement of type {type(stmt).__name__}")
    return lines


def to_python(program: Program) -> str:
    """Render ``program`` as an equivalent Python function definition."""
    header = f"def {program.name}({', '.join(program.params)}):"
    body = _python_block(program.body, 1)
    if not body:
        body = ["    return 0"]
    return "\n".join([header, *body]) + "\n"
