"""Tokenizer and recursive-descent parser for the heuristic DSL.

Surface syntax (a deliberately small C/Python hybrid, close to the paper's
Listing 1)::

    def priority(now, obj_id, obj_info, counts, ages, sizes, history) {
        score = obj_info.count * 20
        age = now - obj_info.last_accessed
        score -= age / 300
        if (history.contains(obj_id)) {
            score += history.count_of(obj_id) * 15
        } else {
            score -= 40
        }
        score += (obj_info.count > counts.percentile(0.7)) ? 50 : -5
        return score
    }

Statements are separated by newlines or semicolons; blocks use braces.
``parse`` returns a :class:`repro.dsl.ast.Program`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.dsl.ast import (
    Assign,
    Attribute,
    AugAssign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Expr,
    ForRange,
    If,
    Name,
    Number,
    Program,
    Return,
    Stmt,
    Ternary,
    UnaryOp,
    While,
)
from repro.dsl.errors import DslSyntaxError

KEYWORDS = {
    "def",
    "if",
    "else",
    "for",
    "while",
    "in",
    "range",
    "return",
    "and",
    "or",
    "not",
    "true",
    "false",
}

_TWO_CHAR_OPS = ("<=", ">=", "==", "!=", "+=", "-=", "*=", "//", "/=", "%=")
_THREE_CHAR_OPS = ("//=",)
_SINGLE_CHAR_OPS = "+-*/%<>=?:,.(){};"


@dataclass
class Token:
    """A lexical token with its source position (1-based)."""

    kind: str  # "number" | "name" | "keyword" | "op" | "newline" | "eof"
    text: str
    line: int
    column: int


def tokenize(source: str) -> List[Token]:
    """Split ``source`` into tokens, raising :class:`DslSyntaxError` on junk."""
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    length = len(source)

    def add(kind: str, text: str) -> None:
        tokens.append(Token(kind, text, line, column))

    while i < length:
        ch = source[i]
        if ch == "\n":
            add("newline", "\n")
            i += 1
            line += 1
            column = 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "#":
            while i < length and source[i] != "\n":
                i += 1
                column += 1
            continue
        if ch == "/" and i + 1 < length and source[i + 1] == "/" and (
            i + 2 >= length or not source[i + 2] == "="
        ):
            # Could be a comment ("// text") or integer division ("a // b").
            # Heuristic: it is a comment if the previous meaningful token is
            # not something an expression could continue from.
            prev = tokens[-1] if tokens else None
            expression_tail = prev is not None and (
                prev.kind in ("number", "name")
                or (prev.kind == "op" and prev.text in (")",))
            )
            if not expression_tail:
                while i < length and source[i] != "\n":
                    i += 1
                    column += 1
                continue
        if ch.isdigit() or (ch == "." and i + 1 < length and source[i + 1].isdigit()):
            start = i
            start_col = column
            seen_dot = False
            while i < length and (source[i].isdigit() or (source[i] == "." and not seen_dot)):
                if source[i] == ".":
                    # Do not absorb the dot of an attribute access like "1 .foo"
                    if i + 1 >= length or not source[i + 1].isdigit():
                        break
                    seen_dot = True
                i += 1
            text = source[start:i]
            tokens.append(Token("number", text, line, start_col))
            column = start_col + len(text)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            start_col = column
            while i < length and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "name"
            tokens.append(Token(kind, text, line, start_col))
            column = start_col + len(text)
            continue
        matched = None
        for op in _THREE_CHAR_OPS:
            if source.startswith(op, i):
                matched = op
                break
        if matched is None:
            for op in _TWO_CHAR_OPS:
                if source.startswith(op, i):
                    matched = op
                    break
        if matched is None and ch in _SINGLE_CHAR_OPS:
            matched = ch
        if matched is None:
            raise DslSyntaxError(f"unexpected character {ch!r}", line, column)
        add("op", matched)
        i += len(matched)
        column += len(matched)
    tokens.append(Token("eof", "", line, column))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self._peek()
        return token.kind == kind and (text is None or token.text == text)

    def _match(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        if self._check(kind, text):
            return self._advance()
        token = self._peek()
        expected = text if text is not None else kind
        raise DslSyntaxError(
            f"expected {expected!r} but found {token.text or token.kind!r}",
            token.line,
            token.column,
        )

    def _skip_separators(self) -> None:
        while self._check("newline") or self._check("op", ";"):
            self._advance()

    # -- entry point --------------------------------------------------------

    def parse_program(self) -> Program:
        self._skip_separators()
        self._expect("keyword", "def")
        name = self._expect("name").text
        self._expect("op", "(")
        params: List[str] = []
        if not self._check("op", ")"):
            params.append(self._expect("name").text)
            while self._match("op", ","):
                self._skip_separators()
                params.append(self._expect("name").text)
        self._expect("op", ")")
        self._skip_separators()
        body = self._parse_block()
        self._skip_separators()
        token = self._peek()
        if token.kind != "eof":
            raise DslSyntaxError(
                f"unexpected trailing input {token.text!r}", token.line, token.column
            )
        return Program(name=name, params=params, body=body)

    # -- statements ---------------------------------------------------------

    def _parse_block(self) -> List[Stmt]:
        self._expect("op", "{")
        statements: List[Stmt] = []
        self._skip_separators()
        while not self._check("op", "}"):
            statements.append(self._parse_statement())
            self._skip_separators()
        self._expect("op", "}")
        return statements

    def _parse_statement(self) -> Stmt:
        if self._check("keyword", "return"):
            self._advance()
            return Return(value=self._parse_expression())
        if self._check("keyword", "if"):
            return self._parse_if()
        if self._check("keyword", "for"):
            return self._parse_for()
        if self._check("keyword", "while"):
            return self._parse_while()
        if self._check("name"):
            nxt = self._peek(1)
            if nxt.kind == "op" and nxt.text in ("=", "+=", "-=", "*=", "/=", "//=", "%="):
                target = Name(id=self._advance().text)
                op_token = self._advance()
                value = self._parse_expression()
                if op_token.text == "=":
                    return Assign(target=target, value=value)
                return AugAssign(target=target, op=op_token.text[:-1], value=value)
        token = self._peek()
        raise DslSyntaxError(
            f"expected a statement but found {token.text or token.kind!r}",
            token.line,
            token.column,
        )

    def _parse_if(self) -> If:
        self._expect("keyword", "if")
        self._expect("op", "(")
        condition = self._parse_expression()
        self._expect("op", ")")
        self._skip_separators()
        body = self._parse_block()
        orelse: List[Stmt] = []
        checkpoint = self._pos
        self._skip_separators()
        if self._check("keyword", "else"):
            self._advance()
            self._skip_separators()
            if self._check("keyword", "if"):
                orelse = [self._parse_if()]
            else:
                orelse = self._parse_block()
        else:
            self._pos = checkpoint
        return If(condition=condition, body=body, orelse=orelse)

    def _parse_for(self) -> ForRange:
        self._expect("keyword", "for")
        self._expect("op", "(")
        var = Name(id=self._expect("name").text)
        self._expect("keyword", "in")
        self._expect("keyword", "range")
        self._expect("op", "(")
        limit = self._parse_expression()
        self._expect("op", ")")
        self._expect("op", ")")
        self._skip_separators()
        body = self._parse_block()
        return ForRange(var=var, limit=limit, body=body)

    def _parse_while(self) -> While:
        self._expect("keyword", "while")
        self._expect("op", "(")
        condition = self._parse_expression()
        self._expect("op", ")")
        self._skip_separators()
        body = self._parse_block()
        return While(condition=condition, body=body)

    # -- expressions --------------------------------------------------------

    def _parse_expression(self) -> Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> Expr:
        condition = self._parse_or()
        if self._match("op", "?"):
            if_true = self._parse_ternary()
            self._expect("op", ":")
            if_false = self._parse_ternary()
            return Ternary(condition=condition, if_true=if_true, if_false=if_false)
        return condition

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        values = [left]
        while self._check("keyword", "or"):
            self._advance()
            values.append(self._parse_and())
        if len(values) == 1:
            return left
        return BoolOp(op="or", values=values)

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        values = [left]
        while self._check("keyword", "and"):
            self._advance()
            values.append(self._parse_not())
        if len(values) == 1:
            return left
        return BoolOp(op="and", values=values)

    def _parse_not(self) -> Expr:
        if self._check("keyword", "not"):
            self._advance()
            return UnaryOp(op="not", operand=self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        if self._peek().kind == "op" and self._peek().text in ("<", "<=", ">", ">=", "==", "!="):
            op = self._advance().text
            right = self._parse_additive()
            return Compare(op=op, left=left, right=right)
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self._peek().kind == "op" and self._peek().text in ("+", "-"):
            op = self._advance().text
            right = self._parse_multiplicative()
            left = BinOp(op=op, left=left, right=right)
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while self._peek().kind == "op" and self._peek().text in ("*", "/", "//", "%"):
            op = self._advance().text
            right = self._parse_unary()
            left = BinOp(op=op, left=left, right=right)
        return left

    def _parse_unary(self) -> Expr:
        if self._check("op", "-"):
            self._advance()
            return UnaryOp(op="-", operand=self._parse_unary())
        if self._check("op", "+"):
            self._advance()
            return self._parse_unary()
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            if self._match("op", "."):
                attr = self._expect("name").text
                expr = Attribute(value=expr, attr=attr)
            elif self._check("op", "("):
                self._advance()
                args: List[Expr] = []
                self._skip_separators()
                if not self._check("op", ")"):
                    args.append(self._parse_expression())
                    while self._match("op", ","):
                        self._skip_separators()
                        args.append(self._parse_expression())
                self._expect("op", ")")
                expr = Call(func=expr, args=args)
            else:
                return expr

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            if "." in token.text:
                return Number(value=float(token.text))
            return Number(value=int(token.text))
        if token.kind == "keyword" and token.text in ("true", "false"):
            self._advance()
            return Number(value=1 if token.text == "true" else 0)
        if token.kind == "name":
            self._advance()
            return Name(id=token.text)
        if token.kind == "op" and token.text == "(":
            self._advance()
            expr = self._parse_expression()
            self._expect("op", ")")
            return expr
        raise DslSyntaxError(
            f"expected an expression but found {token.text or token.kind!r}",
            token.line,
            token.column,
        )


def parse(source: str) -> Program:
    """Parse DSL source text into a :class:`Program`.

    Raises :class:`DslSyntaxError` with line/column information on failure,
    which the Checker surfaces back to the Generator as feedback.
    """
    tokens = tokenize(source)
    return _Parser(tokens).parse_program()
