"""Compile DSL programs to native Python callables (the hot-loop fast path).

The tree-walking :class:`~repro.dsl.interpreter.Interpreter` pays a Python
function call per AST node per invocation, which dominates the cost of
simulating a candidate on a trace (the priority function runs on every cache
access, the cong_control function on every ACK).  This module renders a
:class:`~repro.dsl.ast.Program` as real Python source -- building on the
:func:`~repro.dsl.codegen.to_python` rendering -- and ``exec``-compiles it
once, so each invocation afterwards is a single native call.

The compiled callable preserves the interpreter's observable semantics, which
the differential property test (``tests/dsl/test_compile.py``) checks over
arbitrary generated programs:

* feature objects are still accessed through the
  :class:`~repro.dsl.interpreter.FeatureObject` allow-list
  (``dsl_getattr`` / ``dsl_call``), so compiled candidates remain sandboxed;
* builtin calls resolve to the same ``min``/``max``/``abs``/``clamp`` table
  the interpreter uses, bypassing local shadowing exactly as the
  interpreter's ``_call`` does;
* ``and`` / ``or`` produce booleans (the interpreter's truthiness fold), not
  Python's operand-valued short-circuit result;
* division/modulo by zero, unknown names/attributes/functions and type
  errors surface as :class:`~repro.dsl.errors.DslRuntimeError`;
* a program that falls off the end returns ``0``.

Programs containing loops are *not* compiled: the interpreter charges its
step budget per AST node, and no per-iteration approximation reproduces that
near the budget boundary -- a loop-bearing candidate could then be valid
under one backend and timed-out under the other, changing fixed-seed search
results.  Loops are rare (the grammar never generates them; only the
synthetic LLM's hallucination modes inject them), so ``compile_program``
raises :class:`DslCompileError` for loops and callers fall back to the
interpreter, which stays the oracle for exactly those programs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.dsl.ast import (
    Assign,
    Attribute,
    AugAssign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Expr,
    ForRange,
    If,
    Name,
    Number,
    Program,
    Return,
    Stmt,
    Ternary,
    UnaryOp,
    While,
)
from repro.dsl.codegen import _format_number
from repro.dsl.errors import DslError, DslRuntimeError
from repro.dsl.interpreter import _clamp

#: Builtins visible to compiled programs; mirrors ``EvalContext`` defaults.
DEFAULT_BUILTINS: Dict[str, Callable[..., Any]] = {
    "min": min,
    "max": max,
    "abs": abs,
    "clamp": _clamp,
}


class DslCompileError(DslError):
    """The program uses a construct the compiler cannot render."""


# -- runtime helpers injected into the compiled namespace ---------------------------


def _truthy(value: Any) -> bool:
    if isinstance(value, (int, float, bool)):
        return bool(value)
    if value is None:
        return False
    return True


def _call_unknown(name: str, _args: tuple) -> Any:
    # Arguments are evaluated by the caller (as the interpreter does) before
    # this helper rejects the call.
    raise DslRuntimeError(f"unknown function {name!r}")


def _reject_unsafe_identifiers(program: Program) -> None:
    """Refuse to compile programs that could collide with injected helpers.

    A candidate that names a variable ``__dsl_steps`` would overwrite the
    loop budget counter; anything in the ``__dsl_`` namespace falls back to
    the interpreter, which has no such collision surface.
    """
    names = set(program.params)
    for node in program.walk():
        if isinstance(node, Name):
            names.add(node.id)
    for name in names:
        if name.startswith("__dsl_"):
            raise DslCompileError(
                f"identifier {name!r} collides with the compiler's runtime helpers"
            )


# -- source rendering ---------------------------------------------------------------


def _args_tuple(parts: List[str]) -> str:
    """Render ``parts`` as Python tuple-display source."""
    if not parts:
        return "()"
    return "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"


def _cexpr(expr: Expr, builtins: Dict[str, Callable[..., Any]]) -> str:
    if isinstance(expr, Number):
        return _format_number(expr.value)
    if isinstance(expr, Name):
        return expr.id
    if isinstance(expr, Attribute):
        return f'{_cexpr(expr.value, builtins)}.dsl_getattr("{expr.attr}")'
    if isinstance(expr, Call):
        args = [_cexpr(arg, builtins) for arg in expr.args]
        func = expr.func
        if isinstance(func, Attribute):
            target = _cexpr(func.value, builtins)
            return f'{target}.dsl_call("{func.attr}", {_args_tuple(args)})'
        if isinstance(func, Name):
            if func.id in builtins:
                return f'__dsl_b_{func.id}({", ".join(args)})'
            return f'__dsl_call_unknown("{func.id}", {_args_tuple(args)})'
        raise DslCompileError("unsupported call target")
    if isinstance(expr, UnaryOp):
        operand = _cexpr(expr.operand, builtins)
        if expr.op == "not":
            return f"(not {operand})"
        return f"(-{operand})"
    if isinstance(expr, BinOp):
        return f"({_cexpr(expr.left, builtins)} {expr.op} {_cexpr(expr.right, builtins)})"
    if isinstance(expr, Compare):
        return f"({_cexpr(expr.left, builtins)} {expr.op} {_cexpr(expr.right, builtins)})"
    if isinstance(expr, BoolOp):
        joined = f" {expr.op} ".join(
            f"__dsl_truthy({_cexpr(v, builtins)})" for v in expr.values
        )
        return f"({joined})"
    if isinstance(expr, Ternary):
        return (
            f"({_cexpr(expr.if_true, builtins)} "
            f"if __dsl_truthy({_cexpr(expr.condition, builtins)}) "
            f"else {_cexpr(expr.if_false, builtins)})"
        )
    raise DslCompileError(f"cannot compile expression of type {type(expr).__name__}")


def _cblock(
    stmts: List[Stmt],
    indent: int,
    builtins: Dict[str, Callable[..., Any]],
) -> List[str]:
    pad = "    " * indent
    lines: List[str] = []
    for stmt in stmts:
        if isinstance(stmt, Assign):
            lines.append(f"{pad}{stmt.target.id} = {_cexpr(stmt.value, builtins)}")
        elif isinstance(stmt, AugAssign):
            lines.append(
                f"{pad}{stmt.target.id} {stmt.op}= {_cexpr(stmt.value, builtins)}"
            )
        elif isinstance(stmt, Return):
            lines.append(f"{pad}return {_cexpr(stmt.value, builtins)}")
        elif isinstance(stmt, If):
            lines.append(f"{pad}if __dsl_truthy({_cexpr(stmt.condition, builtins)}):")
            lines.extend(
                _cblock(stmt.body, indent + 1, builtins) or [f"{pad}    pass"]
            )
            if stmt.orelse:
                lines.append(f"{pad}else:")
                lines.extend(
                    _cblock(stmt.orelse, indent + 1, builtins) or [f"{pad}    pass"]
                )
        elif isinstance(stmt, (ForRange, While)):
            # Loops take the interpreter path: its per-node step budget has
            # no faithful compiled equivalent (see module docstring).
            raise DslCompileError(
                f"{type(stmt).__name__} is not compiled; use the interpreter"
            )
        else:
            raise DslCompileError(
                f"cannot compile statement of type {type(stmt).__name__}"
            )
    return lines


def to_callable_source(
    program: Program, builtins: Optional[Dict[str, Callable[..., Any]]] = None
) -> str:
    """Render ``program`` as the Python source the compiler will ``exec``."""
    table = builtins if builtins is not None else DEFAULT_BUILTINS
    header = f"def {program.name}({', '.join(program.params)}):"
    lines = [header]
    lines.extend(_cblock(program.body, 1, table))
    # The interpreter returns 0 when execution falls off the end.
    lines.append("    return 0")
    return "\n".join(lines) + "\n"


# -- the compiled program object ----------------------------------------------------


class CompiledProgram:
    """A DSL program compiled to a Python callable.

    ``run(env)`` mirrors :meth:`~repro.dsl.interpreter.Interpreter.run`:
    the environment maps parameter names to values, missing bindings raise
    :class:`DslRuntimeError`, and all runtime failures are normalised to
    :class:`DslRuntimeError`, matching the interpreter's error surface.
    """

    def __init__(
        self,
        program: Program,
        max_steps: int = 20_000,  # interface symmetry with EvalContext;
        # compiled programs are loop-free, so the budget cannot be exceeded
        builtins: Optional[Dict[str, Callable[..., Any]]] = None,
    ):
        self.program = program
        self.max_steps = max_steps
        table = dict(builtins) if builtins is not None else dict(DEFAULT_BUILTINS)
        _reject_unsafe_identifiers(program)
        self.python_source = to_callable_source(program, table)
        namespace: Dict[str, Any] = {
            "__builtins__": {},
            "__dsl_truthy": _truthy,
            "__dsl_call_unknown": _call_unknown,
        }
        for name, fn in table.items():
            if not name.isidentifier():
                raise DslCompileError(f"builtin name {name!r} is not an identifier")
            namespace[f"__dsl_b_{name}"] = fn
        try:
            code = compile(self.python_source, f"<dsl:{program.name}>", "exec")
            exec(code, namespace)  # noqa: S102 - sandboxed: empty __builtins__
        except (SyntaxError, ValueError) as exc:
            # e.g. a DSL identifier that happens to be a Python keyword;
            # callers fall back to the interpreter on DslCompileError.
            raise DslCompileError(f"cannot compile to Python: {exc}") from exc
        self._fn: Callable[..., Any] = namespace[program.name]
        self._params = tuple(program.params)

    def run(self, env: Mapping[str, Any]) -> Any:
        """Evaluate the compiled program with parameter bindings ``env``."""
        missing = [p for p in self._params if p not in env]
        if missing:
            raise DslRuntimeError(f"missing parameter bindings: {missing}")
        try:
            return self._fn(*[env[p] for p in self._params])
        except DslError:
            raise
        except ZeroDivisionError as exc:
            raise DslRuntimeError("division by zero") from exc
        except (TypeError, AttributeError, NameError, ValueError, OverflowError) as exc:
            raise DslRuntimeError(f"{type(exc).__name__}: {exc}") from exc

    def __call__(self, *args: Any) -> Any:
        """Positional fast path (arguments in ``program.params`` order)."""
        try:
            return self._fn(*args)
        except DslError:
            raise
        except ZeroDivisionError as exc:
            raise DslRuntimeError("division by zero") from exc
        except (TypeError, AttributeError, NameError, ValueError, OverflowError) as exc:
            raise DslRuntimeError(f"{type(exc).__name__}: {exc}") from exc


def compile_program(
    program: Program,
    max_steps: int = 20_000,
    builtins: Optional[Dict[str, Callable[..., Any]]] = None,
) -> CompiledProgram:
    """Compile ``program``; raises :class:`DslCompileError` on unsupported nodes."""
    return CompiledProgram(program, max_steps=max_steps, builtins=builtins)


class _InterpreterRunner:
    """Interpreter behind the ``run(env)`` interface of :class:`CompiledProgram`."""

    def __init__(self, program: Program, max_steps: int):
        from repro.dsl.interpreter import EvalContext, Interpreter

        self.program = program
        self._interpreter = Interpreter(EvalContext(max_steps=max_steps))

    def run(self, env: Mapping[str, Any]) -> Any:
        return self._interpreter.run(self.program, env)


#: Backends accepted by :func:`make_runner`, in fallback order.
BACKENDS = ("vectorized", "compiled", "interpreter")


def make_runner(program: Program, backend: str = "compiled", max_steps: int = 20_000):
    """Build a ``run(env)`` executor for ``program``.

    Returns ``(runner, effective_backend)``.  ``backend="compiled"`` tries
    the fast path and silently falls back to the interpreter for programs
    the compiler rejects (loops, Python-keyword identifiers, ...);
    ``backend="vectorized"`` additionally tries the numpy batch lowering
    (:mod:`repro.dsl.vectorize`) first -- its ``run(env)`` delegates to the
    compiled scalar program, and hot loops that recognise the runner can
    call its ``run_batch``/``run_row`` fast paths; programs the lowering
    rejects degrade to compiled, then interpreter.
    ``backend="interpreter"`` forces the oracle.  This is the single place
    hot-loop adapters get their execution strategy from.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}")
    if backend == "vectorized":
        from repro.dsl.vectorize import VectorizedProgram

        try:
            return VectorizedProgram(program, max_steps=max_steps), "vectorized"
        except DslError:
            pass
        backend = "compiled"
    if backend == "compiled":
        try:
            return compile_program(program, max_steps=max_steps), "compiled"
        except DslError:
            pass
    return _InterpreterRunner(program, max_steps), "interpreter"
