"""Grammar-based random program generation.

The synthetic LLM (``repro.llm.mock``) needs a way to produce *fresh*
candidate heuristics that look like plausible expert code: score
accumulation, feature comparisons against aggregate percentiles, history
bonuses, and so on.  This module samples such programs from a weighted
grammar parameterised by a :class:`FeatureSpec` -- the same information the
Template exposes in its prompt (Table 1 for caching, the cong_control signal
list for congestion control).

All sampling takes an explicit ``random.Random`` instance so searches are
reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dsl.ast import (
    Assign,
    Attribute,
    AugAssign,
    BinOp,
    Call,
    Compare,
    Expr,
    If,
    Name,
    Number,
    Program,
    Return,
    Stmt,
    Ternary,
    UnaryOp,
)


@dataclass
class FeatureSpec:
    """Describes the environment available to generated code.

    Attributes
    ----------
    function_name:
        Name of the synthesized function (``priority``, ``cong_control``).
    params:
        Formal parameter names, in signature order.
    scalar_params:
        Parameters that are plain numbers (e.g. ``now``, ``cwnd``) and can be
        used directly in arithmetic.
    object_attrs:
        ``{param_name: [attr, ...]}`` numeric attributes readable on feature
        objects (e.g. ``obj_info`` -> ``count``, ``size``).
    object_methods:
        ``{param_name: [(method, arg_kind), ...]}`` callable methods.
        ``arg_kind`` is one of ``"none"``, ``"fraction"`` (a percentile in
        [0, 1]), or ``"key"`` (an opaque id parameter, e.g. ``obj_id``).
    key_params:
        Parameters usable as ``"key"`` arguments.
    integer_only:
        When True the grammar avoids float literals and true division so the
        output has a chance of passing the kernel-constraint checker.  (The
        synthetic LLM deliberately does *not* always set this, mirroring how
        real LLMs emit floating point in kernel code.)
    """

    function_name: str
    params: List[str]
    scalar_params: List[str] = field(default_factory=list)
    object_attrs: Dict[str, List[str]] = field(default_factory=dict)
    object_methods: Dict[str, List[Tuple[str, str]]] = field(default_factory=dict)
    key_params: List[str] = field(default_factory=list)
    integer_only: bool = False
    result_var: str = "score"

    def numeric_sources(self) -> List[Tuple[str, Optional[str]]]:
        """All (param, attr) pairs that evaluate to a number.

        ``attr`` is ``None`` for scalar parameters.
        """
        sources: List[Tuple[str, Optional[str]]] = [(p, None) for p in self.scalar_params]
        for param, attrs in self.object_attrs.items():
            sources.extend((param, attr) for attr in attrs)
        return sources


@dataclass
class GrammarConfig:
    """Tunables for random program sampling."""

    min_statements: int = 3
    max_statements: int = 10
    max_depth: int = 3
    if_probability: float = 0.35
    ternary_probability: float = 0.2
    history_probability: float = 0.3
    constant_range: Tuple[int, int] = (1, 500)
    fraction_choices: Sequence[float] = (0.1, 0.25, 0.5, 0.7, 0.75, 0.9, 0.95)


def _constant(rng: random.Random, spec: FeatureSpec, config: GrammarConfig) -> Number:
    lo, hi = config.constant_range
    value = rng.randint(lo, hi)
    if not spec.integer_only and rng.random() < 0.15:
        return Number(value=float(value))
    return Number(value=value)


def _numeric_atom(rng: random.Random, spec: FeatureSpec, config: GrammarConfig) -> Expr:
    """A leaf numeric expression: a feature read, aggregate call, or constant."""
    roll = rng.random()
    sources = spec.numeric_sources()
    if roll < 0.55 and sources:
        param, attr = rng.choice(sources)
        if attr is None:
            return Name(id=param)
        return Attribute(value=Name(id=param), attr=attr)
    if roll < 0.75:
        call = _aggregate_call(rng, spec, config)
        if call is not None:
            return call
    return _constant(rng, spec, config)


def _aggregate_call(
    rng: random.Random, spec: FeatureSpec, config: GrammarConfig
) -> Optional[Expr]:
    """A call like ``sizes.percentile(0.75)`` or ``history.count_of(obj_id)``."""
    candidates: List[Tuple[str, str, str]] = []
    for param, methods in spec.object_methods.items():
        for method, arg_kind in methods:
            candidates.append((param, method, arg_kind))
    if not candidates:
        return None
    param, method, arg_kind = rng.choice(candidates)
    args: List[Expr] = []
    if arg_kind == "fraction":
        fraction = rng.choice(list(config.fraction_choices))
        if isinstance(fraction, int) or float(fraction).is_integer():
            # Integer choices (e.g. history indices) are used verbatim.
            args = [Number(value=int(fraction))]
        elif spec.integer_only:
            # Express the percentile as an integer percentage to stay float-free.
            args = [Number(value=int(round(fraction * 100)))]
        else:
            args = [Number(value=fraction)]
    elif arg_kind == "key":
        if not spec.key_params:
            return None
        args = [Name(id=rng.choice(spec.key_params))]
    return Call(func=Attribute(value=Name(id=param), attr=method), args=args)


def _numeric_expr(
    rng: random.Random, spec: FeatureSpec, config: GrammarConfig, depth: int = 0
) -> Expr:
    """A numeric expression of bounded depth."""
    if depth >= config.max_depth or rng.random() < 0.4:
        return _numeric_atom(rng, spec, config)
    op = rng.choice(["+", "-", "*", "/", "//"])
    if spec.integer_only and op == "/":
        op = "//"
    left = _numeric_expr(rng, spec, config, depth + 1)
    right: Expr
    if op in ("/", "//"):
        # Divide by constants so candidates are usually well-formed; the
        # synthetic LLM injects unguarded divisions separately when it wants
        # to model hallucination.
        right = Number(value=rng.choice([2, 4, 8, 10, 50, 100, 150, 300, 500]))
    else:
        right = _numeric_expr(rng, spec, config, depth + 1)
    expr: Expr = BinOp(op=op, left=left, right=right)
    if rng.random() < 0.1:
        expr = UnaryOp(op="-", operand=expr)
    return expr


def _condition(rng: random.Random, spec: FeatureSpec, config: GrammarConfig) -> Expr:
    """A boolean condition comparing a feature to a threshold or aggregate."""
    left = _numeric_atom(rng, spec, config)
    roll = rng.random()
    if roll < 0.45:
        right: Expr = _constant(rng, spec, config)
    elif roll < 0.8:
        right = _aggregate_call(rng, spec, config) or _constant(rng, spec, config)
    else:
        right = _numeric_atom(rng, spec, config)
    op = rng.choice(["<", "<=", ">", ">=", "==", "!="])
    return Compare(op=op, left=left, right=right)


def _score_update(rng: random.Random, spec: FeatureSpec, config: GrammarConfig) -> Stmt:
    """A statement that nudges the result variable."""
    result = Name(id=spec.result_var)
    roll = rng.random()
    if roll < config.if_probability:
        then_update = AugAssign(
            target=result,
            op=rng.choice(["+", "-"]),
            value=_constant(rng, spec, config),
        )
        else_update = AugAssign(
            target=result,
            op=rng.choice(["+", "-"]),
            value=_constant(rng, spec, config),
        )
        orelse: List[Stmt] = [else_update] if rng.random() < 0.5 else []
        return If(condition=_condition(rng, spec, config), body=[then_update], orelse=orelse)
    if roll < config.if_probability + config.ternary_probability:
        value = Ternary(
            condition=_condition(rng, spec, config),
            if_true=_constant(rng, spec, config),
            if_false=UnaryOp(op="-", operand=_constant(rng, spec, config)),
        )
        return AugAssign(target=result, op="+", value=value)
    op = rng.choice(["+", "-", "+", "-", "*"])
    return AugAssign(target=result, op=op, value=_numeric_expr(rng, spec, config))


def random_program(
    spec: FeatureSpec,
    rng: random.Random,
    config: Optional[GrammarConfig] = None,
) -> Program:
    """Sample a plausible candidate heuristic for ``spec``.

    The shape mirrors discovered heuristics in the paper: initialise a score
    from a weighted feature, apply a handful of conditional adjustments, and
    return the score.
    """
    config = config or GrammarConfig()
    statements: List[Stmt] = []

    seed_expr = _numeric_expr(rng, spec, config)
    statements.append(Assign(target=Name(id=spec.result_var), value=seed_expr))

    count = rng.randint(config.min_statements, config.max_statements)
    for _ in range(count):
        statements.append(_score_update(rng, spec, config))

    statements.append(Return(value=Name(id=spec.result_var)))
    return Program(name=spec.function_name, params=list(spec.params), body=statements)
