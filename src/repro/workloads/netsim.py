"""Netsim workloads: declarative bottleneck-link scenarios for the cc domain.

The seed-era congestion-control evaluator hard-coded one topology (a single
bulk flow on a 12 Mbps / 20 ms drop-tail link).  A
:class:`NetSimScenario` makes the topology data: link rate / RTT / buffer,
random (non-congestive) loss, the number of candidate flows (with staggered
starts), bursty cross traffic, and the objective weights -- including the
fairness and p99-queueing-delay terms that only matter once more than one
flow or a deep queue is in play.

Scenarios are registered as named :class:`~repro.workloads.spec.WorkloadSpec`
entries (kind ``"netsim"``) so a :class:`~repro.core.spec.RunSpec` can
declare a matrix like ``["cc/single-flow", "cc/multi-flow",
"cc/lossy-link"]`` and the search scores every candidate controller across
all of them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Tuple

from repro.netsim.flow import CCSignals
from repro.netsim.link import LinkConfig
from repro.netsim.packet import DEFAULT_MSS
from repro.netsim.simulator import NetworkSimulator, SimulationConfig
from repro.workloads.spec import WorkloadSpec, register_builder, register_workload


class BurstWindowController:
    """Unresponsive on/off cross traffic: window alternates high/low.

    The window is a pure function of simulation time (``high`` for the first
    ``duty`` fraction of every ``period_us``, ``low`` for the rest), so the
    burst pattern is deterministic and ignores congestion signals entirely --
    exactly the background traffic a robust controller must coexist with.
    ``duty=1.0`` degenerates to steady fixed-window cross traffic.
    """

    def __init__(self, high: int = 40, low: int = 2, period_us: int = 1_000_000, duty: float = 0.5):
        if high < 1 or low < 1:
            raise ValueError("window sizes must be at least 1 packet")
        if period_us <= 0:
            raise ValueError("period_us must be positive")
        if not 0 < duty <= 1:
            raise ValueError("duty must be in (0, 1]")
        self.high = high
        self.low = low
        self.period_us = period_us
        self.duty = duty

    def _window(self, now_us: int) -> int:
        phase = now_us % self.period_us
        return self.high if phase < self.duty * self.period_us else self.low

    def initial_cwnd(self) -> int:
        return self._window(0)

    def on_ack(self, signals: CCSignals) -> int:
        return self._window(signals.now_us)

    def on_loss(self, signals: CCSignals) -> int:
        return self._window(signals.now_us)


@dataclass(frozen=True)
class CrossTrafficSpec:
    """One cross-traffic flow (see :class:`BurstWindowController`)."""

    window_high: int = 40
    window_low: int = 2
    period_s: float = 1.0
    duty: float = 0.5
    start_s: float = 0.0

    def controller(self) -> BurstWindowController:
        return BurstWindowController(
            high=self.window_high,
            low=self.window_low,
            period_us=int(self.period_s * 1_000_000),
            duty=self.duty,
        )


@dataclass(frozen=True)
class NetSimScenario:
    """One declarative evaluation topology for the cc domain."""

    name: str = "cc/single-flow"
    rate_bps: int = 12_000_000
    one_way_delay_us: int = 10_000
    queue_bytes: int = 60_000
    loss_rate: float = 0.0
    loss_seed: int = 0
    duration_s: float = 8.0
    mss: int = DEFAULT_MSS
    flow_count: int = 1
    flow_stagger_s: float = 0.0
    cross_traffic: Tuple[CrossTrafficSpec, ...] = ()
    # Objective weights (see repro.cc.evaluator.CCObjective).
    delay_penalty: float = 0.5
    loss_penalty: float = 0.5
    p99_penalty: float = 0.0
    fairness_weight: float = 0.0
    max_events: int = 2_000_000

    def __post_init__(self) -> None:
        if self.flow_count < 1:
            raise ValueError("a scenario needs at least one candidate flow")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")

    def link_config(self) -> LinkConfig:
        return LinkConfig(
            rate_bps=self.rate_bps,
            one_way_delay_us=self.one_way_delay_us,
            queue_bytes=self.queue_bytes,
            loss_rate=self.loss_rate,
            loss_seed=self.loss_seed,
        )

    def simulation_config(self) -> SimulationConfig:
        return SimulationConfig(
            link=self.link_config(),
            duration_s=self.duration_s,
            mss=self.mss,
            max_events=self.max_events,
        )

    @property
    def base_rtt_ms(self) -> float:
        return 2 * self.one_way_delay_us / 1000.0

    def scaled(self, fraction: float) -> "NetSimScenario":
        """A reduced-budget copy: the same topology, ``fraction`` of the run.

        Shortening ``duration_s`` (and the event budget with it) is how the
        fidelity ladder (:mod:`repro.core.fidelity`) screens controllers
        cheaply: a rung simulation is a time-prefix of the full one.
        Cross-traffic and flow staggering keep their absolute timings, so
        short rungs still see the same early dynamics the full run does.
        """
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction!r}")
        if fraction == 1.0:
            return self
        return replace(
            self,
            duration_s=self.duration_s * fraction,
            max_events=max(1, int(self.max_events * fraction)),
        )

    def build(
        self, controller_factory: Callable[[], object]
    ) -> Tuple[NetworkSimulator, List[int]]:
        """Wire the scenario; returns the simulator and the candidate flow ids.

        ``controller_factory`` is invoked once per candidate flow (each flow
        needs its own controller state); cross-traffic flows get their own
        burst controllers and are excluded from the returned id list.
        """
        simulator = NetworkSimulator(self.simulation_config())
        candidate_ids: List[int] = []
        for index in range(self.flow_count):
            flow = simulator.add_flow(
                controller_factory(), start_at_s=index * self.flow_stagger_s
            )
            candidate_ids.append(flow.flow_id)
        for cross in self.cross_traffic:
            simulator.add_flow(cross.controller(), start_at_s=cross.start_s)
        return simulator, candidate_ids


# -- builders -----------------------------------------------------------------------

_SCENARIO_FIELDS = {f.name for f in NetSimScenario.__dataclass_fields__.values()}


def _build_netsim(spec: WorkloadSpec) -> NetSimScenario:
    params = spec.param_dict
    cross = tuple(
        CrossTrafficSpec(**item) if not isinstance(item, CrossTrafficSpec) else item
        for item in params.pop("cross_traffic", ())
    )
    unknown = set(params) - _SCENARIO_FIELDS
    if unknown:
        raise ValueError(
            f"unknown netsim scenario parameter(s) {sorted(unknown)} "
            f"in workload {spec.name!r}"
        )
    return NetSimScenario(name=spec.display_name, cross_traffic=cross, **params)


def build_scenario(ref, **overrides) -> NetSimScenario:
    """Build a cc workload's scenario (type-checked convenience wrapper)."""
    from repro.workloads.spec import build_workload, resolve_workload_ref

    spec = resolve_workload_ref(ref)
    if overrides:
        spec = spec.with_overrides(**overrides)
    if spec.domain != "cc":
        raise ValueError(
            f"workload {spec.name!r} belongs to domain {spec.domain!r}, not 'cc'"
        )
    return build_workload(spec)


register_builder("cc", "netsim", _build_netsim)


# -- built-in registrations ---------------------------------------------------------

register_workload(
    WorkloadSpec.create(
        name="cc/single-flow",
        domain="cc",
        kind="netsim",
        params={
            "rate_bps": 12_000_000,
            "one_way_delay_us": 10_000,
            "queue_bytes": 60_000,
            "duration_s": 8.0,
        },
        description="The paper's §5 link: one bulk flow, 12 Mbps, 20 ms RTT, drop-tail.",
    )
)

register_workload(
    WorkloadSpec.create(
        name="cc/multi-flow",
        domain="cc",
        kind="netsim",
        params={
            "rate_bps": 12_000_000,
            "one_way_delay_us": 10_000,
            "queue_bytes": 60_000,
            "duration_s": 8.0,
            "flow_count": 3,
            "flow_stagger_s": 0.5,
            "fairness_weight": 0.5,
            "p99_penalty": 0.1,
        },
        description="Three staggered candidate flows sharing the link; Jain fairness scored.",
    )
)

register_workload(
    WorkloadSpec.create(
        name="cc/bursty-cross",
        domain="cc",
        kind="netsim",
        params={
            "rate_bps": 12_000_000,
            "one_way_delay_us": 10_000,
            "queue_bytes": 60_000,
            "duration_s": 8.0,
            "cross_traffic": [
                {"window_high": 40, "window_low": 2, "period_s": 1.0, "duty": 0.4}
            ],
            "p99_penalty": 0.2,
        },
        description="One candidate flow against on/off burst cross traffic; p99 delay scored.",
    )
)

register_workload(
    WorkloadSpec.create(
        name="cc/lossy-link",
        domain="cc",
        kind="netsim",
        params={
            "rate_bps": 12_000_000,
            "one_way_delay_us": 10_000,
            "queue_bytes": 60_000,
            "duration_s": 8.0,
            "loss_rate": 0.01,
            "loss_seed": 7,
            "loss_penalty": 0.25,
        },
        description="1% random non-congestive loss: loss-backoff-only controllers starve.",
    )
)

register_workload(
    WorkloadSpec.create(
        name="cc/satellite",
        domain="cc",
        kind="netsim",
        params={
            "rate_bps": 8_000_000,
            "one_way_delay_us": 150_000,
            "queue_bytes": 500_000,
            "duration_s": 12.0,
            "p99_penalty": 0.1,
        },
        description="Long-RTT (300 ms) deep-buffer path: bufferbloat-prone.",
    )
)
