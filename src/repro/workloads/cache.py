"""Caching workloads: registry builders + adversarial/shifting generators.

Every builder here turns a :class:`~repro.workloads.spec.WorkloadSpec` into a
:class:`~repro.cache.request.Trace` (or a constant-memory
:class:`~repro.traces.streaming.StreamingTrace` for file-backed workloads).
All generators take an explicit ``seed`` and build their *own* RNG
(``random.Random`` for the pure-Python generators, ``numpy`` Generators for
the vectorised ones), so sweep and pool workers never share module-global
random state.

Two generator families are new relative to the corpus stand-ins in
:mod:`repro.traces`:

* **shifting** -- the working set jumps between disjoint hot sets every
  ``phase_length`` requests (a regime-change workload; policies that latch
  onto frequency counts adapt slowly);
* **adversarial** -- a cyclic loop over slightly more objects than the cache
  holds (the classic LRU-killer), interleaved with one-touch scans and a
  small reusable hot set so that smarter policies can still win.

``cache_fraction`` appears in every caching workload's parameters but is not
a generator knob: the caching domain's scenario-evaluator factory reads it,
which is what makes a *cache-size grid* (same trace, several fractions,
distinct labels) expressible as plain registry references.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional

from repro.cache.request import Request, Trace
from repro.cache.simulator import DEFAULT_CACHE_FRACTION
from repro.traces.cloudphysics import cloudphysics_config
from repro.traces.msr import msr_config
from repro.traces.synthetic import SyntheticWorkloadConfig, generate_trace
from repro.workloads.spec import (
    WorkloadSpec,
    register_builder,
    register_workload,
)

#: Parameters read by the caching domain's evaluator factory, not by trace
#: builders.
EVAL_PARAMS = frozenset({"cache_fraction"})


def _builder_params(spec: WorkloadSpec) -> dict:
    return {k: v for k, v in spec.param_dict.items() if k not in EVAL_PARAMS}


# -- generators ---------------------------------------------------------------------


def _object_sizes(rng: random.Random, num_objects: int) -> list:
    """Per-object quantised log-normal sizes (block-I/O-like), seeded locally."""
    sizes = []
    for _ in range(num_objects):
        raw = rng.lognormvariate(9.2, 1.1)
        size = max(512, min(1 << 22, int(-(-raw // 512)) * 512))
        sizes.append(size)
    return sizes


def generate_shifting_trace(
    name: str = "shifting",
    num_requests: int = 6000,
    num_objects: int = 1500,
    seed: int = 0,
    phase_length: int = 1200,
    hot_fraction: float = 0.08,
    hot_weight: float = 0.75,
    zipf_alpha: float = 0.9,
    mean_interarrival: float = 10.0,
) -> Trace:
    """Working set jumps to a disjoint hot set every ``phase_length`` requests."""
    if num_requests <= 0 or num_objects <= 0:
        raise ValueError("num_requests and num_objects must be positive")
    if not 0 < hot_fraction <= 1:
        raise ValueError("hot_fraction must be in (0, 1]")
    rng = random.Random(seed)
    sizes = _object_sizes(rng, num_objects)
    hot_size = max(8, int(num_objects * hot_fraction))
    # Zipf-like weights inside the hot set (rank^-alpha, drawn by inversion).
    weights = [(rank + 1) ** (-zipf_alpha) for rank in range(hot_size)]
    total_weight = sum(weights)

    requests = []
    timestamp = 0.0
    hot_start = 0
    for index in range(num_requests):
        timestamp += rng.expovariate(1.0 / mean_interarrival)
        if index % phase_length == 0:
            # Jump to a hot set disjoint from the previous one.
            hot_start = (hot_start + hot_size + rng.randrange(hot_size)) % num_objects
        if rng.random() < hot_weight:
            point = rng.random() * total_weight
            rank = 0
            while rank < hot_size - 1 and point > weights[rank]:
                point -= weights[rank]
                rank += 1
            obj = (hot_start + rank) % num_objects
        else:
            obj = rng.randrange(num_objects)
        requests.append(Request(timestamp=int(timestamp), key=obj, size=sizes[obj]))
    return Trace(requests, name=name)


def generate_adversarial_trace(
    name: str = "adversarial",
    num_requests: int = 6000,
    num_objects: int = 1500,
    seed: int = 0,
    loop_fraction: float = 0.13,
    loop_weight: float = 0.55,
    scan_weight: float = 0.15,
    scan_length: int = 150,
    hot_objects: int = 32,
    mean_interarrival: float = 10.0,
) -> Trace:
    """Cyclic loop slightly larger than a 10 %-of-footprint cache.

    With the paper's cache sizing (10 % of the trace footprint), a loop over
    ``loop_fraction`` > 0.10 of the object universe re-touches every loop
    object just after LRU evicted it -- recency is actively misleading, scans
    pollute the cache, and only the small hot set rewards retention.
    """
    if not 0 < loop_fraction <= 1:
        raise ValueError("loop_fraction must be in (0, 1]")
    if loop_weight + scan_weight >= 1:
        raise ValueError("loop_weight + scan_weight must leave room for hot reuse")
    rng = random.Random(seed)
    sizes = _object_sizes(rng, num_objects)
    loop_size = max(8, int(num_objects * loop_fraction))
    loop_cursor = 0
    scan_cursor = 0
    scan_remaining = 0

    requests = []
    timestamp = 0.0
    for _ in range(num_requests):
        timestamp += rng.expovariate(1.0 / mean_interarrival)
        draw = rng.random()
        if draw < loop_weight:
            obj = loop_cursor % loop_size
            loop_cursor += 1
        elif draw < loop_weight + scan_weight:
            if scan_remaining <= 0:
                scan_remaining = scan_length
                scan_cursor = loop_size + rng.randrange(max(1, num_objects - loop_size))
            obj = scan_cursor % num_objects
            scan_cursor += 1
            scan_remaining -= 1
        else:
            obj = loop_size + (rng.randrange(hot_objects) % max(1, num_objects - loop_size))
        requests.append(Request(timestamp=int(timestamp), key=obj, size=sizes[obj]))
    return Trace(requests, name=name)


def corpus_traces(
    dataset: str,
    count: Optional[int] = None,
    num_requests: Optional[int] = None,
    num_objects: Optional[int] = None,
) -> Iterator[Trace]:
    """Yield a corpus's traces through the workload machinery.

    The canonical loader (the old ``repro.traces.cloudphysics_corpus`` /
    ``msr_corpus`` entry points were removed after their deprecation
    window).
    """
    if dataset == "cloudphysics":
        from repro.traces.cloudphysics import NUM_TRACES as total

        config_for = cloudphysics_config
        defaults = (6000, 1500)
    elif dataset == "msr":
        from repro.traces.msr import NUM_TRACES as total

        config_for = msr_config
        defaults = (8000, 2000)
    else:
        raise ValueError(
            f"unknown dataset {dataset!r} (use 'cloudphysics' or 'msr')"
        )
    limit = total if count is None else min(count, total)
    for index in range(1, limit + 1):
        yield generate_trace(
            config_for(
                index,
                num_requests=num_requests or defaults[0],
                num_objects=num_objects or defaults[1],
            )
        )


# -- builders -----------------------------------------------------------------------


def _build_synthetic(spec: WorkloadSpec) -> Trace:
    params = _builder_params(spec)
    params.setdefault("name", spec.display_name)
    return generate_trace(SyntheticWorkloadConfig(**params))


def _build_cloudphysics(spec: WorkloadSpec) -> Trace:
    params = _builder_params(spec)
    return generate_trace(cloudphysics_config(**params))


def _build_msr(spec: WorkloadSpec) -> Trace:
    params = _builder_params(spec)
    return generate_trace(msr_config(**params))


def _build_shifting(spec: WorkloadSpec) -> Trace:
    params = _builder_params(spec)
    params.setdefault("name", spec.display_name)
    return generate_shifting_trace(**params)


def _build_adversarial(spec: WorkloadSpec) -> Trace:
    params = _builder_params(spec)
    params.setdefault("name", spec.display_name)
    return generate_adversarial_trace(**params)


def _build_csv(spec: WorkloadSpec):
    from repro.traces.streaming import open_csv_trace

    params = _builder_params(spec)
    params.setdefault("name", spec.display_name)
    return open_csv_trace(**params)


def build_trace(ref, **overrides) -> Trace:
    """Build a caching workload's trace (type-checked convenience wrapper)."""
    from repro.workloads.spec import build_workload, resolve_workload_ref

    spec = resolve_workload_ref(ref)
    if overrides:
        spec = spec.with_overrides(**overrides)
    if spec.domain != "caching":
        raise ValueError(
            f"workload {spec.name!r} belongs to domain {spec.domain!r}, not 'caching'"
        )
    return build_workload(spec)


register_builder("caching", "synthetic", _build_synthetic)
register_builder("caching", "cloudphysics", _build_cloudphysics)
register_builder("caching", "msr", _build_msr)
register_builder("caching", "shifting", _build_shifting)
register_builder("caching", "adversarial", _build_adversarial)
register_builder("caching", "csv", _build_csv)


# -- built-in registrations ---------------------------------------------------------

register_workload(
    WorkloadSpec.create(
        name="caching/synthetic",
        domain="caching",
        kind="synthetic",
        params={
            "num_requests": 6000,
            "num_objects": 1500,
            "seed": 0,
            "zipf_weight": 0.45,
            "churn_weight": 0.30,
            "scan_weight": 0.15,
            "recent_weight": 0.10,
            "zipf_alpha": 0.9,
            "cache_fraction": DEFAULT_CACHE_FRACTION,
        },
        description="Generic four-source synthetic mixture (zipf/churn/scan/recent).",
    )
)

register_workload(
    WorkloadSpec.create(
        name="caching/cloudphysics",
        domain="caching",
        kind="cloudphysics",
        params={
            "index": 89,
            "num_requests": 6000,
            "num_objects": 1500,
            "cache_fraction": DEFAULT_CACHE_FRACTION,
        },
        description="CloudPhysics-like corpus trace w<index> (105 diverse VM traces).",
    )
)

register_workload(
    WorkloadSpec.create(
        name="caching/msr",
        domain="caching",
        kind="msr",
        params={
            "index": 1,
            "num_requests": 8000,
            "num_objects": 2000,
            "cache_fraction": DEFAULT_CACHE_FRACTION,
        },
        description="MSR-Cambridge-like corpus trace <index> (14 server roles).",
    )
)

register_workload(
    WorkloadSpec.create(
        name="caching/zipf-hot",
        domain="caching",
        kind="synthetic",
        params={
            "num_requests": 6000,
            "num_objects": 1500,
            "seed": 11,
            "zipf_weight": 0.85,
            "churn_weight": 0.05,
            "scan_weight": 0.02,
            "recent_weight": 0.08,
            "zipf_alpha": 1.2,
            "cache_fraction": DEFAULT_CACHE_FRACTION,
        },
        description="Heavily skewed Zipf reuse: frequency-aware policies shine.",
    )
)

register_workload(
    WorkloadSpec.create(
        name="caching/scan-storm",
        domain="caching",
        kind="synthetic",
        params={
            "num_requests": 6000,
            "num_objects": 1500,
            "seed": 12,
            "zipf_weight": 0.25,
            "churn_weight": 0.10,
            "scan_weight": 0.55,
            "recent_weight": 0.10,
            "zipf_alpha": 0.8,
            "scan_length": 200,
            "cache_fraction": DEFAULT_CACHE_FRACTION,
        },
        description="One-touch scan storms: scan-resistant policies shine.",
    )
)

register_workload(
    WorkloadSpec.create(
        name="caching/shifting",
        domain="caching",
        kind="shifting",
        params={
            "num_requests": 6000,
            "num_objects": 1500,
            "seed": 13,
            "phase_length": 1200,
            "hot_fraction": 0.08,
            "hot_weight": 0.75,
            "zipf_alpha": 0.9,
            "cache_fraction": DEFAULT_CACHE_FRACTION,
        },
        description="Hot set jumps to a disjoint region every phase_length requests.",
    )
)

register_workload(
    WorkloadSpec.create(
        name="caching/adversarial-loop",
        domain="caching",
        kind="adversarial",
        params={
            "num_requests": 6000,
            "num_objects": 1500,
            "seed": 14,
            "loop_fraction": 0.13,
            "loop_weight": 0.55,
            "scan_weight": 0.15,
            "scan_length": 150,
            "cache_fraction": DEFAULT_CACHE_FRACTION,
        },
        description="Cyclic loop just over the cache size (LRU-adversarial) + scans.",
    )
)

register_workload(
    WorkloadSpec.create(
        name="caching/csv",
        domain="caching",
        kind="csv",
        params={
            "path": "trace.csv",
            "chunk_size": 65536,
            "cache_decoded": True,
            "cache_fraction": DEFAULT_CACHE_FRACTION,
        },
        description="File-backed trace, streamed in constant memory (see traces/streaming).",
    )
)
