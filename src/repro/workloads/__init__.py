"""Unified workload subsystem: every evaluation scenario as registry data.

A *workload* is one concrete thing a candidate policy can be scored against
-- a cache trace at a cache-size point, or a netsim topology with its link,
loss, RTT and flow-count configuration.  This package makes workloads
first-class: each is a named, JSON-serializable
:class:`~repro.workloads.spec.WorkloadSpec` in a global registry,
discoverable via ``python -m repro workloads list``, referenced
declaratively from a :class:`~repro.core.spec.RunSpec` (the
``domain_kwargs["workloads"]`` matrix), and buildable into the domain object
(a :class:`~repro.cache.request.Trace` or a
:class:`~repro.workloads.netsim.NetSimScenario`) with one call.

Registering a new workload is a one-file affair: define a builder (or reuse
an existing kind), call :func:`register_workload`, and every frontend --
CLI, specs, multi-scenario search -- can use it.
"""

from repro.workloads.spec import (
    WorkloadSpec,
    available_workloads,
    build_workload,
    get_workload,
    register_builder,
    register_workload,
    resolve_workload_ref,
)
from repro.workloads.cache import build_trace, corpus_traces
from repro.workloads.netsim import NetSimScenario, build_scenario

__all__ = [
    "WorkloadSpec",
    "available_workloads",
    "build_workload",
    "get_workload",
    "register_builder",
    "register_workload",
    "resolve_workload_ref",
    "build_trace",
    "corpus_traces",
    "NetSimScenario",
    "build_scenario",
]
