"""WorkloadSpec and the workload registry.

A :class:`WorkloadSpec` is pure data -- name, owning domain, builder kind and
a parameter dictionary -- that round-trips through JSON, so a scenario matrix
can live inside a stored ``spec.json`` and rebuild the exact same workloads
on another machine.  Builders are registered per ``(domain, kind)`` and turn
a spec into the domain object (a trace for ``"caching"``, a
:class:`~repro.workloads.netsim.NetSimScenario` for ``"cc"``).

The registry mirrors the search-domain and experiment registries
(:mod:`repro.core.domain`, :mod:`repro.experiments.registry`): built-in
workloads are imported lazily on first lookup, and new workloads plug in
with :func:`register_workload` without touching the engine or the CLI.
"""

from __future__ import annotations

import importlib
import json
import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

#: A builder turns a (fully-parameterised) spec into the domain object.
WorkloadBuilder = Callable[["WorkloadSpec"], Any]

#: Parameters every workload accepts but no builder consumes: presentation
#: and evaluation knobs read by the domain's scenario-evaluator factory.
META_PARAMS = frozenset({"label"})


@dataclass(frozen=True)
class WorkloadSpec:
    """One named workload: domain + builder kind + parameters.

    ``params`` holds the builder's keyword arguments (every generator takes
    an explicit ``seed``); ``label`` is the display/scenario name, defaulting
    to ``name`` -- grid variants of the same workload (e.g. one trace at
    several cache sizes) must carry distinct labels.
    """

    name: str
    domain: str
    kind: str
    params: Tuple[Tuple[str, Any], ...] = ()
    description: str = ""
    label: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a WorkloadSpec needs a non-empty name")
        if not self.domain:
            raise ValueError(f"workload {self.name!r} needs a domain")
        if not self.kind:
            raise ValueError(f"workload {self.name!r} needs a builder kind")

    # -- parameters ----------------------------------------------------------------

    @classmethod
    def create(
        cls,
        name: str,
        domain: str,
        kind: str,
        params: Optional[Mapping[str, Any]] = None,
        description: str = "",
        label: str = "",
    ) -> "WorkloadSpec":
        items = tuple(sorted((params or {}).items()))
        return cls(
            name=name,
            domain=domain,
            kind=kind,
            params=items,
            description=description,
            label=label,
        )

    @property
    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def param(self, key: str, default: Any = None) -> Any:
        return self.param_dict.get(key, default)

    @property
    def display_name(self) -> str:
        """The scenario name used in scores, events and reports."""
        return self.label or self.name

    def with_overrides(self, **overrides: Any) -> "WorkloadSpec":
        """A copy with parameter (and ``label``) overrides layered on.

        Overrides must name existing parameters -- a typo
        (``num_request=``) fails loudly instead of silently building the
        default workload.
        """
        label = overrides.pop("label", self.label)
        if not overrides:
            return WorkloadSpec(
                name=self.name,
                domain=self.domain,
                kind=self.kind,
                params=self.params,
                description=self.description,
                label=label,
            )
        known = set(self.param_dict)
        unknown = set(overrides) - known - META_PARAMS
        if unknown:
            raise ValueError(
                f"workload {self.name!r} has no parameter(s) {sorted(unknown)}; "
                f"available: {sorted(known)}"
            )
        merged = self.param_dict
        merged.update(overrides)
        return WorkloadSpec.create(
            name=self.name,
            domain=self.domain,
            kind=self.kind,
            params=merged,
            description=self.description,
            label=label,
        )

    def scale(self, fraction: float, seed: Optional[int] = None) -> "WorkloadSpec":
        """A reduced-budget variant of this workload (fidelity scaling).

        ``fraction`` deterministically shrinks the workload's budget
        parameter -- ``num_requests`` for trace generators, ``duration_s``
        for netsim scenarios -- and suffixes the label so grid variants stay
        distinct.  ``seed`` (optional) reseeds the scaled workload, for
        ladders that want a different subsample per rung rather than a
        prefix.  File-backed workloads (no budget parameter) refuse to
        scale.
        """
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction!r}")
        if fraction == 1.0 and seed is None:
            return self
        params = self.param_dict
        overrides: Dict[str, Any] = {}
        if fraction != 1.0:
            if "num_requests" in params:
                overrides["num_requests"] = max(
                    1, int(math.ceil(params["num_requests"] * fraction))
                )
            elif "duration_s" in params:
                overrides["duration_s"] = params["duration_s"] * fraction
            else:
                raise ValueError(
                    f"workload {self.name!r} has no scalable budget parameter "
                    "(num_requests or duration_s); file-backed workloads "
                    "cannot be fidelity-scaled"
                )
        if seed is not None:
            if "seed" not in params:
                raise ValueError(
                    f"workload {self.name!r} has no seed parameter to rescale"
                )
            overrides["seed"] = seed
        if fraction != 1.0:
            # A reseed-only copy keeps its label: it is not a rung variant.
            overrides["label"] = f"{self.display_name}@{fraction:g}"
        return self.with_overrides(**overrides)

    # -- serialization -------------------------------------------------------------

    def to_dict(self) -> dict:
        data = {
            "name": self.name,
            "domain": self.domain,
            "kind": self.kind,
            "params": self.param_dict,
        }
        if self.description:
            data["description"] = self.description
        if self.label:
            data["label"] = self.label
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        known = {"name", "domain", "kind", "params", "description", "label"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown WorkloadSpec field(s) {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls.create(
            name=data["name"],
            domain=data["domain"],
            kind=data["kind"],
            params=data.get("params", {}),
            description=data.get("description", ""),
            label=data.get("label", ""),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    # -- presentation --------------------------------------------------------------

    def estimated_length(self) -> str:
        """Human-readable size estimate for ``repro workloads list``."""
        params = self.param_dict
        if "num_requests" in params:
            return f"{params['num_requests']} reqs"
        if "duration_s" in params:
            return f"{params['duration_s']} s sim"
        if "path" in params:
            return "file-backed"
        return "-"


# -- registry -----------------------------------------------------------------------

_REGISTRY: Dict[str, WorkloadSpec] = {}
_BUILDERS: Dict[Tuple[str, str], WorkloadBuilder] = {}

#: Modules registering the built-in workloads, imported lazily on first
#: lookup (mirrors the domain registry's import-order-free pattern).
_BUILTIN_WORKLOAD_MODULES = (
    "repro.workloads.cache",
    "repro.workloads.netsim",
)
_builtins_loaded = False


def _ensure_builtins() -> None:
    global _builtins_loaded
    if not _builtins_loaded:
        _builtins_loaded = True
        for module in _BUILTIN_WORKLOAD_MODULES:
            importlib.import_module(module)


def register_workload(spec: WorkloadSpec) -> WorkloadSpec:
    """Register ``spec`` under its name (last registration wins)."""
    _REGISTRY[spec.name] = spec
    return spec


def register_builder(domain: str, kind: str, builder: WorkloadBuilder) -> WorkloadBuilder:
    """Register the builder behind every ``(domain, kind)`` workload."""
    _BUILDERS[(domain, kind)] = builder
    return builder


def get_workload(name: str, **overrides: Any) -> WorkloadSpec:
    """Look up a registered workload, with optional parameter overrides."""
    _ensure_builtins()
    try:
        spec = _REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown workload {name!r}; available: {available_workloads()}"
        ) from exc
    return spec.with_overrides(**overrides) if overrides else spec


def available_workloads(domain: Optional[str] = None) -> List[str]:
    """Names of every registered workload (optionally for one domain)."""
    _ensure_builtins()
    return sorted(
        name
        for name, spec in _REGISTRY.items()
        if domain is None or spec.domain == domain
    )


def resolve_workload_ref(
    ref: Union[str, Mapping[str, Any], WorkloadSpec]
) -> WorkloadSpec:
    """Build a spec from a declarative reference.

    A reference is a registry name (``"caching/zipf-hot"``), a dictionary
    ``{"name": <registry name>, <param overrides>...}``, an inline spec
    dictionary (with ``domain`` and ``kind`` keys), or an already-built
    :class:`WorkloadSpec`.
    """
    if isinstance(ref, WorkloadSpec):
        return ref
    if isinstance(ref, str):
        return get_workload(ref)
    if isinstance(ref, Mapping):
        if "domain" in ref and "kind" in ref:
            return WorkloadSpec.from_dict(ref)
        data = dict(ref)
        try:
            name = data.pop("name")
        except KeyError:
            raise ValueError(
                "a workload reference dict needs a 'name' key (a registry "
                "name plus overrides) or 'domain'+'kind' (an inline spec); "
                f"got keys {sorted(ref)}"
            ) from None
        return get_workload(name, **data)
    raise TypeError(f"cannot resolve a workload from {type(ref).__name__}")


def build_workload(
    ref: Union[str, Mapping[str, Any], WorkloadSpec], **overrides: Any
) -> Any:
    """Resolve a workload reference and build its domain object."""
    _ensure_builtins()
    spec = resolve_workload_ref(ref)
    if overrides:
        spec = spec.with_overrides(**overrides)
    try:
        builder = _BUILDERS[(spec.domain, spec.kind)]
    except KeyError as exc:
        known = sorted(f"{d}/{k}" for d, k in _BUILDERS)
        raise KeyError(
            f"no builder registered for workload kind "
            f"{spec.domain}/{spec.kind} (workload {spec.name!r}); "
            f"registered kinds: {known}"
        ) from exc
    return builder(spec)
