"""Congestion-control case study (§5 of the paper).

The paper evolves Linux-kernel congestion-control heuristics, executing the
generated logic in an eBPF probe attached to ``cong_control`` and letting the
eBPF verifier act as the Checker.  This package reproduces the pipeline on
the simulation substrate:

* :mod:`repro.cc.template` -- the cong_control Template (signature, feature
  description, kernel constraints, seed programs, archetypes);
* :mod:`repro.cc.kernel_constraints` -- the verifier stand-in: a static
  checker rejecting floating point, unguarded division and unbounded loops;
* :mod:`repro.cc.dsl_controller` -- runs a DSL candidate as the congestion
  controller of a :class:`repro.netsim.flow.Flow`;
* :mod:`repro.cc.policies` -- hand-written baselines (Reno/AIMD, integer
  CUBIC) for comparison;
* :mod:`repro.cc.evaluator` / :mod:`repro.cc.search` -- the Evaluator over
  the emulated 12 Mbps / 20 ms link and the full search assembly.
"""

from repro.cc.template import (
    CC_TEMPLATE_PARAMS,
    cc_archetypes,
    cc_feature_spec,
    cc_seed_programs,
    cc_template,
    kernel_llm_config,
)
from repro.cc.kernel_constraints import KernelConstraintChecker, KernelRuleChecker
from repro.cc.dsl_controller import DslCongestionController
from repro.cc.evaluator import CongestionControlEvaluator
from repro.cc.search import build_cc_search, run_cc_search

__all__ = [
    "CC_TEMPLATE_PARAMS",
    "cc_archetypes",
    "cc_feature_spec",
    "cc_seed_programs",
    "cc_template",
    "kernel_llm_config",
    "KernelConstraintChecker",
    "KernelRuleChecker",
    "DslCongestionController",
    "CongestionControlEvaluator",
    "build_cc_search",
    "run_cc_search",
]
