"""Run a synthesized DSL program as a flow's congestion controller."""

from __future__ import annotations

from typing import Optional

from repro.cc.signals import signals_environment
from repro.cc.template import CC_TEMPLATE_PARAMS
from repro.dsl.ast import Program
from repro.dsl.compile import make_runner
from repro.dsl.errors import DslError
from repro.netsim.flow import CCSignals


class DslCongestionController:
    """Adapter: DSL cong_control program -> :class:`CongestionController`.

    The generated function is invoked on both ACK and loss events (losses are
    distinguished by the ``losses`` parameter), mirroring the single
    decision-making callback of the paper's kernel Template.

    ``strict`` controls what happens if the candidate raises at runtime
    (division by zero on a path the checker could not rule out, etc.):
    strict mode re-raises -- used by the Evaluator so broken candidates get a
    failing score -- while non-strict mode freezes the window, which is how a
    deployed fallback would behave.

    ``backend`` selects the execution strategy: ``"compiled"`` (default, the
    fast path via :func:`~repro.dsl.compile.compile_program`),
    ``"vectorized"`` (the compiled kernel plus the zero-layer per-ACK scorer
    from :mod:`repro.cc.columnar`, which skips the environment dict and
    :class:`HistoryView` construction entirely), or ``"interpreter"`` (the
    tree-walking oracle).  Vectorization and compilation failures fall back
    down the chain; all backends produce bit-identical cwnd decisions.
    """

    def __init__(
        self,
        program: Program,
        initial_window: int = 10,
        max_steps: int = 20_000,
        strict: bool = True,
        backend: str = "compiled",
    ):
        if list(program.params) != list(CC_TEMPLATE_PARAMS):
            raise ValueError(
                f"cong_control program must have parameters {list(CC_TEMPLATE_PARAMS)}, "
                f"got {list(program.params)}"
            )
        self.program = program
        self.initial_window = initial_window
        self.strict = strict
        self._runner, self.backend = make_runner(program, backend, max_steps)
        self._fast = None
        if self.backend == "vectorized":
            from repro.cc.columnar import build_cc_fast
            from repro.dsl.vectorize import VectorizedProgram

            if isinstance(self._runner, VectorizedProgram):
                self._fast = build_cc_fast(self._runner)
        self.invocations = 0
        self.runtime_errors = 0
        self.last_error: Optional[str] = None

    # -- CongestionController protocol -----------------------------------------------

    def initial_cwnd(self) -> int:
        return self.initial_window

    def _invoke(self, signals: CCSignals) -> int:
        self.invocations += 1
        fast = self._fast
        if fast is not None:
            try:
                value = fast(signals)
            except Exception:
                # Re-run through the classic path below so the error
                # surfaces with its usual normalised type and message.
                pass
            else:
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    self.runtime_errors += 1
                    self.last_error = f"non-numeric cwnd {value!r}"
                    if self.strict:
                        raise TypeError(self.last_error)
                    return signals.cwnd_pkts
                return int(value)
        env = signals_environment(signals)
        try:
            value = self._runner.run(env)
        except DslError as exc:
            self.runtime_errors += 1
            self.last_error = str(exc)
            if self.strict:
                raise
            return signals.cwnd_pkts
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            self.runtime_errors += 1
            self.last_error = f"non-numeric cwnd {value!r}"
            if self.strict:
                raise TypeError(self.last_error)
            return signals.cwnd_pkts
        return int(value)

    def on_ack(self, signals: CCSignals) -> int:
        return self._invoke(signals)

    def on_loss(self, signals: CCSignals) -> int:
        return self._invoke(signals)
