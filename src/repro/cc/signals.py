"""Feature view handed to synthesized cong_control programs.

The kernel Template exposes the current connection state as scalar integers
plus *history arrays*: per-RTT-interval summaries over the last 10 intervals
(§5.0.1).  :class:`HistoryView` wraps the flow's history deque as a DSL
feature object with bounds-clamped accessors, so generated code cannot index
out of range (the eBPF verifier would reject unchecked accesses; our
Template simply makes them safe and the checker forbids loops that would
scan past the arrays anyway).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.dsl.errors import DslRuntimeError
from repro.dsl.interpreter import FeatureObject
from repro.netsim.flow import CCSignals, HistoryInterval


class HistoryView(FeatureObject):
    """History arrays: index 0 is the most recent completed RTT interval."""

    exported_methods = frozenset(
        {"length", "delivered_at", "rtt_at", "losses_at", "total_losses", "min_rtt"}
    )

    def __init__(self, intervals: Sequence[HistoryInterval]):
        # Stored most-recent-first so index 0 is the latest interval.
        self._intervals: List[HistoryInterval] = list(reversed(list(intervals)))

    def _at(self, index) -> HistoryInterval | None:
        if isinstance(index, bool) or not isinstance(index, (int, float)):
            raise DslRuntimeError("history index must be a number")
        i = int(index)
        if not self._intervals:
            return None
        i = max(0, min(len(self._intervals) - 1, i))
        return self._intervals[i]

    def length(self) -> int:
        return len(self._intervals)

    def delivered_at(self, index: int) -> int:
        interval = self._at(index)
        return interval.delivered_bytes if interval else 0

    def rtt_at(self, index: int) -> int:
        interval = self._at(index)
        return interval.avg_rtt_us if interval else 0

    def losses_at(self, index: int) -> int:
        interval = self._at(index)
        return interval.losses if interval else 0

    def total_losses(self) -> int:
        return sum(interval.losses for interval in self._intervals)

    def min_rtt(self) -> int:
        rtts = [interval.avg_rtt_us for interval in self._intervals if interval.avg_rtt_us > 0]
        return min(rtts) if rtts else 0


def signals_environment(signals: CCSignals) -> dict:
    """Build the DSL environment for one cong_control invocation."""
    return {
        "now": signals.now_us,
        "cwnd": signals.cwnd_pkts,
        "mss": signals.mss,
        "acked": signals.acked_bytes,
        "inflight": signals.inflight_pkts,
        "rtt": max(0, signals.rtt_us),
        "min_rtt": max(0, signals.min_rtt_us),
        "srtt": max(0, signals.srtt_us),
        "losses": signals.losses_since_last_ack,
        "history": HistoryView(signals.history),
    }
