"""Assembly of the full congestion-control search (§5 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cc.evaluator import CongestionControlEvaluator, default_cc_simulation_config
from repro.cc.kernel_constraints import KernelConstraintChecker
from repro.cc.template import cc_grammar_config, cc_template, kernel_llm_config
from repro.core.context import Context
from repro.core.generator import LLMGenerator
from repro.core.search import EvolutionarySearch, SearchConfig
from repro.core.template import Template
from repro.llm.mock import SyntheticLLMClient, SyntheticLLMConfig
from repro.netsim.simulator import SimulationConfig


@dataclass
class CCSearchSetup:
    """All the components assembled by :func:`build_cc_search`."""

    template: Template
    client: SyntheticLLMClient
    generator: LLMGenerator
    checker: KernelConstraintChecker
    evaluator: CongestionControlEvaluator
    search: EvolutionarySearch
    context: Context


def build_cc_search(
    rounds: int = 4,
    candidates_per_round: int = 25,
    seed: int = 0,
    duration_s: float = 8.0,
    simulation: Optional[SimulationConfig] = None,
    llm_config: Optional[SyntheticLLMConfig] = None,
    repair_attempts: int = 1,
) -> CCSearchSetup:
    """Assemble the kernel-constrained search over the emulated link.

    The §5 case study is not a long search for new algorithms but a
    feasibility study -- 100 candidates, one repair round -- so the default
    round count is small; pass larger values for a real search.
    """
    template = cc_template()
    context = Context.create(
        name="cc/12mbps-20ms",
        workload="single bulk TCP flow",
        objective="maximize utilization while keeping queueing delay low",
        environment="linux-kernel (eBPF)",
        link="12 Mbps",
        rtt="20 ms",
    )
    config = llm_config or kernel_llm_config()
    client = SyntheticLLMClient(
        template.spec, config=config, seed=seed, grammar=cc_grammar_config()
    )
    generator = LLMGenerator(template, client, context_description=context.describe())
    checker = KernelConstraintChecker(template)
    evaluator = CongestionControlEvaluator(
        config=simulation or default_cc_simulation_config(duration_s)
    )
    search = EvolutionarySearch(
        template,
        generator,
        checker,
        evaluator,
        SearchConfig(
            rounds=rounds,
            candidates_per_round=candidates_per_round,
            repair_attempts=repair_attempts,
        ),
        context=context,
    )
    return CCSearchSetup(
        template=template,
        client=client,
        generator=generator,
        checker=checker,
        evaluator=evaluator,
        search=search,
        context=context,
    )


def run_cc_search(
    rounds: int = 4,
    candidates_per_round: int = 25,
    seed: int = 0,
    duration_s: float = 8.0,
):
    """Run the congestion-control search and return its :class:`SearchResult`."""
    setup = build_cc_search(
        rounds=rounds,
        candidates_per_round=candidates_per_round,
        seed=seed,
        duration_s=duration_s,
    )
    return setup.search.run()
