"""The congestion-control search as a pluggable domain (§5 of the paper).

All the wiring lives in the shared engine now; this module only registers
the :class:`CCDomain` -- the kernel Template, the kernel-constraint checker
(the eBPF-verifier stand-in), the emulated-link evaluator and the
kernel-flavoured synthetic-LLM configuration.  Assemble a search with
``build_search("cc", ...)`` or the thin :func:`build_cc_search` /
:func:`run_cc_search` wrappers.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.cc.evaluator import (
    CongestionControlEvaluator,
    cc_input_intervals,
    default_cc_simulation_config,
)
from repro.cc.kernel_constraints import KernelConstraintChecker
from repro.cc.template import cc_grammar_config, cc_template, kernel_llm_config
from repro.core.context import Context
from repro.core.domain import SearchDomain, SearchSetup, build_search, register_domain
from repro.core.search import SearchConfig
from repro.core.template import Template
from repro.dsl.grammar import GrammarConfig
from repro.llm.mock import SyntheticLLMConfig
from repro.netsim.simulator import SimulationConfig


class CCDomain(SearchDomain):
    """Kernel-constrained congestion-control search over the emulated link.

    Domain keyword arguments accepted by :func:`~repro.core.domain.build_search`:
    ``duration_s`` (default 8.0), ``simulation`` (a full
    :class:`~repro.netsim.simulator.SimulationConfig` overriding
    ``duration_s``) and ``backend`` (DSL execution backend, default
    ``"compiled"``).
    """

    name = "cc"
    accepted_kwargs = frozenset({"duration_s", "simulation", "backend"})
    #: ``duration_s`` / ``simulation`` are per-scenario in matrix mode: they
    #: live on the workload references, not the build_search call.
    matrix_kwargs = frozenset({"backend"})

    def build_template(self) -> Template:
        return cc_template()

    def build_context(self, **_ignored: Any) -> Context:
        return Context.create(
            name="cc/12mbps-20ms",
            workload="single bulk TCP flow",
            objective="maximize utilization while keeping queueing delay low",
            environment="linux-kernel (eBPF)",
            link="12 Mbps",
            rtt="20 ms",
        )

    def build_checker(self, template: Template) -> KernelConstraintChecker:
        return KernelConstraintChecker(template)

    def build_evaluator(
        self,
        duration_s: float = 8.0,
        simulation: Optional[SimulationConfig] = None,
        backend: str = "compiled",
        **_ignored: Any,
    ) -> CongestionControlEvaluator:
        return CongestionControlEvaluator(
            config=simulation or default_cc_simulation_config(duration_s),
            backend=backend,
        )

    def build_scenario_evaluator(
        self,
        workload: Any,
        backend: str = "compiled",
        **_ignored: Any,
    ) -> CongestionControlEvaluator:
        """One scenario of a workload matrix: a declarative netsim topology."""
        from repro.workloads import build_workload

        return CongestionControlEvaluator(scenario=build_workload(workload), backend=backend)

    def input_intervals(self):
        return cc_input_intervals()

    def default_llm_config(self) -> SyntheticLLMConfig:
        return kernel_llm_config()

    def grammar_config(self) -> GrammarConfig:
        return cc_grammar_config()

    def default_search_config(self) -> SearchConfig:
        # The §5 case study is a feasibility study -- 100 candidates, one
        # repair round -- so the default round count is small; pass larger
        # values for a real search.
        return SearchConfig(rounds=4, candidates_per_round=25, repair_attempts=1)


register_domain(CCDomain())

#: Backwards-compatible alias: the generic setup has the same field names.
CCSearchSetup = SearchSetup


def build_cc_search(
    rounds: int = 4,
    candidates_per_round: int = 25,
    seed: int = 0,
    duration_s: float = 8.0,
    simulation: Optional[SimulationConfig] = None,
    llm_config: Optional[SyntheticLLMConfig] = None,
    repair_attempts: int = 1,
    **kwargs: Any,
) -> SearchSetup:
    """Assemble the kernel-constrained search (thin ``build_search`` wrapper)."""
    return build_search(
        "cc",
        rounds=rounds,
        candidates_per_round=candidates_per_round,
        repair_attempts=repair_attempts,
        seed=seed,
        llm_config=llm_config,
        duration_s=duration_s,
        simulation=simulation,
        **kwargs,
    )


def run_cc_search(
    rounds: int = 4,
    candidates_per_round: int = 25,
    seed: int = 0,
    duration_s: float = 8.0,
    **kwargs: Any,
):
    """Run the congestion-control search and return its :class:`SearchResult`."""
    setup = build_cc_search(
        rounds=rounds,
        candidates_per_round=candidates_per_round,
        seed=seed,
        duration_s=duration_s,
        **kwargs,
    )
    return setup.search.run()
