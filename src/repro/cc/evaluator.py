"""Evaluator for congestion-control candidates (§5.0.3's emulated link).

The evaluation topology is a declarative
:class:`~repro.workloads.netsim.NetSimScenario` from the workload registry:
the paper's single-flow link is the registered ``cc/single-flow`` default,
and the same evaluator scores candidates on multi-flow, bursty-cross-traffic
and lossy-link scenarios (with fairness and p99-queueing-delay terms joining
the objective when the scenario weights them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.cc.dsl_controller import DslCongestionController
from repro.core.evaluator import EvaluationResult, Evaluator
from repro.dsl.ast import Program
from repro.netsim.link import LinkConfig
from repro.netsim.simulator import SimulationConfig, SimulationMetrics
from repro.workloads.netsim import NetSimScenario, build_scenario


def cc_input_intervals():
    """Value ranges of the cong_control signals, for static screening.

    Every signal is a non-negative integer (``signals_environment`` clamps
    the RTT family at zero); ``cwnd`` additionally lives inside the flow's
    clamp, which is also the declared ``output_clamp`` -- the window a
    returned value is forced into by :meth:`repro.netsim.flow.Flow._apply_cwnd`.
    A return provably at or below the floor (or at or above the ceiling) for
    all signal values is a pinned, degenerate controller.
    """
    from repro.dsl.abstract import InputIntervals, Interval
    from repro.netsim.flow import Flow

    non_negative = Interval(0, float("inf"))
    return InputIntervals(
        scalars={
            "now": non_negative,
            "cwnd": Interval(Flow.MIN_CWND, Flow.MAX_CWND),
            "mss": non_negative,
            "acked": non_negative,
            "inflight": non_negative,
            "rtt": non_negative,
            "min_rtt": non_negative,
            "srtt": non_negative,
            "losses": non_negative,
        },
        methods={
            "history": {
                "length": non_negative,
                "delivered_at": non_negative,
                "rtt_at": non_negative,
                "losses_at": non_negative,
                "total_losses": non_negative,
                "min_rtt": non_negative,
            },
        },
        output_clamp=(float(Flow.MIN_CWND), float(Flow.MAX_CWND)),
    )


def default_cc_simulation_config(duration_s: float = 8.0) -> SimulationConfig:
    """The paper's evaluation link: 12 Mbps, 20 ms RTT, drop-tail buffer."""
    return SimulationConfig(
        link=LinkConfig(rate_bps=12_000_000, one_way_delay_us=10_000, queue_bytes=60_000),
        duration_s=duration_s,
    )


@dataclass
class CCObjective:
    """Scalarisation of the throughput/delay trade-off.

    ``score = utilization - delay_penalty * mean_queueing_delay_ms / rtt_ms``
    minus loss, tail-delay and unfairness penalties.

    With the default weights, saturating the link while keeping queues
    shallow scores close to 1.0; a buffer-filling policy loses roughly half
    of that and an under-utilising one proportionally more.  ``p99_penalty``
    and ``fairness_weight`` default to 0, so single-flow scenarios score
    exactly as the seed-era objective did; multi-flow and bursty scenarios
    set them to reward smooth, fair controllers.
    """

    delay_penalty: float = 0.5
    loss_penalty: float = 0.5
    p99_penalty: float = 0.0
    fairness_weight: float = 0.0

    def score(
        self,
        metrics: SimulationMetrics,
        base_rtt_ms: float,
        fairness: float = 1.0,
    ) -> float:
        rtt = max(1e-9, base_rtt_ms)
        value = (
            metrics.utilization
            - self.delay_penalty * metrics.mean_queueing_delay_ms / rtt
            - self.loss_penalty * metrics.loss_rate
        )
        if self.p99_penalty:
            value -= self.p99_penalty * metrics.p99_queueing_delay_ms / rtt
        if self.fairness_weight:
            value -= self.fairness_weight * (1.0 - fairness)
        return value

    @classmethod
    def for_scenario(cls, scenario: NetSimScenario) -> "CCObjective":
        return cls(
            delay_penalty=scenario.delay_penalty,
            loss_penalty=scenario.loss_penalty,
            p99_penalty=scenario.p99_penalty,
            fairness_weight=scenario.fairness_weight,
        )


class CongestionControlEvaluator(Evaluator):
    """Runs one candidate as the controller of every flow in a scenario.

    ``scenario`` selects the topology (default: the registered
    ``cc/single-flow`` paper link); the legacy ``config=`` keyword still
    accepts a raw :class:`~repro.netsim.simulator.SimulationConfig` and wraps
    it into an anonymous single-flow scenario.
    """

    failure_score = -10.0

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        objective: Optional[CCObjective] = None,
        initial_window: int = 10,
        backend: str = "compiled",
        scenario: Optional[NetSimScenario] = None,
    ):
        if scenario is not None and config is not None:
            raise ValueError("pass either a scenario or a raw config, not both")
        if scenario is None:
            if config is None:
                scenario = build_scenario("cc/single-flow")
            else:
                scenario = NetSimScenario(
                    name="cc/custom-config",
                    rate_bps=config.link.rate_bps,
                    one_way_delay_us=config.link.one_way_delay_us,
                    queue_bytes=config.link.queue_bytes,
                    loss_rate=config.link.loss_rate,
                    loss_seed=config.link.loss_seed,
                    duration_s=config.duration_s,
                    mss=config.mss,
                    max_events=config.max_events,
                )
        self.scenario = scenario
        self.config = scenario.simulation_config()
        self.objective = objective or CCObjective.for_scenario(scenario)
        self.initial_window = initial_window
        self.backend = backend
        self.evaluations = 0
        #: Evaluations by *resolved* backend (``make_runner`` falls back down
        #: the chain for unvectorizable/uncompilable programs).  Shared with
        #: ``at_fidelity`` copies; with a process-pool executor the counters
        #: only reflect in-process evaluations.
        self.backend_stats: Dict[str, Any] = {"requested": backend, "resolved": {}}

    def _run_scenario(self, program: Program) -> Tuple[SimulationMetrics, List[int]]:
        seen: List[str] = []

        def controller() -> DslCongestionController:
            ctl = DslCongestionController(
                program,
                initial_window=self.initial_window,
                strict=True,
                backend=self.backend,
            )
            if not seen:  # count once per scenario run, not per flow
                seen.append(ctl.backend)
            return ctl

        simulator, candidate_ids = self.scenario.build(controller)
        if seen:
            resolved = self.backend_stats["resolved"]
            resolved[seen[0]] = resolved.get(seen[0], 0) + 1
        return simulator.run(), candidate_ids

    def run_candidate(self, program: Program) -> SimulationMetrics:
        """Simulate ``program`` on the scenario and return raw metrics."""
        return self._run_scenario(program)[0]

    def input_intervals(self):
        return cc_input_intervals()

    def at_fidelity(self, fraction: float) -> "CongestionControlEvaluator":
        """A reduced-budget copy: the same link, ``fraction`` of the run."""
        if fraction == 1.0:
            return self
        scaled = CongestionControlEvaluator(
            objective=self.objective,
            initial_window=self.initial_window,
            backend=self.backend,
            scenario=self.scenario.scaled(fraction),
        )
        scaled.backend_stats = self.backend_stats  # rung evaluations count too
        return scaled

    def evaluate_program(self, program: Program) -> EvaluationResult:
        metrics, candidate_ids = self._run_scenario(program)
        self.evaluations += 1
        fairness = metrics.jain_fairness(candidate_ids)
        score = self.objective.score(
            metrics, self.scenario.base_rtt_ms, fairness=fairness
        )
        return EvaluationResult(
            score=score,
            valid=True,
            details={
                "utilization": metrics.utilization,
                "mean_queueing_delay_ms": metrics.mean_queueing_delay_ms,
                "p95_queueing_delay_ms": metrics.p95_queueing_delay_ms,
                "p99_queueing_delay_ms": metrics.p99_queueing_delay_ms,
                "loss_rate": metrics.loss_rate,
                "throughput_bps": metrics.aggregate_throughput_bps(),
                "jain_fairness": fairness,
            },
        )
