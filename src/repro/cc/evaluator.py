"""Evaluator for congestion-control candidates (§5.0.3's emulated link)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cc.dsl_controller import DslCongestionController
from repro.core.evaluator import EvaluationResult, Evaluator
from repro.dsl.ast import Program
from repro.netsim.link import LinkConfig
from repro.netsim.simulator import NetworkSimulator, SimulationConfig, SimulationMetrics


def default_cc_simulation_config(duration_s: float = 8.0) -> SimulationConfig:
    """The paper's evaluation link: 12 Mbps, 20 ms RTT, drop-tail buffer."""
    return SimulationConfig(
        link=LinkConfig(rate_bps=12_000_000, one_way_delay_us=10_000, queue_bytes=60_000),
        duration_s=duration_s,
    )


@dataclass
class CCObjective:
    """Scalarisation of the throughput/delay trade-off.

    ``score = utilization - delay_penalty * mean_queueing_delay_ms / rtt_ms``

    With the default weight, saturating the link while keeping queues shallow
    scores close to 1.0; a buffer-filling policy loses roughly half of that
    and an under-utilising one proportionally more.
    """

    delay_penalty: float = 0.5
    loss_penalty: float = 0.5

    def score(self, metrics: SimulationMetrics, base_rtt_ms: float) -> float:
        delay_ratio = metrics.mean_queueing_delay_ms / max(1e-9, base_rtt_ms)
        return (
            metrics.utilization
            - self.delay_penalty * delay_ratio
            - self.loss_penalty * metrics.loss_rate
        )


class CongestionControlEvaluator(Evaluator):
    """Runs one candidate as the controller of a single bulk flow."""

    failure_score = -10.0

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        objective: Optional[CCObjective] = None,
        initial_window: int = 10,
        backend: str = "compiled",
    ):
        self.config = config or default_cc_simulation_config()
        self.objective = objective or CCObjective()
        self.initial_window = initial_window
        self.backend = backend
        self.evaluations = 0

    def run_candidate(self, program: Program) -> SimulationMetrics:
        """Simulate ``program`` on the evaluation link and return raw metrics."""
        controller = DslCongestionController(
            program, initial_window=self.initial_window, strict=True,
            backend=self.backend,
        )
        simulator = NetworkSimulator(self.config)
        simulator.add_flow(controller)
        return simulator.run()

    def evaluate_program(self, program: Program) -> EvaluationResult:
        metrics = self.run_candidate(program)
        self.evaluations += 1
        base_rtt_ms = 2 * self.config.link.one_way_delay_us / 1000.0
        score = self.objective.score(metrics, base_rtt_ms)
        return EvaluationResult(
            score=score,
            valid=True,
            details={
                "utilization": metrics.utilization,
                "mean_queueing_delay_ms": metrics.mean_queueing_delay_ms,
                "p95_queueing_delay_ms": metrics.p95_queueing_delay_ms,
                "loss_rate": metrics.loss_rate,
                "throughput_bps": metrics.aggregate_throughput_bps(),
            },
        )
