"""Zero-layer scoring fast path for vectorized DSL congestion controllers.

The classic invocation path builds a fresh environment dict and a
:class:`~repro.cc.signals.HistoryView` (which copies and reverses the
interval list) for *every* ACK, then calls the runner through its
normalising wrapper with keyword arguments.  Per-ACK cwnd updates are the
netsim inner loop, so those layers dominate once the program itself is a
compiled kernel.

This module generates one specialised function per program that reads the
:class:`~repro.netsim.flow.CCSignals` fields directly, inlines the
``HistoryView`` accessor bodies over the live interval list (index 0 of the
view is the *newest* interval, i.e. ``history[len - 1]``), and feeds the
kernel's feature columns positionally into its raw compiled function --
exactly one Python frame per cwnd update.  True cross-ACK batching is not
possible (each update's inputs depend on the previous update's cwnd), so
this per-event lowering is the congestion-control counterpart of the fused
cache loop in :mod:`repro.cache.columnar`.

Exactness: the generated function computes bit-identical values to the
classic path -- same clamping (``max(0, rtt)``), same bounds-clamped
history indexing, same ``int()`` truncation of method arguments.  It is
used opportunistically: any kernel column outside the cong_control
Template vocabulary returns ``None`` and the caller keeps the classic
path, and a generated call that raises is re-run through the classic path
so errors surface with their usual normalised types and messages.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional

from repro.dsl.vectorize import VectorizedProgram

#: CCSignals reads for the Template's scalar parameters.  ``rtt``-family
#: signals are clamped to zero exactly like ``signals_environment``.
_SCALAR_SRC = {
    "now": "s.now_us",
    "cwnd": "s.cwnd_pkts",
    "mss": "s.mss",
    "acked": "s.acked_bytes",
    "inflight": "s.inflight_pkts",
    "rtt": "(_t{i} if (_t{i} := s.rtt_us) > 0 else 0)",
    "min_rtt": "(_t{i} if (_t{i} := s.min_rtt_us) > 0 else 0)",
    "srtt": "(_t{i} if (_t{i} := s.srtt_us) > 0 else 0)",
    "losses": "s.losses_since_last_ack",
}

_HISTORY_AT_FIELD = {
    "delivered_at": "delivered_bytes",
    "rtt_at": "avg_rtt_us",
    "losses_at": "losses",
}
_HISTORY_ARITY = {
    "length": 0,
    "delivered_at": 1,
    "rtt_at": 1,
    "losses_at": 1,
    "total_losses": 0,
    "min_rtt": 0,
}

_CODE_CACHE: "OrderedDict[str, Any]" = OrderedDict()
_CODE_CACHE_MAX = 256


def _compiled(source: str):
    code = _CODE_CACHE.get(source)
    if code is None:
        code = compile(source, "<cc-columnar>", "exec")
        _CODE_CACHE[source] = code
        while len(_CODE_CACHE) > _CODE_CACHE_MAX:
            _CODE_CACHE.popitem(last=False)
    else:
        _CODE_CACHE.move_to_end(source)
    return code


def build_cc_fast(vp: VectorizedProgram) -> Optional[Any]:
    """Compile the direct ``CCSignals -> cwnd-value`` scorer for ``vp``.

    Returns a callable ``fast(signals)`` returning exactly what the classic
    ``runner.run(signals_environment(signals))`` would return, or ``None``
    when any kernel column falls outside the Template vocabulary.
    """
    body: List[str] = []
    names: List[str] = []
    needs_history = False

    def scalar_source(param: str, temp: str) -> Optional[str]:
        template = _SCALAR_SRC.get(param)
        return template.format(i=temp) if template else None

    for index, spec in enumerate(vp.columns):
        name = f"c{index}"
        if spec.kind == "scalar":
            source = scalar_source(spec.param, str(index))
            if source is None:
                return None
            body.append(f"    {name} = {source}")
        elif spec.kind == "attr":
            return None  # no attribute-bearing params in the cong_control Template
        else:  # method column
            if spec.param != "history":
                return None
            arity = _HISTORY_ARITY.get(spec.attr)
            if arity is None or len(spec.args) != arity:
                return None
            needs_history = True
            if spec.attr == "length":
                body.append(f"    {name} = hn")
            elif spec.attr == "total_losses":
                body.append(f"    {name} = sum(_iv.losses for _iv in h)")
            elif spec.attr == "min_rtt":
                body.append(
                    f"    _rtts{index} = "
                    "[_iv.avg_rtt_us for _iv in h if _iv.avg_rtt_us > 0]"
                )
                body.append(f"    {name} = min(_rtts{index}) if _rtts{index} else 0")
            else:
                kind, value = spec.args[0]
                if kind == "lit":
                    # HistoryView._at truncates the index with int().
                    arg_source = repr(int(value))
                else:
                    arg_source = scalar_source(value, f"{index}a")
                    if arg_source is None:
                        return None
                field = _HISTORY_AT_FIELD[spec.attr]
                # HistoryView._at, inlined: clamp into [0, hn-1] over the
                # reversed view (view index 0 == live list index hn-1).
                body.extend(
                    [
                        "    if hn:",
                        f"        _i{index} = {arg_source}",
                        f"        if _i{index} < 0:",
                        f"            _i{index} = 0",
                        f"        elif _i{index} > hn - 1:",
                        f"            _i{index} = hn - 1",
                        f"        {name} = h[hn - 1 - _i{index}].{field}",
                        "    else:",
                        f"        {name} = 0",
                    ]
                )
        names.append(name)

    prologue = ["def _cc_fast(s):"]
    if needs_history:
        prologue.append("    h = s.history")
        prologue.append("    hn = len(h)")
    source = "\n".join(prologue + body + [f"    return _kernel({', '.join(names)})", ""])
    namespace: Dict[str, Any] = {"_kernel": vp.kernel._fn}
    exec(_compiled(source), namespace)  # noqa: S102 - fixed vocabulary
    return namespace["_cc_fast"]
