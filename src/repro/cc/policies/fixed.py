"""Fixed-window controller: useful for tests and as a degenerate baseline."""

from __future__ import annotations

from repro.netsim.flow import CCSignals


class FixedWindowController:
    """Keeps the congestion window pinned at a constant value."""

    def __init__(self, window: int = 20):
        if window < 1:
            raise ValueError("window must be at least 1 packet")
        self.window = window

    def initial_cwnd(self) -> int:
        return self.window

    def on_ack(self, signals: CCSignals) -> int:
        return self.window

    def on_loss(self, signals: CCSignals) -> int:
        return self.window
