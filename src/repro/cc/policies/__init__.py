"""Hand-written congestion-control baselines.

These play the same role the kernel's built-in algorithms play in the paper:
reference points the synthesized controllers are compared against, and
sanity checks for the network simulator itself.
"""

from repro.cc.policies.reno import RenoController
from repro.cc.policies.cubic import CubicController
from repro.cc.policies.fixed import FixedWindowController

__all__ = ["RenoController", "CubicController", "FixedWindowController"]
