"""TCP Reno / NewReno-style AIMD congestion control."""

from __future__ import annotations

from repro.netsim.flow import CCSignals


class RenoController:
    """Slow start + congestion avoidance + multiplicative decrease.

    The window is tracked in packets: slow start adds one packet per ACK
    until ``ssthresh``; congestion avoidance adds one packet per window's
    worth of ACKs; a loss halves the window and sets ``ssthresh`` to it.
    """

    def __init__(self, initial_window: int = 10, ssthresh: int = 64):
        self.initial_window = initial_window
        self.ssthresh = ssthresh
        self._ack_credit = 0

    def initial_cwnd(self) -> int:
        return self.initial_window

    def on_ack(self, signals: CCSignals) -> int:
        cwnd = signals.cwnd_pkts
        if cwnd < self.ssthresh:
            return cwnd + 1
        self._ack_credit += 1
        if self._ack_credit >= cwnd:
            self._ack_credit = 0
            return cwnd + 1
        return cwnd

    def on_loss(self, signals: CCSignals) -> int:
        cwnd = signals.cwnd_pkts
        self.ssthresh = max(2, cwnd // 2)
        self._ack_credit = 0
        return self.ssthresh
