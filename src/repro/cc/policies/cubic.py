"""CUBIC-style congestion control with integer arithmetic.

Follows the shape of the kernel implementation: after a loss the window is
reduced by the CUBIC beta (0.7), and during congestion avoidance the window
follows ``W(t) = C * (t - K)^3 + W_max`` where ``K`` is the time at which the
window would regrow to ``W_max``.  All arithmetic is scaled-integer, like in
the kernel (which cannot use floating point).
"""

from __future__ import annotations

from repro.netsim.flow import CCSignals

#: CUBIC constant C, scaled by 1000 (C = 0.4).
_C_SCALED = 400
#: Beta, scaled by 10 (beta = 0.7).
_BETA_SCALED = 7


class CubicController:
    """Integer CUBIC window growth."""

    def __init__(self, initial_window: int = 10):
        self.initial_window = initial_window
        self._w_max = initial_window
        self._epoch_start_us = 0
        self._k_us = 0
        self._ssthresh = 1 << 20
        self._ack_credit = 0

    def initial_cwnd(self) -> int:
        return self.initial_window

    # -- helpers -----------------------------------------------------------------

    def _cube_root(self, value: int) -> int:
        """Integer cube root (binary search), as the kernel does."""
        if value <= 0:
            return 0
        low, high = 0, max(1, value)
        while low < high:
            mid = (low + high + 1) // 2
            if mid * mid * mid <= value:
                low = mid
            else:
                high = mid - 1
        return low

    def _cubic_target(self, now_us: int, cwnd: int) -> int:
        if self._epoch_start_us == 0:
            self._epoch_start_us = now_us
            w_diff = max(0, self._w_max - cwnd)
            # K = cbrt(W_max * (1 - beta) / C), in seconds scaled to ms here.
            k_cubed_ms3 = (w_diff * 1000 * 1000 * 1000 * (10 - _BETA_SCALED)) // (
                10 * max(1, _C_SCALED)
            )
            self._k_us = self._cube_root(k_cubed_ms3) * 1000
        t_us = now_us - self._epoch_start_us
        delta_ms = (t_us - self._k_us) // 1000
        # C * delta^3, with C scaled by 1000 and delta in ms -> scale back.
        offset = (_C_SCALED * delta_ms * delta_ms * delta_ms) // (1000 * 1000 * 1000 * 1000)
        return max(2, self._w_max + offset)

    # -- CongestionController protocol ----------------------------------------------

    def on_ack(self, signals: CCSignals) -> int:
        cwnd = signals.cwnd_pkts
        if cwnd < self._ssthresh:
            return cwnd + 1
        target = self._cubic_target(signals.now_us, cwnd)
        # Kernel-style pacing towards the cubic target: roughly
        # (target - cwnd) / cwnd packets of growth per ACK, never less than
        # the TCP-friendly 1 packet per RTT.
        self._ack_credit += max(1, target - cwnd)
        if self._ack_credit >= cwnd:
            self._ack_credit = 0
            return cwnd + 1
        return cwnd

    def on_loss(self, signals: CCSignals) -> int:
        cwnd = signals.cwnd_pkts
        self._w_max = cwnd
        self._epoch_start_us = 0
        reduced = max(2, (cwnd * _BETA_SCALED) // 10)
        self._ssthresh = reduced
        return reduced
