"""Kernel-constraint checker: the reproduction's eBPF-verifier stand-in.

In the paper, candidate congestion-control programs are compiled to eBPF and
must pass the in-kernel verifier before they can run; the verifier therefore
*is* the Checker for the kernel case study, and §5.0.3 reports that the most
common rejection causes are floating-point arithmetic and missing
division-by-zero checks.

:class:`KernelRuleChecker` performs the equivalent static analysis over the
DSL AST:

* ``float-arith`` -- float literals or true division ``/``;
* ``div-by-zero`` -- division/modulo whose divisor is not a provably non-zero
  constant and is not guarded with ``max(1, ...)``;
* ``unbounded-loop`` -- ``while`` loops, or ``for`` ranges that are not
  compile-time constants;
* ``too-complex`` -- programs above the instruction budget (the verifier has
  a hard instruction limit).

:class:`KernelConstraintChecker` composes these rules with the generic
:class:`~repro.core.checker.StructuralChecker` so signature/feature errors
are also reported.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.checker import CheckIssue, CheckResult, CompositeChecker, StructuralChecker
from repro.core.template import Template
from repro.dsl.ast import BinOp, Call, ForRange, Name, Number, Program, While
from repro.dsl.codegen import expr_to_source
from repro.dsl.errors import DslSyntaxError
from repro.dsl.parser import parse


def _is_guarded_divisor(expr) -> bool:
    """True when the divisor is provably non-zero.

    Accepted forms: a non-zero numeric literal, or a call to ``max(c, ...)``
    whose first argument is a positive numeric literal (the guard idiom the
    Template's constraints recommend).
    """
    if isinstance(expr, Number):
        return expr.value != 0
    if isinstance(expr, Call) and isinstance(expr.func, Name) and expr.func.id == "max":
        if expr.args and isinstance(expr.args[0], Number) and expr.args[0].value > 0:
            return True
    return False


class KernelRuleChecker:
    """The kernel-specific rules, usable standalone or inside a composite."""

    def __init__(self, max_nodes: int = 200):
        self.max_nodes = max_nodes

    def check(self, source: str) -> CheckResult:
        try:
            program = parse(source)
        except DslSyntaxError as exc:
            return CheckResult(
                ok=False,
                issues=[CheckIssue("syntax-error", f"build failed: {exc}")],
            )
        issues = list(self._check_program(program))
        return CheckResult(ok=not issues, program=program, issues=issues)

    def _check_program(self, program: Program) -> Iterable[CheckIssue]:
        for node in program.walk():
            if isinstance(node, Number) and isinstance(node.value, float):
                yield CheckIssue(
                    "float-arith",
                    f"floating-point literal {node.value!r} is not allowed in kernel code",
                )
            elif isinstance(node, BinOp):
                if node.op == "/":
                    yield CheckIssue(
                        "float-arith",
                        "true division '/' produces floating point; use integer "
                        "division '//' instead",
                    )
                if node.op in ("/", "//", "%") and not _is_guarded_divisor(node.right):
                    yield CheckIssue(
                        "div-by-zero",
                        "divisor "
                        f"'{expr_to_source(node.right)}' may be zero; guard it with "
                        "max(1, ...) or use a non-zero constant",
                    )
            elif isinstance(node, While):
                yield CheckIssue(
                    "unbounded-loop", "'while' loops cannot be verified as bounded"
                )
            elif isinstance(node, ForRange) and not isinstance(node.limit, Number):
                yield CheckIssue(
                    "unbounded-loop",
                    f"for-range limit '{expr_to_source(node.limit)}' is not a constant",
                )
        if program.size() > self.max_nodes:
            yield CheckIssue(
                "too-complex",
                f"program has {program.size()} AST nodes, exceeding the verifier "
                f"budget of {self.max_nodes}",
            )


class KernelConstraintChecker(CompositeChecker):
    """Structural checks + kernel rules, in one checker."""

    def __init__(self, template: Template, max_nodes: int = 200):
        super().__init__(
            [
                StructuralChecker(template, max_nodes=max_nodes, allow_loops=True),
                KernelRuleChecker(max_nodes=max_nodes),
            ]
        )
