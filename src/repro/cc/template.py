"""The cong_control Template (§5.0.1 of the paper).

The Linux kernel invokes congestion-control callbacks on packet-level
events; the paper isolates the decision logic into a single function and
exposes the connection state plus history arrays to the Generator.  The
Template below is the simulation-substrate equivalent: one function,

    cong_control(now, cwnd, mss, acked, inflight, rtt, min_rtt, srtt,
                 losses, history) -> new cwnd (in packets)

invoked on every ACK and on every detected loss, under kernel constraints
(integer arithmetic only, guarded division, no unbounded loops).
"""

from __future__ import annotations

from typing import List

from repro.core.template import Template
from repro.dsl.ast import Program
from repro.dsl.grammar import FeatureSpec, GrammarConfig
from repro.dsl.parser import parse
from repro.llm.mock import SyntheticLLMConfig

#: Formal parameters of the cong_control Template, in order.
CC_TEMPLATE_PARAMS = (
    "now",
    "cwnd",
    "mss",
    "acked",
    "inflight",
    "rtt",
    "min_rtt",
    "srtt",
    "losses",
    "history",
)

_SIGNATURE = f"def cong_control({', '.join(CC_TEMPLATE_PARAMS)})"


def cc_feature_spec() -> FeatureSpec:
    """Machine-readable description of the cong_control environment."""
    return FeatureSpec(
        function_name="cong_control",
        params=list(CC_TEMPLATE_PARAMS),
        scalar_params=[
            "cwnd",
            "acked",
            "inflight",
            "rtt",
            "min_rtt",
            "srtt",
            "losses",
            "mss",
        ],
        object_attrs={},
        object_methods={
            "history": [
                ("length", "none"),
                ("delivered_at", "fraction"),
                ("rtt_at", "fraction"),
                ("losses_at", "fraction"),
                ("total_losses", "none"),
                ("min_rtt", "none"),
            ],
        },
        key_params=[],
        integer_only=True,
        result_var="new_cwnd",
    )


CC_TEMPLATE_DESCRIPTION = """\
Write the decision logic of a TCP congestion-control algorithm.  The function
is invoked on every acknowledgement and on every detected packet loss, and
must return the new congestion window, measured in packets.

Available features (all integers; times are in microseconds, sizes in bytes):
- now:      current time
- cwnd:     current congestion window, in packets
- mss:      maximum segment size in bytes
- acked:    bytes acknowledged by this event (0 for loss events)
- inflight: packets currently in flight
- rtt:      the RTT sample of this acknowledgement
- min_rtt:  minimum RTT observed on the connection
- srtt:     smoothed RTT
- losses:   number of losses detected since the previous invocation
            (0 means this is a pure ACK event)
- history:  per-RTT-interval summaries over the last 10 intervals, index 0 is
            the most recent interval:
    .length(), .delivered_at(i), .rtt_at(i), .losses_at(i),
    .total_losses(), .min_rtt()
- builtins: min(a, b), max(a, b), abs(x), clamp(x, lo, hi).
"""

CC_TEMPLATE_CONSTRAINTS = [
    "Kernel context: floating-point arithmetic is NOT allowed "
    "(no float literals, no true division '/'; use integer division '//').",
    "Every division or modulo must have a divisor that provably cannot be "
    "zero (a non-zero constant, or guarded with max(1, x)).",
    "No unbounded loops: 'while' is forbidden and 'for' ranges must be "
    "constant (the verifier rejects anything else).",
    "The function must return a positive integer congestion window on every path.",
    "Only the listed features may be accessed.",
    "Keep the function small; the verifier rejects overly complex programs.",
]


def cc_seed_programs() -> List[Program]:
    """Seed heuristics: a minimal AIMD and a conservative delay-based rule."""
    aimd = parse(
        f"""{_SIGNATURE} {{
    new_cwnd = cwnd
    if (losses > 0) {{
        new_cwnd = max(2, cwnd // 2)
    }} else {{
        new_cwnd = cwnd + 1
    }}
    return new_cwnd
}}
"""
    )
    delay_based = parse(
        f"""{_SIGNATURE} {{
    new_cwnd = cwnd
    if (losses > 0) {{
        new_cwnd = max(2, (cwnd * 7) // 10)
    }} else {{
        if (srtt > (min_rtt * 3) // 2) {{
            new_cwnd = max(2, cwnd - 1)
        }} else {{
            new_cwnd = cwnd + 1
        }}
    }}
    return new_cwnd
}}
"""
    )
    return [aimd, delay_based]


def cc_archetypes() -> List[str]:
    """Congestion-control structures the synthetic LLM remixes."""
    return [
        # Classic AIMD.
        f"""{_SIGNATURE} {{
    new_cwnd = cwnd + 1
    if (losses > 0) {{
        new_cwnd = max(2, cwnd // 2)
    }}
    return new_cwnd
}}""",
        # Slow-start then linear growth keyed on inflight.
        f"""{_SIGNATURE} {{
    new_cwnd = cwnd
    if (losses > 0) {{
        new_cwnd = max(2, (cwnd * 6) // 10)
    }} else {{
        if (cwnd < 32) {{
            new_cwnd = cwnd + 2
        }} else {{
            new_cwnd = cwnd + 1
        }}
    }}
    return new_cwnd
}}""",
        # Delay-gated growth (Vegas/Copa flavoured).
        f"""{_SIGNATURE} {{
    new_cwnd = cwnd
    target = (min_rtt * 5) // 4
    if (losses > 0) {{
        new_cwnd = max(2, cwnd // 2)
    }} else {{
        if (srtt > target) {{
            new_cwnd = max(2, cwnd - 1)
        }} else {{
            new_cwnd = cwnd + 1
        }}
    }}
    return new_cwnd
}}""",
        # Rate-history based (BBR flavoured, integer only).
        f"""{_SIGNATURE} {{
    new_cwnd = cwnd
    rate = history.delivered_at(0)
    if (losses > 0) {{
        new_cwnd = max(4, (cwnd * 7) // 10)
    }} else {{
        bdp_pkts = (rate * 2) // max(1, mss)
        new_cwnd = max(4, min(cwnd + 2, bdp_pkts + 4))
    }}
    return new_cwnd
}}""",
    ]


def cc_template() -> Template:
    """The full cong_control Template."""
    return Template(
        name="cong-control",
        spec=cc_feature_spec(),
        description=CC_TEMPLATE_DESCRIPTION,
        constraints=list(CC_TEMPLATE_CONSTRAINTS),
        seed_programs=cc_seed_programs(),
    )


def cc_grammar_config() -> GrammarConfig:
    """Grammar tuned for window-update rules (small integer constants)."""
    return GrammarConfig(
        min_statements=2,
        max_statements=6,
        constant_range=(1, 64),
        fraction_choices=(0, 1, 2, 3),
    )


def kernel_llm_config() -> SyntheticLLMConfig:
    """Synthetic-LLM failure rates modelling kernel-targeted generation.

    The rates are chosen so that roughly 60-65 % of candidates pass the
    verifier stand-in on the first attempt (the paper reports 63 %), with the
    dominant failure causes being floating-point arithmetic and unguarded
    division -- the same two causes §5.0.3 highlights.
    """
    return SyntheticLLMConfig(
        syntax_error_rate=0.03,
        float_injection_rate=0.25,
        unguarded_division_rate=0.10,
        unbounded_loop_rate=0.02,
        repair_success_rate=0.80,
        archetypes=cc_archetypes(),
    )
