"""Bottleneck link with a drop-tail queue.

The link models what Mahimahi's ``mm-link`` emulates for the paper's §5
experiments: a fixed-rate bottleneck (12 Mbps), a one-way propagation delay
(10 ms each way for a 20 ms RTT), and a finite FIFO buffer that drops
arriving packets when full.

Serialisation is modelled exactly: each packet occupies the transmitter for
``size * 8 / rate`` seconds, and the queueing delay of a packet is the time
between its arrival and the moment it starts being serialised.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional

from repro.netsim.events import EventQueue
from repro.netsim.packet import Packet

#: Callback invoked when a packet pops out of the far end of the link.
DeliveryCallback = Callable[[Packet, int], None]
#: Callback invoked when the queue drops a packet.
DropCallback = Callable[[Packet, int], None]


@dataclass
class LinkConfig:
    """Static parameters of a bottleneck link.

    ``loss_rate`` adds random (non-congestive) loss: each arriving packet is
    independently dropped with this probability *before* it reaches the
    queue, emulating a lossy last hop (wireless, long-haul).  The loss
    process is driven by the link's own ``random.Random(loss_seed)`` so runs
    are deterministic and no module-global RNG state is shared across
    workers.
    """

    rate_bps: int = 12_000_000          # 12 Mbps, as in §5.0.3
    one_way_delay_us: int = 10_000      # 10 ms each way -> 20 ms RTT
    queue_bytes: int = 60_000           # ~1.6 bandwidth-delay products
    loss_rate: float = 0.0              # random loss probability in [0, 1)
    loss_seed: int = 0                  # seed of the link-local loss RNG

    def serialization_us(self, size_bytes: int) -> int:
        """Time to clock ``size_bytes`` onto the wire, in microseconds."""
        return int(round(size_bytes * 8 * 1_000_000 / self.rate_bps))

    def bdp_bytes(self, rtt_us: Optional[int] = None) -> int:
        """Bandwidth-delay product for ``rtt_us`` (defaults to 2x one-way delay)."""
        rtt = rtt_us if rtt_us is not None else 2 * self.one_way_delay_us
        return int(self.rate_bps * rtt / 8 / 1_000_000)


@dataclass
class LinkStats:
    """Counters accumulated by a link over a run."""

    enqueued_packets: int = 0
    delivered_packets: int = 0
    dropped_packets: int = 0
    delivered_bytes: int = 0
    dropped_bytes: int = 0
    queueing_delays_us: List[int] = field(default_factory=list)
    busy_us: int = 0

    def mean_queueing_delay_ms(self) -> float:
        if not self.queueing_delays_us:
            return 0.0
        return sum(self.queueing_delays_us) / len(self.queueing_delays_us) / 1000.0

    def p95_queueing_delay_ms(self) -> float:
        return self.percentile_queueing_delay_ms(0.95)

    def p99_queueing_delay_ms(self) -> float:
        return self.percentile_queueing_delay_ms(0.99)

    def percentile_queueing_delay_ms(self, fraction: float) -> float:
        if not self.queueing_delays_us:
            return 0.0
        ordered = sorted(self.queueing_delays_us)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index] / 1000.0

    def utilization(self, rate_bps: int, duration_us: int) -> float:
        if duration_us <= 0:
            return 0.0
        capacity_bytes = rate_bps * duration_us / 8 / 1_000_000
        if capacity_bytes <= 0:
            return 0.0
        return min(1.0, self.delivered_bytes / capacity_bytes)

    def loss_rate(self) -> float:
        total = self.enqueued_packets + self.dropped_packets
        if total == 0:
            return 0.0
        return self.dropped_packets / total


class DropTailLink:
    """FIFO bottleneck link bound to an :class:`EventQueue`."""

    def __init__(
        self,
        events: EventQueue,
        config: Optional[LinkConfig] = None,
        on_delivery: Optional[DeliveryCallback] = None,
        on_drop: Optional[DropCallback] = None,
        name: str = "bottleneck",
    ):
        self.events = events
        self.config = config or LinkConfig()
        if not 0.0 <= self.config.loss_rate < 1.0:
            raise ValueError(
                f"loss_rate must be in [0, 1), got {self.config.loss_rate}"
            )
        self.name = name
        self.stats = LinkStats()
        self._on_delivery = on_delivery
        self._on_drop = on_drop
        self._queue: Deque[Packet] = deque()
        self._queued_bytes = 0
        self._transmitting = False
        # Link-local RNG: every simulator instance replays the same loss
        # pattern for its seed, independent of any global random state.
        self._loss_rng: Optional[random.Random] = (
            random.Random(self.config.loss_seed) if self.config.loss_rate > 0 else None
        )

    # -- wiring -------------------------------------------------------------------

    def set_delivery_callback(self, callback: DeliveryCallback) -> None:
        self._on_delivery = callback

    def set_drop_callback(self, callback: DropCallback) -> None:
        self._on_drop = callback

    # -- inspection ----------------------------------------------------------------

    @property
    def queued_bytes(self) -> int:
        return self._queued_bytes

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    # -- datapath --------------------------------------------------------------------

    def send(self, packet: Packet) -> bool:
        """Offer ``packet`` to the link at the current simulation time.

        Returns False (and reports a drop) if the buffer cannot hold it.
        """
        now = self.events.now
        if (
            self._loss_rng is not None
            and self._loss_rng.random() < self.config.loss_rate
        ):
            self.stats.dropped_packets += 1
            self.stats.dropped_bytes += packet.size
            if self._on_drop is not None:
                self._on_drop(packet, now)
            return False
        if self._queued_bytes + packet.size > self.config.queue_bytes:
            self.stats.dropped_packets += 1
            self.stats.dropped_bytes += packet.size
            if self._on_drop is not None:
                self._on_drop(packet, now)
            return False
        packet.enqueued_at = now
        self._queue.append(packet)
        self._queued_bytes += packet.size
        self.stats.enqueued_packets += 1
        if not self._transmitting:
            self._start_transmission()
        return True

    def _start_transmission(self) -> None:
        if not self._queue:
            self._transmitting = False
            return
        self._transmitting = True
        packet = self._queue[0]
        packet.dequeued_at = self.events.now
        serialization = self.config.serialization_us(packet.size)
        self.stats.busy_us += serialization
        self.events.schedule_after(
            serialization, lambda _now, p=packet: self._finish_transmission(p)
        )

    def _finish_transmission(self, packet: Packet) -> None:
        self._queue.popleft()
        self._queued_bytes -= packet.size
        self.stats.queueing_delays_us.append(packet.queueing_delay_us())
        self.events.schedule_after(
            self.config.one_way_delay_us, lambda now, p=packet: self._deliver(p, now)
        )
        self._start_transmission()

    def _deliver(self, packet: Packet, now: int) -> None:
        self.stats.delivered_packets += 1
        self.stats.delivered_bytes += packet.size
        if self._on_delivery is not None:
            self._on_delivery(packet, now)
