"""Packets exchanged between flows and links."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Packet:
    """A data packet (or its acknowledgement).

    Attributes
    ----------
    flow_id:
        Which flow the packet belongs to (links are shared).
    sequence:
        Per-flow sequence number of the data packet.
    size:
        Payload + header size in bytes (ACKs are small but not free).
    sent_at:
        Time the packet left the sender, in microseconds.
    is_ack:
        True for acknowledgements travelling back to the sender.
    enqueued_at / dequeued_at:
        Set by the link; their difference is the packet's queueing delay.
    retransmission:
        True when this packet is a retransmission of a lost sequence.
    """

    flow_id: int
    sequence: int
    size: int
    sent_at: int
    is_ack: bool = False
    enqueued_at: int = 0
    dequeued_at: int = 0
    retransmission: bool = False

    def queueing_delay_us(self) -> int:
        """Time spent waiting in the bottleneck queue (microseconds)."""
        return max(0, self.dequeued_at - self.enqueued_at)


#: Conventional Ethernet-ish maximum segment size used by the flows.
DEFAULT_MSS = 1448

#: Size of an acknowledgement packet in bytes.
ACK_SIZE = 64
