"""Event queue for the discrete-event network simulator."""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

#: An event callback takes the current simulation time (microseconds).
EventCallback = Callable[[int], None]


class EventQueue:
    """Min-heap of timestamped events with stable FIFO ordering for ties."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, EventCallback]] = []
        self._counter = itertools.count()
        self.now = 0
        self.processed = 0

    def schedule(self, time_us: int, callback: EventCallback) -> None:
        """Schedule ``callback`` to run at ``time_us`` (>= now)."""
        if time_us < self.now:
            raise ValueError(
                f"cannot schedule an event in the past ({time_us} < {self.now})"
            )
        heapq.heappush(self._heap, (int(time_us), next(self._counter), callback))

    def schedule_after(self, delay_us: int, callback: EventCallback) -> None:
        """Schedule ``callback`` ``delay_us`` after the current time."""
        self.schedule(self.now + max(0, int(delay_us)), callback)

    def __len__(self) -> int:
        return len(self._heap)

    def empty(self) -> bool:
        return not self._heap

    def step(self) -> bool:
        """Run the earliest event; returns False when the queue is empty."""
        if not self._heap:
            return False
        time_us, _seq, callback = heapq.heappop(self._heap)
        self.now = time_us
        callback(time_us)
        self.processed += 1
        return True

    def run_until(self, end_time_us: int, max_events: Optional[int] = None) -> int:
        """Process events up to (and including) ``end_time_us``.

        Returns the number of events processed.  ``max_events`` is a safety
        valve against runaway schedules (e.g. a broken controller flooding
        the link with zero-length timers).
        """
        processed = 0
        while self._heap and self._heap[0][0] <= end_time_us:
            if max_events is not None and processed >= max_events:
                break
            self.step()
            processed += 1
        self.now = max(self.now, end_time_us)
        return processed
