"""TCP-like flows driven by pluggable congestion controllers.

A :class:`Flow` keeps a congestion window (in packets), transmits while the
window allows, measures RTTs from acknowledgements, and delegates window
updates to a :class:`CongestionController`.  Loss is signalled when the
bottleneck queue drops a packet; detection is delayed by roughly one RTT to
model duplicate-ACK detection without simulating the full fast-retransmit
machinery (the dynamics that matter to a congestion controller -- multiplicative
reaction after about an RTT -- are preserved).

The controller also receives *history arrays*: per-RTT-interval summaries of
delivered bytes, average RTT and losses over the last 10 intervals, matching
the paper's cong_control Template (§5.0.1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Protocol

from repro.netsim.events import EventQueue
from repro.netsim.link import DropTailLink
from repro.netsim.packet import ACK_SIZE, DEFAULT_MSS, Packet


@dataclass
class HistoryInterval:
    """Smoothed metrics over one RTT-sized interval (the Template's history)."""

    delivered_bytes: int
    avg_rtt_us: int
    losses: int


@dataclass
class CCSignals:
    """Everything a congestion controller may look at when updating cwnd.

    All values are integers (microseconds, bytes, packets) so that
    kernel-style integer-only controllers can be expressed directly.
    """

    now_us: int
    cwnd_pkts: int
    mss: int
    acked_bytes: int
    inflight_pkts: int
    inflight_bytes: int
    rtt_us: int
    min_rtt_us: int
    srtt_us: int
    loss: bool
    losses_since_last_ack: int
    delivered_bytes: int
    history: List[HistoryInterval] = field(default_factory=list)


class CongestionController(Protocol):
    """Window-update policy attached to a flow."""

    def initial_cwnd(self) -> int:  # pragma: no cover - protocol
        ...

    def on_ack(self, signals: CCSignals) -> int:  # pragma: no cover - protocol
        """Return the new congestion window (in packets) after an ACK."""
        ...

    def on_loss(self, signals: CCSignals) -> int:  # pragma: no cover - protocol
        """Return the new congestion window (in packets) after a loss."""
        ...


@dataclass
class FlowStats:
    """Per-flow counters."""

    packets_sent: int = 0
    packets_acked: int = 0
    packets_lost: int = 0
    bytes_acked: int = 0
    rtt_samples_us: List[int] = field(default_factory=list)
    cwnd_trace: List[tuple] = field(default_factory=list)  # (time_us, cwnd)

    def mean_rtt_ms(self) -> float:
        if not self.rtt_samples_us:
            return 0.0
        return sum(self.rtt_samples_us) / len(self.rtt_samples_us) / 1000.0

    def throughput_bps(self, duration_us: int) -> float:
        if duration_us <= 0:
            return 0.0
        return self.bytes_acked * 8 * 1_000_000 / duration_us


class Flow:
    """A long-running (bulk-transfer) flow through a bottleneck link."""

    MIN_CWND = 2
    MAX_CWND = 4096

    def __init__(
        self,
        flow_id: int,
        events: EventQueue,
        link: DropTailLink,
        controller: CongestionController,
        mss: int = DEFAULT_MSS,
        ack_delay_us: Optional[int] = None,
        history_length: int = 10,
    ):
        self.flow_id = flow_id
        self.events = events
        self.link = link
        self.controller = controller
        self.mss = mss
        # ACKs return over an uncongested reverse path with the same
        # propagation delay as the forward path unless told otherwise.
        self.ack_delay_us = (
            ack_delay_us if ack_delay_us is not None else link.config.one_way_delay_us
        )
        self.stats = FlowStats()

        self.cwnd = max(self.MIN_CWND, int(controller.initial_cwnd()))
        self.inflight = 0
        self.next_seq = 0
        self.min_rtt_us = 0
        self.srtt_us = 0
        self.delivered_bytes = 0
        self.running = False

        self._outstanding: Dict[int, Packet] = {}
        self._pending_losses = 0
        self._last_loss_reaction_us = -1

        # History-array bookkeeping.
        self._history: Deque[HistoryInterval] = deque(maxlen=history_length)
        self._interval_start_us = 0
        self._interval_delivered = 0
        self._interval_rtt_sum = 0
        self._interval_rtt_count = 0
        self._interval_losses = 0

    # -- lifecycle -------------------------------------------------------------------

    def start(self, at_us: int = 0) -> None:
        self.running = True
        self.events.schedule(max(at_us, self.events.now), lambda _now: self._pump())

    def stop(self) -> None:
        self.running = False

    # -- transmission ------------------------------------------------------------------

    def _pump(self) -> None:
        """Send packets while the congestion window allows."""
        if not self.running:
            return
        while self.inflight < self.cwnd:
            packet = Packet(
                flow_id=self.flow_id,
                sequence=self.next_seq,
                size=self.mss,
                sent_at=self.events.now,
            )
            self.next_seq += 1
            self.inflight += 1
            self.stats.packets_sent += 1
            self._outstanding[packet.sequence] = packet
            self.link.send(packet)

    # -- signal plumbing (called by the simulator) -----------------------------------------

    def handle_delivery(self, packet: Packet, now: int) -> None:
        """A data packet reached the receiver; schedule the acknowledgement."""
        ack = Packet(
            flow_id=self.flow_id,
            sequence=packet.sequence,
            size=ACK_SIZE,
            sent_at=packet.sent_at,
            is_ack=True,
        )
        self.events.schedule_after(self.ack_delay_us, lambda _now, a=ack: self._on_ack(a))

    def handle_drop(self, packet: Packet, now: int) -> None:
        """The bottleneck dropped one of our packets; detect it one RTT later."""
        detection_delay = self.srtt_us or (2 * self.link.config.one_way_delay_us)
        self.events.schedule_after(
            detection_delay, lambda _now, p=packet: self._on_loss_detected(p)
        )

    # -- ACK / loss processing ----------------------------------------------------------------

    def _signals(self, acked_bytes: int, rtt_us: int, loss: bool) -> CCSignals:
        return CCSignals(
            now_us=self.events.now,
            cwnd_pkts=self.cwnd,
            mss=self.mss,
            acked_bytes=acked_bytes,
            inflight_pkts=self.inflight,
            inflight_bytes=self.inflight * self.mss,
            rtt_us=rtt_us,
            min_rtt_us=self.min_rtt_us,
            srtt_us=self.srtt_us,
            loss=loss,
            losses_since_last_ack=self._pending_losses,
            delivered_bytes=self.delivered_bytes,
            history=list(self._history),
        )

    def _apply_cwnd(self, new_cwnd: int) -> None:
        try:
            value = int(new_cwnd)
        except (TypeError, ValueError):
            value = self.cwnd
        self.cwnd = max(self.MIN_CWND, min(self.MAX_CWND, value))
        self.stats.cwnd_trace.append((self.events.now, self.cwnd))

    def _on_ack(self, ack: Packet) -> None:
        if not self.running:
            return
        sent = self._outstanding.pop(ack.sequence, None)
        if sent is None:
            return  # already accounted as lost
        now = self.events.now
        rtt = max(1, now - ack.sent_at)
        self.inflight = max(0, self.inflight - 1)
        self.stats.packets_acked += 1
        self.stats.bytes_acked += sent.size
        self.stats.rtt_samples_us.append(rtt)
        self.delivered_bytes += sent.size
        if self.min_rtt_us == 0 or rtt < self.min_rtt_us:
            self.min_rtt_us = rtt
        self.srtt_us = rtt if self.srtt_us == 0 else (7 * self.srtt_us + rtt) // 8
        self._interval_delivered += sent.size
        self._interval_rtt_sum += rtt
        self._interval_rtt_count += 1
        self._roll_history()

        signals = self._signals(acked_bytes=sent.size, rtt_us=rtt, loss=False)
        self._pending_losses = 0
        self._apply_cwnd(self.controller.on_ack(signals))
        self._pump()

    def _on_loss_detected(self, packet: Packet) -> None:
        if not self.running:
            return
        if self._outstanding.pop(packet.sequence, None) is None:
            return
        self.inflight = max(0, self.inflight - 1)
        self.stats.packets_lost += 1
        self._pending_losses += 1
        self._interval_losses += 1
        # React to at most one loss event per RTT (fast-recovery semantics):
        # a burst of drops from one congestion episode causes one window
        # reduction, not one per packet.
        reaction_gap = self.srtt_us or (2 * self.link.config.one_way_delay_us)
        now = self.events.now
        if (
            self._last_loss_reaction_us < 0
            or now - self._last_loss_reaction_us >= reaction_gap
        ):
            self._last_loss_reaction_us = now
            signals = self._signals(acked_bytes=0, rtt_us=self.srtt_us, loss=True)
            self._apply_cwnd(self.controller.on_loss(signals))
        self._pump()

    # -- history arrays ------------------------------------------------------------------------

    def _roll_history(self) -> None:
        """Close the current RTT interval when it has lasted at least one sRTT."""
        interval = self.srtt_us or (2 * self.link.config.one_way_delay_us)
        if self.events.now - self._interval_start_us < interval:
            return
        avg_rtt = (
            self._interval_rtt_sum // self._interval_rtt_count
            if self._interval_rtt_count
            else self.srtt_us
        )
        self._history.append(
            HistoryInterval(
                delivered_bytes=self._interval_delivered,
                avg_rtt_us=avg_rtt,
                losses=self._interval_losses,
            )
        )
        self._interval_start_us = self.events.now
        self._interval_delivered = 0
        self._interval_rtt_sum = 0
        self._interval_rtt_count = 0
        self._interval_losses = 0
