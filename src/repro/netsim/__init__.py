"""Discrete-event network simulator (the Mahimahi / testbed stand-in).

The congestion-control case study (§5 of the paper) evaluates candidates on
an emulated 12 Mbps, 20 ms link.  This package provides the equivalent
simulation substrate:

* :mod:`repro.netsim.events` -- the event queue,
* :mod:`repro.netsim.packet` -- packets and ACKs,
* :mod:`repro.netsim.link` -- a bottleneck link with a drop-tail queue,
  serialisation delay and propagation delay,
* :mod:`repro.netsim.flow` -- TCP-like senders driven by a pluggable
  congestion controller,
* :mod:`repro.netsim.simulator` -- wiring plus per-run metrics (utilisation,
  mean/percentile queueing delay, throughput, losses).

Time is measured in integer microseconds throughout, which keeps the
kernel-style (integer-only) congestion controllers honest.
"""

from repro.netsim.events import EventQueue
from repro.netsim.packet import Packet
from repro.netsim.link import DropTailLink, LinkConfig
from repro.netsim.flow import CongestionController, Flow, FlowStats
from repro.netsim.simulator import NetworkSimulator, SimulationConfig, SimulationMetrics

__all__ = [
    "EventQueue",
    "Packet",
    "DropTailLink",
    "LinkConfig",
    "CongestionController",
    "Flow",
    "FlowStats",
    "NetworkSimulator",
    "SimulationConfig",
    "SimulationMetrics",
]
