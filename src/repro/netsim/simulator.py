"""Top-level network simulation wiring and metrics.

A :class:`NetworkSimulator` owns the event queue, one bottleneck link and a
set of flows, and routes link callbacks (deliveries, drops) back to the
owning flow.  :class:`SimulationMetrics` collects the two numbers the paper
reports in §5.0.3 -- bandwidth utilisation and average queueing delay --
plus throughput, loss rate and RTT statistics per flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.netsim.events import EventQueue
from repro.netsim.flow import CongestionController, Flow
from repro.netsim.link import DropTailLink, LinkConfig
from repro.netsim.packet import DEFAULT_MSS, Packet


@dataclass
class SimulationConfig:
    """Parameters of one emulation run (§5.0.3: 12 Mbps, 20 ms RTT)."""

    link: LinkConfig = field(default_factory=LinkConfig)
    duration_s: float = 10.0
    mss: int = DEFAULT_MSS
    #: Safety valve: maximum number of events processed before aborting.
    max_events: int = 2_000_000

    @property
    def duration_us(self) -> int:
        return int(self.duration_s * 1_000_000)


@dataclass
class FlowMetrics:
    """Per-flow results."""

    flow_id: int
    throughput_bps: float
    mean_rtt_ms: float
    packets_sent: int
    packets_acked: int
    packets_lost: int

    @property
    def loss_rate(self) -> float:
        if self.packets_sent == 0:
            return 0.0
        return self.packets_lost / self.packets_sent


@dataclass
class SimulationMetrics:
    """Link-level and per-flow results of one run."""

    utilization: float
    mean_queueing_delay_ms: float
    p95_queueing_delay_ms: float
    loss_rate: float
    duration_s: float
    p99_queueing_delay_ms: float = 0.0
    flows: List[FlowMetrics] = field(default_factory=list)

    def aggregate_throughput_bps(self) -> float:
        return sum(f.throughput_bps for f in self.flows)

    def jain_fairness(self, flow_ids: Optional[List[int]] = None) -> float:
        """Jain's fairness index over per-flow throughputs (1.0 = perfectly fair).

        ``flow_ids`` restricts the index to a subset of flows -- multi-flow
        scenarios measure fairness among the *candidate* flows only, so
        deliberately unfair cross traffic does not dominate the index.
        """
        rates = [
            f.throughput_bps
            for f in self.flows
            if flow_ids is None or f.flow_id in flow_ids
        ]
        if not rates or all(r == 0 for r in rates):
            return 1.0
        numerator = sum(rates) ** 2
        denominator = len(rates) * sum(r * r for r in rates)
        return numerator / denominator if denominator else 1.0


class NetworkSimulator:
    """Builds and runs one bottleneck-link scenario."""

    def __init__(self, config: Optional[SimulationConfig] = None):
        self.config = config or SimulationConfig()
        self.events = EventQueue()
        self.link = DropTailLink(self.events, self.config.link)
        self.link.set_delivery_callback(self._on_delivery)
        self.link.set_drop_callback(self._on_drop)
        self._flows: Dict[int, Flow] = {}

    # -- construction ----------------------------------------------------------------

    def add_flow(
        self,
        controller: CongestionController,
        flow_id: Optional[int] = None,
        start_at_s: float = 0.0,
    ) -> Flow:
        """Create a flow using ``controller`` and schedule its start."""
        fid = flow_id if flow_id is not None else len(self._flows)
        if fid in self._flows:
            raise ValueError(f"duplicate flow id {fid}")
        flow = Flow(
            flow_id=fid,
            events=self.events,
            link=self.link,
            controller=controller,
            mss=self.config.mss,
        )
        self._flows[fid] = flow
        flow.start(at_us=int(start_at_s * 1_000_000))
        return flow

    @property
    def flows(self) -> List[Flow]:
        return list(self._flows.values())

    # -- link callbacks ----------------------------------------------------------------

    def _on_delivery(self, packet: Packet, now: int) -> None:
        flow = self._flows.get(packet.flow_id)
        if flow is not None:
            flow.handle_delivery(packet, now)

    def _on_drop(self, packet: Packet, now: int) -> None:
        flow = self._flows.get(packet.flow_id)
        if flow is not None:
            flow.handle_drop(packet, now)

    # -- execution ------------------------------------------------------------------------

    def run(self) -> SimulationMetrics:
        """Run for the configured duration and return the metrics."""
        if not self._flows:
            raise ValueError("add at least one flow before running the simulation")
        duration_us = self.config.duration_us
        self.events.run_until(duration_us, max_events=self.config.max_events)
        for flow in self._flows.values():
            flow.stop()

        link_stats = self.link.stats
        flow_metrics = [
            FlowMetrics(
                flow_id=flow.flow_id,
                throughput_bps=flow.stats.throughput_bps(duration_us),
                mean_rtt_ms=flow.stats.mean_rtt_ms(),
                packets_sent=flow.stats.packets_sent,
                packets_acked=flow.stats.packets_acked,
                packets_lost=flow.stats.packets_lost,
            )
            for flow in self._flows.values()
        ]
        return SimulationMetrics(
            utilization=link_stats.utilization(self.config.link.rate_bps, duration_us),
            mean_queueing_delay_ms=link_stats.mean_queueing_delay_ms(),
            p95_queueing_delay_ms=link_stats.p95_queueing_delay_ms(),
            p99_queueing_delay_ms=link_stats.p99_queueing_delay_ms(),
            loss_rate=link_stats.loss_rate(),
            duration_s=self.config.duration_s,
            flows=flow_metrics,
        )


def run_single_flow(
    controller: CongestionController,
    config: Optional[SimulationConfig] = None,
) -> SimulationMetrics:
    """Convenience: one flow, one bottleneck, default §5 parameters."""
    simulator = NetworkSimulator(config)
    simulator.add_flow(controller)
    return simulator.run()
