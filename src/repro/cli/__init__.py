"""The ``repro`` command-line package (``python -m repro``).

:mod:`repro.cli.main` parses commands and drives the run/report plumbing;
:mod:`repro.cli.render` holds the pure search/sweep report renderers.
"""

from repro.cli.main import build_parser, main

__all__ = ["build_parser", "main"]
