"""Report rendering for search runs and sweeps.

These renderers are pure functions of the *stored* dictionaries (spec.json /
result.json / sweep.json), which is what makes ``repro report`` reproduce a
``repro run``'s stdout byte-for-byte from the artifact directory alone: both
commands render the same on-disk dictionaries.  Search statistics are
computed by rebuilding the :class:`~repro.core.results.SearchResult` and
using its own methods, so every rate has exactly one definition.
Experiment reports use the registered reducer instead (see
:mod:`repro.experiments.registry`).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.artifacts import search_result_from_dict
from repro.core.results import SearchResult

#: Maximum rows of the candidate x scenario breakdown table.
SCENARIO_TABLE_ROWS = 8


def _scenario_breakdown(res: SearchResult) -> List[str]:
    """The candidate x scenario score table of a multi-scenario run.

    Rows are the top-scoring valid candidates (aggregate order, candidate id
    breaking ties, so the table is a pure function of the stored result);
    columns follow the matrix's scenario order.
    """
    scored = [
        c
        for c in res.candidates
        if c.valid and c.evaluation is not None and c.evaluation.scenario_scores
    ]
    if not scored:
        return []
    scored.sort(key=lambda c: (-c.score, c.candidate.candidate_id))
    top = scored[:SCENARIO_TABLE_ROWS]
    scenarios = list(top[0].evaluation.scenario_scores)
    id_width = max(len("candidate"), max(len(c.candidate.candidate_id) for c in top))
    widths = [max(len(name), 9) for name in scenarios]
    lines = ["", f"Per-scenario scores (top {len(top)} candidates):"]
    header = f"  {'candidate':<{id_width}} {'aggregate':>10}"
    for name, width in zip(scenarios, widths):
        header += f"  {name:>{width}}"
    lines.append(header)
    for candidate in top:
        row = f"  {candidate.candidate.candidate_id:<{id_width}} {candidate.score:>10.4f}"
        for name, width in zip(scenarios, widths):
            score = candidate.evaluation.scenario_scores.get(name)
            cell = f"{score:.4f}" if score is not None else "-"
            row += f"  {cell:>{width}}"
        lines.append(row)
    return lines


def _format_bounds(bounds: Dict) -> str:
    """``[lo, hi]`` with ``None`` endpoints rendered as unbounded."""
    lo = bounds.get("lo")
    hi = bounds.get("hi")
    return f"[{'-inf' if lo is None else lo}, {'+inf' if hi is None else hi}]"


def certification_lines(cert: Dict) -> List[str]:
    """Human-readable form of a stored interval certificate."""
    lines = ["", "Certified bounds:"]
    lines.append(
        f"  {cert.get('function', '?')} in {_format_bounds(cert.get('bounds', {}))}"
    )
    clamped = cert.get("clamped_bounds")
    if clamped:
        lines.append(f"  applied window in {_format_bounds(clamped)}")
    notes = []
    if cert.get("constant"):
        notes.append("constant output")
    elif not cert.get("depends_on_inputs", True):
        notes.append("independent of all inputs")
    if cert.get("may_error"):
        notes.append("may raise at runtime")
    if notes:
        lines.append("  " + "; ".join(notes))
    return lines


def render_search_report(spec: Dict, result: Dict) -> str:
    """The generic report for a RunSpec-driven search run."""
    res = search_result_from_dict(result)
    valid = res.valid_candidates()
    lines = [
        f"Search run: {spec.get('name', '?')} "
        f"(domain {spec.get('domain', '?')}, seed {spec.get('seed', '?')})",
        f"  template / context   : {res.template_name} / "
        f"{res.context_name or '<none>'}",
        f"  rounds completed     : {len(res.rounds)}",
        f"  candidates           : {res.total_candidates} ({len(valid)} valid)",
        f"  first-pass check rate: {res.first_pass_check_rate() * 100:.1f}%",
        f"  eval cache hit rate  : {res.eval_cache_hit_rate() * 100:.1f}% "
        f"({res.eval_cache_hits}/{res.eval_cache_lookups})",
        f"  prompt/completion tok: {res.prompt_tokens} / {res.completion_tokens}",
        f"  estimated API cost   : ${res.estimated_cost_usd:.4f}",
    ]
    if res.best is not None:
        lines.append(
            f"  best candidate       : {res.best.candidate.candidate_id} "
            f"(score {res.best.score:.4f})"
        )
        lines.extend(_scenario_breakdown(res))
        certification = result.get("certification")
        if certification:
            lines.extend(certification_lines(certification))
        lines.append("")
        lines.append("Best heuristic:")
        lines.append(res.best_source())
    else:
        lines.append("  best candidate       : none (no valid candidate)")
        lines.extend(_scenario_breakdown(res))
    return "\n".join(lines)


def render_sweep_report(sweep: Dict) -> str:
    """The report for a seed sweep (from sweep.json)."""
    spec = sweep.get("spec", {})
    runs: List[Dict] = sweep.get("runs", [])
    lines = [
        f"Seed sweep: {spec.get('name', '?')} "
        f"(domain {spec.get('domain', '?')}, {len(runs)} seeds)",
        f"{'seed':>6} {'best score':>12} {'valid':>7} {'total':>7}  run dir",
    ]
    for run in runs:
        score = (
            f"{run['best_score']:.4f}" if run["best_score"] is not None else "-"
        )
        lines.append(
            f"{run['seed']:>6} {score:>12} {run['valid_candidates']:>7} "
            f"{run['total_candidates']:>7}  {run['dir']}"
        )
    best_seed = sweep.get("best_seed")
    lines.append(
        f"best seed: {best_seed}" if best_seed is not None else "best seed: none"
    )
    return "\n".join(lines)
