"""The unified ``repro`` command line: ``python -m repro <command>``.

Commands
--------

``run <experiment | spec.json>``
    Run a registered experiment (overriding parameters with ``--set k=v``) or
    a declarative :class:`~repro.core.spec.RunSpec` file, store the run as a
    versioned artifact directory, and print the report.  ``--executor`` /
    ``--max-workers`` override the spec's engine parallelism and
    ``--backend`` its DSL execution backend without editing the JSON;
    ``--pipeline`` turns on generation/evaluation overlap and ``--provider``
    layers an LLM provider block (retries, timeouts, batch size, prompt
    cache) onto the spec -- none of which change the run's results.
``sweep <spec.json>``
    Run the spec once per seed (``--seeds`` overrides the spec's list),
    seeds in parallel, and print the sweep table.
``resume <run dir>``
    Continue an interrupted checkpointed search from its artifact directory.
``experiments list``
    The experiment registry with defaults and descriptions.
``workloads list [--domain D]`` / ``workloads show <name>``
    The workload registry: every named evaluation scenario (cache traces,
    netsim topologies) a spec's ``domain_kwargs["workloads"]`` matrix can
    reference.
``store stats|gc|clear``
    Inspect and maintain the persistent evaluation store (the engine's disk
    memo tier, default ``<artifact root>/evalstore``); searches warm-start
    from it across processes.  ``--eval-store PATH`` / ``--no-eval-store``
    on ``run``/``sweep``/``resume`` redirect or disable it.  With
    ``--prompt-cache`` the same subcommands maintain the on-disk LLM prompt
    cache (default ``<artifact root>/promptcache``) instead.  ``stats``
    reports the distinct registered ``writers`` (runs, sweep seeds,
    distributed workers) that have shared the tree.
``worker <queue dir>``
    Join a distributed search as a worker process: claim tasks from the
    coordinator's spool queue (see ``--executor distributed`` and the
    engine's ``queue_dir``), evaluate them, and write results back --
    through the shared evaluation store when the coordinator attached one.
    Run it on any host that can reach the queue directory.
``report <run dir>``
    Re-render a stored run's report from its artifacts, byte-identical to
    the original ``run`` output, without re-running anything.
``certify <run dir | program file>``
    Certify interval bounds on a run's winning candidate (or any DSL
    program file) with the abstract interpreter: the output's provable
    ``[lo, hi]`` range over the domain's declared input intervals, whether
    it is constant or input-independent, and the window the evaluator's
    output clamp forces it into.  ``--static-screen`` on ``run``/``sweep``
    uses the same analysis to reject degenerate candidates before
    evaluation.

Reports go to stdout; progress and artifact paths go to stderr, so stdout
can be diffed between ``run`` and ``report``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.cli.render import render_search_report, render_sweep_report
from repro.core import artifacts
from repro.core.artifacts import search_result_from_dict
from repro.core.events import ProgressPrinter
from repro.core.executors import available_executors
from repro.dsl.compile import BACKENDS as DSL_BACKENDS
from repro.core.spec import EVAL_STORE_DIRNAME, RunSpec, run, run_sweep
from repro.core.store import EvaluationStore
from repro.llm.cache import PROMPT_CACHE_DIRNAME, PromptCache
from repro.experiments import registry

DEFAULT_ARTIFACT_ROOT = "runs"


class CliError(Exception):
    """User-facing CLI failure (printed without a traceback)."""


def _parse_set(values: List[str]) -> Dict[str, Any]:
    """``--set key=value`` pairs; values are parsed as JSON when possible."""
    overrides: Dict[str, Any] = {}
    for item in values:
        key, sep, raw = item.partition("=")
        if not sep or not key:
            raise CliError(f"--set expects key=value, got {item!r}")
        try:
            overrides[key] = json.loads(raw)
        except json.JSONDecodeError:
            overrides[key] = raw
    return overrides


def _store(args: argparse.Namespace) -> Optional[artifacts.ArtifactStore]:
    if getattr(args, "no_artifacts", False):
        return None
    return artifacts.ArtifactStore(args.artifacts)


def _note(text: str) -> None:
    try:
        print(text, file=sys.stderr)
    except BrokenPipeError:
        # A consumer closed stderr; the run itself succeeded and the report
        # already reached stdout -- losing the side note must not fail the run.
        pass


def _progress_subscribers(args: argparse.Namespace) -> list:
    if getattr(args, "quiet", False):
        return []
    return [ProgressPrinter(sys.stderr, verbose=getattr(args, "verbose", False))]


def _eval_store_arg(args: argparse.Namespace):
    """The ``eval_store`` argument for run()/run_sweep() from the CLI flags."""
    if getattr(args, "no_eval_store", False):
        return None
    explicit = getattr(args, "eval_store", None)
    return explicit if explicit is not None else "auto"


def _engine_overrides(args: argparse.Namespace) -> Dict[str, Any]:
    overrides: Dict[str, Any] = {}
    if getattr(args, "executor", None) is not None:
        # Validated here (not via argparse choices) so an unknown name gets
        # the same "unknown <thing> ...; available: ..." message and exit
        # code every other registry miss produces.
        if args.executor not in available_executors():
            raise CliError(
                f"unknown executor {args.executor!r}; "
                f"available: {available_executors()}"
            )
        overrides["executor"] = args.executor
    if getattr(args, "max_workers", None) is not None:
        if args.max_workers <= 0:
            raise CliError("--max-workers must be positive")
        overrides["max_workers"] = args.max_workers
    if getattr(args, "backend", None) is not None:
        overrides["dsl_backend"] = args.backend
    if getattr(args, "queue_dir", None) is not None:
        overrides["queue_dir"] = args.queue_dir
    if getattr(args, "static_screen", False):
        overrides["static_screen"] = True
    return overrides


def _apply_engine_overrides(spec: RunSpec, args: argparse.Namespace) -> RunSpec:
    """Layer ``--executor`` / ``--max-workers`` / ``--backend`` onto a spec's
    engine block."""
    overrides = _engine_overrides(args)
    if not overrides:
        return spec
    data = spec.to_dict()
    data["engine"] = {**data["engine"], **overrides}
    return RunSpec.from_dict(data)


def _apply_pipeline_overrides(spec: RunSpec, args: argparse.Namespace) -> RunSpec:
    """Layer ``--pipeline`` / ``--provider`` onto a spec without editing the
    JSON.

    ``--provider`` accepts a bare provider name (``synthetic``) or a JSON
    object (``{"name": "synthetic", "retries": 2, "batch_size": 4,
    "prompt_cache": "runs/promptcache"}``); it lands in the spec's
    ``llm["provider"]`` block and is validated by
    :class:`~repro.llm.client.ProviderConfig`.
    """
    data: Optional[Dict[str, Any]] = None
    if getattr(args, "pipeline", False):
        data = spec.to_dict()
        data["search"] = {**data["search"], "pipeline": True}
    raw = getattr(args, "provider", None)
    if raw is not None:
        try:
            ref: Any = json.loads(raw)
        except json.JSONDecodeError:
            ref = raw  # a bare provider name
        if not isinstance(ref, (str, dict)):
            raise CliError(
                f"--provider expects a provider name or a JSON object, got {raw!r}"
            )
        if data is None:
            data = spec.to_dict()
        data["llm"] = {**data["llm"], "provider": ref}
    if data is None:
        return spec
    return RunSpec.from_dict(data)


def _apply_fidelity_override(spec: RunSpec, args: argparse.Namespace) -> RunSpec:
    """Layer ``--fidelity`` onto a spec without editing the JSON.

    Accepted forms: ``off`` (disable the spec's ladder), a comma-separated
    rung list (``0.1,0.3,1.0``), or a JSON object
    (``{"rungs": [...], "eta": 4, "mode": "shadow"}``).
    """
    raw = getattr(args, "fidelity", None)
    if raw is None:
        return spec
    if raw.strip().lower() in ("off", "none"):
        ref = None
    else:
        try:
            ref = json.loads(raw)
        except json.JSONDecodeError:
            try:
                ref = [float(part) for part in raw.split(",") if part.strip()]
            except ValueError:
                raise CliError(
                    f"--fidelity expects 'off', a comma-separated rung list "
                    f"or a JSON object, got {raw!r}"
                ) from None
        if not isinstance(ref, (list, dict)):
            # e.g. a bare number: json.loads accepts it but a schedule needs
            # a rung list or a mapping.
            raise CliError(
                f"--fidelity expects 'off', a comma-separated rung list "
                f"or a JSON object, got {raw!r}"
            )
    data = spec.to_dict()
    data["fidelity"] = ref
    return RunSpec.from_dict(data)


def _search_report(outcome) -> str:
    """Render a finished search run's report.

    When artifacts were written, render from the stored spec.json/result.json
    -- the same files `repro report` reads -- so run/report byte-identity
    holds by construction (and the result is not serialized a second time).
    """
    if outcome.artifact_dir is not None:
        artifact = artifacts.RunArtifact(outcome.artifact_dir)
        return render_search_report(artifact.spec, artifact.result)
    return render_search_report(
        outcome.spec.for_seed(outcome.seed).to_dict(),
        artifacts.search_result_to_dict(outcome.result),
    )


# -- commands -----------------------------------------------------------------------


def _cmd_run(args: argparse.Namespace) -> int:
    target = args.target
    overrides = _parse_set(args.set or [])
    store = _store(args)

    # A target is a spec file when it *looks* like a path (a .json suffix or
    # a path separator); bare names always go to the experiment registry, so
    # a stray file or directory in cwd cannot shadow an experiment.
    spec_path = Path(target)
    looks_like_path = target.endswith(".json") or os.sep in target
    if looks_like_path:
        if not spec_path.is_file():
            hint = (
                "; for a run directory use `repro report` or `repro resume`"
                if spec_path.is_dir()
                else ""
            )
            raise CliError(f"{target} is not a RunSpec file{hint}")
        if overrides:
            raise CliError(
                "--set overrides apply to registered experiments; "
                "edit the spec file to change a RunSpec"
            )
        spec = RunSpec.from_file(spec_path)
        if spec.is_sweep and args.seed is None:
            raise CliError(
                f"spec {spec.name!r} declares a seed sweep {spec.seeds}; "
                "use `python -m repro sweep` (or pass --seed to run one)"
            )
        if args.seed is not None:
            spec = spec.for_seed(args.seed)
        spec = _apply_engine_overrides(spec, args)
        spec = _apply_fidelity_override(spec, args)
        spec = _apply_pipeline_overrides(spec, args)
        outcome = run(
            spec,
            store=store,
            subscribers=_progress_subscribers(args),
            eval_store=_eval_store_arg(args),
        )
        print(_search_report(outcome))
        if outcome.artifact_dir is not None:
            _note(f"artifacts: {outcome.artifact_dir}")
        return 0

    if _engine_overrides(args):
        raise CliError(
            "--executor/--max-workers/--backend/--static-screen apply to "
            "RunSpec runs; registered experiments manage their own engine "
            "configuration"
        )
    if getattr(args, "fidelity", None) is not None:
        raise CliError(
            "--fidelity applies to RunSpec runs; registered experiments "
            "do not use the multi-fidelity scheduler"
        )
    if getattr(args, "pipeline", False) or getattr(args, "provider", None) is not None:
        raise CliError(
            "--pipeline/--provider apply to RunSpec runs; registered "
            "experiments do not use the pipelined round scheduler"
        )
    if getattr(args, "eval_store", None) is not None or getattr(
        args, "no_eval_store", False
    ):
        raise CliError(
            "--eval-store/--no-eval-store apply to RunSpec runs; registered "
            "experiments do not use the evaluation store"
        )
    try:
        experiment = registry.get_experiment(target)
    except KeyError as exc:
        raise CliError(str(exc)) from exc
    if args.seed is not None:
        if "seed" not in experiment.params:
            raise CliError(
                f"experiment {experiment.name!r} has no seed parameter; "
                "see `repro experiments list` for its --set options"
            )
        overrides["seed"] = args.seed
    params = registry.merge_params(experiment, overrides)
    runner_kwargs = dict(params)
    if experiment.accepts_progress:
        # Presentation-only: not part of params, so it does not enter the
        # stored spec.json or the run directory's config hash.
        runner_kwargs["progress"] = not args.quiet
    payload = experiment.runner(**runner_kwargs)
    print(experiment.renderer(payload))
    if store is not None:
        config_hash = registry.params_hash(experiment.name, params)
        run_dir = artifacts.write_experiment_dir(
            store.experiment_dir(experiment.name, config_hash),
            experiment=experiment.name,
            params=params,
            payload=payload,
            config_hash=config_hash,
        )
        _note(f"artifacts: {run_dir}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = RunSpec.from_file(args.spec)
    if args.seeds:
        seeds = [int(s) for s in args.seeds]
        spec = RunSpec.from_dict({**spec.to_dict(), "seeds": seeds})
    spec = _apply_engine_overrides(spec, args)
    spec = _apply_fidelity_override(spec, args)
    spec = _apply_pipeline_overrides(spec, args)
    # Progress printing only when seeds run one at a time: concurrent seeds
    # would interleave unattributed lines through one shared printer.
    serial = args.parallel == 1 or len(spec.seed_list) == 1
    outcome = run_sweep(
        spec,
        store=_store(args),
        subscribers=_progress_subscribers(args) if serial else (),
        max_parallel=args.parallel,
        eval_store=_eval_store_arg(args),
    )
    if outcome.artifact_dir is not None:
        print(render_sweep_report(artifacts.load_sweep(outcome.artifact_dir)))
        _note(f"artifacts: {outcome.artifact_dir}")
    else:
        runs = [
            {
                "seed": o.seed,
                "dir": "-",
                "best_score": o.result.best.score if o.result.best else None,
                "valid_candidates": len(o.result.valid_candidates()),
                "total_candidates": o.result.total_candidates,
            }
            for o in outcome.outcomes
        ]
        best = outcome.best
        print(
            render_sweep_report(
                {"spec": spec.to_dict(), "runs": runs,
                 "best_seed": best.seed if best else None}
            )
        )
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    run_dir = Path(args.run_dir)
    spec_file = run_dir / artifacts.SPEC_FILE
    if not spec_file.exists():
        raise CliError(
            f"{run_dir} is not a run directory (no {artifacts.SPEC_FILE}); "
            "for a sweep, resume one seed-<n> subdirectory"
        )
    spec_data = json.loads(spec_file.read_text(encoding="utf-8"))
    if "experiment" in spec_data:
        raise CliError(
            "experiment runs are not resumable; re-run with "
            f"`python -m repro run {spec_data['experiment']}`"
        )
    spec = RunSpec.from_dict(spec_data)
    if not spec.checkpoint:
        raise CliError(
            f"spec {spec.name!r} was run without checkpointing; nothing to resume"
        )
    outcome = run(
        spec,
        run_dir=run_dir,
        subscribers=_progress_subscribers(args),
        eval_store=_eval_store_arg(args),
    )
    print(_search_report(outcome))
    _note(f"artifacts: {outcome.artifact_dir}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    if args.action != "list":  # pragma: no cover - argparse restricts choices
        raise CliError(f"unknown experiments action {args.action!r}")
    names = registry.available_experiments()
    width = max(len(name) for name in names)
    for name in names:
        experiment = registry.get_experiment(name)
        print(f"{name:<{width}}  {experiment.description}")
        defaults = " ".join(f"{k}={json.dumps(v)}" for k, v in experiment.params.items())
        print(f"{'':<{width}}  defaults: {defaults}")
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    from repro.workloads import available_workloads, get_workload

    if args.action == "list":
        names = available_workloads(domain=args.domain)
        if not names:
            raise CliError(
                f"no workloads registered"
                + (f" for domain {args.domain!r}" if args.domain else "")
            )
        width = max(len(name) for name in names)
        print(f"{'name':<{width}}  {'domain':<8} {'kind':<12} {'est. length':<12} description")
        for name in names:
            spec = get_workload(name)
            print(
                f"{name:<{width}}  {spec.domain:<8} {spec.kind:<12} "
                f"{spec.estimated_length():<12} {spec.description}"
            )
        return 0
    # show
    if not args.name:
        raise CliError("workloads show needs a workload name")
    try:
        spec = get_workload(args.name)
    except KeyError as exc:
        raise CliError(str(exc).strip('"')) from exc
    print(f"workload   : {spec.name}")
    print(f"domain     : {spec.domain}")
    print(f"kind       : {spec.kind}")
    print(f"est. length: {spec.estimated_length()}")
    if spec.description:
        print(f"description: {spec.description}")
    print("params:")
    for key, value in spec.params:
        print(f"  {key} = {json.dumps(value)}")
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    prompt_cache = getattr(args, "prompt_cache", False)
    root = args.store
    if root is None:
        dirname = PROMPT_CACHE_DIRNAME if prompt_cache else EVAL_STORE_DIRNAME
        root = os.path.join(DEFAULT_ARTIFACT_ROOT, dirname)
    store = PromptCache(root) if prompt_cache else EvaluationStore(root)
    if args.action == "stats":
        stats = store.stats()
        if args.json:
            print(json.dumps(stats.to_dict(), indent=2, sort_keys=True))
            return 0
        print(f"store         : {stats.root}")
        print(f"schema version: {stats.schema_version}")
        print(f"entries       : {stats.entries}")
        print(f"total bytes   : {stats.total_bytes}")
        # The prompt cache's first-level directories are key shards, not
        # per-eval-config partitions -- label them honestly.
        label = "key shards" if prompt_cache else "eval configs"
        print(f"{label:<14}: {stats.eval_configs}")
        print(f"writers       : {stats.writers}")
        return 0
    if args.action == "gc":
        if args.max_bytes is None and args.max_entries is None:
            raise CliError(
                "store gc needs a bound: --max-bytes and/or --max-entries"
            )
        outcome = store.gc(max_entries=args.max_entries, max_bytes=args.max_bytes)
        print(
            f"removed {outcome.removed_entries} entries "
            f"({outcome.freed_bytes} bytes); "
            f"{outcome.remaining_entries} entries "
            f"({outcome.remaining_bytes} bytes) remain"
        )
        return 0
    # clear
    removed = store.clear()
    print(f"removed {removed} entries from {store.root}")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.core.queue import run_worker

    queue_dir = Path(args.queue_dir)
    if args.poll_s is not None and args.poll_s <= 0:
        raise CliError("--poll-s must be positive")
    if args.max_idle_s is not None and args.max_idle_s <= 0:
        raise CliError("--max-idle-s must be positive")
    run_worker(
        queue_dir,
        worker_id=args.worker_id,
        poll_s=args.poll_s if args.poll_s is not None else 0.05,
        max_idle_s=args.max_idle_s,
        once=args.once,
        stop_file=Path(args.stop_file) if args.stop_file else None,
        quiet=args.quiet,
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    path = Path(args.run_dir)
    if artifacts.is_sweep_dir(path):
        print(render_sweep_report(artifacts.load_sweep(path)))
        return 0
    try:
        artifact = artifacts.RunArtifact(path)
        artifact.metadata  # enforces the artifact-format version gate
    except FileNotFoundError as exc:
        if (path / artifacts.SPEC_FILE).exists():
            raise CliError(
                f"{path} is incomplete (no metadata.json) -- was the run "
                "interrupted? `repro resume` can finish a checkpointed run"
            ) from exc
        raise CliError(str(exc)) from exc
    result = _load_result(artifact)
    if artifact.kind == "experiment":
        name = artifact.spec["experiment"]
        try:
            experiment = registry.get_experiment(name)
        except KeyError as exc:
            raise CliError(str(exc)) from exc
        print(experiment.renderer(result))
    else:
        print(render_search_report(artifact.spec, result))
    return 0


def _load_result(artifact: artifacts.RunArtifact) -> Dict[str, Any]:
    """The run's stored result, with missing/corrupt files named explicitly."""
    result_path = artifact.path / artifacts.RESULT_FILE
    try:
        return artifact.result
    except FileNotFoundError as exc:
        raise CliError(
            f"{result_path} is missing -- was the run interrupted? "
            "`repro resume` can finish a checkpointed run"
        ) from exc
    except ValueError as exc:  # json.JSONDecodeError: truncated/corrupt file
        raise CliError(f"{result_path} is corrupt or truncated: {exc}") from exc


def _infer_certify_domain(function_name: str) -> str:
    """Map a program's function name to the domain that evaluates it."""
    inferred = {"priority": "caching", "cong_control": "cc"}.get(function_name)
    if inferred is None:
        raise CliError(
            f"cannot infer a domain from function {function_name!r}; "
            "pass --domain (e.g. caching or cc)"
        )
    return inferred


def _certify_intervals(domain_name: str):
    from repro.core.domain import get_domain

    try:
        domain = get_domain(domain_name)
    except KeyError as exc:
        raise CliError(str(exc).strip('"')) from exc
    intervals = domain.input_intervals()
    if intervals is None:
        raise CliError(
            f"domain {domain_name!r} declares no input intervals; "
            "nothing to certify"
        )
    return intervals


def _parse_certify_program(source: str, origin: str):
    from repro.dsl.errors import DslError
    from repro.dsl.parser import parse

    try:
        return parse(source)
    except DslError as exc:
        raise CliError(f"{origin} is not a valid DSL program: {exc}") from exc


def _cmd_certify(args: argparse.Namespace) -> int:
    from repro.dsl.abstract import certify_program

    path = Path(args.target)
    if path.is_dir():
        artifact = artifacts.RunArtifact(path)
        artifact.metadata  # enforces the artifact-format version gate
        if artifact.kind != "search":
            raise CliError(
                f"{path} holds an experiment run; certify needs a search "
                "run directory or a DSL program file"
            )
        result = search_result_from_dict(_load_result(artifact))
        if result.best is None:
            raise CliError(f"{path} has no winning candidate to certify")
        program = _parse_certify_program(result.best.source, f"{path} winner")
        domain_name = args.domain or artifact.spec.get("domain", "")
    elif path.is_file():
        program = _parse_certify_program(
            path.read_text(encoding="utf-8"), str(path)
        )
        domain_name = args.domain or _infer_certify_domain(program.name)
    else:
        raise CliError(
            f"{path} is neither a run directory nor a DSL program file"
        )
    certificate = certify_program(program, _certify_intervals(domain_name))
    if args.json:
        print(json.dumps(certificate.to_dict(), indent=2, sort_keys=True))
        return 0
    print(f"domain     : {domain_name}")
    print(f"program    : {program.name}")
    print(f"certificate: {certificate.describe()}")
    return 0


# -- entry point --------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Unified runner for PolicySmith searches and paper experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--artifacts",
            default=DEFAULT_ARTIFACT_ROOT,
            help=f"artifact store root (default: ./{DEFAULT_ARTIFACT_ROOT})",
        )
        p.add_argument(
            "--no-artifacts",
            action="store_true",
            help="do not write a run directory",
        )
        p.add_argument("--quiet", action="store_true", help="no progress on stderr")
        p.add_argument(
            "--verbose", action="store_true", help="per-candidate progress lines"
        )
        add_eval_store(p)

    def add_eval_store(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--eval-store",
            default=None,
            metavar="PATH",
            help="evaluation-store directory (default: <artifacts>/"
            f"{EVAL_STORE_DIRNAME}; searches warm-start from it)",
        )
        p.add_argument(
            "--no-eval-store",
            action="store_true",
            help="disable the persistent evaluation store for this run",
        )

    def add_engine_overrides(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--executor",
            default=None,
            metavar="NAME",
            help="override the spec's engine executor backend "
            f"(one of: {', '.join(available_executors())})",
        )
        p.add_argument(
            "--max-workers",
            type=int,
            default=None,
            help="override the spec's engine worker count",
        )
        p.add_argument(
            "--queue-dir",
            default=None,
            metavar="PATH",
            help="distributed executor: place the spool queue at a fixed "
            "path (e.g. a shared mount) so `repro worker` processes on "
            "other hosts can join",
        )
        p.add_argument(
            "--backend",
            default=None,
            choices=DSL_BACKENDS,
            help="override the DSL execution backend candidates are "
            "evaluated with (scores are bit-identical across backends)",
        )
        p.add_argument(
            "--fidelity",
            default=None,
            metavar="LADDER",
            help="override the spec's multi-fidelity schedule: 'off', a "
            "comma-separated rung list (e.g. 0.1,0.3,1.0) or a JSON object "
            '(e.g. {"rungs": [0.1, 1.0], "eta": 4, "mode": "shadow"})',
        )
        p.add_argument(
            "--static-screen",
            action="store_true",
            help="reject provably-degenerate candidates (constant, "
            "input-independent or clamp-pinned output) with the interval "
            "abstract interpreter before any evaluation",
        )
        p.add_argument(
            "--pipeline",
            action="store_true",
            help="overlap candidate generation with evaluation (results are "
            "byte-identical to the serial schedule)",
        )
        p.add_argument(
            "--provider",
            default=None,
            metavar="NAME|JSON",
            help="LLM provider block: a bare name ('synthetic') or a JSON "
            'object (e.g. {"name": "synthetic", "retries": 2, '
            '"batch_size": 4, "prompt_cache": "runs/promptcache"})',
        )

    p_run = sub.add_parser("run", help="run an experiment by name or a RunSpec file")
    p_run.add_argument("target", help="registered experiment name or path to spec.json")
    p_run.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="override an experiment parameter (repeatable; values parsed as JSON)",
    )
    p_run.add_argument("--seed", type=int, default=None, help="override the spec seed")
    add_common(p_run)
    add_engine_overrides(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_sweep = sub.add_parser("sweep", help="run a RunSpec once per seed, in parallel")
    p_sweep.add_argument("spec", help="path to a RunSpec JSON file")
    p_sweep.add_argument(
        "--seeds", nargs="+", default=None, help="override the spec's seed list"
    )
    p_sweep.add_argument(
        "--parallel", type=int, default=None, help="max concurrent seeds"
    )
    add_common(p_sweep)
    add_engine_overrides(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_resume = sub.add_parser(
        "resume", help="resume a checkpointed search from its run directory"
    )
    p_resume.add_argument("run_dir", help="artifact directory of the interrupted run")
    p_resume.add_argument("--quiet", action="store_true", help="no progress on stderr")
    p_resume.add_argument(
        "--verbose", action="store_true", help="per-candidate progress lines"
    )
    add_eval_store(p_resume)
    p_resume.set_defaults(func=_cmd_resume)

    p_store = sub.add_parser(
        "store", help="inspect/maintain the persistent evaluation store"
    )
    p_store.add_argument("action", choices=["stats", "gc", "clear"])
    p_store.add_argument(
        "--store",
        default=None,
        help="store directory (default: "
        f"./{os.path.join(DEFAULT_ARTIFACT_ROOT, EVAL_STORE_DIRNAME)}, or "
        f"./{os.path.join(DEFAULT_ARTIFACT_ROOT, PROMPT_CACHE_DIRNAME)} "
        "with --prompt-cache)",
    )
    p_store.add_argument(
        "--prompt-cache",
        action="store_true",
        help="operate on the LLM prompt cache instead of the evaluation store",
    )
    p_store.add_argument(
        "--max-bytes", type=int, default=None, help="gc: byte budget to shrink to"
    )
    p_store.add_argument(
        "--max-entries", type=int, default=None, help="gc: entry budget to shrink to"
    )
    p_store.add_argument(
        "--json", action="store_true", help="stats: machine-readable output"
    )
    p_store.set_defaults(func=_cmd_store)

    p_exp = sub.add_parser("experiments", help="inspect the experiment registry")
    p_exp.add_argument("action", choices=["list"])
    p_exp.set_defaults(func=_cmd_experiments)

    p_wl = sub.add_parser("workloads", help="inspect the workload registry")
    p_wl.add_argument("action", choices=["list", "show"])
    p_wl.add_argument("name", nargs="?", help="workload name (for show)")
    p_wl.add_argument(
        "--domain", default=None, help="restrict the listing to one domain"
    )
    p_wl.set_defaults(func=_cmd_workloads)

    p_worker = sub.add_parser(
        "worker",
        help="join a distributed search: claim and evaluate tasks from a "
        "coordinator's spool queue (run on any host sharing the path)",
    )
    p_worker.add_argument(
        "queue_dir", help="spool-queue directory (the coordinator's queue_dir)"
    )
    p_worker.add_argument(
        "--worker-id",
        default=None,
        help="stable worker identity (default: <hostname>-<pid>)",
    )
    p_worker.add_argument(
        "--poll-s",
        type=float,
        default=None,
        help="idle sleep between queue polls (default: 0.05)",
    )
    p_worker.add_argument(
        "--max-idle-s",
        type=float,
        default=None,
        help="exit after this long without claiming a task (default: run forever)",
    )
    p_worker.add_argument(
        "--once",
        action="store_true",
        help="process at most the currently-pending tasks, then exit",
    )
    p_worker.add_argument(
        "--stop-file",
        default=None,
        metavar="PATH",
        help="also exit when this file appears (used by coordinator-spawned "
        "workers; the queue's own 'stop' sentinel always applies)",
    )
    p_worker.add_argument(
        "--quiet", action="store_true", help="no join/progress lines on stderr"
    )
    p_worker.set_defaults(func=_cmd_worker)

    p_report = sub.add_parser(
        "report", help="re-render a stored run's report without re-running"
    )
    p_report.add_argument("run_dir", help="artifact directory (or sweep directory)")
    p_report.set_defaults(func=_cmd_report)

    p_certify = sub.add_parser(
        "certify",
        help="certify interval bounds of a run's winner or a DSL program file",
    )
    p_certify.add_argument(
        "target", help="run directory (certifies the winner) or DSL program file"
    )
    p_certify.add_argument(
        "--domain",
        default=None,
        help="domain whose input intervals to certify against (default: the "
        "run's domain, or inferred from the program's function name)",
    )
    p_certify.add_argument(
        "--json", action="store_true", help="machine-readable certificate"
    )
    p_certify.set_defaults(func=_cmd_certify)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        # Registry misses (unknown workload/domain/experiment names) raise
        # KeyError with an "unknown <thing> ...; available: ..." message;
        # surface those without a traceback.  Any other KeyError is an
        # internal bug and must stay loud and debuggable.
        message = exc.args[0] if exc.args else ""
        if isinstance(message, str) and message.startswith("unknown "):
            print(f"error: {message}", file=sys.stderr)
            return 2
        raise
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
