"""Result records produced by the evolutionary search."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.checker import CheckIssue
from repro.core.evaluator import EvaluationResult
from repro.dsl.ast import Program
from repro.dsl.codegen import to_source


@dataclass
class Candidate:
    """One candidate heuristic emitted by the Generator."""

    candidate_id: str
    source: str
    round_index: int
    parent_ids: List[str] = field(default_factory=list)
    repaired: bool = False
    origin: str = "generated"  # "seed" | "generated" | "repaired"


@dataclass
class ScoredCandidate:
    """A candidate together with its check and evaluation outcomes."""

    candidate: Candidate
    program: Optional[Program] = None
    check_ok: bool = False
    check_issues: List[CheckIssue] = field(default_factory=list)
    evaluation: Optional[EvaluationResult] = None

    @property
    def valid(self) -> bool:
        return self.check_ok and self.evaluation is not None and self.evaluation.valid

    @property
    def full_fidelity(self) -> bool:
        """True unless the fidelity ladder screened this candidate out at a
        sub-full rung -- ranking and selection must only consume candidates
        for which this holds (a low-fidelity score is not comparable)."""
        return self.evaluation is None or self.evaluation.full_fidelity

    @property
    def score(self) -> float:
        if self.evaluation is None:
            return float("-inf")
        return self.evaluation.score

    @property
    def source(self) -> str:
        if self.program is not None:
            return to_source(self.program)
        return self.candidate.source


@dataclass
class RoundSummary:
    """Aggregates for one round of the search (used in reports and tests).

    ``eval_cache_lookups`` counts candidates that reached the evaluation
    stage; ``eval_cache_hits`` how many of those were satisfied from the
    engine's dedup/memoization cache instead of a fresh simulation, and
    ``unique_evaluations`` the unique programs that missed the in-memory
    tier (``store_hits`` of those were then served by the persistent
    evaluation store rather than simulated).  ``store_lookups`` /
    ``store_hits`` are volatile -- they depend on what an attached store
    happens to contain -- so the artifact writer zeroes them in
    ``result.json`` / ``rounds.jsonl``; live values land in
    ``metadata.json``.  Under multi-scenario fitness, ``scenario_best`` maps
    each workload scenario to the best per-scenario score any valid
    candidate of this round achieved (empty for single-scenario runs).

    ``rung_evaluations`` / ``rung_promotions`` / ``rung_eliminations`` count
    the fidelity ladder's traffic this round (0 without a schedule).  Like
    the store counters they describe how evaluation was *budgeted*, not what
    the search found, so the artifact writer zeroes them in ``result.json``
    / ``rounds.jsonl`` (live values land in ``metadata.json``) -- which is
    what keeps a shadow-mode ladder run byte-identical to a ladder-disabled
    one.

    ``screen_checks`` / ``screened`` count the static screener's traffic
    this round (0 with ``engine.static_screen`` off).  They are volatile in
    the same sense as the store counters -- rejecting a degenerate candidate
    before evaluation is a budgeting decision, not a search finding -- so
    the artifact writer zeroes them too (live values land in
    ``metadata.json["static_screen"]``), which is what keeps a run in which
    nothing screens byte-identical with the knob on or off.  (A run that
    *does* screen differs exactly by the screened candidates' sentinel
    entries -- that divergence is the feature.)

    ``generation_s`` / ``evaluation_s`` / ``overlap_s`` time the round's two
    phases and how much of them ran concurrently (always 0 on the serial
    path).  They are wall-clock, hence volatile: the artifact writer zeroes
    them like the store counters (summed live values land in
    ``metadata.json["pipeline"]``), which is what keeps a pipelined run
    byte-identical to a serial one.
    """

    round_index: int
    generated: int = 0
    passed_check: int = 0
    passed_after_repair: int = 0
    evaluated: int = 0
    best_score: float = float("-inf")
    best_overall_score: float = float("-inf")
    failure_codes: Dict[str, int] = field(default_factory=dict)
    eval_cache_lookups: int = 0
    eval_cache_hits: int = 0
    unique_evaluations: int = 0
    store_lookups: int = 0
    store_hits: int = 0
    scenario_best: Dict[str, float] = field(default_factory=dict)
    rung_evaluations: int = 0
    rung_promotions: int = 0
    rung_eliminations: int = 0
    screen_checks: int = 0
    screened: int = 0
    generation_s: float = 0.0
    evaluation_s: float = 0.0
    overlap_s: float = 0.0

    def eval_cache_hit_rate(self) -> float:
        """Fraction of evaluation requests served from the cache this round."""
        if not self.eval_cache_lookups:
            return 0.0
        return self.eval_cache_hits / self.eval_cache_lookups


@dataclass
class SearchResult:
    """Everything a search run produced."""

    best: Optional[ScoredCandidate]
    candidates: List[ScoredCandidate]
    rounds: List[RoundSummary]
    context_name: str = ""
    template_name: str = ""
    total_candidates: int = 0
    wall_time_s: float = 0.0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    estimated_cost_usd: float = 0.0
    eval_cache_lookups: int = 0
    eval_cache_hits: int = 0
    store_lookups: int = 0
    store_hits: int = 0
    rung_evaluations: int = 0
    rung_promotions: int = 0
    rung_eliminations: int = 0
    screen_checks: int = 0
    screened: int = 0

    def best_source(self) -> str:
        if self.best is None:
            raise ValueError("the search produced no valid candidate")
        return self.best.source

    def best_program(self) -> Program:
        if self.best is None or self.best.program is None:
            raise ValueError("the search produced no valid candidate")
        return self.best.program

    def valid_candidates(self) -> List[ScoredCandidate]:
        return [c for c in self.candidates if c.valid]

    def first_pass_check_rate(self) -> float:
        """Fraction of non-seed candidates that passed the Checker unaided
        (candidates that only passed after a repair round do not count)."""
        generated = [
            c for c in self.candidates if c.candidate.origin == "generated"
        ]
        if not generated:
            return 0.0
        passed = sum(
            1 for c in generated if c.check_ok and not c.candidate.repaired
        )
        return passed / len(generated)

    def repaired_check_rate(self) -> float:
        """Fraction of non-seed candidates that passed only after repair."""
        generated = [
            c for c in self.candidates if c.candidate.origin == "generated"
        ]
        if not generated:
            return 0.0
        repaired = sum(
            1 for c in generated if c.check_ok and c.candidate.repaired
        )
        return repaired / len(generated)

    def score_trajectory(self) -> List[float]:
        """Best-so-far score after each round (the search learning curve)."""
        return [r.best_overall_score for r in self.rounds]

    def eval_cache_hit_rate(self) -> float:
        """Fraction of evaluation requests served by dedup/memoization.

        The synthetic LLM re-emits duplicate candidates constantly; this is
        the fraction of evaluations the engine avoided re-simulating.
        """
        if not self.eval_cache_lookups:
            return 0.0
        return self.eval_cache_hits / self.eval_cache_lookups

    def store_hit_rate(self) -> float:
        """Fraction of memory-tier misses the persistent evaluation store
        served from disk (0.0 when the run had no store attached)."""
        if not self.store_lookups:
            return 0.0
        return self.store_hits / self.store_lookups
