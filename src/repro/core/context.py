"""Deployment contexts and context-shift detection (§3.1 of the paper).

A *context* is the combination of workload, hardware/environment and
objective a heuristic is specialised for.  PolicySmith synthesises one
heuristic per context; re-synthesis is triggered either explicitly (a known
hardware or workload change, §3.1.1) or implicitly, when lightweight
monitoring detects that the performance of the deployed heuristic has
drifted (§3.1.2).

The paper leaves runtime adaptation to prior work; this module provides the
minimal pieces it assumes exist: a context descriptor and a simple
guardrail-style drift detector over a performance metric stream that can be
used to trigger re-synthesis.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional


@dataclass(frozen=True)
class Context:
    """Identifies the deployment context a heuristic is synthesised for.

    Attributes
    ----------
    name:
        Short identifier, e.g. ``"cloudphysics/w89@10%"``.
    workload:
        Description of the workload (trace name, application class, ...).
    objective:
        What the Evaluator optimises, e.g. ``"minimize object miss ratio"``.
    environment:
        Hardware / deployment environment, e.g. ``"generic"``, ``"linux-kernel"``.
    parameters:
        Free-form parameters that complete the context (cache size, link
        rate, ...).  Kept as strings so the context is hashable and can be
        used as an archive key.
    """

    name: str
    workload: str
    objective: str
    environment: str = "generic"
    parameters: tuple = field(default_factory=tuple)

    @classmethod
    def create(
        cls,
        name: str,
        workload: str,
        objective: str,
        environment: str = "generic",
        **parameters: object,
    ) -> "Context":
        """Convenience constructor turning keyword parameters into the tuple form."""
        items = tuple(sorted((k, str(v)) for k, v in parameters.items()))
        return cls(
            name=name,
            workload=workload,
            objective=objective,
            environment=environment,
            parameters=items,
        )

    def parameter(self, key: str, default: Optional[str] = None) -> Optional[str]:
        for k, v in self.parameters:
            if k == key:
                return v
        return default

    def describe(self) -> str:
        """One-line human-readable description used in prompts and reports."""
        params = ", ".join(f"{k}={v}" for k, v in self.parameters)
        parts = [f"workload: {self.workload}", f"objective: {self.objective}"]
        if self.environment != "generic":
            parts.append(f"environment: {self.environment}")
        if params:
            parts.append(params)
        return "; ".join(parts)


class ContextShiftDetector:
    """Detects implicit context shifts from a stream of performance samples.

    The detector compares the mean of a short recent window against the mean
    of a longer reference window; when the relative degradation exceeds
    ``threshold`` for ``patience`` consecutive samples, a shift is declared.
    Being intentionally simple, it models the "lightweight monitoring
    infrastructure (guardrails)" the paper assumes rather than contributes.

    ``higher_is_better`` selects the degradation direction: hit rate is
    better when higher, miss ratio or latency when lower.
    """

    def __init__(
        self,
        window: int = 50,
        reference_window: int = 500,
        threshold: float = 0.15,
        patience: int = 3,
        higher_is_better: bool = True,
    ):
        if window <= 0 or reference_window <= 0:
            raise ValueError("window sizes must be positive")
        if reference_window < window:
            raise ValueError("reference_window must be at least window")
        self.window = window
        self.reference_window = reference_window
        self.threshold = threshold
        self.patience = patience
        self.higher_is_better = higher_is_better
        self._recent: Deque[float] = deque(maxlen=window)
        self._reference: Deque[float] = deque(maxlen=reference_window)
        self._strikes = 0
        self.shifts_detected = 0

    def observe(self, value: float) -> bool:
        """Feed one metric sample; returns True when a shift is declared.

        After a detection the windows are reset so that the new behaviour
        becomes the reference (the caller is expected to trigger
        re-synthesis and keep running the old heuristic meanwhile, §3.1.2).
        """
        self._reference.append(value)
        self._recent.append(value)
        if len(self._reference) < self.reference_window:
            return False
        reference_mean = sum(self._reference) / len(self._reference)
        recent_mean = sum(self._recent) / len(self._recent)
        if reference_mean == 0:
            degradation = 0.0
        elif self.higher_is_better:
            degradation = (reference_mean - recent_mean) / abs(reference_mean)
        else:
            degradation = (recent_mean - reference_mean) / abs(reference_mean)
        if degradation > self.threshold:
            self._strikes += 1
        else:
            self._strikes = 0
        if self._strikes >= self.patience:
            self.shifts_detected += 1
            self._strikes = 0
            self._recent.clear()
            self._reference.clear()
            return True
        return False
