"""Multi-scenario fitness: score candidates across a workload matrix.

The paper's search scores a candidate against *one* deployment context; the
ROADMAP's north star is robustness across "as many scenarios as you can
imagine".  This module provides the domain-agnostic half of that:

* :class:`ScoreReducer` -- a pluggable, JSON-serializable aggregation of
  per-scenario scores into the single fitness the search optimises
  (``mean``, ``worst`` -- the maximin robustness objective -- or
  ``weighted``);
* :class:`MultiScenarioEvaluator` -- an :class:`~repro.core.evaluator.Evaluator`
  wrapping one named sub-evaluator per scenario.  Evaluating a candidate runs
  every scenario (serially here; the
  :class:`~repro.core.engine.EvaluationEngine` shards candidate x scenario
  tasks over its worker pool instead) and :meth:`combine`\\ s the per-scenario
  results into one :class:`~repro.core.evaluator.EvaluationResult` whose
  ``scenario_scores`` records the full breakdown.

``combine`` is the single definition of the aggregation, shared by the
serial and the sharded path, so a fixed seed yields byte-identical results
under any engine configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.evaluator import EvaluationResult, Evaluator
from repro.dsl.ast import Program

#: Prefix used for per-scenario metric details (":" never occurs in
#: workload names, which allows unambiguous parsing).
SCENARIO_DETAIL_SEP = ":"

REDUCER_KINDS = ("mean", "worst", "weighted")


@dataclass(frozen=True)
class ScoreReducer:
    """Aggregates per-scenario scores into the search's fitness value.

    ``mean`` rewards average-case performance, ``worst`` optimises the
    weakest scenario (maximin robustness), ``weighted`` takes a scenario-name
    keyed convex combination.  The reducer round-trips through JSON (a bare
    kind string or ``{"kind": ..., "weights": {...}}``) so a
    :class:`~repro.core.spec.RunSpec` can declare it.
    """

    kind: str = "mean"
    weights: Optional[Tuple[Tuple[str, float], ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in REDUCER_KINDS:
            raise ValueError(
                f"unknown reducer kind {self.kind!r}; available: {list(REDUCER_KINDS)}"
            )
        if self.kind == "weighted":
            if not self.weights:
                raise ValueError("a weighted reducer needs a non-empty weights map")
            total = sum(w for _name, w in self.weights)
            if total <= 0:
                raise ValueError("weighted reducer weights must sum to a positive value")
            if any(w < 0 for _name, w in self.weights):
                raise ValueError("weighted reducer weights must be non-negative")
        elif self.weights:
            raise ValueError(f"reducer kind {self.kind!r} does not take weights")

    @classmethod
    def create(
        cls, kind: str = "mean", weights: Optional[Mapping[str, float]] = None
    ) -> "ScoreReducer":
        items = tuple(sorted((k, float(v)) for k, v in weights.items())) if weights else None
        return cls(kind=kind, weights=items)

    @classmethod
    def from_ref(cls, ref: Union[str, Mapping, "ScoreReducer", None]) -> "ScoreReducer":
        """Build a reducer from its declarative reference (string or dict)."""
        if ref is None:
            return cls()
        if isinstance(ref, ScoreReducer):
            return ref
        if isinstance(ref, str):
            return cls.create(kind=ref)
        if isinstance(ref, Mapping):
            extra = set(ref) - {"kind", "weights"}
            if extra:
                raise ValueError(
                    f"unknown reducer key(s) {sorted(extra)}; allowed: ['kind', 'weights']"
                )
            return cls.create(kind=ref.get("kind", "mean"), weights=ref.get("weights"))
        raise TypeError(f"cannot build a ScoreReducer from {type(ref).__name__}")

    def to_ref(self) -> Union[str, dict]:
        """The declarative form stored in specs (inverse of :meth:`from_ref`)."""
        if self.weights is None:
            return self.kind
        return {"kind": self.kind, "weights": {k: v for k, v in self.weights}}

    def validate_names(self, names: Sequence[str]) -> None:
        """A weighted reducer must name exactly the scenarios it scores."""
        if self.kind != "weighted":
            return
        missing = set(names) - {k for k, _ in self.weights}
        unknown = {k for k, _ in self.weights} - set(names)
        if missing or unknown:
            raise ValueError(
                f"weighted reducer must cover the scenario matrix exactly; "
                f"missing weights for {sorted(missing)}, "
                f"weights for unknown scenarios {sorted(unknown)}"
            )

    def reduce(self, scores: Mapping[str, float]) -> float:
        if not scores:
            raise ValueError("cannot reduce an empty score map")
        if self.kind == "worst":
            return min(scores.values())
        if self.kind == "weighted":
            weights = dict(self.weights)
            total = sum(weights[name] for name in scores)
            return sum(score * weights[name] for name, score in scores.items()) / total
        return sum(scores.values()) / len(scores)


class MultiScenarioEvaluator(Evaluator):
    """Evaluator scoring candidates across a named scenario matrix.

    ``scenarios`` is an ordered list of ``(name, evaluator)`` pairs; names
    must be unique (they key ``scenario_scores``, events and reports).  The
    engine detects this class (via ``scenario_count``) and fans
    candidate x scenario tasks out over its worker pool with per-scenario
    timeouts and crash isolation; without a pool, :meth:`evaluate_program`
    runs the scenarios in order.
    """

    def __init__(
        self,
        scenarios: Sequence[Tuple[str, Evaluator]],
        reducer: Optional[ScoreReducer] = None,
    ):
        if not scenarios:
            raise ValueError("a MultiScenarioEvaluator needs at least one scenario")
        names = [name for name, _evaluator in scenarios]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise ValueError(
                f"duplicate scenario name(s) {duplicates}; give grid variants a "
                "distinct 'label' (e.g. 'w89@5%')"
            )
        if any(not name for name in names):
            raise ValueError("every scenario needs a non-empty name")
        self.scenarios: List[Tuple[str, Evaluator]] = list(scenarios)
        self.reducer = reducer or ScoreReducer()
        self.reducer.validate_names(names)

    # -- engine protocol ----------------------------------------------------------

    @property
    def scenario_count(self) -> int:
        return len(self.scenarios)

    @property
    def scenario_names(self) -> List[str]:
        return [name for name, _evaluator in self.scenarios]

    def scenario_failure_score(self, index: int) -> float:
        return self.scenarios[index][1].failure_score

    @property
    def failure_score(self) -> float:  # type: ignore[override]
        return self.reducer.reduce(
            {name: evaluator.failure_score for name, evaluator in self.scenarios}
        )

    def evaluate_scenario(self, program: Program, index: int) -> EvaluationResult:
        """Score ``program`` on one scenario (the engine's unit of sharding)."""
        return self.scenarios[index][1].evaluate(program)

    @property
    def backend_stats(self) -> Optional[Dict[str, Any]]:
        """Per-scenario DSL backend counters summed across the matrix.

        ``None`` when no scenario evaluator tracks them (non-DSL ablation
        evaluators); otherwise the same ``{"requested", "resolved"}`` shape
        the single-scenario evaluators expose.
        """
        merged: Dict[str, int] = {}
        requested: Optional[str] = None
        found = False
        for _name, evaluator in self.scenarios:
            stats = getattr(evaluator, "backend_stats", None)
            if not isinstance(stats, dict):
                continue
            found = True
            if requested is None:
                requested = stats.get("requested")
            for backend, count in stats.get("resolved", {}).items():
                merged[backend] = merged.get(backend, 0) + count
        if not found:
            return None
        return {"requested": requested, "resolved": merged}

    def input_intervals(self):
        """Hull of the per-scenario input declarations.

        A bound must hold in *every* scenario to be usable, so the matrix
        declaration is the pointwise interval join; any scenario that cannot
        bound its inputs disables screening for the whole matrix.
        """
        declared = [
            evaluator.input_intervals() for _name, evaluator in self.scenarios
        ]
        if any(d is None for d in declared):
            return None
        joined = declared[0]
        for other in declared[1:]:
            joined = joined.join(other)
        return joined

    def at_fidelity(self, fraction: float) -> "MultiScenarioEvaluator":
        """Scale every scenario of the matrix to ``fraction`` of its budget."""
        if fraction == 1.0:
            return self
        return MultiScenarioEvaluator(
            [
                (name, evaluator.at_fidelity(fraction))
                for name, evaluator in self.scenarios
            ],
            self.reducer,
        )

    # -- aggregation --------------------------------------------------------------

    def combine(self, results: Sequence[EvaluationResult]) -> EvaluationResult:
        """Fold per-scenario results (in scenario order) into one result.

        The aggregate is valid only when *every* scenario succeeded -- a
        candidate that crashes anywhere in the matrix is not a robust policy.
        Failed scenarios still contribute their (failure) score to the
        reduction so invalid candidates remain comparable, and any transient
        sub-failure marks the aggregate transient so it is never memoized.
        """
        if len(results) != len(self.scenarios):
            raise ValueError(
                f"expected {len(self.scenarios)} scenario results, got {len(results)}"
            )
        scores: Dict[str, float] = {}
        details: Dict[str, float] = {}
        errors: List[str] = []
        for (name, _evaluator), result in zip(self.scenarios, results):
            scores[name] = result.score
            for key, value in result.details.items():
                details[f"{name}{SCENARIO_DETAIL_SEP}{key}"] = value
            if not result.valid:
                errors.append(f"{name}: {result.error or 'invalid'}")
        return EvaluationResult(
            score=self.reducer.reduce(scores),
            valid=not errors,
            error="; ".join(errors) or None,
            wall_time_s=sum(r.wall_time_s for r in results),
            details=details,
            transient=any(r.transient for r in results),
            scenario_scores=scores,
        )

    def evaluate_program(self, program: Program) -> EvaluationResult:
        return self.combine(
            [evaluator.evaluate(program) for _name, evaluator in self.scenarios]
        )

    def evaluate(self, program: Program) -> EvaluationResult:
        # Sub-evaluators already convert their own failures into invalid
        # results; the base-class wrapper would only time the loop again.
        return self.evaluate_program(program)
