"""Heuristic archive: the growing library of synthesized policies (§3.1.2).

Over time PolicySmith builds a library of heuristics, one (or more) per
context, that a runtime adaptation system can choose from.  The archive is a
small persistent store keyed by context name; entries carry the heuristic
source, its score, and free-form metadata (which trace it was tuned on, the
search configuration, ...).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.context import Context
from repro.core.results import ScoredCandidate


@dataclass
class ArchiveEntry:
    """One archived heuristic."""

    context_name: str
    name: str
    source: str
    score: float
    metadata: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ArchiveEntry":
        return cls(
            context_name=data["context_name"],
            name=data["name"],
            source=data["source"],
            score=float(data["score"]),
            metadata=dict(data.get("metadata", {})),
        )


class HeuristicArchive:
    """In-memory archive with JSON persistence."""

    def __init__(self) -> None:
        self._entries: Dict[str, List[ArchiveEntry]] = {}

    # -- mutation -------------------------------------------------------------------

    def add(self, entry: ArchiveEntry) -> None:
        self._entries.setdefault(entry.context_name, []).append(entry)

    def add_candidate(
        self,
        context: Context,
        candidate: ScoredCandidate,
        name: Optional[str] = None,
        **metadata: str,
    ) -> ArchiveEntry:
        """Archive a search winner under ``context``."""
        entry = ArchiveEntry(
            context_name=context.name,
            name=name or candidate.candidate.candidate_id,
            source=candidate.source,
            score=candidate.score,
            metadata={k: str(v) for k, v in metadata.items()},
        )
        self.add(entry)
        return entry

    # -- queries ---------------------------------------------------------------------

    def contexts(self) -> List[str]:
        return sorted(self._entries)

    def entries_for(self, context_name: str) -> List[ArchiveEntry]:
        return list(self._entries.get(context_name, []))

    def best_for(self, context_name: str) -> Optional[ArchiveEntry]:
        entries = self._entries.get(context_name)
        if not entries:
            return None
        return max(entries, key=lambda e: e.score)

    def all_entries(self) -> List[ArchiveEntry]:
        return [entry for entries in self._entries.values() for entry in entries]

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._entries.values())

    # -- persistence -------------------------------------------------------------------

    def save(self, path: Path | str) -> None:
        path = Path(path)
        payload = {
            "version": 1,
            "entries": [entry.to_dict() for entry in self.all_entries()],
        }
        path.write_text(json.dumps(payload, indent=2))

    @classmethod
    def load(cls, path: Path | str) -> "HeuristicArchive":
        path = Path(path)
        payload = json.loads(path.read_text())
        if payload.get("version") != 1:
            raise ValueError(f"unsupported archive version in {path}")
        archive = cls()
        for raw in payload.get("entries", []):
            archive.add(ArchiveEntry.from_dict(raw))
        return archive
