"""Heuristic archive: the growing library of synthesized policies (§3.1.2).

Over time PolicySmith builds a library of heuristics, one (or more) per
context, that a runtime adaptation system can choose from.  The archive is a
small persistent store keyed by context name; entries carry the heuristic
source, its score, and free-form metadata (which trace it was tuned on, the
search configuration, ...).

This module also provides :class:`SearchCheckpoint`, the per-round search
state the evolutionary search persists so that long multi-context runs
survive interruption: the scored population, round summaries, the engine's
evaluation memo, and (when the LLM client supports it) the generator's RNG
state, so a resumed search continues the exact trajectory of an
uninterrupted one.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.core.checker import CheckIssue
from repro.core.context import Context
from repro.core.evaluator import EvaluationResult
from repro.core.events import encode_non_finite
from repro.core.results import Candidate, RoundSummary, ScoredCandidate
from repro.dsl.errors import DslError
from repro.dsl.parser import parse


@dataclass
class ArchiveEntry:
    """One archived heuristic."""

    context_name: str
    name: str
    source: str
    score: float
    metadata: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ArchiveEntry":
        return cls(
            context_name=data["context_name"],
            name=data["name"],
            source=data["source"],
            score=float(data["score"]),
            metadata=dict(data.get("metadata", {})),
        )


class HeuristicArchive:
    """In-memory archive with JSON persistence."""

    def __init__(self) -> None:
        self._entries: Dict[str, List[ArchiveEntry]] = {}

    # -- mutation -------------------------------------------------------------------

    def add(self, entry: ArchiveEntry) -> None:
        self._entries.setdefault(entry.context_name, []).append(entry)

    def add_candidate(
        self,
        context: Context,
        candidate: ScoredCandidate,
        name: Optional[str] = None,
        **metadata: str,
    ) -> ArchiveEntry:
        """Archive a search winner under ``context``."""
        entry = ArchiveEntry(
            context_name=context.name,
            name=name or candidate.candidate.candidate_id,
            source=candidate.source,
            score=candidate.score,
            metadata={k: str(v) for k, v in metadata.items()},
        )
        self.add(entry)
        return entry

    # -- queries ---------------------------------------------------------------------

    def contexts(self) -> List[str]:
        return sorted(self._entries)

    def entries_for(self, context_name: str) -> List[ArchiveEntry]:
        return list(self._entries.get(context_name, []))

    def best_for(self, context_name: str) -> Optional[ArchiveEntry]:
        entries = self._entries.get(context_name)
        if not entries:
            return None
        return max(entries, key=lambda e: e.score)

    def all_entries(self) -> List[ArchiveEntry]:
        return [entry for entries in self._entries.values() for entry in entries]

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._entries.values())

    # -- persistence -------------------------------------------------------------------

    def save(self, path: Path | str) -> None:
        path = Path(path)
        payload = {
            "version": 1,
            "entries": [entry.to_dict() for entry in self.all_entries()],
        }
        path.write_text(json.dumps(payload, indent=2))

    @classmethod
    def load(cls, path: Path | str) -> "HeuristicArchive":
        path = Path(path)
        payload = json.loads(path.read_text())
        if payload.get("version") != 1:
            raise ValueError(f"unsupported archive version in {path}")
        archive = cls()
        for raw in payload.get("entries", []):
            archive.add(ArchiveEntry.from_dict(raw))
        return archive


# --------------------------------------------------------------------------
# Search checkpointing
# --------------------------------------------------------------------------


def _encode_float(value: float):
    """Non-finite floats as strings (shared convention lives in core.events)."""
    return encode_non_finite(value)


def _decode_float(value) -> float:
    return float(value)


def _evaluation_to_dict(evaluation: EvaluationResult) -> dict:
    return {
        "score": _encode_float(evaluation.score),
        "valid": evaluation.valid,
        "error": evaluation.error,
        "wall_time_s": evaluation.wall_time_s,
        "details": {k: _encode_float(v) for k, v in evaluation.details.items()},
        "scenario_scores": {
            k: _encode_float(v) for k, v in evaluation.scenario_scores.items()
        },
        "fidelity": evaluation.fidelity,
    }


def _evaluation_from_dict(data: dict) -> EvaluationResult:
    return EvaluationResult(
        score=_decode_float(data["score"]),
        valid=bool(data["valid"]),
        error=data.get("error"),
        wall_time_s=float(data.get("wall_time_s", 0.0)),
        details={k: _decode_float(v) for k, v in data.get("details", {}).items()},
        scenario_scores={
            k: _decode_float(v) for k, v in data.get("scenario_scores", {}).items()
        },
        fidelity=float(data.get("fidelity", 1.0)),
    )


_ROUND_FLOAT_FIELDS = ("best_score", "best_overall_score")


def _round_to_dict(summary: RoundSummary) -> dict:
    data = asdict(summary)
    for key in _ROUND_FLOAT_FIELDS:
        data[key] = _encode_float(data[key])
    data["scenario_best"] = {
        k: _encode_float(v) for k, v in summary.scenario_best.items()
    }
    return data


def _round_from_dict(data: dict) -> RoundSummary:
    data = dict(data)
    for key in _ROUND_FLOAT_FIELDS:
        if key in data:
            data[key] = _decode_float(data[key])
    if "scenario_best" in data:
        data["scenario_best"] = {
            k: _decode_float(v) for k, v in data["scenario_best"].items()
        }
    return RoundSummary(**data)


#: Public serialization helpers (the artifact store reuses the checkpoint
#: encoding so stored rounds/results stay readable by both layers).
round_summary_to_dict = _round_to_dict
round_summary_from_dict = _round_from_dict
evaluation_to_dict = _evaluation_to_dict
evaluation_from_dict = _evaluation_from_dict


def scored_candidate_to_dict(scored: ScoredCandidate) -> dict:
    """JSON-serializable form of one scored candidate."""
    return {
        "candidate": asdict(scored.candidate),
        "check_ok": scored.check_ok,
        "check_issues": [
            {"code": issue.code, "message": issue.message}
            for issue in scored.check_issues
        ],
        "canonical_source": scored.source if scored.program is not None else None,
        "evaluation": (
            _evaluation_to_dict(scored.evaluation)
            if scored.evaluation is not None
            else None
        ),
    }


def scored_candidate_from_dict(data: dict) -> ScoredCandidate:
    """Rebuild a scored candidate; the program is re-parsed from canonical source."""
    candidate = Candidate(**data["candidate"])
    program = None
    canonical = data.get("canonical_source")
    if data["check_ok"] and canonical:
        try:
            program = parse(canonical)
        except DslError:  # pragma: no cover - corrupt checkpoint
            program = None
    evaluation = data.get("evaluation")
    return ScoredCandidate(
        candidate=candidate,
        program=program,
        check_ok=bool(data["check_ok"]),
        check_issues=[
            CheckIssue(code=issue["code"], message=issue["message"])
            for issue in data.get("check_issues", [])
        ],
        evaluation=_evaluation_from_dict(evaluation) if evaluation else None,
    )


@dataclass
class SearchCheckpoint:
    """Per-round snapshot of an evolutionary search, JSON-persistable.

    ``memo`` maps canonical-source hashes to evaluation results (the
    engine's cross-round cache); ``generator_state`` is an opaque blob from
    the LLM client (RNG + token-usage counters for the synthetic client),
    restored on resume so the continued search is byte-identical to an
    uninterrupted run.

    Resume validation compares the template name, context name and context
    parameters; evaluator settings that are not part of the context (e.g. a
    custom ``backend=``) are the caller's responsibility -- resume with the
    configuration that wrote the checkpoint.
    """

    template_name: str = ""
    context_name: str = ""
    context_parameters: List[list] = field(default_factory=list)
    completed_rounds: int = 0
    counter: int = 0
    population: List[ScoredCandidate] = field(default_factory=list)
    rounds: List[RoundSummary] = field(default_factory=list)
    memo: Dict[str, EvaluationResult] = field(default_factory=dict)
    generator_state: Optional[Dict[str, Any]] = None
    seed_stats: Dict[str, int] = field(default_factory=dict)

    def save(self, path: Path | str) -> None:
        payload = {
            "version": 1,
            "kind": "search-checkpoint",
            "template_name": self.template_name,
            "context_name": self.context_name,
            "context_parameters": [list(item) for item in self.context_parameters],
            "completed_rounds": self.completed_rounds,
            "counter": self.counter,
            "population": [scored_candidate_to_dict(s) for s in self.population],
            "rounds": [_round_to_dict(r) for r in self.rounds],
            "memo": {k: _evaluation_to_dict(v) for k, v in self.memo.items()},
            "generator_state": self.generator_state,
            "seed_stats": dict(self.seed_stats),
        }
        path = Path(path)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, allow_nan=False))
        tmp.replace(path)

    @classmethod
    def load(cls, path: Path | str) -> "SearchCheckpoint":
        payload = json.loads(Path(path).read_text())
        if payload.get("version") != 1 or payload.get("kind") != "search-checkpoint":
            raise ValueError(f"unsupported checkpoint file {path}")
        return cls(
            template_name=payload.get("template_name", ""),
            context_name=payload.get("context_name", ""),
            context_parameters=[
                list(item) for item in payload.get("context_parameters", [])
            ],
            completed_rounds=int(payload["completed_rounds"]),
            counter=int(payload["counter"]),
            population=[
                scored_candidate_from_dict(raw) for raw in payload.get("population", [])
            ],
            rounds=[_round_from_dict(raw) for raw in payload.get("rounds", [])],
            memo={
                key: _evaluation_from_dict(raw)
                for key, raw in payload.get("memo", {}).items()
            },
            generator_state=payload.get("generator_state"),
            seed_stats={
                k: int(v) for k, v in payload.get("seed_stats", {}).items()
            },
        )
