"""Evaluators: context-specific scoring of candidate heuristics.

An Evaluator runs a candidate in the deployment context (a trace through the
cache simulator, an emulated link in the network simulator, ...) and returns
a single numeric score -- *higher is better* by convention, so miss ratios
and delays are negated by the case-study evaluators.

Evaluators must be robust to arbitrarily broken candidates: a candidate that
raises at runtime is reported as invalid with the failure message rather
than crashing the search.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.dsl.ast import Program
from repro.dsl.errors import DslError


@dataclass
class EvaluationResult:
    """Outcome of evaluating one candidate in one context.

    ``transient`` marks failures caused by the execution environment (a
    worker timeout, a dead pool) rather than by the candidate itself; the
    engine never memoizes transient results, so the candidate is re-evaluated
    if it ever comes up again.

    ``scenario_scores`` is filled by multi-scenario evaluation (see
    :mod:`repro.core.scenarios`): one score per named workload scenario, with
    ``score`` holding the reduced aggregate.  Single-scenario evaluation
    leaves it empty.

    ``fidelity`` records the fraction of the full evaluation budget this
    result was produced at (see :mod:`repro.core.fidelity`).  ``1.0`` -- the
    default, and the only value ordinary evaluation ever produces -- marks a
    full-fidelity score; anything smaller is a screening-rung score, which
    ranking and selection must never consume.
    """

    score: float
    valid: bool = True
    error: Optional[str] = None
    wall_time_s: float = 0.0
    details: Dict[str, float] = field(default_factory=dict)
    transient: bool = False
    scenario_scores: Dict[str, float] = field(default_factory=dict)
    fidelity: float = 1.0

    @property
    def full_fidelity(self) -> bool:
        return self.fidelity >= 1.0

    @classmethod
    def failure(
        cls, error: str, score: float = float("-inf"), transient: bool = False
    ) -> "EvaluationResult":
        return cls(score=score, valid=False, error=error, transient=transient)


class Evaluator(ABC):
    """Base class: implement :meth:`evaluate_program`, get robustness for free."""

    #: Score assigned to candidates that crash during evaluation.
    failure_score: float = float("-inf")

    @abstractmethod
    def evaluate_program(self, program: Program) -> EvaluationResult:
        """Score ``program``; may raise -- :meth:`evaluate` handles errors."""

    def input_intervals(self):
        """Value ranges of the Template's inputs, for static screening.

        Returns an :class:`~repro.dsl.abstract.InputIntervals` declaring the
        interval every scalar parameter / feature attribute / feature method
        result can take in this deployment context, or ``None`` when the
        evaluator cannot bound its inputs (which disables the engine's
        static-screening rung and ``repro certify`` for the run).
        """
        return None

    def at_fidelity(self, fraction: float) -> "Evaluator":
        """A reduced-budget copy of this evaluator (fidelity scheduling).

        ``fraction`` is in ``(0, 1]``; the returned evaluator scores
        candidates on that fraction of the evaluation budget (a trace
        prefix, a shortened simulation, ...).  Evaluators that cannot scale
        raise, which the engine turns into a configuration error at
        schedule-attach time rather than a surprise mid-search.
        """
        if fraction == 1.0:
            return self
        raise NotImplementedError(
            f"{type(self).__name__} does not support fidelity scaling"
        )

    def evaluate(self, program: Program) -> EvaluationResult:
        """Score ``program``, converting runtime failures into invalid results."""
        start = time.perf_counter()
        try:
            result = self.evaluate_program(program)
        except DslError as exc:
            result = EvaluationResult.failure(f"runtime error: {exc}", self.failure_score)
        except (ValueError, TypeError, ZeroDivisionError, OverflowError) as exc:
            result = EvaluationResult.failure(f"{type(exc).__name__}: {exc}", self.failure_score)
        result.wall_time_s = time.perf_counter() - start
        return result


class FunctionEvaluator(Evaluator):
    """Wrap a plain scoring function ``program -> float`` as an Evaluator.

    Useful for tests and for simple objectives where building a dedicated
    Evaluator class would be ceremony.
    """

    def __init__(self, fn: Callable[[Program], float], name: str = "function"):
        self._fn = fn
        self.name = name

    def evaluate_program(self, program: Program) -> EvaluationResult:
        score = float(self._fn(program))
        return EvaluationResult(score=score, valid=True)

    def at_fidelity(self, fraction: float) -> "FunctionEvaluator":
        # A plain function has no budget to scale: rung scores equal full
        # scores, which makes this the exact-ranking reference in tests.
        return self
