"""Evaluators: context-specific scoring of candidate heuristics.

An Evaluator runs a candidate in the deployment context (a trace through the
cache simulator, an emulated link in the network simulator, ...) and returns
a single numeric score -- *higher is better* by convention, so miss ratios
and delays are negated by the case-study evaluators.

Evaluators must be robust to arbitrarily broken candidates: a candidate that
raises at runtime is reported as invalid with the failure message rather
than crashing the search.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.dsl.ast import Program
from repro.dsl.errors import DslError


@dataclass
class EvaluationResult:
    """Outcome of evaluating one candidate in one context.

    ``transient`` marks failures caused by the execution environment (a
    worker timeout, a dead pool) rather than by the candidate itself; the
    engine never memoizes transient results, so the candidate is re-evaluated
    if it ever comes up again.

    ``scenario_scores`` is filled by multi-scenario evaluation (see
    :mod:`repro.core.scenarios`): one score per named workload scenario, with
    ``score`` holding the reduced aggregate.  Single-scenario evaluation
    leaves it empty.
    """

    score: float
    valid: bool = True
    error: Optional[str] = None
    wall_time_s: float = 0.0
    details: Dict[str, float] = field(default_factory=dict)
    transient: bool = False
    scenario_scores: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def failure(
        cls, error: str, score: float = float("-inf"), transient: bool = False
    ) -> "EvaluationResult":
        return cls(score=score, valid=False, error=error, transient=transient)


class Evaluator(ABC):
    """Base class: implement :meth:`evaluate_program`, get robustness for free."""

    #: Score assigned to candidates that crash during evaluation.
    failure_score: float = float("-inf")

    @abstractmethod
    def evaluate_program(self, program: Program) -> EvaluationResult:
        """Score ``program``; may raise -- :meth:`evaluate` handles errors."""

    def evaluate(self, program: Program) -> EvaluationResult:
        """Score ``program``, converting runtime failures into invalid results."""
        start = time.perf_counter()
        try:
            result = self.evaluate_program(program)
        except DslError as exc:
            result = EvaluationResult.failure(f"runtime error: {exc}", self.failure_score)
        except (ValueError, TypeError, ZeroDivisionError, OverflowError) as exc:
            result = EvaluationResult.failure(f"{type(exc).__name__}: {exc}", self.failure_score)
        result.wall_time_s = time.perf_counter() - start
        return result


class FunctionEvaluator(Evaluator):
    """Wrap a plain scoring function ``program -> float`` as an Evaluator.

    Useful for tests and for simple objectives where building a dedicated
    Evaluator class would be ceremony.
    """

    def __init__(self, fn: Callable[[Program], float], name: str = "function"):
        self._fn = fn
        self.name = name

    def evaluate_program(self, program: Program) -> EvaluationResult:
        score = float(self._fn(program))
        return EvaluationResult(score=score, valid=True)
