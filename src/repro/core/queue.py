"""Spool-directory work queue: the wire protocol of the ``distributed`` executor.

The distributed backend (see :mod:`repro.core.executors`) fans evaluation
units out over worker *processes* that need not share the coordinator's
machine -- only a filesystem path (local disk for one host, NFS or any
shared mount for several).  This module owns everything both sides must
agree on: the on-disk queue layout, the task codec, and the lease protocol
that makes a dead worker's tasks reclaimable instead of lost.

Layout (everything lives under one queue root)::

    queue.json              coordinator config: schema version, lease TTL
    evaluators/<id>.pkl     pickled evaluators, published once per executor
    pending/<task>.json     tasks waiting for a claim (atomic tmp+rename)
    leases/<task>.json      claimed tasks; mtime is the holder's heartbeat
    results/<task>.json     finished tasks (atomic tmp+rename, last wins)
    workers/<id>.json       worker registrations; mtime is the liveness beat
    logs/<id>.log           stdout/stderr of coordinator-spawned workers
    stop / stop-<pool>      sentinel files: global / per-pool shutdown

Claiming is a single atomic :func:`os.replace` of ``pending/<task>`` into
``leases/<task>``: exactly one claimant wins, the losers get
``FileNotFoundError`` and move on.  A claimed lease is heartbeated (mtime
touched) by a daemon thread in the worker; a lease whose mtime goes stale by
more than the queue's ``lease_ttl_s`` is presumed orphaned (SIGKILL, OOM,
power loss) and renamed back into ``pending/`` by the coordinator, where a
surviving worker re-claims it.  Duplicate execution during a reclaim race is
harmless by design: evaluation is deterministic, results are written
atomically, and the coordinator accepts the first result per task id.

Tasks and results are JSON; the candidate :class:`~repro.dsl.ast.Program`
travels as base64-pickle (a compact AST, ~200 bytes) with its canonical
source alongside for debuggability.  Pickles are only ever read from the
operator's own queue directory -- the queue trusts its filesystem exactly
as much as the artifact store does.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import socket
import sys
import threading
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.core.archive import evaluation_from_dict, evaluation_to_dict
from repro.core.evaluator import EvaluationResult
from repro.core.events import encode_non_finite

#: Version of the task/result payloads; workers ignore (and fail) tasks
#: written by any other schema instead of misreading them.
QUEUE_SCHEMA_VERSION = 1

QUEUE_CONFIG_FILE = "queue.json"
PENDING_DIRNAME = "pending"
LEASES_DIRNAME = "leases"
RESULTS_DIRNAME = "results"
WORKERS_DIRNAME = "workers"
EVALUATORS_DIRNAME = "evaluators"
LOGS_DIRNAME = "logs"
STOP_FILE = "stop"

#: Default lease TTL when a worker starts before the coordinator has written
#: queue.json (it re-reads the config as soon as the file appears).
DEFAULT_LEASE_TTL_S = 5.0

#: How often a worker touches its lease and registration files.  Constant
#: and deliberately much smaller than any sane TTL: touching a file is
#: cheap, and a fast beat lets tests run with sub-second TTLs.
HEARTBEAT_INTERVAL_S = 0.1


def _atomic_write_text(path: Path, text: str) -> None:
    """tmp + rename in the destination directory, like the artifact store."""
    tmp = path.with_name(f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
    try:
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


# -- task / result codec ------------------------------------------------------------


def encode_task(
    task_id: str,
    program,
    *,
    evaluator_id: str,
    scenario: Optional[int] = None,
    failure_score: float = float("-inf"),
    program_key: str = "",
    source: str = "",
    store: Optional[Dict[str, str]] = None,
) -> dict:
    """One evaluation unit as a JSON-serializable task payload.

    ``store`` (optional, whole-candidate tasks only) points the worker at
    the shared evaluation store -- ``{"root": ..., "eval_key": ...}`` -- so
    a result another run already computed is a disk hit instead of a fresh
    evaluation, and a fresh result warm-starts every concurrent run.
    """
    return {
        "schema_version": QUEUE_SCHEMA_VERSION,
        "task_id": task_id,
        "evaluator_id": evaluator_id,
        "program": base64.b64encode(pickle.dumps(program)).decode("ascii"),
        "source": source,
        "program_key": program_key,
        "scenario": scenario,
        "failure_score": encode_non_finite(failure_score),
        "store": store,
    }


def decode_task(payload: dict) -> dict:
    """Validate and materialise a task payload (raises on any mismatch)."""
    if payload.get("schema_version") != QUEUE_SCHEMA_VERSION:
        raise ValueError(
            f"task schema {payload.get('schema_version')!r} != {QUEUE_SCHEMA_VERSION}"
        )
    task = dict(payload)
    task["program"] = pickle.loads(base64.b64decode(payload["program"]))
    task["failure_score"] = float(payload["failure_score"])
    return task


def encode_result(
    task_id: str, worker_id: str, result: EvaluationResult, tier: str = "fresh"
) -> dict:
    # ``transient`` rides outside evaluation_to_dict (the store codec drops
    # it because stores never persist transient results; the queue must
    # preserve it so the engine knows not to memoize the failure).
    return {
        "schema_version": QUEUE_SCHEMA_VERSION,
        "task_id": task_id,
        "worker_id": worker_id,
        "tier": tier,
        "transient": result.transient,
        "result": evaluation_to_dict(result),
    }


def decode_result(payload: dict) -> EvaluationResult:
    result = evaluation_from_dict(payload["result"])
    result.transient = bool(payload.get("transient", False))
    return result


# -- the queue ----------------------------------------------------------------------


class SpoolQueue:
    """Coordinator/worker view of one spool directory (see module docstring)."""

    def __init__(self, root: Union[str, Path], lease_ttl_s: Optional[float] = None):
        self.root = Path(root)
        self.pending_dir = self.root / PENDING_DIRNAME
        self.leases_dir = self.root / LEASES_DIRNAME
        self.results_dir = self.root / RESULTS_DIRNAME
        self.workers_dir = self.root / WORKERS_DIRNAME
        self.evaluators_dir = self.root / EVALUATORS_DIRNAME
        self.lease_ttl_s = lease_ttl_s if lease_ttl_s is not None else DEFAULT_LEASE_TTL_S
        if lease_ttl_s is None:
            self.reload_config()

    # -- setup / config -------------------------------------------------------------

    def ensure_layout(self) -> None:
        for directory in (
            self.pending_dir,
            self.leases_dir,
            self.results_dir,
            self.workers_dir,
            self.evaluators_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)

    def write_config(self) -> None:
        """Publish the coordinator's queue parameters (workers re-read them)."""
        self.ensure_layout()
        _atomic_write_text(
            self.root / QUEUE_CONFIG_FILE,
            json.dumps(
                {
                    "schema_version": QUEUE_SCHEMA_VERSION,
                    "lease_ttl_s": self.lease_ttl_s,
                },
                sort_keys=True,
            ),
        )

    def reload_config(self) -> bool:
        """Adopt queue.json's parameters; False when the file is absent."""
        try:
            data = json.loads((self.root / QUEUE_CONFIG_FILE).read_text(encoding="utf-8"))
            self.lease_ttl_s = float(data["lease_ttl_s"])
            return True
        except (OSError, ValueError, KeyError):
            return False

    # -- evaluators -----------------------------------------------------------------

    def publish_evaluator(self, evaluator) -> str:
        """Pickle ``evaluator`` into the queue; returns its content id."""
        blob = pickle.dumps(evaluator)
        evaluator_id = hashlib.sha1(blob).hexdigest()[:16]
        path = self.evaluators_dir / f"{evaluator_id}.pkl"
        if not path.exists():
            tmp = path.with_suffix(f".{os.getpid()}.tmp")
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        return evaluator_id

    def load_evaluator(self, evaluator_id: str):
        """Unpickle a published evaluator (raises ``FileNotFoundError`` if gone)."""
        blob = (self.evaluators_dir / f"{evaluator_id}.pkl").read_bytes()
        return pickle.loads(blob)

    # -- enqueue / claim / complete --------------------------------------------------

    def enqueue(self, task_id: str, payload: dict) -> None:
        _atomic_write_text(
            self.pending_dir / f"{task_id}.json", json.dumps(payload, sort_keys=True)
        )

    def claim_next(
        self, worker_id: str, skip: Optional[Set[str]] = None
    ) -> Optional[Tuple[str, dict]]:
        """Atomically claim the oldest pending task; ``None`` when dry.

        Pending file names sort by (batch, submission index), so claims
        approximate submission order.  The rename is the atomicity point:
        exactly one claimant gets the file.
        """
        try:
            names = sorted(os.listdir(self.pending_dir))
        except OSError:
            return None
        for name in names:
            if not name.endswith(".json"):
                continue
            task_id = name[: -len(".json")]
            if skip and task_id in skip:
                continue
            lease = self.leases_dir / name
            try:
                os.replace(self.pending_dir / name, lease)
            except OSError:  # someone else won the claim
                continue
            # A rename keeps the file's old mtime (the enqueue time); touch
            # the lease so it does not look expired the moment it is born.
            try:
                os.utime(lease)
            except OSError:
                pass
            try:
                payload = json.loads(lease.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                # Unreadable task: fail it rather than hang the coordinator.
                self.complete(
                    task_id,
                    encode_result(
                        task_id,
                        worker_id,
                        EvaluationResult.failure(
                            f"task {task_id} was unreadable in the queue",
                            transient=True,
                        ),
                    ),
                )
                continue
            payload = dict(payload)
            payload["worker_id"] = worker_id
            try:
                _atomic_write_text(lease, json.dumps(payload, sort_keys=True))
            except OSError:
                pass
            return task_id, payload
        return None

    def unclaim(self, task_id: str) -> None:
        """Return a claimed task to pending (e.g. its evaluator is not here yet)."""
        try:
            os.replace(
                self.leases_dir / f"{task_id}.json",
                self.pending_dir / f"{task_id}.json",
            )
        except OSError:
            pass

    def heartbeat(self, task_id: str) -> None:
        try:
            os.utime(self.leases_dir / f"{task_id}.json")
        except OSError:
            pass

    def complete(self, task_id: str, payload: dict) -> None:
        """Publish a finished task's result and release its lease."""
        _atomic_write_text(
            self.results_dir / f"{task_id}.json", json.dumps(payload, sort_keys=True)
        )
        try:
            os.unlink(self.leases_dir / f"{task_id}.json")
        except OSError:
            pass

    def collect(self, task_ids: Iterable[str]) -> List[Tuple[str, dict]]:
        """Read (and consume) finished results for ``task_ids``."""
        collected = []
        for task_id in list(task_ids):
            path = self.results_dir / f"{task_id}.json"
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            collected.append((task_id, payload))
            for stale in (
                path,
                self.pending_dir / f"{task_id}.json",
                self.leases_dir / f"{task_id}.json",
            ):
                try:
                    os.unlink(stale)
                except OSError:
                    pass
        return collected

    def forget(self, task_id: str) -> None:
        """Drop a task the coordinator no longer wants (timeout enforcement)."""
        for path in (
            self.pending_dir / f"{task_id}.json",
            self.leases_dir / f"{task_id}.json",
            self.results_dir / f"{task_id}.json",
        ):
            try:
                os.unlink(path)
            except OSError:
                pass

    # -- lease expiry ----------------------------------------------------------------

    def reclaim_expired(self) -> List[Tuple[str, str]]:
        """Move stale leases back to pending; ``[(task_id, dead worker id)]``.

        A lease is stale when its heartbeat (mtime) is older than the
        queue's ``lease_ttl_s``.  The rename is atomic, so racing the
        not-quite-dead holder at worst produces a duplicate evaluation of a
        deterministic task.
        """
        reclaimed = []
        try:
            names = list(os.listdir(self.leases_dir))
        except OSError:
            return reclaimed
        now = time.time()
        for name in names:
            if not name.endswith(".json"):
                continue
            lease = self.leases_dir / name
            try:
                if now - lease.stat().st_mtime <= self.lease_ttl_s:
                    continue
            except OSError:
                continue
            holder = ""
            try:
                holder = json.loads(lease.read_text(encoding="utf-8")).get(
                    "worker_id", ""
                )
            except (OSError, ValueError):
                pass
            try:
                os.replace(lease, self.pending_dir / name)
            except OSError:
                continue
            reclaimed.append((name[: -len(".json")], holder))
        return reclaimed

    def leased_tasks(self) -> List[str]:
        try:
            return [
                name[: -len(".json")]
                for name in os.listdir(self.leases_dir)
                if name.endswith(".json")
            ]
        except OSError:
            return []

    def pending_tasks(self) -> List[str]:
        try:
            return sorted(
                name[: -len(".json")]
                for name in os.listdir(self.pending_dir)
                if name.endswith(".json")
            )
        except OSError:
            return []

    # -- workers ---------------------------------------------------------------------

    def register_worker(self, worker_id: str, info: dict) -> Path:
        path = self.workers_dir / f"{worker_id}.json"
        _atomic_write_text(path, json.dumps(info, sort_keys=True))
        return path

    def worker_records(self) -> Dict[str, dict]:
        records: Dict[str, dict] = {}
        try:
            names = list(os.listdir(self.workers_dir))
        except OSError:
            return records
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                records[name[: -len(".json")]] = json.loads(
                    (self.workers_dir / name).read_text(encoding="utf-8")
                )
            except (OSError, ValueError):
                continue
        return records

    def live_workers(self, grace_s: Optional[float] = None) -> List[str]:
        """Worker ids whose registration heartbeat is fresh."""
        grace = grace_s if grace_s is not None else max(self.lease_ttl_s, 1.0)
        alive = []
        now = time.time()
        try:
            names = list(os.listdir(self.workers_dir))
        except OSError:
            return alive
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                if now - (self.workers_dir / name).stat().st_mtime <= grace:
                    alive.append(name[: -len(".json")])
            except OSError:
                continue
        return alive

    # -- shutdown --------------------------------------------------------------------

    def stop_requested(self, extra_stop_file: Optional[Union[str, Path]] = None) -> bool:
        if not self.root.exists():
            return True  # the coordinator tore the queue down
        if (self.root / STOP_FILE).exists():
            return True
        return extra_stop_file is not None and Path(extra_stop_file).exists()

    def request_stop(self) -> None:
        try:
            self.ensure_layout()
            (self.root / STOP_FILE).touch()
        except OSError:
            pass


# -- the worker runtime -------------------------------------------------------------


class _Heartbeat:
    """Daemon thread touching the worker's registration + current lease."""

    def __init__(self, queue: SpoolQueue, worker_path: Path):
        self.queue = queue
        self.worker_path = worker_path
        self._lease_id: Optional[str] = None
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self) -> None:
        self._thread.start()

    def set_lease(self, task_id: Optional[str]) -> None:
        with self._lock:
            self._lease_id = task_id

    def stop(self) -> None:
        self._stop.set()

    def _run(self) -> None:
        while not self._stop.wait(HEARTBEAT_INTERVAL_S):
            try:
                os.utime(self.worker_path)
            except OSError:
                pass
            with self._lock:
                lease_id = self._lease_id
            if lease_id is not None:
                self.queue.heartbeat(lease_id)


def _evaluate_task(queue: SpoolQueue, task: dict, evaluators: dict, stores: dict):
    """Run one decoded task; returns ``(EvaluationResult, tier)``."""
    evaluator_id = task["evaluator_id"]
    if evaluator_id not in evaluators:
        evaluators[evaluator_id] = queue.load_evaluator(evaluator_id)
    evaluator = evaluators[evaluator_id]
    program = task["program"]
    scenario = task.get("scenario")
    store_ref = task.get("store")
    if scenario is not None:
        from repro.core.scenarios import MultiScenarioEvaluator

        assert isinstance(evaluator, MultiScenarioEvaluator)
        return evaluator.evaluate_scenario(program, int(scenario)), "fresh"
    store = None
    program_key = task.get("program_key") or ""
    if store_ref and program_key:
        root = store_ref["root"]
        if root not in stores:
            from repro.core.store import EvaluationStore

            stores[root] = EvaluationStore(root)
            stores[root].register_writer(f"worker-{task.get('worker_id', '')}")
        store = stores[root]
        stored = store.get(store_ref["eval_key"], program_key)
        if stored is not None:
            return stored, "store"
    result = evaluator.evaluate(program)
    if store is not None and not result.transient:
        store.put(store_ref["eval_key"], program_key, result)
    return result, "fresh"


def run_worker(
    queue_dir: Union[str, Path],
    *,
    worker_id: Optional[str] = None,
    poll_s: float = 0.05,
    max_idle_s: Optional[float] = None,
    once: bool = False,
    stop_file: Optional[Union[str, Path]] = None,
    quiet: bool = False,
) -> int:
    """Claim-evaluate-publish loop of one worker process; returns tasks done.

    Exits when a stop sentinel appears (the queue root's ``stop`` file, or
    ``stop_file`` -- the per-pool token coordinator-spawned workers watch),
    when the queue directory disappears, after ``max_idle_s`` seconds
    without work, or -- with ``once`` -- the first time the queue runs dry.
    """
    queue = SpoolQueue(queue_dir)
    worker_id = worker_id or default_worker_id()
    deadline_note = f" (max idle {max_idle_s}s)" if max_idle_s else ""
    if not quiet:
        print(
            f"worker {worker_id}: joined queue {queue.root}{deadline_note}",
            file=sys.stderr,
        )
    # The coordinator may not have laid the queue out yet; make the shared
    # directories so registration works either way.
    try:
        queue.ensure_layout()
    except OSError:
        return 0
    info = {
        "worker_id": worker_id,
        "host": socket.gethostname(),
        "pid": os.getpid(),
        "tasks_done": 0,
        "store_hits": 0,
    }
    worker_path = queue.register_worker(worker_id, info)
    heartbeat = _Heartbeat(queue, worker_path)
    heartbeat.start()
    evaluators: dict = {}
    stores: dict = {}
    missing_evaluators: Set[str] = set()
    done = 0
    idle_since = time.monotonic()
    try:
        while True:
            if queue.stop_requested(stop_file):
                break
            queue.reload_config()
            claim = queue.claim_next(worker_id, skip=None)
            if claim is None:
                if once:
                    break
                if (
                    max_idle_s is not None
                    and time.monotonic() - idle_since > max_idle_s
                ):
                    break
                missing_evaluators.clear()
                time.sleep(poll_s)
                continue
            task_id, payload = claim
            heartbeat.set_lease(task_id)
            try:
                task = decode_task(payload)
                result, tier = _evaluate_task(queue, task, evaluators, stores)
            except FileNotFoundError:
                # The task's evaluator is not published (yet, or any more):
                # put the task back for a worker that has it.  Sleep first so
                # two workers cannot spin the task between them.
                heartbeat.set_lease(None)
                if task_id in missing_evaluators:
                    time.sleep(max(poll_s, 0.2))
                missing_evaluators.add(task_id)
                queue.unclaim(task_id)
                continue
            except Exception as exc:  # noqa: BLE001 - worker boundary
                result = EvaluationResult.failure(
                    f"evaluation failed in worker: {type(exc).__name__}: {exc}",
                    float(payload.get("failure_score", "-inf")),
                    transient=True,
                )
                tier = "fresh"
            heartbeat.set_lease(None)
            queue.complete(task_id, encode_result(task_id, worker_id, result, tier))
            done += 1
            info["tasks_done"] = done
            if tier == "store":
                info["store_hits"] += 1
            try:
                queue.register_worker(worker_id, info)
            except OSError:
                pass
            idle_since = time.monotonic()
    finally:
        heartbeat.stop()
    if not quiet:
        print(f"worker {worker_id}: done ({done} task(s))", file=sys.stderr)
    return done


# -- coordinator-side worker pool ---------------------------------------------------


class LocalWorkerPool:
    """Worker subprocesses spawned (and respawned) by the coordinator.

    Each worker is a full ``python -m repro worker`` process -- the same
    entry point an operator runs on other hosts -- watching a pool-private
    stop token so two coordinators sharing one queue directory only ever
    stop their own workers.  ``sys.path`` is propagated through
    ``PYTHONPATH`` so workers can unpickle evaluators defined outside the
    installed package (tests, benchmarks).
    """

    #: Respawn budget: a worker crash is recoverable, a crash *loop* is not.
    MAX_RESPAWNS = 8

    def __init__(self, queue: SpoolQueue, count: int, nonce: str):
        self.queue = queue
        self.count = count
        self.nonce = nonce
        self.stop_token = queue.root / f"{STOP_FILE}-{nonce}"
        self._procs: List[Tuple[object, str, object]] = []  # (Popen, id, log fh)
        self._respawns = 0
        self._closed = False
        self._logs_dir = queue.root / LOGS_DIRNAME
        for index in range(count):
            self._spawn(f"w{index}-{nonce}")

    def _spawn(self, worker_id: str) -> None:
        import subprocess

        self._logs_dir.mkdir(parents=True, exist_ok=True)
        log = open(self._logs_dir / f"{worker_id}.log", "ab")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "worker",
                str(self.queue.root),
                "--worker-id",
                worker_id,
                "--stop-file",
                str(self.stop_token),
            ],
            stdout=log,
            stderr=log,
            env=env,
            cwd=os.getcwd(),
        )
        self._procs.append((proc, worker_id, log))

    def maintain(self) -> None:
        """Respawn workers that died (crash isolation keeps the pool full)."""
        if self._closed:
            return
        for position, (proc, worker_id, log) in enumerate(list(self._procs)):
            if proc.poll() is None:
                continue
            try:
                log.close()
            except OSError:
                pass
            self._procs.remove((proc, worker_id, log))
            if self._respawns < self.MAX_RESPAWNS:
                self._respawns += 1
                self._spawn(f"{worker_id.split('+')[0]}+r{self._respawns}")

    def alive(self) -> int:
        return sum(1 for proc, _id, _log in self._procs if proc.poll() is None)

    def stop(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.stop_token.touch()
        except OSError:
            pass
        for proc, _worker_id, _log in self._procs:
            try:
                proc.terminate()
            except OSError:
                pass
        deadline = time.monotonic() + 5.0
        for proc, _worker_id, log in self._procs:
            try:
                proc.wait(timeout=max(0.0, deadline - time.monotonic()))
            except Exception:  # noqa: BLE001 - last resort below
                try:
                    proc.kill()
                except OSError:
                    pass
            try:
                log.close()
            except OSError:
                pass
        self._procs = []
