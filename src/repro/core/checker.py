"""Checkers: enforce that generated candidates honour the Template.

The Generator may hallucinate code that does not conform to the Template's
constraints (§3 of the paper); the Checker's job is to catch such violations
*before* evaluation and to return structured feedback the Generator can use
to repair the candidate -- exactly the role played by the compiler for the
caching case study and the eBPF verifier for the kernel case study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Protocol, Sequence

from repro.core.template import Template
from repro.dsl.analysis import analyze
from repro.dsl.ast import Program
from repro.dsl.errors import DslSyntaxError
from repro.dsl.parser import parse


@dataclass(frozen=True)
class CheckIssue:
    """One constraint violation.

    ``code`` is machine-readable (used by experiments to aggregate failure
    causes, as §5.0.3 does); ``message`` is the human/LLM-readable feedback.
    """

    code: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"[{self.code}] {self.message}"


@dataclass
class CheckResult:
    """Outcome of checking one candidate."""

    ok: bool
    program: Optional[Program] = None
    issues: List[CheckIssue] = field(default_factory=list)

    @property
    def feedback(self) -> str:
        """The "stderr" handed back to the Generator for repair."""
        return "\n".join(str(issue) for issue in self.issues)

    def issue_codes(self) -> List[str]:
        return [issue.code for issue in self.issues]


class Checker(Protocol):
    """Anything that can validate candidate source text against a Template."""

    def check(self, source: str) -> CheckResult:  # pragma: no cover - protocol
        ...


class StructuralChecker:
    """Baseline checker used by the caching case study.

    Verifies that the candidate

    * parses,
    * defines the function the Template asked for, with the right parameters,
    * contains a return statement,
    * references only the Template's parameters (plus builtins),
    * reads only feature attributes/methods the Template exposes,
    * stays within a node-count budget (a proxy for the paper's complexity
      constraints such as "O(log N), no full-cache scans").
    """

    def __init__(self, template: Template, max_nodes: int = 400, allow_loops: bool = True):
        self.template = template
        self.max_nodes = max_nodes
        self.allow_loops = allow_loops
        self._builtins = {"min", "max", "abs", "clamp"}

    def check(self, source: str) -> CheckResult:
        try:
            program = parse(source)
        except DslSyntaxError as exc:
            return CheckResult(
                ok=False,
                issues=[CheckIssue("syntax-error", f"build failed: {exc}")],
            )
        issues = list(self._check_program(program))
        return CheckResult(ok=not issues, program=program, issues=issues)

    # -- individual rules ------------------------------------------------------

    def _check_program(self, program: Program) -> Iterable[CheckIssue]:
        spec = self.template.spec
        if program.name != spec.function_name:
            yield CheckIssue(
                "wrong-function",
                f"expected a function named {spec.function_name!r}, got {program.name!r}",
            )
        if list(program.params) != list(spec.params):
            yield CheckIssue(
                "wrong-signature",
                f"expected parameters {list(spec.params)}, got {list(program.params)}",
            )
            return  # further analysis would produce noise
        facts = analyze(program)
        if not facts.has_return:
            yield CheckIssue("missing-return", "the function never returns a value")
        unknown = [name for name in facts.free_names if name not in self._builtins]
        if unknown:
            yield CheckIssue(
                "unknown-name",
                f"reference to undefined name(s): {', '.join(sorted(unknown))}",
            )
        allowed_attrs = {
            (param, attr)
            for param, attrs in spec.object_attrs.items()
            for attr in attrs
        }
        for param, attr in sorted(facts.attributes_read):
            if param in spec.object_attrs and (param, attr) not in allowed_attrs:
                yield CheckIssue(
                    "unknown-feature",
                    f"{param}.{attr} is not an available feature",
                )
        allowed_methods = {
            (param, method)
            for param, methods in spec.object_methods.items()
            for method, _kind in methods
        }
        for param, method in sorted(facts.methods_called):
            if param == "<builtin>":
                if method not in self._builtins:
                    yield CheckIssue(
                        "unknown-function", f"call to unknown function {method}()"
                    )
            elif param in spec.object_methods and (param, method) not in allowed_methods:
                yield CheckIssue(
                    "unknown-feature",
                    f"{param}.{method}() is not an available feature method",
                )
        if not self.allow_loops and (facts.while_loop_count or facts.for_loop_count):
            yield CheckIssue("loop-forbidden", "loops are not allowed by this template")
        if facts.node_count > self.max_nodes:
            yield CheckIssue(
                "too-complex",
                f"candidate has {facts.node_count} AST nodes "
                f"(budget is {self.max_nodes}); simplify the heuristic",
            )


class CompositeChecker:
    """Run several checkers in sequence, concatenating their issues.

    The first checker that fails to even produce a program (e.g. a syntax
    error) short-circuits the rest, because later checkers need the AST.
    """

    def __init__(self, checkers: Sequence[Checker]):
        if not checkers:
            raise ValueError("CompositeChecker needs at least one checker")
        self.checkers = list(checkers)

    def check(self, source: str) -> CheckResult:
        issues: List[CheckIssue] = []
        program: Optional[Program] = None
        for checker in self.checkers:
            result = checker.check(source)
            issues.extend(result.issues)
            if result.program is None and not result.ok:
                return CheckResult(ok=False, program=None, issues=issues)
            if result.program is not None:
                program = result.program
        return CheckResult(ok=not issues, program=program, issues=issues)
