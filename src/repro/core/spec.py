"""Declarative run specifications: a whole search run as serializable data.

A :class:`RunSpec` captures everything needed to reproduce a run -- domain
name, domain keyword arguments (with traces referenced declaratively),
``SearchConfig`` / ``EngineConfig`` / synthetic-LLM overrides, a seed or a
seed-sweep list, and the checkpoint policy -- and round-trips through JSON
(:meth:`RunSpec.to_dict` / :meth:`RunSpec.from_dict`).  Any frontend (CLI,
tests, sweep driver) can therefore submit the same run, observe it through
the event stream, and re-render its artifacts without re-running anything.

:func:`run` executes one spec (layered on
:func:`~repro.core.domain.build_search`) and, when given an artifact store,
writes the versioned run directory described in
:mod:`repro.core.artifacts`.  :func:`run_sweep` fans the spec's seed list out
over a thread pool, one independent search per seed, and writes a sweep
index over the per-seed run directories.

Traces are referenced, not embedded: a caching spec's ``domain_kwargs`` may
set ``"trace"`` to ``{"dataset": "cloudphysics", "index": 89,
"num_requests": 3000}`` (or ``"msr"`` / ``"synthetic"``), which is resolved
to a concrete deterministic trace at run time.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core import artifacts as artifact_store
from repro.core.domain import SearchDomain, SearchSetup, build_search, get_domain
from repro.core.engine import EngineConfig
from repro.core.events import EventBus, JsonlEventLog, Subscriber
from repro.core.fidelity import FidelitySchedule
from repro.core.results import SearchResult
from repro.core.search import SearchConfig
from repro.core.store import STORE_SCHEMA_VERSION, EvaluationStore
from repro.llm.client import ProviderConfig
from repro.llm.mock import SyntheticLLMConfig

#: Directory name of the shared evaluation store under an artifact root.
EVAL_STORE_DIRNAME = "evalstore"

SPEC_VERSION = 1

#: Fields of the wrapped config dataclasses that a spec may override.
#: ``cost_model`` is an object, not JSON-configurable.
SEARCH_FIELDS = frozenset(
    f.name for f in fields(SearchConfig) if f.name != "cost_model"
)
ENGINE_FIELDS = frozenset(f.name for f in fields(EngineConfig))
#: ``llm`` overrides map onto :class:`SyntheticLLMConfig` fields, plus the
#: ``"provider"`` block (a :class:`~repro.llm.client.ProviderConfig`
#: reference: retries, timeouts, batch size, prompt cache) which configures
#: the client *adapter* stack rather than the synthetic model itself.
PROVIDER_KEY = "provider"
LLM_FIELDS = frozenset(
    {f.name for f in fields(SyntheticLLMConfig)} | {PROVIDER_KEY}
)

_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


def _check_overrides(label: str, overrides: Dict[str, Any], allowed: frozenset) -> None:
    unknown = set(overrides) - allowed
    if unknown:
        raise ValueError(
            f"unknown {label} override(s) {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )


@dataclass
class RunSpec:
    """One declarative run: domain + overrides + seed(s) + checkpoint policy.

    ``search`` / ``engine`` / ``llm`` are plain field->value override
    dictionaries layered onto the domain's defaults at run time, so the spec
    stays trivially serializable.  ``seeds`` (when set) declares a seed
    sweep; ``seed`` is the single-run seed.  ``checkpoint`` enables
    per-round persistence into the run's artifact directory
    (``checkpoint.json``), which is what makes ``repro resume`` work.
    ``fidelity`` (optional) declares a multi-fidelity evaluation schedule --
    a rung list or a ``{"rungs": ..., "eta": ..., "min_keep": ...,
    "mode": ...}`` mapping (see :mod:`repro.core.fidelity`).
    """

    domain: str
    name: str = ""
    domain_kwargs: Dict[str, Any] = field(default_factory=dict)
    search: Dict[str, Any] = field(default_factory=dict)
    engine: Dict[str, Any] = field(default_factory=dict)
    llm: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    seeds: Optional[List[int]] = None
    checkpoint: bool = False
    checkpoint_every: int = 1
    fidelity: Optional[Any] = None

    def __post_init__(self) -> None:
        if not self.domain:
            raise ValueError("a RunSpec must name a search domain")
        if not self.name:
            self.name = self.domain
        if set(self.name) - _NAME_OK:
            raise ValueError(
                f"spec name {self.name!r} may only contain [A-Za-z0-9._-] "
                "(it becomes a directory name)"
            )
        _check_overrides("search", self.search, SEARCH_FIELDS)
        _check_overrides("engine", self.engine, ENGINE_FIELDS)
        _check_overrides("llm", self.llm, LLM_FIELDS)
        # Validate (and normalise) the provider block early, exactly like the
        # fidelity block: a typoed provider name or unknown key fails at spec
        # construction, and the canonical dict form keeps config hashes
        # independent of how the block was spelled.
        provider = ProviderConfig.from_ref(self.llm.get(PROVIDER_KEY))
        if provider is not None:
            self.llm = dict(self.llm)
            self.llm[PROVIDER_KEY] = provider.to_ref()
        elif PROVIDER_KEY in self.llm:
            self.llm = {k: v for k, v in self.llm.items() if k != PROVIDER_KEY}
        # Validate (and normalise) the declarative fidelity block early so a
        # bad ladder fails at spec construction, not mid-run.
        schedule = FidelitySchedule.from_ref(self.fidelity)
        self.fidelity = schedule.to_ref() if schedule is not None else None
        if self.checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        if self.seeds is not None:
            if not self.seeds:
                raise ValueError("seeds, when given, must be a non-empty list")
            if len(set(self.seeds)) != len(self.seeds):
                raise ValueError(
                    f"seeds {self.seeds} contains duplicates; each seed runs "
                    "(and writes a run directory) exactly once"
                )

    # -- seeds ---------------------------------------------------------------------

    @property
    def seed_list(self) -> List[int]:
        """The seeds this spec runs: ``seeds`` if set, else ``[seed]``."""
        return list(self.seeds) if self.seeds is not None else [self.seed]

    @property
    def is_sweep(self) -> bool:
        """True when the spec declares a seed list -- even a single-element
        one: a declared ``seeds`` must never be silently ignored in favour of
        the unrelated ``seed`` field."""
        return self.seeds is not None

    def for_seed(self, seed: int) -> "RunSpec":
        """A single-run copy of this spec pinned to one seed."""
        return replace(self, seed=seed, seeds=None)

    # -- serialization -------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": SPEC_VERSION,
            "name": self.name,
            "domain": self.domain,
            "domain_kwargs": dict(self.domain_kwargs),
            "search": dict(self.search),
            "engine": dict(self.engine),
            "llm": dict(self.llm),
            "seed": self.seed,
            "seeds": list(self.seeds) if self.seeds is not None else None,
            "checkpoint": self.checkpoint,
            "checkpoint_every": self.checkpoint_every,
            "fidelity": self.fidelity,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        data = dict(data)
        version = data.pop("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ValueError(
                f"unsupported RunSpec version {version} (this repro reads v{SPEC_VERSION})"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown RunSpec field(s) {sorted(unknown)}; known: {sorted(known)}"
            )
        seeds = data.get("seeds")
        return cls(
            domain=data.get("domain", ""),
            name=data.get("name", ""),
            domain_kwargs=dict(data.get("domain_kwargs", {})),
            search=dict(data.get("search", {})),
            engine=dict(data.get("engine", {})),
            llm=dict(data.get("llm", {})),
            seed=int(data.get("seed", 0)),
            seeds=[int(s) for s in seeds] if seeds is not None else None,
            checkpoint=bool(data.get("checkpoint", False)),
            checkpoint_every=int(data.get("checkpoint_every", 1)),
            fidelity=data.get("fidelity"),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "RunSpec":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def config_hash(self) -> str:
        """SHA-256 of the canonical spec JSON: the run's reproducibility key."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def eval_config_hash(self) -> str:
        """The evaluation-store key: a hash of everything that determines a
        candidate program's *score*.

        That is the domain plus its declarative ``domain_kwargs`` (trace
        references, scenario matrix, reducer, backend, ...) -- and nothing
        else: search shape, seeds, LLM behaviour and engine parallelism
        change *which* programs are generated, never what one program
        scores.  Every seed of a sweep therefore shares one eval config,
        which is exactly what lets sweep seeds warm-start from each other's
        evaluations.  The ``fidelity`` block is deliberately excluded too:
        full-fidelity scores are ladder-independent (so ladder and
        non-ladder runs share one warm-start population), and sub-full rung
        entries are segregated by
        :func:`~repro.core.store.fidelity_eval_key` instead.  The store schema version and the repro package version
        are folded in, so neither a payload-format change nor a release that
        touches evaluator/simulator behaviour can alias old entries (after
        *uncommitted* changes to scoring code, run ``repro store clear``).
        """
        from repro import __version__ as repro_version

        canonical = json.dumps(
            {
                "domain": self.domain,
                "domain_kwargs": self.domain_kwargs,
                "store_schema": STORE_SCHEMA_VERSION,
                "repro_version": repro_version,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # -- layering onto the domain defaults -----------------------------------------

    def fidelity_schedule(self) -> Optional[FidelitySchedule]:
        """The spec's multi-fidelity schedule (``None`` when disabled)."""
        return FidelitySchedule.from_ref(self.fidelity)

    def search_config(self, domain: SearchDomain) -> SearchConfig:
        return replace(domain.default_search_config(), **self.search)

    def engine_config(self) -> Optional[EngineConfig]:
        return EngineConfig(**self.engine) if self.engine else None

    def llm_config(self, domain: SearchDomain) -> Optional[SyntheticLLMConfig]:
        overrides = {k: v for k, v in self.llm.items() if k != PROVIDER_KEY}
        if not overrides:
            return None
        return replace(domain.default_llm_config(), **overrides)

    def provider_config(self) -> Optional[ProviderConfig]:
        """The spec's LLM provider block (``None`` when not configured)."""
        return ProviderConfig.from_ref(self.llm.get(PROVIDER_KEY))


# -- trace references ---------------------------------------------------------------


def resolve_domain_kwargs(domain_kwargs: Dict[str, Any]) -> Dict[str, Any]:
    """Materialise declarative references into objects.

    ``trace`` references become concrete traces; ``workloads`` (a scenario
    matrix: list of registry names or ``{"name": ..., **overrides}``
    dictionaries) become :class:`~repro.workloads.spec.WorkloadSpec` objects
    and ``reducer`` a :class:`~repro.core.scenarios.ScoreReducer`.
    """
    resolved = dict(domain_kwargs)
    trace = resolved.get("trace")
    if isinstance(trace, dict):
        resolved["trace"] = build_trace(trace)
    if resolved.get("workloads") is not None:
        from repro.workloads import resolve_workload_ref

        resolved["workloads"] = [
            resolve_workload_ref(ref) for ref in resolved["workloads"]
        ]
    if resolved.get("reducer") is not None:
        from repro.core.scenarios import ScoreReducer

        resolved["reducer"] = ScoreReducer.from_ref(resolved["reducer"])
    return resolved


def build_trace(ref: Dict[str, Any]):
    """Build a deterministic trace from its declarative reference.

    ``{"dataset": "cloudphysics" | "msr", "index": int, "num_requests": int}``
    selects a corpus trace; ``{"dataset": "synthetic", ...}`` forwards the
    remaining keys to :class:`~repro.traces.synthetic.SyntheticWorkloadConfig`;
    ``{"dataset": "workload", "name": <registry name>, ...overrides}``
    resolves a registered caching workload (see :mod:`repro.workloads`).
    """
    ref = dict(ref)
    try:
        dataset = ref.pop("dataset")
    except KeyError:
        raise ValueError(
            f"a trace reference needs a 'dataset' key; got {sorted(ref)}"
        ) from None
    if dataset == "synthetic":
        from repro.traces.synthetic import SyntheticWorkloadConfig, generate_trace

        return generate_trace(SyntheticWorkloadConfig(**ref))
    if dataset == "workload":
        from repro.workloads import build_trace as build_workload_trace

        return build_workload_trace(ref)
    index = ref.pop("index", 0)
    num_requests = ref.pop("num_requests", None)
    if ref:
        raise ValueError(
            f"unknown trace-reference key(s) {sorted(ref)} for dataset {dataset!r}"
        )
    if dataset == "cloudphysics":
        from repro.traces.cloudphysics import cloudphysics_config
        from repro.traces.synthetic import generate_trace

        return generate_trace(
            cloudphysics_config(index, **_maybe(num_requests))
        )
    if dataset == "msr":
        from repro.traces.msr import msr_config
        from repro.traces.synthetic import generate_trace

        return generate_trace(msr_config(index, **_maybe(num_requests)))
    raise ValueError(
        f"unknown trace dataset {dataset!r} "
        "(use 'cloudphysics', 'msr', 'synthetic' or 'workload')"
    )


def _maybe(num_requests: Optional[int]) -> Dict[str, int]:
    return {} if num_requests is None else {"num_requests": num_requests}


# -- running a spec -----------------------------------------------------------------


@dataclass
class RunOutcome:
    """What :func:`run` hands back: result, full setup, and the artifact path."""

    spec: RunSpec
    seed: int
    result: SearchResult
    setup: SearchSetup
    artifact_dir: Optional[Path] = None
    #: Domain kwargs after reference resolution (e.g. the concrete Trace),
    #: so callers can reuse the run's context without rebuilding it.
    resolved_domain_kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Interval certificate of the winning candidate (``None`` when the run
    #: produced no winner or the evaluator declares no input intervals).
    #: A pure function of the winning program and the declared intervals,
    #: computed whether or not static screening was enabled.
    certification: Optional[Dict[str, Any]] = None


@dataclass
class SweepOutcome:
    """Per-seed outcomes of :func:`run_sweep`, in the spec's seed order."""

    spec: RunSpec
    outcomes: List[RunOutcome]
    artifact_dir: Optional[Path] = None

    @property
    def best(self) -> Optional[RunOutcome]:
        """The outcome with the best valid score (ties: earlier seed wins)."""
        best = None
        for outcome in self.outcomes:
            if outcome.result.best is None:
                continue
            if best is None or outcome.result.best.score > best.result.best.score:
                best = outcome
        return best


def build_from_spec(
    spec: RunSpec,
    *,
    seed: Optional[int] = None,
    checkpoint_path: Optional[Union[str, Path]] = None,
    events: Optional[EventBus] = None,
    resolved_kwargs: Optional[Dict[str, Any]] = None,
) -> SearchSetup:
    """Assemble the full search a spec describes (one seed)."""
    if spec.is_sweep and seed is None:
        raise ValueError(
            f"spec {spec.name!r} declares a seed sweep {spec.seeds}; "
            "pass seed=... to build one of its runs, or use run_sweep()"
        )
    domain = get_domain(spec.domain)
    if resolved_kwargs is None:
        resolved_kwargs = resolve_domain_kwargs(spec.domain_kwargs)
    setup = build_search(
        spec.domain,
        seed=spec.seed if seed is None else seed,
        search_config=spec.search_config(domain),
        engine_config=spec.engine_config(),
        llm_config=spec.llm_config(domain),
        provider=spec.provider_config(),
        checkpoint_path=checkpoint_path,
        checkpoint_every=spec.checkpoint_every,
        events=events,
        **resolved_kwargs,
    )
    schedule = spec.fidelity_schedule()
    if schedule is not None and setup.engine is not None:
        setup.engine.attach_fidelity(schedule)
    return setup


def resolve_eval_store(
    eval_store: Union[None, str, Path, EvaluationStore],
    artifact_root: Optional[Path],
) -> Optional[EvaluationStore]:
    """Materialise an evaluation-store argument.

    ``"auto"`` (the :func:`run` / :func:`run_sweep` default) places the
    store at ``<artifact root>/evalstore`` -- shared by every run, sweep and
    resume under that root -- and disables it when the run writes no
    artifacts at all.  A path or :class:`EvaluationStore` pins it
    explicitly; ``None`` disables the disk tier.
    """
    if eval_store is None:
        return None
    if isinstance(eval_store, EvaluationStore):
        return eval_store
    if eval_store == "auto":
        if artifact_root is None:
            return None
        return EvaluationStore(artifact_root / EVAL_STORE_DIRNAME)
    return EvaluationStore(Path(eval_store))


def run(
    spec: RunSpec,
    *,
    store: Optional[Union[str, Path, "artifact_store.ArtifactStore"]] = None,
    run_dir: Optional[Union[str, Path]] = None,
    subscribers: Sequence[Subscriber] = (),
    seed: Optional[int] = None,
    eval_store: Union[None, str, Path, EvaluationStore] = "auto",
) -> RunOutcome:
    """Execute one spec; returns the result plus the artifact directory.

    ``store`` (an :class:`~repro.core.artifacts.ArtifactStore` or a root
    path) enables artifact persistence; ``run_dir`` pins the run to an
    explicit directory instead (used by sweeps and ``repro resume``).
    Without either, nothing touches disk and ``artifact_dir`` is ``None``.
    ``subscribers`` join the run's event stream (progress printers, logs).

    ``eval_store`` attaches the persistent evaluation store (the engine's
    disk memo tier): ``"auto"`` (default) uses ``<artifact root>/evalstore``
    whenever artifacts are written, a path or
    :class:`~repro.core.store.EvaluationStore` selects one explicitly,
    ``None`` disables it.  The store only ever changes *where* evaluation
    results come from, never what they are -- a fixed seed produces a
    byte-identical ``result.json`` with the store cold, warm or disabled.
    """
    if spec.is_sweep and seed is None:
        raise ValueError(
            f"spec {spec.name!r} declares a seed sweep {spec.seeds}; use run_sweep()"
        )
    effective_seed = spec.seed if seed is None else seed
    effective_spec = spec.for_seed(effective_seed)

    artifact_dir: Optional[Path] = None
    artifact_root: Optional[Path] = None
    if run_dir is not None:
        artifact_dir = artifact_store.prepare_run_dir(
            run_dir, effective_spec.to_dict()
        )
        # A sweep seed directory lives one level below the artifact root
        # (<root>/<sweep>/seed-N); the shared store sits beside the sweep,
        # not inside it, so resuming a seed finds what the sweep populated.
        artifact_root = artifact_dir.parent
        if artifact_store.is_sweep_dir(artifact_root):
            artifact_root = artifact_root.parent
    elif store is not None:
        if not isinstance(store, artifact_store.ArtifactStore):
            store = artifact_store.ArtifactStore(store)
        artifact_dir = artifact_store.prepare_run_dir(
            store.run_dir(spec.name, effective_spec.config_hash(), effective_seed),
            effective_spec.to_dict(),
        )
        artifact_root = store.root
    evaluation_store = resolve_eval_store(eval_store, artifact_root)

    if spec.checkpoint and artifact_dir is None:
        raise ValueError(
            "spec requests checkpointing, which needs an artifact directory; "
            "provide an artifact store (from the CLI: drop --no-artifacts) "
            "or set \"checkpoint\": false in the spec"
        )
    checkpoint_path = (
        artifact_dir / artifact_store.CHECKPOINT_FILE
        if (spec.checkpoint and artifact_dir is not None)
        else None
    )

    events = EventBus(list(subscribers))
    event_log: Optional[JsonlEventLog] = None
    if artifact_dir is not None:
        event_log = JsonlEventLog(artifact_dir / artifact_store.EVENTS_FILE)
        events.subscribe(event_log)

    try:
        resolved_kwargs = resolve_domain_kwargs(spec.domain_kwargs)
        setup = build_from_spec(
            spec,
            seed=effective_seed,
            checkpoint_path=checkpoint_path,
            events=events,
            resolved_kwargs=resolved_kwargs,
        )
        if evaluation_store is not None and setup.engine is not None:
            setup.engine.attach_store(
                evaluation_store.bind(effective_spec.eval_config_hash())
            )
            evaluation_store.register_writer(
                f"run-{effective_spec.name}-seed{effective_seed}"
            )
        result = setup.search.run()
    finally:
        if event_log is not None:
            event_log.close()

    # Certify the winner's output interval.  Computed unconditionally (not
    # just when static screening ran): certification is a pure function of
    # the winning program and the evaluator's declared input intervals, so
    # it lands in result.json without breaking the screening-knob
    # byte-identity guarantee.
    certification_record: Optional[Dict[str, Any]] = None
    if result.best is not None and result.best.program is not None:
        intervals = setup.evaluator.input_intervals()
        if intervals is not None:
            from repro.dsl.abstract import certify_program

            certification_record = certify_program(
                result.best.program, intervals
            ).to_dict()

    if artifact_dir is not None:
        eval_store_record = None
        if evaluation_store is not None and setup.engine is not None:
            eval_store_record = {
                "path": str(evaluation_store.root),
                "eval_config_hash": effective_spec.eval_config_hash(),
                "lookups": setup.engine.store_lookups,
                "hits": setup.engine.store_hits,
                "writes": setup.engine.store_writes,
            }
        fidelity_record = None
        schedule = effective_spec.fidelity_schedule()
        if schedule is not None and setup.engine is not None:
            fidelity_record = {
                "schedule": schedule.to_ref(),
                "rung_evaluations": setup.engine.rung_evaluations,
                "rung_promotions": setup.engine.rung_promotions,
                "rung_eliminations": setup.engine.rung_eliminations,
            }
        backend_record = None
        backend_stats = getattr(setup.evaluator, "backend_stats", None)
        if isinstance(backend_stats, dict) and backend_stats.get("resolved"):
            requested = backend_stats.get("requested")
            resolved = dict(backend_stats["resolved"])
            backend_record = {
                "requested": requested,
                "resolved": resolved,
                "fallbacks": sum(
                    count for name, count in resolved.items() if name != requested
                ),
            }
        # Round-phase timings are volatile (wall-clock), so they are zeroed
        # in result.json; the live sums land here instead, alongside the
        # prompt-cache counters when a caching provider is attached.
        search_cfg = setup.search.config
        engine_cfg = setup.engine.config if setup.engine is not None else None
        pipeline_record: Dict[str, Any] = {
            "enabled": bool(
                search_cfg.pipeline
                or (engine_cfg is not None and engine_cfg.pipeline)
            ),
            "generation_s": round(
                sum(r.generation_s for r in result.rounds), 6
            ),
            "evaluation_s": round(
                sum(r.evaluation_s for r in result.rounds), 6
            ),
            "overlap_s": round(sum(r.overlap_s for r in result.rounds), 6),
        }
        generator_client = setup.search.generator.client
        cache = getattr(generator_client, "cache", None)
        if cache is not None and hasattr(generator_client, "hits"):
            pipeline_record["prompt_cache"] = {
                "path": str(cache.root),
                "hits": generator_client.hits,
                "misses": generator_client.misses,
                "corrupt_reads": cache.corrupt_reads,
            }
        # The distributed fabric record (queue path, dispatch/reclaim/rescue
        # counters, per-worker completions) is volatile -- pids, hostnames,
        # who won which task -- so it lands in metadata.json, never
        # result.json.
        distributed_record = (
            setup.engine.distributed if setup.engine is not None else None
        )
        # The live screening record is volatile telemetry (how evaluation
        # was budgeted), so like the store/rung counters it goes to
        # metadata.json only.
        screen_record = None
        if (
            setup.engine is not None
            and engine_cfg is not None
            and engine_cfg.static_screen
        ):
            checks = setup.engine.screen_checks
            screen_record = {
                "enabled": True,
                "checks": checks,
                "screened": setup.engine.screened,
                "screen_rate": (
                    setup.engine.screened / checks if checks else 0.0
                ),
            }
        artifact_store.finalize_run_dir(
            artifact_dir,
            effective_spec.to_dict(),
            result,
            config_hash=effective_spec.config_hash(),
            seed=effective_seed,
            eval_store=eval_store_record,
            fidelity=fidelity_record,
            dsl_backend=backend_record,
            pipeline=pipeline_record,
            distributed=distributed_record,
            static_screen=screen_record,
            certification=certification_record,
        )
    return RunOutcome(
        spec=spec,
        seed=effective_seed,
        result=result,
        setup=setup,
        artifact_dir=artifact_dir,
        resolved_domain_kwargs=resolved_kwargs,
        certification=certification_record,
    )


def run_sweep(
    spec: RunSpec,
    *,
    store: Optional[Union[str, Path, "artifact_store.ArtifactStore"]] = None,
    subscribers: Sequence[Subscriber] = (),
    max_parallel: Optional[int] = None,
    eval_store: Union[None, str, Path, EvaluationStore] = "auto",
) -> SweepOutcome:
    """Run every seed of a sweep spec; seeds execute in parallel.

    Each seed is an independent deterministic search (its own client, engine
    and evaluator), so outcomes are identical whatever the scheduling; they
    are returned in the spec's seed order.  Per-seed artifacts land in
    ``<sweep dir>/seed-<n>/`` with a ``sweep.json`` index at the top.

    All seeds share one evaluation store (and one eval-config hash, since
    seeds differ only in trajectory, never in scoring), so a candidate
    program evaluated by any seed is a disk hit for every other -- and a
    repeated sweep over a populated store warm-starts entirely from disk.
    Store reads/writes are atomic, so concurrent seeds (and concurrent
    sweeps on one machine) can share a directory safely.

    ``subscribers`` are shared by every seed's event stream and may be
    called from multiple threads concurrently -- pass stateless/thread-safe
    subscribers, or cap ``max_parallel=1``.
    """
    seeds = spec.seed_list
    sweep_dir: Optional[Path] = None
    artifact_root: Optional[Path] = None
    if store is not None:
        if not isinstance(store, artifact_store.ArtifactStore):
            store = artifact_store.ArtifactStore(store)
        sweep_dir = store.sweep_dir(spec.name, spec.config_hash())
        artifact_root = store.root
    evaluation_store = resolve_eval_store(eval_store, artifact_root)

    def _one(seed: int) -> RunOutcome:
        return run(
            spec,
            seed=seed,
            run_dir=(sweep_dir / f"seed-{seed}") if sweep_dir is not None else None,
            subscribers=subscribers,
            eval_store=evaluation_store,
        )

    workers = max_parallel or min(len(seeds), os.cpu_count() or 1)
    if workers <= 1 or len(seeds) == 1:
        outcomes = [_one(seed) for seed in seeds]
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(_one, seeds))

    sweep = SweepOutcome(spec=spec, outcomes=outcomes, artifact_dir=sweep_dir)
    if sweep_dir is not None:
        runs = []
        for outcome in outcomes:
            best = outcome.result.best
            runs.append(
                {
                    "seed": outcome.seed,
                    "dir": outcome.artifact_dir.name,
                    "best_score": best.score if best is not None else None,
                    "best_candidate_id": (
                        best.candidate.candidate_id if best is not None else None
                    ),
                    "valid_candidates": len(outcome.result.valid_candidates()),
                    "total_candidates": outcome.result.total_candidates,
                }
            )
        artifact_store.write_sweep_dir(
            sweep_dir,
            spec.to_dict(),
            runs,
            config_hash=spec.config_hash(),
            best_seed=sweep.best.seed if sweep.best is not None else None,
        )
    return sweep
