"""Templates: the user-authored specification of the program search space.

A Template bundles everything the Generator needs to know about *what* to
synthesize (§3 of the paper):

* the function signature / feature environment (a
  :class:`~repro.dsl.grammar.FeatureSpec`),
* a natural-language description of the interface and available features,
* natural-language *constraints* (allowed constructs, complexity bounds,
  kernel restrictions, ...),
* seed example programs (LRU and LFU for the caching case study, §4.2.1).

The Template is also what determines how demanding the Checker must be: the
caching Template only needs structural checks, while the kernel Template
(:mod:`repro.cc.template`) pairs with the kernel-constraint checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.dsl.ast import Program
from repro.dsl.codegen import to_source
from repro.dsl.grammar import FeatureSpec


@dataclass
class Template:
    """Specification of the heuristic search space.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"cache-priority"`` or ``"cong-control"``.
    spec:
        The machine-readable feature environment (signature, feature objects,
        methods) the DSL grammar and the synthetic generator sample from.
    description:
        Natural-language description of the interface -- what the function
        must compute and which features it may read (Table 1 in the paper).
    constraints:
        Natural-language constraints ("no floating point", "O(log N)",
        "no unbounded loops", ...).  They are included in prompts verbatim and
        enforced mechanically by the paired Checker.
    seed_programs:
        Example programs included in the first prompt and used as the initial
        parent set of the evolutionary search.
    """

    name: str
    spec: FeatureSpec
    description: str
    constraints: List[str] = field(default_factory=list)
    seed_programs: List[Program] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.spec.params:
            raise ValueError("a Template's FeatureSpec must declare parameters")
        for program in self.seed_programs:
            if list(program.params) != list(self.spec.params):
                raise ValueError(
                    f"seed program {program.name!r} does not match the template "
                    f"signature {self.spec.params}"
                )

    @property
    def function_name(self) -> str:
        return self.spec.function_name

    @property
    def params(self) -> Sequence[str]:
        return tuple(self.spec.params)

    def signature(self) -> str:
        """The function signature line, as shown to the Generator."""
        return f"def {self.spec.function_name}({', '.join(self.spec.params)})"

    def seeds_as_source(self) -> List[str]:
        """Seed programs rendered as DSL source text."""
        return [to_source(program) for program in self.seed_programs]

    def constraint_text(self) -> str:
        """Constraints as a numbered list (used in prompts and reports)."""
        if not self.constraints:
            return "(no additional constraints)"
        return "\n".join(f"{i + 1}. {c}" for i, c in enumerate(self.constraints))
