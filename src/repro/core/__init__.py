"""The PolicySmith framework (the paper's primary contribution, Fig. 1).

The framework separates *specification* from *search*:

* the user supplies a :class:`~repro.core.template.Template` (the program
  space + natural-language constraints), a
  :class:`~repro.core.checker.Checker` (syntactic/semantic gatekeeper) and an
  :class:`~repro.core.evaluator.Evaluator` (context-specific scoring);
* :class:`~repro.core.search.EvolutionarySearch` drives an LLM-based
  :class:`~repro.core.generator.Generator` through rounds of generation,
  checking, evaluation and parent feedback, producing an instance-optimal
  heuristic for the given :class:`~repro.core.context.Context`.

Nothing in this package knows about caching or congestion control; the case
studies plug in their own Templates, Checkers and Evaluators.
"""

from repro.core.context import Context, ContextShiftDetector
from repro.core.template import Template
from repro.core.checker import (
    CheckIssue,
    CheckResult,
    Checker,
    CompositeChecker,
    StructuralChecker,
)
from repro.core.evaluator import EvaluationResult, Evaluator, FunctionEvaluator
from repro.core.scenarios import MultiScenarioEvaluator, ScoreReducer
from repro.core.generator import Generator, LLMGenerator
from repro.core.results import Candidate, ScoredCandidate, RoundSummary, SearchResult
from repro.core.search import EvolutionarySearch, SearchConfig
from repro.core.engine import BatchStats, EngineConfig, EvaluationEngine
from repro.core.executors import (
    EvalUnit,
    Executor,
    available_executors,
    create_executor,
    register_executor,
)
from repro.core.store import (
    STORE_SCHEMA_VERSION,
    BoundEvalStore,
    EvaluationStore,
    GcOutcome,
    StoreStats,
    fidelity_eval_key,
)
from repro.core.fidelity import DEFAULT_RUNGS, FidelitySchedule
from repro.core.domain import (
    SearchDomain,
    SearchSetup,
    available_domains,
    build_search,
    get_domain,
    register_domain,
)
from repro.core.archive import HeuristicArchive, ArchiveEntry, SearchCheckpoint
from repro.core.cost import CostModel, GPT_4O_MINI_PRICING, SearchCostReport
from repro.core.events import (
    CandidateEliminated,
    CandidateEvaluated,
    CandidatePromoted,
    CheckpointWritten,
    EventBus,
    JsonlEventLog,
    ProgressPrinter,
    RoundCompleted,
    RunEvent,
    RunFinished,
    RunStarted,
)
from repro.core.artifacts import (
    ARTIFACT_VERSION,
    ArtifactStore,
    RunArtifact,
    search_result_from_dict,
    search_result_to_dict,
)
from repro.core.spec import (
    RunOutcome,
    RunSpec,
    SweepOutcome,
    build_from_spec,
    run,
    run_sweep,
)

__all__ = [
    "Context",
    "ContextShiftDetector",
    "Template",
    "CheckIssue",
    "CheckResult",
    "Checker",
    "CompositeChecker",
    "StructuralChecker",
    "EvaluationResult",
    "Evaluator",
    "FunctionEvaluator",
    "MultiScenarioEvaluator",
    "ScoreReducer",
    "Generator",
    "LLMGenerator",
    "Candidate",
    "ScoredCandidate",
    "RoundSummary",
    "SearchResult",
    "EvolutionarySearch",
    "SearchConfig",
    "BatchStats",
    "EngineConfig",
    "EvaluationEngine",
    "EvalUnit",
    "Executor",
    "available_executors",
    "create_executor",
    "register_executor",
    "STORE_SCHEMA_VERSION",
    "BoundEvalStore",
    "EvaluationStore",
    "GcOutcome",
    "StoreStats",
    "fidelity_eval_key",
    "DEFAULT_RUNGS",
    "FidelitySchedule",
    "SearchDomain",
    "SearchSetup",
    "available_domains",
    "build_search",
    "get_domain",
    "register_domain",
    "HeuristicArchive",
    "ArchiveEntry",
    "SearchCheckpoint",
    "CostModel",
    "GPT_4O_MINI_PRICING",
    "SearchCostReport",
    "RunEvent",
    "RunStarted",
    "CandidateEvaluated",
    "CandidatePromoted",
    "CandidateEliminated",
    "RoundCompleted",
    "CheckpointWritten",
    "RunFinished",
    "EventBus",
    "ProgressPrinter",
    "JsonlEventLog",
    "ARTIFACT_VERSION",
    "ArtifactStore",
    "RunArtifact",
    "search_result_to_dict",
    "search_result_from_dict",
    "RunSpec",
    "RunOutcome",
    "SweepOutcome",
    "build_from_spec",
    "run",
    "run_sweep",
]
