"""Generators: produce candidate heuristic source code.

The framework only requires two operations -- propose new candidates given
the best parents found so far, and repair a candidate that the Checker
rejected -- so that is the whole protocol.  :class:`LLMGenerator` implements
it on top of any :class:`~repro.llm.client.LLMClient` (the offline synthetic
client by default, a real API client in a deployment).
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence, Tuple

from repro.core.template import Template
from repro.llm.client import LLMClient
from repro.llm.prompts import PromptBuilder, extract_code_blocks
from repro.llm.tokens import UsageTracker

#: ``(source, score)`` pairs: the best heuristics so far, shown as examples.
ParentExamples = Sequence[Tuple[str, float]]


class Generator(Protocol):
    """Anything that can propose and repair candidate heuristics."""

    def generate(
        self, parents: ParentExamples, num_candidates: int
    ) -> List[str]:  # pragma: no cover - protocol
        ...

    def repair(
        self, source: str, feedback: str
    ) -> Optional[str]:  # pragma: no cover - protocol
        ...


class LLMGenerator:
    """Drives an LLM client with the Template's prompts.

    Token usage of every call is accumulated in :attr:`usage`, regardless of
    which client implementation is plugged in, so the §4.2.6 cost accounting
    is client-agnostic.
    """

    def __init__(
        self,
        template: Template,
        client: LLMClient,
        context_description: str = "",
        temperature: float = 1.0,
        batch_size: Optional[int] = None,
    ):
        if batch_size is not None and batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.template = template
        self.client = client
        self.temperature = temperature
        #: Preferred completions per client call when the round is streamed
        #: (``None``: the pipelined search picks its own chunk size).
        self.batch_size = batch_size
        self.prompts = PromptBuilder(template, context_description)
        self.usage = UsageTracker()

    # -- Generator protocol --------------------------------------------------------

    def generate(self, parents: ParentExamples, num_candidates: int) -> List[str]:
        """Ask the client for ``num_candidates`` candidates.

        Each completion is expected to contain at least one fenced code
        block; completions without any block are dropped (they count against
        the round's budget, exactly as a rambling LLM answer would).
        """
        if num_candidates <= 0:
            return []
        messages = self.generation_messages(parents, num_candidates)
        return self.generate_chunk(messages, num_candidates)

    # -- streaming (pipelined rounds) ----------------------------------------------

    def generation_messages(self, parents: ParentExamples, num_candidates: int):
        """The generation prompt for one round.

        Exposed separately so the pipelined round can build the prompt
        *once* -- with the round's full candidate budget embedded in the
        text -- and then pull completions off it in chunks: for the seeded
        synthetic client, ``complete(msgs, n=k)`` and sequential
        ``complete(msgs, n=c_i)`` with the same ``msgs`` and ``sum(c_i)=k``
        consume the identical RNG stream.
        """
        return self.prompts.generation_prompt(list(parents), num_candidates)

    def generate_chunk(self, messages, n: int) -> List[str]:
        """Pull ``n`` completions off an already-built generation prompt."""
        if n <= 0:
            return []
        responses = self.client.complete(messages, n=n, temperature=self.temperature)
        sources: List[str] = []
        for response in responses:
            self.usage.record(response.prompt_tokens, response.completion_tokens)
            blocks = extract_code_blocks(response.text)
            if blocks:
                sources.append(blocks[0])
        return sources

    def repair(self, source: str, feedback: str) -> Optional[str]:
        """Ask the client to fix ``source`` given the Checker's ``feedback``."""
        messages = self.prompts.repair_prompt(source, feedback)
        responses = self.client.complete(messages, n=1, temperature=self.temperature)
        if not responses:
            return None
        response = responses[0]
        self.usage.record(response.prompt_tokens, response.completion_tokens)
        blocks = extract_code_blocks(response.text)
        return blocks[0] if blocks else None
