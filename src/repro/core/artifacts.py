"""Versioned artifact store: every run is a re-renderable directory on disk.

A *run directory* is the durable form of one run -- a search driven by a
:class:`~repro.core.spec.RunSpec` or one registered experiment -- laid out as

=================  =======================================================
``spec.json``      the declarative spec (or experiment name + parameters)
``result.json``    the run's outcome, canonical JSON, volatile wall-clock
                   fields stripped so identical specs produce *byte-identical*
                   files
``rounds.jsonl``   one JSON line per search round (search runs)
``events.jsonl``   the streamed event log (search runs)
``metadata.json``  reproducibility record: artifact format version, config
                   hash, seed(s), repro package version, wall time
=================  =======================================================

Run-directory names are deterministic -- ``<name>-<config-hash prefix>`` plus
the seed -- so rerunning an identical spec overwrites the same directory with
identical content instead of accumulating near-duplicates, and ``repro
report`` / ``repro resume`` can address runs stably.  ``ARTIFACT_VERSION``
gates the layout; readers reject directories written by a future format.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro import __version__ as _REPRO_VERSION
from repro.core.archive import (
    round_summary_from_dict,
    round_summary_to_dict,
    scored_candidate_from_dict,
    scored_candidate_to_dict,
)
from repro.core.events import read_event_log
from repro.core.results import RoundSummary, ScoredCandidate, SearchResult

#: Version of the run-directory layout (bump on breaking changes).
ARTIFACT_VERSION = 1

SPEC_FILE = "spec.json"
RESULT_FILE = "result.json"
ROUNDS_FILE = "rounds.jsonl"
EVENTS_FILE = "events.jsonl"
METADATA_FILE = "metadata.json"
SWEEP_FILE = "sweep.json"
CHECKPOINT_FILE = "checkpoint.json"


def canonical_json(data: Any) -> str:
    """Deterministic JSON rendering (sorted keys, fixed layout, newline-terminated)."""
    return json.dumps(data, sort_keys=True, indent=2, allow_nan=False) + "\n"


def _write_json(path: Path, data: Any) -> None:
    path.write_text(canonical_json(data), encoding="utf-8")


# -- SearchResult <-> dict ----------------------------------------------------------


def _strip_volatile_round(data: dict) -> dict:
    """Zero a round dictionary's store and fidelity-rung counters.

    The store counters depend on what the attached evaluation store happened
    to contain; the rung counters describe how the fidelity ladder budgeted
    evaluation, not what the search found (and a shadow-mode ladder run must
    stay byte-identical to a ladder-disabled one).  The static-screen
    counters likewise describe budgeting (and a run in which nothing screens
    must stay byte-identical with the knob off).  The phase timings are
    wall-clock (and a pipelined run must stay byte-identical to a serial
    one).  All are execution telemetry: live values go to ``metadata.json``.
    """
    return dict(
        data,
        store_lookups=0,
        store_hits=0,
        rung_evaluations=0,
        rung_promotions=0,
        rung_eliminations=0,
        screen_checks=0,
        screened=0,
        generation_s=0.0,
        evaluation_s=0.0,
        overlap_s=0.0,
    )


def search_result_to_dict(result: SearchResult, include_timing: bool = False) -> dict:
    """JSON form of a whole :class:`SearchResult`.

    With ``include_timing=False`` (the artifact-store default) per-candidate
    and total wall-clock fields are zeroed -- and so are the evaluation-store
    hit counters, which depend on the store's state rather than the spec --
    so the dictionary -- and therefore ``result.json`` -- is a pure function
    of the spec: rerunning an identical spec yields byte-identical output,
    with the store cold, warm or disabled.  Timing and live store statistics
    go to ``metadata.json``, which is allowed to differ between reruns.
    """
    candidates = []
    for scored in result.candidates:
        data = scored_candidate_to_dict(scored)
        if not include_timing and data["evaluation"] is not None:
            data["evaluation"] = dict(data["evaluation"], wall_time_s=0.0)
        candidates.append(data)
    rounds = [round_summary_to_dict(r) for r in result.rounds]
    if not include_timing:
        rounds = [_strip_volatile_round(r) for r in rounds]
    return {
        "best_candidate_id": (
            result.best.candidate.candidate_id if result.best is not None else None
        ),
        "candidates": candidates,
        "rounds": rounds,
        "context_name": result.context_name,
        "template_name": result.template_name,
        "total_candidates": result.total_candidates,
        "wall_time_s": result.wall_time_s if include_timing else 0.0,
        "prompt_tokens": result.prompt_tokens,
        "completion_tokens": result.completion_tokens,
        "estimated_cost_usd": result.estimated_cost_usd,
        "eval_cache_lookups": result.eval_cache_lookups,
        "eval_cache_hits": result.eval_cache_hits,
        "store_lookups": result.store_lookups if include_timing else 0,
        "store_hits": result.store_hits if include_timing else 0,
        "rung_evaluations": result.rung_evaluations if include_timing else 0,
        "rung_promotions": result.rung_promotions if include_timing else 0,
        "rung_eliminations": result.rung_eliminations if include_timing else 0,
        "screen_checks": result.screen_checks if include_timing else 0,
        "screened": result.screened if include_timing else 0,
    }


def search_result_from_dict(data: dict) -> SearchResult:
    """Rebuild a :class:`SearchResult` from its stored form."""
    candidates: List[ScoredCandidate] = [
        scored_candidate_from_dict(raw) for raw in data.get("candidates", [])
    ]
    rounds: List[RoundSummary] = [
        round_summary_from_dict(raw) for raw in data.get("rounds", [])
    ]
    best = None
    best_id = data.get("best_candidate_id")
    if best_id is not None:
        for scored in candidates:
            if scored.candidate.candidate_id == best_id:
                best = scored
                break
    return SearchResult(
        best=best,
        candidates=candidates,
        rounds=rounds,
        context_name=data.get("context_name", ""),
        template_name=data.get("template_name", ""),
        total_candidates=int(data.get("total_candidates", len(candidates))),
        wall_time_s=float(data.get("wall_time_s", 0.0)),
        prompt_tokens=int(data.get("prompt_tokens", 0)),
        completion_tokens=int(data.get("completion_tokens", 0)),
        estimated_cost_usd=float(data.get("estimated_cost_usd", 0.0)),
        eval_cache_lookups=int(data.get("eval_cache_lookups", 0)),
        eval_cache_hits=int(data.get("eval_cache_hits", 0)),
        store_lookups=int(data.get("store_lookups", 0)),
        store_hits=int(data.get("store_hits", 0)),
        rung_evaluations=int(data.get("rung_evaluations", 0)),
        rung_promotions=int(data.get("rung_promotions", 0)),
        rung_eliminations=int(data.get("rung_eliminations", 0)),
        screen_checks=int(data.get("screen_checks", 0)),
        screened=int(data.get("screened", 0)),
    )


# -- reading a run directory --------------------------------------------------------


class RunArtifact:
    """Read-only view of one run directory (lazy, dictionary-level access)."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        if not (self.path / SPEC_FILE).exists():
            raise FileNotFoundError(
                f"{self.path} is not a run directory (no {SPEC_FILE}); "
                "pass the directory printed by `repro run`"
            )
        self._spec: Optional[dict] = None
        self._result: Optional[dict] = None
        self._metadata: Optional[dict] = None

    def _read(self, name: str) -> dict:
        return json.loads((self.path / name).read_text(encoding="utf-8"))

    @property
    def spec(self) -> dict:
        if self._spec is None:
            self._spec = self._read(SPEC_FILE)
        return self._spec

    @property
    def result(self) -> dict:
        if self._result is None:
            self._result = self._read(RESULT_FILE)
        return self._result

    @property
    def metadata(self) -> dict:
        if self._metadata is None:
            self._metadata = self._read(METADATA_FILE)
            version = int(self._metadata.get("artifact_version", 0))
            if version > ARTIFACT_VERSION:
                raise ValueError(
                    f"{self.path} was written by artifact format v{version}; "
                    f"this version of repro reads up to v{ARTIFACT_VERSION}"
                )
        return self._metadata

    @property
    def kind(self) -> str:
        """``"experiment"`` or ``"search"``."""
        return "experiment" if "experiment" in self.spec else "search"

    def rounds(self) -> List[dict]:
        path = self.path / ROUNDS_FILE
        return read_event_log(path) if path.exists() else []

    def events(self) -> List[dict]:
        path = self.path / EVENTS_FILE
        return read_event_log(path) if path.exists() else []

    def search_result(self) -> SearchResult:
        """The stored result as a live :class:`SearchResult` (search runs)."""
        if self.kind != "search":
            raise ValueError(f"{self.path} holds an experiment, not a search run")
        return search_result_from_dict(self.result)


def is_sweep_dir(path: Union[str, Path]) -> bool:
    return (Path(path) / SWEEP_FILE).exists()


def load_sweep(path: Union[str, Path]) -> dict:
    sweep = json.loads((Path(path) / SWEEP_FILE).read_text(encoding="utf-8"))
    version = int(sweep.get("artifact_version", 0))
    if version > ARTIFACT_VERSION:
        raise ValueError(
            f"{path} was written by artifact format v{version}; "
            f"this version of repro reads up to v{ARTIFACT_VERSION}"
        )
    return sweep


# -- writing run directories --------------------------------------------------------


def prepare_run_dir(path: Union[str, Path], spec_data: dict) -> Path:
    """Create ``path`` and write ``spec.json`` before the run starts.

    Writing the spec up front makes an interrupted run resumable: the
    directory already identifies what was being run.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    _write_json(path / SPEC_FILE, spec_data)
    # A rerun must not inherit a stale outcome from a previous layout.
    for name in (RESULT_FILE, ROUNDS_FILE, METADATA_FILE):
        stale = path / name
        if stale.exists():
            stale.unlink()
    return path


def finalize_run_dir(
    path: Union[str, Path],
    spec_data: dict,
    result: SearchResult,
    *,
    config_hash: str,
    seed: int,
    eval_store: Optional[Dict[str, Any]] = None,
    fidelity: Optional[Dict[str, Any]] = None,
    dsl_backend: Optional[Dict[str, Any]] = None,
    pipeline: Optional[Dict[str, Any]] = None,
    distributed: Optional[Dict[str, Any]] = None,
    static_screen: Optional[Dict[str, Any]] = None,
    certification: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write result.json / rounds.jsonl / metadata.json for a finished search.

    ``eval_store`` (optional) is the run's live evaluation-store record --
    path, eval-config hash, lookup/hit/write counters -- stored in
    ``metadata.json`` only: like wall time, it describes *this* execution,
    not the spec.  ``fidelity`` (optional) is the run's live ladder record
    (schedule + rung counters), stored the same way.  ``dsl_backend``
    (optional) records which DSL execution backend was requested and how
    evaluations actually resolved (``make_runner`` falls back down the chain
    for unvectorizable programs); it never touches ``result.json`` because
    backends are score-identical by contract.  ``pipeline`` (optional) is
    the run's live generation/evaluation overlap record (summed phase
    timings) -- wall-clock telemetry, metadata only, for the same reason.
    ``distributed`` (optional) is the run's work-queue fabric record --
    queue path, dispatch/reclaim/rescue counters, per-worker completions --
    which is volatile by nature (worker pids, who won which task) and so
    also lives in ``metadata.json`` only.  ``static_screen`` (optional) is
    the run's live screening record (knob state + check/screen counters),
    metadata only like the rung counters.  ``certification`` (optional) is
    the winner's interval certificate -- a pure function of the winning
    program and the evaluator's declared input intervals, independent of the
    screening knob -- so it *does* go into ``result.json``.
    """
    path = Path(path)
    result_data = search_result_to_dict(result)
    if certification is not None:
        result_data["certification"] = certification
    _write_json(path / RESULT_FILE, result_data)
    rounds_lines = [
        json.dumps(_strip_volatile_round(round_summary_to_dict(r)), sort_keys=True)
        for r in result.rounds
    ]
    (path / ROUNDS_FILE).write_text(
        "".join(line + "\n" for line in rounds_lines), encoding="utf-8"
    )
    metadata = {
        "artifact_version": ARTIFACT_VERSION,
        "kind": "search",
        "config_hash": config_hash,
        "seed": seed,
        "seeds": [seed],
        "repro_version": _REPRO_VERSION,
        "wall_time_s": result.wall_time_s,
    }
    if eval_store is not None:
        metadata["eval_store"] = eval_store
    if fidelity is not None:
        metadata["fidelity"] = fidelity
    if dsl_backend is not None:
        metadata["dsl_backend"] = dsl_backend
    if pipeline is not None:
        metadata["pipeline"] = pipeline
    if distributed is not None:
        metadata["distributed"] = distributed
    if static_screen is not None:
        metadata["static_screen"] = static_screen
    _write_json(path / METADATA_FILE, metadata)
    return path


def write_experiment_dir(
    path: Union[str, Path],
    *,
    experiment: str,
    params: Dict[str, Any],
    payload: dict,
    config_hash: str,
) -> Path:
    """Write a run directory for one registered experiment."""
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    _write_json(
        path / SPEC_FILE,
        {"version": ARTIFACT_VERSION, "experiment": experiment, "params": params},
    )
    _write_json(path / RESULT_FILE, payload)
    _write_json(
        path / METADATA_FILE,
        {
            "artifact_version": ARTIFACT_VERSION,
            "kind": "experiment",
            "experiment": experiment,
            "config_hash": config_hash,
            "repro_version": _REPRO_VERSION,
        },
    )
    return path


def write_sweep_dir(
    path: Union[str, Path],
    spec_data: dict,
    runs: List[dict],
    *,
    config_hash: str,
    best_seed: Optional[int],
) -> Path:
    """Write the sweep-level index (per-seed dirs are normal run dirs).

    ``best_seed`` is computed by the caller (``SweepOutcome.best``) so the
    stored index and the in-memory outcome can never disagree.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    _write_json(
        path / SWEEP_FILE,
        {
            "artifact_version": ARTIFACT_VERSION,
            "kind": "sweep",
            "spec": spec_data,
            "config_hash": config_hash,
            "repro_version": _REPRO_VERSION,
            "runs": runs,
            "best_seed": best_seed,
        },
    )
    return path


class ArtifactStore:
    """Addresses run directories under one root (default ``./runs``)."""

    def __init__(self, root: Union[str, Path] = "runs"):
        self.root = Path(root)

    # -- naming -------------------------------------------------------------------

    @staticmethod
    def _hash_prefix(config_hash: str) -> str:
        return config_hash[:10]

    def run_dir(self, name: str, config_hash: str, seed: int) -> Path:
        return self.root / f"{name}-{self._hash_prefix(config_hash)}-s{seed}"

    def sweep_dir(self, name: str, config_hash: str) -> Path:
        return self.root / f"{name}-{self._hash_prefix(config_hash)}-sweep"

    def experiment_dir(self, name: str, config_hash: str) -> Path:
        return self.root / f"{name}-{self._hash_prefix(config_hash)}"

    # -- access -------------------------------------------------------------------

    def load(self, path: Union[str, Path]) -> RunArtifact:
        return RunArtifact(path)

    def runs(self) -> List[Path]:
        """Every run directory under the root (sweeps listed once)."""
        if not self.root.exists():
            return []
        found = []
        for child in sorted(self.root.iterdir()):
            if not child.is_dir():
                continue
            if (child / SPEC_FILE).exists() or (child / SWEEP_FILE).exists():
                found.append(child)
        return found
