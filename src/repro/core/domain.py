"""Pluggable search domains and the one-call ``build_search`` entry point.

A *domain* bundles everything that makes a search instance of the framework
concrete: the Template (program space + constraints), the paired Checker,
the context-specific Evaluator, the synthetic-LLM configuration (archetypes,
hallucination rates, grammar) and a Context factory.  The two case studies
register themselves here -- ``"caching"`` in :mod:`repro.cache.search` and
``"cc"`` in :mod:`repro.cc.search` -- and new workloads plug in the same
way, without touching the engine or the search loop.

``build_search(domain_name, ...)`` is the single assembly path used by
``experiments/`` and ``examples/``: it resolves the domain, builds every
component, wires them into an :class:`~repro.core.engine.EvaluationEngine`
and an :class:`~repro.core.search.EvolutionarySearch`, and returns the whole
:class:`SearchSetup` so callers can reach any layer (tests poke at the
client, experiments at the evaluator).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.checker import Checker
from repro.core.context import Context
from repro.core.engine import EngineConfig, EvaluationEngine
from repro.core.evaluator import Evaluator
from repro.core.events import EventBus
from repro.core.generator import LLMGenerator
from repro.core.scenarios import MultiScenarioEvaluator, ScoreReducer
from repro.core.search import EvolutionarySearch, SearchConfig
from repro.core.template import Template
from repro.dsl.grammar import GrammarConfig
from repro.llm.client import ProviderConfig, wrap_client
from repro.llm.mock import SyntheticLLMClient, SyntheticLLMConfig


class SearchDomain:
    """Base class for pluggable search domains.

    Subclasses override the ``build_*`` factories; every factory that takes
    ``**kwargs`` receives the caller's domain-specific keyword arguments
    (e.g. ``trace=...`` for caching, ``duration_s=...`` for congestion
    control) and should ignore keys it does not know.
    """

    #: Registry key, e.g. ``"caching"`` or ``"cc"``.
    name: str = ""

    #: Keyword arguments the domain's factories understand; ``build_search``
    #: rejects anything else so typos (``duration=`` for ``duration_s=``)
    #: fail loudly instead of silently running a default configuration.
    #: ``None`` disables the check (custom domains that forward kwargs).
    accepted_kwargs: Optional[frozenset] = None

    #: Keyword arguments that remain meaningful alongside a ``workloads=``
    #: scenario matrix (e.g. ``backend=``).  Single-scenario arguments such
    #: as ``trace=`` or ``duration_s=`` are rejected in matrix mode -- the
    #: per-scenario values live on the workload references -- instead of
    #: being silently ignored.  ``None`` falls back to ``accepted_kwargs``.
    matrix_kwargs: Optional[frozenset] = None

    def build_template(self) -> Template:
        raise NotImplementedError

    def build_context(self, **kwargs: Any) -> Context:
        raise NotImplementedError

    def build_checker(self, template: Template) -> Checker:
        raise NotImplementedError

    def build_evaluator(self, **kwargs: Any) -> Evaluator:
        raise NotImplementedError

    def build_scenario_evaluator(self, workload: Any, **kwargs: Any) -> Evaluator:
        """Build the evaluator for one resolved
        :class:`~repro.workloads.spec.WorkloadSpec` (multi-scenario search).

        Domains that support workload matrices override this; ``kwargs`` are
        the remaining domain keyword arguments (e.g. ``backend=``), shared by
        every scenario of the matrix.
        """
        raise NotImplementedError(
            f"domain {self.name!r} does not support workload matrices"
        )

    def build_multi_context(
        self, workloads: Sequence[Any], reducer: ScoreReducer, **kwargs: Any
    ) -> Context:
        """The deployment context of a scenario-matrix search."""
        names = [w.display_name for w in workloads]
        return Context.create(
            name=f"{self.name}/matrix({len(names)})",
            workload="scenario matrix: " + ", ".join(names),
            objective=f"maximize the {reducer.kind} score across {len(names)} scenarios",
            scenarios=",".join(names),
            reducer=str(reducer.to_ref()),
        )

    def input_intervals(self):
        """Domain-default input declarations for ``repro certify``.

        Returns an :class:`~repro.dsl.abstract.InputIntervals` (or ``None``)
        without needing a built evaluator, so the CLI can certify a bare
        program file against the domain's Template.
        """
        return None

    def default_llm_config(self) -> SyntheticLLMConfig:
        return SyntheticLLMConfig()

    def prepare_llm_config(self, config: SyntheticLLMConfig) -> SyntheticLLMConfig:
        """Normalise a caller-supplied LLM config (e.g. fill in archetypes)."""
        return config

    def grammar_config(self) -> Optional[GrammarConfig]:
        """Grammar override for the synthetic client (None = default)."""
        return None

    def default_search_config(self) -> SearchConfig:
        return SearchConfig()

    def build_client(
        self, template: Template, llm_config: SyntheticLLMConfig, seed: int
    ) -> SyntheticLLMClient:
        return SyntheticLLMClient(
            template.spec,
            config=llm_config,
            seed=seed,
            grammar=self.grammar_config(),
        )


@dataclass
class SearchSetup:
    """Everything assembled by :func:`build_search` (useful in tests)."""

    template: Template
    client: Any
    generator: LLMGenerator
    checker: Checker
    evaluator: Evaluator
    search: EvolutionarySearch
    context: Context
    engine: Optional[EvaluationEngine] = None
    domain: Optional[SearchDomain] = None


# -- registry -----------------------------------------------------------------------

_REGISTRY: Dict[str, SearchDomain] = {}

#: Domains shipped with the repository, imported lazily on first lookup so
#: the registry works without import-order gymnastics.
_BUILTIN_DOMAIN_MODULES = {
    "caching": "repro.cache.search",
    "cc": "repro.cc.search",
}


def register_domain(domain: SearchDomain) -> SearchDomain:
    """Register ``domain`` under its ``name`` (last registration wins)."""
    if not domain.name:
        raise ValueError("a SearchDomain must declare a non-empty name")
    _REGISTRY[domain.name] = domain
    return domain


def get_domain(name: str) -> SearchDomain:
    """Look up a registered domain, lazily importing built-in ones."""
    if name not in _REGISTRY and name in _BUILTIN_DOMAIN_MODULES:
        importlib.import_module(_BUILTIN_DOMAIN_MODULES[name])
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        known = sorted(set(_REGISTRY) | set(_BUILTIN_DOMAIN_MODULES))
        raise KeyError(f"unknown search domain {name!r}; available: {known}") from exc


def available_domains() -> list:
    """Names of every resolvable domain (built-ins included)."""
    for name in _BUILTIN_DOMAIN_MODULES:
        if name not in _REGISTRY:
            importlib.import_module(_BUILTIN_DOMAIN_MODULES[name])
    return sorted(_REGISTRY)


# -- the one-call entry point -------------------------------------------------------


def build_search(
    domain_name: str,
    *,
    rounds: Optional[int] = None,
    candidates_per_round: Optional[int] = None,
    repair_attempts: Optional[int] = None,
    seed: int = 0,
    llm_config: Optional[SyntheticLLMConfig] = None,
    search_config: Optional[SearchConfig] = None,
    engine_config: Optional[EngineConfig] = None,
    checkpoint_path: Optional[Union[str, Path]] = None,
    checkpoint_every: int = 1,
    events: Optional[EventBus] = None,
    template: Optional[Template] = None,
    checker: Optional[Checker] = None,
    evaluator: Optional[Evaluator] = None,
    context: Optional[Context] = None,
    client: Optional[Any] = None,
    provider: Optional[ProviderConfig] = None,
    workloads: Optional[Sequence[Any]] = None,
    reducer: Any = None,
    **domain_kwargs: Any,
) -> SearchSetup:
    """Assemble a full search for ``domain_name``.

    ``rounds`` / ``candidates_per_round`` / ``repair_attempts`` override the
    domain's default :class:`SearchConfig`; ``engine_config`` selects
    serial/parallel evaluation; ``checkpoint_path`` enables per-round
    persistence and transparent resume; ``events`` attaches an
    :class:`~repro.core.events.EventBus` whose subscribers observe the run
    (progress, JSONL logging).  ``template`` / ``checker`` /
    ``evaluator`` / ``context`` / ``client`` replace the domain-built
    components (used by ablation experiments).

    ``provider`` (a :class:`~repro.llm.client.ProviderConfig`) layers the
    provider's resilience/caching adapters around the client --
    retries/timeouts via :class:`~repro.llm.client.ResilientClient`, an
    on-disk prompt cache via :class:`~repro.llm.cache.CachingClient` -- and
    sets the generator's preferred per-call ``batch_size`` for pipelined
    rounds.  None of those adapters change what the client returns, only how
    the calls are made.

    ``workloads`` declares a *scenario matrix*: a list of workload references
    (registry names, ``{"name": ..., **overrides}`` dictionaries or
    :class:`~repro.workloads.spec.WorkloadSpec` objects, all from the same
    domain) that every candidate is scored across, aggregated by ``reducer``
    (``"mean"`` / ``"worst"`` / ``{"kind": "weighted", "weights": ...}``).
    Remaining keyword arguments are forwarded to the
    domain's context and evaluator factories (e.g. ``trace=``,
    ``cache_fraction=`` for caching; ``duration_s=``, ``simulation=`` for
    congestion control).
    """
    domain = get_domain(domain_name)
    if domain.accepted_kwargs is not None:
        unknown = set(domain_kwargs) - set(domain.accepted_kwargs)
        if unknown:
            raise TypeError(
                f"domain {domain.name!r} got unexpected keyword argument(s) "
                f"{sorted(unknown)}; accepted: {sorted(domain.accepted_kwargs)}"
            )
        # The engine-level DSL backend knob reaches the domain as its
        # ``backend`` kwarg; an explicit domain kwarg wins over the engine
        # default so ablations can still pin one evaluator's backend.
        if (
            engine_config is not None
            and engine_config.dsl_backend is not None
            and "backend" in domain.accepted_kwargs
        ):
            domain_kwargs.setdefault("backend", engine_config.dsl_backend)

    workload_specs: Optional[List[Any]] = None
    reducer_obj: Optional[ScoreReducer] = None
    if workloads is not None:
        from repro.workloads import resolve_workload_ref

        workload_specs = [resolve_workload_ref(ref) for ref in workloads]
        if not workload_specs:
            raise ValueError("workloads, when given, must be a non-empty list")
        foreign = [w.name for w in workload_specs if w.domain != domain.name]
        if foreign:
            raise ValueError(
                f"workload(s) {foreign} do not belong to domain {domain.name!r}"
            )
        allowed = (
            domain.matrix_kwargs
            if domain.matrix_kwargs is not None
            else domain.accepted_kwargs
        )
        if allowed is not None:
            single_scenario = set(domain_kwargs) - set(allowed)
            if single_scenario:
                raise TypeError(
                    f"keyword argument(s) {sorted(single_scenario)} have no "
                    "effect alongside a workloads= scenario matrix; set "
                    "per-scenario parameters on the workload references "
                    f"(matrix-compatible kwargs: {sorted(allowed)})"
                )
        reducer_obj = ScoreReducer.from_ref(reducer)
    elif reducer is not None:
        raise ValueError("reducer= only applies to a workloads= scenario matrix")

    template = template or domain.build_template()
    if context is None:
        if workload_specs is not None:
            context = domain.build_multi_context(
                workload_specs, reducer_obj, **domain_kwargs
            )
        else:
            context = domain.build_context(**domain_kwargs)

    config = search_config or domain.default_search_config()
    overrides: Dict[str, Any] = {}
    if rounds is not None:
        overrides["rounds"] = rounds
    if candidates_per_round is not None:
        overrides["candidates_per_round"] = candidates_per_round
    if repair_attempts is not None:
        overrides["repair_attempts"] = repair_attempts
    if overrides:
        config = replace(config, **overrides)

    if client is None:
        llm = domain.prepare_llm_config(llm_config or domain.default_llm_config())
        client = domain.build_client(template, llm, seed)
    client = wrap_client(client, provider)
    generator = LLMGenerator(
        template,
        client,
        context_description=context.describe(),
        batch_size=provider.batch_size if provider is not None else None,
    )
    checker = checker or domain.build_checker(template)
    if evaluator is None:
        if workload_specs is not None:
            evaluator = MultiScenarioEvaluator(
                [
                    (
                        workload.display_name,
                        domain.build_scenario_evaluator(workload, **domain_kwargs),
                    )
                    for workload in workload_specs
                ],
                reducer_obj,
            )
        else:
            evaluator = domain.build_evaluator(**domain_kwargs)
    search = EvolutionarySearch(
        template,
        generator,
        checker,
        evaluator,
        config,
        context=context,
        engine_config=engine_config,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        events=events,
    )
    return SearchSetup(
        template=template,
        client=client,
        generator=generator,
        checker=checker,
        evaluator=evaluator,
        search=search,
        context=context,
        engine=search.engine,
        domain=domain,
    )


def __getattr__(name: str):
    if name == "run_search":
        # Removed after its one-release deprecation window (PR 2 deprecated,
        # PR 4 deleted); a helpful error beats an AttributeError.
        raise AttributeError(
            "run_search() was removed; use repro.core.spec.run(RunSpec(...)), "
            "whose RunOutcome carries the result, the SearchSetup and the "
            "run's artifact directory"
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
