"""Persistent content-addressed evaluation store: the engine's disk memo tier.

Nearly all of a search's wall-clock goes to re-evaluating candidate
programs, and the in-memory memo (:class:`~repro.core.engine.EvaluationEngine`)
dies with the process.  This module persists evaluation results on disk so
sweep seeds, ``repro resume`` and repeated ``run(spec)`` invocations
warm-start across processes: the engine's lookup order becomes
memory -> disk -> evaluate.

Keying
------
An entry is addressed by three coordinates:

* the **program key** -- SHA-1 of the candidate's canonical source (the same
  :func:`~repro.core.engine.canonical_key` the memo uses), so syntactic
  variants share one entry;
* the **evaluation-config key** -- SHA-256 of the canonical JSON of
  everything that determines a program's score (domain name + declarative
  ``domain_kwargs``; see :meth:`~repro.core.spec.RunSpec.eval_config_hash`),
  so different traces/scenarios/backends can never alias;
* the **store schema version** -- bumped when the payload layout changes;
  entries written by another schema are ignored, never misread.

Layout: ``<root>/v<schema>/<eval key prefix>/<eval key>/<program key>.json``
(plus an ``.npz`` sidecar for wide scenario matrices).  Everything about the
store is defensive: writes are atomic (temp file + ``os.replace``) so
concurrent processes sharing one directory can never observe a torn entry;
reads treat *any* malformed entry -- truncated JSON, a missing or corrupt
npz sidecar, a schema mismatch -- as a miss and fall back to fresh
evaluation (wrong scores are impossible, only wasted work).  A hit touches
the entry's mtime, which is what makes :meth:`EvaluationStore.gc`'s
oldest-first eviction an LRU.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import socket
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.archive import evaluation_from_dict, evaluation_to_dict
from repro.core.evaluator import EvaluationResult

#: Version of the on-disk entry payload; readers ignore entries written by
#: any other schema (bump on breaking changes to the payload layout).
STORE_SCHEMA_VERSION = 1

#: Entries whose per-scenario score/detail maps exceed this many values keep
#: the float payload in a binary ``.npz`` sidecar instead of inline JSON
#: (compact and fast to decode for wide scenario matrices).
NPZ_THRESHOLD = 32

_ENTRY_SUFFIX = ".json"
_SIDECAR_SUFFIX = ".npz"

#: Schema trees are the only directories gc/clear may remove wholesale.
_SCHEMA_DIR_RE = re.compile(r"v\d+")

#: Where writer registrations live (outside the schema trees: gc never
#: touches them, only :meth:`ContentAddressedStore.clear` does).
_WRITERS_DIRNAME = "writers"


@dataclass(frozen=True)
class StoreStats:
    """What ``repro store stats`` reports.

    ``writers`` counts the distinct registered writers -- runs, sweep seeds
    and distributed workers that announced themselves via
    :meth:`ContentAddressedStore.register_writer` -- so operators can see
    how many concurrent producers have shared this tree.  ``writer_records``
    carries their registration payloads (host, pid, label, start time).
    """

    root: str
    schema_version: int
    entries: int
    total_bytes: int
    eval_configs: int
    writers: int = 0
    writer_records: Tuple[dict, ...] = field(default=())

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "schema_version": self.schema_version,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "eval_configs": self.eval_configs,
            "writers": {
                "count": self.writers,
                "records": list(self.writer_records),
            },
        }


@dataclass(frozen=True)
class GcOutcome:
    """What one :meth:`ContentAddressedStore.gc` pass removed and kept."""

    removed_entries: int
    freed_bytes: int
    remaining_entries: int
    remaining_bytes: int


class ContentAddressedStore:
    """Shared disk machinery for schema-versioned content-addressed caches.

    Subclasses (:class:`EvaluationStore`, the prompt cache in
    :mod:`repro.llm.cache`) define *what* an entry holds; this base owns the
    defensive plumbing they must agree on: the ``v<schema>`` root, atomic
    temp-file writes, mtime touch-on-hit, and LRU garbage collection that
    only ever deletes ``v<N>`` trees (anything else under the root is not
    ours to remove).

    ``max_entries`` / ``max_bytes`` (optional) bound the store: every
    ``gc_interval`` writes the store garbage-collects itself down to the
    bounds, evicting least-recently-*used* entries first.  An unbounded
    store only collects when :meth:`gc` is called explicitly (the
    ``repro store gc`` command).
    """

    #: On-disk payload schema of the concrete store (subclasses override).
    schema_version: int = 1

    def __init__(
        self,
        root: Union[str, Path],
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        gc_interval: int = 64,
    ):
        self.root = Path(root)
        if max_entries is not None and max_entries < 0:
            raise ValueError("max_entries cannot be negative")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes cannot be negative")
        if gc_interval <= 0:
            raise ValueError("gc_interval must be positive")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.gc_interval = gc_interval
        self._puts_since_gc = 0
        # Diagnostics (per-process, best effort under concurrency).
        self.corrupt_reads = 0
        self.write_errors = 0

    # -- addressing ---------------------------------------------------------------

    @property
    def schema_root(self) -> Path:
        return self.root / f"v{self.schema_version}"

    @property
    def writers_root(self) -> Path:
        return self.root / _WRITERS_DIRNAME

    # -- writer registry ----------------------------------------------------------

    def register_writer(self, label: str) -> None:
        """Announce this process as a writer of the store (best effort).

        One JSON record per (host, pid, label) under ``<root>/writers/``;
        purely observability -- ``repro store stats`` surfaces the distinct
        holders so operators can see multi-run/multi-host sharing.  Never
        raises: a store that cannot record writers must still serve entries.
        """
        host = socket.gethostname()
        pid = os.getpid()
        writer_id = hashlib.sha1(f"{host}:{pid}:{label}".encode("utf-8")).hexdigest()[:16]
        record = {
            "writer_id": writer_id,
            "host": host,
            "pid": pid,
            "label": label,
            "started": time.time(),
        }
        try:
            self.writers_root.mkdir(parents=True, exist_ok=True)
            self._atomic_write_text(
                self.writers_root / f"{writer_id}.json",
                json.dumps(record, sort_keys=True),
            )
        except OSError:
            self.write_errors += 1

    def writer_records(self) -> List[dict]:
        """Every readable writer registration, sorted by start time."""
        records = []
        if not self.writers_root.is_dir():
            return records
        for path in self.writers_root.glob("*.json"):
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if isinstance(record, dict):
                records.append(record)
        records.sort(key=lambda r: (r.get("started", 0.0), r.get("writer_id", "")))
        return records

    # -- write/gc bookkeeping -----------------------------------------------------

    def _note_put(self) -> None:
        """Count one successful write; periodically GC a bounded store."""
        self._puts_since_gc += 1
        if (
            (self.max_entries is not None or self.max_bytes is not None)
            and self._puts_since_gc >= self.gc_interval
        ):
            self._puts_since_gc = 0
            self.gc()

    @staticmethod
    def _touch(path: Path) -> None:
        try:
            os.utime(path)
        except OSError:  # a concurrent GC may have evicted the entry
            pass

    @staticmethod
    def _atomic_write_text(path: Path, text: str) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- maintenance --------------------------------------------------------------

    def _entries(self) -> List[Tuple[Path, float, int]]:
        """Every entry as ``(json path, mtime, bytes incl. sidecar)``."""
        found = []
        if not self.schema_root.exists():
            return found
        for path in self.schema_root.rglob(f"*{_ENTRY_SUFFIX}"):
            try:
                stat = path.stat()
                size = stat.st_size
                sidecar = path.with_suffix(_SIDECAR_SUFFIX)
                if sidecar.exists():
                    size += sidecar.stat().st_size
                found.append((path, stat.st_mtime, size))
            except OSError:  # racing a concurrent GC/clear
                continue
        return found

    def stats(self) -> StoreStats:
        entries = self._entries()
        configs = {path.parent for path, _mtime, _size in entries}
        writer_records = self.writer_records()
        return StoreStats(
            root=str(self.root),
            schema_version=self.schema_version,
            entries=len(entries),
            total_bytes=sum(size for _path, _mtime, size in entries),
            eval_configs=len(configs),
            writers=len(writer_records),
            writer_records=tuple(writer_records),
        )

    def gc(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> GcOutcome:
        """Evict least-recently-used entries until within the given bounds.

        Bounds default to the store's configured ``max_entries`` /
        ``max_bytes``; with neither set anywhere, GC only removes dangling
        sidecars and entries from other schema versions.
        """
        max_entries = self.max_entries if max_entries is None else max_entries
        max_bytes = self.max_bytes if max_bytes is None else max_bytes
        removed = 0
        freed = 0
        # Entries written by another schema are dead weight: unreadable by
        # this version, invisible to its LRU.  Only ``v<N>`` trees qualify --
        # anything else under the root is not ours to delete (e.g. the store
        # was pointed at an artifact root by mistake).
        if self.root.exists():
            for child in self.root.iterdir():
                if (
                    child.is_dir()
                    and child != self.schema_root
                    and _SCHEMA_DIR_RE.fullmatch(child.name)
                ):
                    removed_c, freed_c = self._remove_tree(child)
                    removed += removed_c
                    freed += freed_c
        entries = self._entries()
        entries.sort(key=lambda item: item[1])  # oldest mtime first
        live = len(entries)
        live_bytes = sum(size for _path, _mtime, size in entries)
        for path, _mtime, size in entries:
            over_entries = max_entries is not None and live > max_entries
            over_bytes = max_bytes is not None and live_bytes > max_bytes
            if not (over_entries or over_bytes):
                break
            if self._remove_entry(path):
                removed += 1
                freed += size
                live -= 1
                live_bytes -= size
        self._remove_dangling_sidecars()
        return GcOutcome(
            removed_entries=removed,
            freed_bytes=freed,
            remaining_entries=live,
            remaining_bytes=live_bytes,
        )

    def clear(self) -> int:
        """Remove every entry (all schema versions); returns how many.

        Like :meth:`gc`, only ``v<N>`` schema trees (plus our own
        ``writers/`` registry) are touched: pointing ``repro store clear``
        at a directory holding anything else must not destroy that data.
        """
        removed = 0
        if self.root.exists():
            for child in list(self.root.iterdir()):
                if child.is_dir() and _SCHEMA_DIR_RE.fullmatch(child.name):
                    removed_c, _freed = self._remove_tree(child)
                    removed += removed_c
        # Writer registrations describe the entries; clearing the entries
        # retires them too (gc, by contrast, leaves them alone).
        if self.writers_root.is_dir():
            for path in self.writers_root.glob("*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass
            try:
                self.writers_root.rmdir()
            except OSError:
                pass
        return removed

    @staticmethod
    def _remove_entry(path: Path) -> bool:
        ok = False
        try:
            path.unlink()
            ok = True
        except OSError:
            pass
        try:
            path.with_suffix(_SIDECAR_SUFFIX).unlink()
        except OSError:
            pass
        return ok

    def _remove_dangling_sidecars(self) -> None:
        if not self.schema_root.exists():
            return
        for sidecar in self.schema_root.rglob(f"*{_SIDECAR_SUFFIX}"):
            if not sidecar.with_suffix(_ENTRY_SUFFIX).exists():
                try:
                    sidecar.unlink()
                except OSError:
                    pass

    @staticmethod
    def _remove_tree(root: Path) -> Tuple[int, int]:
        """Remove a directory tree; returns (entries removed, bytes freed)."""
        removed = 0
        freed = 0
        for path in sorted(root.rglob("*"), key=lambda p: len(p.parts), reverse=True):
            try:
                if path.is_dir():
                    path.rmdir()
                    continue
                size = path.stat().st_size
                entry = path.suffix == _ENTRY_SUFFIX
                path.unlink()
                freed += size
                if entry:
                    removed += 1
            except OSError:
                continue
        try:
            root.rmdir()
        except OSError:
            pass
        return removed, freed


class EvaluationStore(ContentAddressedStore):
    """Disk-backed evaluation results under one root directory."""

    schema_version = STORE_SCHEMA_VERSION

    # -- addressing ---------------------------------------------------------------

    def entry_path(self, eval_key: str, program_key: str) -> Path:
        if not eval_key or not program_key:
            raise ValueError("store entries need non-empty eval and program keys")
        return self.schema_root / eval_key[:2] / eval_key / f"{program_key}{_ENTRY_SUFFIX}"

    def bind(self, eval_key: str) -> "BoundEvalStore":
        """A view of the store pinned to one evaluation configuration."""
        return BoundEvalStore(self, eval_key)

    # -- reads --------------------------------------------------------------------

    def get(self, eval_key: str, program_key: str) -> Optional[EvaluationResult]:
        """The stored result, or ``None`` on miss *or any* malformed entry."""
        path = self.entry_path(eval_key, program_key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self.corrupt_reads += 1
            return None
        try:
            if payload["schema_version"] != self.schema_version:
                return None
            if payload["eval_key"] != eval_key or payload["program_key"] != program_key:
                # A moved/renamed file must not resurface under the wrong key.
                self.corrupt_reads += 1
                return None
            data = payload["result"]
            if payload.get("sidecar"):
                data = dict(data)
                sidecar = self._read_sidecar(path, data)
                data.update(sidecar)
            result = evaluation_from_dict(data)
        except Exception:  # noqa: BLE001 - any malformed entry is a miss
            self.corrupt_reads += 1
            return None
        self._touch(path)
        return result

    def _read_sidecar(self, entry_path: Path, data: dict) -> Dict[str, dict]:
        """Rebuild the float maps whose values live in the ``.npz`` sidecar."""
        with np.load(entry_path.with_suffix(_SIDECAR_SUFFIX)) as arrays:
            return {
                field: dict(
                    zip(data[f"{field}_keys"], arrays[field].tolist())
                )
                for field in ("details", "scenario_scores")
            }

    # -- writes -------------------------------------------------------------------

    def put(self, eval_key: str, program_key: str, result: EvaluationResult) -> bool:
        """Persist ``result``; returns False when nothing was stored.

        Transient failures (timeouts, dead workers) describe the execution
        environment, not the program -- persisting them would replay the
        failure forever.  Deterministic failures (a program that always
        crashes) are stored like any other outcome.  A write that fails at
        the filesystem level (read-only directory, disk full, quota) also
        returns False: the store's contract is "at worst wasted work", so a
        broken store must never abort a running search.
        """
        if result.transient:
            return False
        path = self.entry_path(eval_key, program_key)
        data = evaluation_to_dict(result)
        sidecar = len(data["details"]) + len(data["scenario_scores"]) > NPZ_THRESHOLD
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            if sidecar:
                data = self._split_sidecar(path, data)
            payload = {
                "schema_version": self.schema_version,
                "eval_key": eval_key,
                "program_key": program_key,
                "sidecar": sidecar,
                "result": data,
            }
            self._atomic_write_text(path, json.dumps(payload, sort_keys=True))
        except OSError:
            self.write_errors += 1
            return False
        self._note_put()
        return True

    def _split_sidecar(self, entry_path: Path, data: dict) -> dict:
        """Move the float maps' values into an ``.npz`` next to the entry.

        The JSON keeps the (ordered) key lists; the sidecar holds one float
        array per map.  Written *before* the JSON entry so a crash between
        the two leaves a dangling sidecar (garbage-collected later) rather
        than an entry pointing at nothing.
        """
        slim = dict(data)
        arrays = {}
        for field in ("details", "scenario_scores"):
            items: List[Tuple[str, float]] = list(data[field].items())
            slim[f"{field}_keys"] = [key for key, _value in items]
            arrays[field] = np.array(
                [float(value) for _key, value in items], dtype=np.float64
            )
            del slim[field]
        sidecar_path = entry_path.with_suffix(_SIDECAR_SUFFIX)
        fd, tmp = tempfile.mkstemp(
            dir=str(entry_path.parent), suffix=_SIDECAR_SUFFIX + ".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **arrays)
            os.replace(tmp, sidecar_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return slim


def fidelity_eval_key(eval_key: str, fraction: float) -> str:
    """The evaluation-config key of one fidelity rung.

    The fidelity fraction joins the content address: a rung evaluation (10%
    of the trace, 30% of the netsim run, ...) scores a *different* question
    than the full-fidelity one, so its entries live under their own
    evaluation-config key and can never collide with -- or be mistaken for
    -- full-fidelity scores.  ``fraction == 1.0`` is the identity: full
    fidelity keeps the unqualified key, so ladder and non-ladder runs share
    one warm-start population of full results.
    """
    if fraction == 1.0:
        return eval_key
    qualified = f"{eval_key}|fidelity={fraction!r}"
    return hashlib.sha256(qualified.encode("utf-8")).hexdigest()


class BoundEvalStore:
    """An :class:`EvaluationStore` view pinned to one evaluation config.

    This is what the engine holds: it only ever sees program keys, and can
    never mix entries from different evaluator configurations.
    """

    def __init__(self, store: EvaluationStore, eval_key: str):
        if not eval_key:
            raise ValueError("a BoundEvalStore needs a non-empty eval_key")
        self.store = store
        self.eval_key = eval_key

    def get(self, program_key: str) -> Optional[EvaluationResult]:
        return self.store.get(self.eval_key, program_key)

    def put(self, program_key: str, result: EvaluationResult) -> bool:
        return self.store.put(self.eval_key, program_key, result)

    def at_fidelity(self, fraction: float) -> "BoundEvalStore":
        """A view keyed for one fidelity rung (see :func:`fidelity_eval_key`)."""
        if fraction == 1.0:
            return self
        return BoundEvalStore(self.store, fidelity_eval_key(self.eval_key, fraction))
