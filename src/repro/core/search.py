"""The PolicySmith evolutionary search loop (§3 and Fig. 1 of the paper).

Each round, the Generator proposes a batch of candidate heuristics given the
best-performing heuristics found so far as worked examples.  The batch is
handed to the shared :class:`~repro.core.engine.EvaluationEngine`, which
validates every candidate (with one optional repair attempt driven by the
Checker's feedback), dedups syntactic duplicates, reuses memoized evaluation
results from earlier rounds, and evaluates the remaining unique candidates --
serially or fanned out over a worker pool, depending on the engine
configuration.  After the configured number of rounds, the highest-scoring
valid candidate is the synthesized heuristic for the context.

When ``checkpoint_path`` is set, the search persists its state after every
round (see :class:`~repro.core.archive.SearchCheckpoint`) and ``run()``
transparently resumes from the checkpoint if one exists, so long
multi-context searches survive interruption.

The search narrates itself on an :class:`~repro.core.events.EventBus`
(``RunStarted`` / ``CandidateEvaluated`` / ``RoundCompleted`` /
``CheckpointWritten`` / ``RunFinished``); frontends attach subscribers
(progress printer, JSONL event log) instead of the search printing anything
itself.

The paper's caching methodology (§4.2.1) corresponds to
``SearchConfig(rounds=20, candidates_per_round=25, top_k_parents=2)`` seeded
with LRU and LFU.
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.archive import SearchCheckpoint
from repro.core.checker import Checker
from repro.core.context import Context
from repro.core.cost import GPT_4O_MINI_PRICING, CostModel
from repro.core.engine import BatchResult, BatchStats, EngineConfig, EvaluationEngine
from repro.core.evaluator import Evaluator
from repro.core.fidelity import FidelitySchedule
from repro.core.events import (
    CheckpointWritten,
    EventBus,
    GenerationCompleted,
    GenerationStarted,
    RoundCompleted,
    RunFinished,
    RunStarted,
)
from repro.core.generator import Generator
from repro.core.results import Candidate, RoundSummary, ScoredCandidate, SearchResult
from repro.core.template import Template
from repro.dsl.codegen import to_source


@dataclass
class SearchConfig:
    """Tunables of the evolutionary search.

    ``pipeline`` streams each round's generated candidates into the engine
    as they arrive (and speculatively overlaps the next round's generation
    with the current round's tail evaluation) instead of barriering on the
    full batch.  It changes wall-clock scheduling only: with the seeded
    synthetic client, a fixed-seed run produces a byte-identical
    ``result.json`` pipelined or not.  The search silently falls back to
    the serial round loop for configurations where the equivalence cannot
    hold (dedup or memoization disabled, a screening fidelity ladder, or a
    generator without the chunked-generation API).
    """

    rounds: int = 20
    candidates_per_round: int = 25
    top_k_parents: int = 2
    repair_attempts: int = 1
    include_seeds: bool = True
    cost_model: CostModel = GPT_4O_MINI_PRICING
    pipeline: bool = False

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ValueError("rounds must be positive")
        if self.candidates_per_round <= 0:
            raise ValueError("candidates_per_round must be positive")
        if self.top_k_parents <= 0:
            raise ValueError("top_k_parents must be positive")
        if self.repair_attempts < 0:
            raise ValueError("repair_attempts cannot be negative")


class EvolutionarySearch:
    """Wires Template, Generator, and the evaluation engine into the search loop."""

    def __init__(
        self,
        template: Template,
        generator: Generator,
        checker: Checker,
        evaluator: Evaluator,
        config: Optional[SearchConfig] = None,
        context: Optional[Context] = None,
        engine: Optional[EvaluationEngine] = None,
        engine_config: Optional[EngineConfig] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 1,
        events: Optional[EventBus] = None,
        fidelity: Optional[FidelitySchedule] = None,
    ):
        self.template = template
        self.generator = generator
        self.checker = checker
        self.evaluator = evaluator
        self.config = config or SearchConfig()
        self.context = context
        # `is not None`, not truthiness: an empty caller-supplied bus must be
        # kept so later subscribe() calls observe the run.
        self.events = events if events is not None else EventBus()
        if engine is not None and engine_config is not None:
            raise ValueError(
                "pass either a prebuilt engine or an engine_config, not both "
                "(a prebuilt engine keeps its own configuration)"
            )
        self.engine = engine or EvaluationEngine(
            checker,
            evaluator,
            generator=generator,
            repair_attempts=self.config.repair_attempts,
            config=engine_config,
            events=self.events,
            fidelity=fidelity,
        )
        if engine is not None:
            if fidelity is not None:
                engine.attach_fidelity(fidelity)
            if events is not None:
                # A prebuilt engine joins the caller's event stream.
                engine.events = self.events
            else:
                # One bus for the whole run: adopt the engine's, so candidate
                # events and lifecycle events reach the same subscribers.
                self.events = engine.events
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path else None
        if checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        self.checkpoint_every = checkpoint_every
        # Speculative next-round generation produced by a pipelined round:
        # ``{"round", "examples", "sources", "snapshot", "chunk"}`` or None.
        self._prefetch: Optional[Dict[str, Any]] = None

    # -- public API -----------------------------------------------------------------

    def run(self) -> SearchResult:
        """Execute the search and return every candidate plus the winner.

        If ``checkpoint_path`` points at an existing checkpoint, the search
        resumes from it: completed rounds are restored verbatim and only the
        remaining rounds execute.
        """
        try:
            return self._run()
        finally:
            # Release worker processes/threads (and their pickled evaluator
            # copies); the engine recreates its pool lazily if reused.
            self.engine.close()

    def _run(self) -> SearchResult:
        start = time.perf_counter()
        population: List[ScoredCandidate] = []
        rounds: List[RoundSummary] = []
        counter = 0
        seed_stats: Dict[str, int] = {
            "lookups": 0,
            "hits": 0,
            "store_lookups": 0,
            "store_hits": 0,
            "rung_evaluations": 0,
            "rung_promotions": 0,
            "rung_eliminations": 0,
            "screen_checks": 0,
            "screened": 0,
        }

        checkpoint = self._load_checkpoint()
        self.events.emit(
            RunStarted(
                template_name=self.template.name,
                context_name=self.context.name if self.context else "",
                rounds=self.config.rounds,
                candidates_per_round=self.config.candidates_per_round,
                resumed_rounds=len(checkpoint.rounds) if checkpoint else 0,
            )
        )
        if checkpoint is not None:
            population = list(checkpoint.population)
            rounds = list(checkpoint.rounds)
            counter = checkpoint.counter
            seed_stats.update(checkpoint.seed_stats)
            self.engine.restore_memo(checkpoint.memo)
            self._restore_generator_state(checkpoint.generator_state)
        elif self.config.include_seeds:
            seeds: List[Candidate] = []
            for program in self.template.seed_programs:
                counter += 1
                seeds.append(
                    Candidate(
                        candidate_id=f"seed-{counter}",
                        source=to_source(program),
                        round_index=0,
                        origin="seed",
                    )
                )
            batch = self.engine.process_batch(seeds)
            population.extend(batch.scored)
            seed_stats["lookups"] = batch.stats.eval_cache_lookups
            seed_stats["hits"] = batch.stats.eval_cache_hits
            seed_stats["store_lookups"] = batch.stats.store_lookups
            seed_stats["store_hits"] = batch.stats.store_hits
            seed_stats["rung_evaluations"] = batch.stats.rung_evaluations
            seed_stats["rung_promotions"] = batch.stats.rung_promotions
            seed_stats["rung_eliminations"] = batch.stats.rung_eliminations
            seed_stats["screen_checks"] = batch.stats.screen_checks
            seed_stats["screened"] = batch.stats.screened

        run_round = (
            self._run_round_pipelined if self._pipeline_enabled() else self._run_round
        )
        for round_index in range(len(rounds) + 1, self.config.rounds + 1):
            summary = run_round(round_index, population, counter)
            counter += summary.generated
            rounds.append(summary)
            self.events.emit(
                RoundCompleted(
                    round_index=summary.round_index,
                    generated=summary.generated,
                    evaluated=summary.evaluated,
                    best_score=summary.best_score,
                    best_overall_score=summary.best_overall_score,
                    eval_cache_lookups=summary.eval_cache_lookups,
                    eval_cache_hits=summary.eval_cache_hits,
                    store_lookups=summary.store_lookups,
                    store_hits=summary.store_hits,
                    scenario_best=dict(summary.scenario_best),
                )
            )
            if self.checkpoint_path and (
                round_index % self.checkpoint_every == 0
                or round_index == self.config.rounds
            ):
                self._save_checkpoint(population, rounds, counter, seed_stats)
                self.events.emit(
                    CheckpointWritten(
                        path=str(self.checkpoint_path),
                        completed_rounds=len(rounds),
                    )
                )

        best = self._best_of(population)
        result = SearchResult(
            best=best,
            candidates=population,
            rounds=rounds,
            context_name=self.context.name if self.context else "",
            template_name=self.template.name,
            total_candidates=len(population),
            wall_time_s=time.perf_counter() - start,
            eval_cache_lookups=seed_stats["lookups"]
            + sum(r.eval_cache_lookups for r in rounds),
            eval_cache_hits=seed_stats["hits"]
            + sum(r.eval_cache_hits for r in rounds),
            store_lookups=seed_stats.get("store_lookups", 0)
            + sum(r.store_lookups for r in rounds),
            store_hits=seed_stats.get("store_hits", 0)
            + sum(r.store_hits for r in rounds),
            rung_evaluations=seed_stats.get("rung_evaluations", 0)
            + sum(r.rung_evaluations for r in rounds),
            rung_promotions=seed_stats.get("rung_promotions", 0)
            + sum(r.rung_promotions for r in rounds),
            rung_eliminations=seed_stats.get("rung_eliminations", 0)
            + sum(r.rung_eliminations for r in rounds),
            screen_checks=seed_stats.get("screen_checks", 0)
            + sum(r.screen_checks for r in rounds),
            screened=seed_stats.get("screened", 0)
            + sum(r.screened for r in rounds),
        )
        usage = getattr(self.generator, "usage", None)
        if usage is not None:
            result.prompt_tokens = usage.prompt_tokens
            result.completion_tokens = usage.completion_tokens
            result.estimated_cost_usd = self.config.cost_model.cost(
                usage.prompt_tokens, usage.completion_tokens
            )
        self.events.emit(
            RunFinished(
                total_candidates=result.total_candidates,
                valid_candidates=len(result.valid_candidates()),
                rounds=len(rounds),
                best_candidate_id=(
                    best.candidate.candidate_id if best is not None else None
                ),
                best_score=best.score if best is not None else float("-inf"),
                wall_time_s=result.wall_time_s,
            )
        )
        return result

    # -- internals -------------------------------------------------------------------

    def _parents_of(self, population: List[ScoredCandidate]) -> List[ScoredCandidate]:
        """The top-k valid candidates across *all* previous rounds (§4.2.1).

        Only full-fidelity scores are comparable, so candidates the fidelity
        ladder screened out at a sub-full rung are never parents -- a cheap
        rung score must not steer the generator.
        """
        valid = [c for c in population if c.valid and c.full_fidelity]
        valid.sort(key=lambda c: c.score, reverse=True)
        return valid[: self.config.top_k_parents]

    def _best_of(self, population: List[ScoredCandidate]) -> Optional[ScoredCandidate]:
        valid = [c for c in population if c.valid and c.full_fidelity]
        if not valid:
            return None
        return max(valid, key=lambda c: c.score)

    def _run_round(
        self,
        round_index: int,
        population: List[ScoredCandidate],
        id_offset: int,
    ) -> RoundSummary:
        # A serial round never consumes speculative generation (a prefetch
        # can only be pending after a mid-run fallback or resume): roll the
        # client back so the round replays the canonical call sequence.
        self._discard_prefetch()
        summary = RoundSummary(round_index=round_index)
        parents = self._parents_of(population)
        parent_examples = [(c.source, c.score) for c in parents]
        # Lineage records name the score-sorted parents actually shown to the
        # generator, not the first valid candidates in insertion order.
        parent_ids = [c.candidate.candidate_id for c in parents]
        self.events.emit(
            GenerationStarted(
                round_index=round_index,
                requested=self.config.candidates_per_round,
                parents=len(parent_examples),
            )
        )
        gen_start = time.perf_counter()
        sources = self.generator.generate(parent_examples, self.config.candidates_per_round)
        summary.generation_s = time.perf_counter() - gen_start
        summary.generated = len(sources)
        self.events.emit(
            GenerationCompleted(
                round_index=round_index,
                requested=self.config.candidates_per_round,
                generated=len(sources),
                chunks=1,
                wall_time_s=summary.generation_s,
            )
        )

        candidates = [
            Candidate(
                candidate_id=f"r{round_index}-c{id_offset + offset}",
                source=source,
                round_index=round_index,
                parent_ids=list(parent_ids),
            )
            for offset, source in enumerate(sources, start=1)
        ]
        eval_start = time.perf_counter()
        batch = self.engine.process_batch(candidates)
        summary.evaluation_s = time.perf_counter() - eval_start
        self._fold_stats(summary, batch.stats)
        self._fold_scored(summary, batch.scored, population)
        return summary

    def _fold_scored(
        self,
        summary: RoundSummary,
        scored_list: List[ScoredCandidate],
        population: List[ScoredCandidate],
    ) -> None:
        """Fold one round's scored candidates (submission order) into the
        summary and the population."""
        for scored in scored_list:
            if scored.evaluation is not None:
                summary.evaluated += 1
                # Round bests only track full-fidelity scores: a screened-out
                # candidate's rung score is not comparable to the rest.
                if scored.valid and scored.full_fidelity:
                    if scored.score > summary.best_score:
                        summary.best_score = scored.score
                    for name, score in scored.evaluation.scenario_scores.items():
                        if score > summary.scenario_best.get(name, float("-inf")):
                            summary.scenario_best[name] = score
            population.append(scored)

        best = self._best_of(population)
        summary.best_overall_score = best.score if best else float("-inf")

    # -- pipelined rounds ------------------------------------------------------------

    def _pipeline_enabled(self) -> bool:
        """Whether the pipelined round loop can replace the serial one.

        The pipeline is opt-in (``SearchConfig.pipeline`` or
        ``EngineConfig.pipeline``) and silently falls back to the serial
        path for configurations where chunked batches are not
        statistics-equivalent to one serial batch: with dedup or memoization
        disabled the engine deliberately re-evaluates copies (and a
        cross-chunk duplicate would not be), and a *screening* fidelity
        ladder sizes its rungs per batch, so chunking would change which
        candidates are screened out.
        """
        requested = self.config.pipeline or self.engine.config.pipeline
        if not requested:
            return False
        if not (self.engine.config.dedup and self.engine.config.memoize):
            return False
        fidelity = self.engine.fidelity
        if fidelity is not None and fidelity.screening_rungs:
            return False
        return hasattr(self.generator, "generation_messages") and hasattr(
            self.generator, "generate_chunk"
        )

    def _chunk_plan(self, total: int) -> List[int]:
        """Chunk sizes for streaming ``total`` completions off one prompt.

        Honours the generator's ``batch_size`` hint; otherwise aims for four
        chunks so evaluation of the first quarter overlaps generation of the
        rest.  Every chunk is >= 1: the synthetic client treats ``n=0`` as
        ``n=1``, so a zero-sized chunk would desynchronise the RNG stream.
        """
        size = getattr(self.generator, "batch_size", None)
        if not size or size <= 0:
            size = max(1, math.ceil(total / 4))
        return [min(size, total - start) for start in range(0, total, size)]

    def _run_round_pipelined(
        self,
        round_index: int,
        population: List[ScoredCandidate],
        id_offset: int,
    ) -> RoundSummary:
        """One round with generation streamed into the engine as it arrives.

        Result-equivalent to :meth:`_run_round` by construction:

        * the generation prompt is built once with the round's full budget,
          and chunked ``complete(msgs, n=c_i)`` calls consume the same RNG
          stream as one ``complete(msgs, n=total)``;
        * streamed candidates are *pre*-checked only (no client calls);
          every repair is deferred to one ordered phase after the last
          generation chunk, replaying the serial path's client-call
          sequence exactly;
        * chunks reach :meth:`~repro.core.engine.EvaluationEngine.process_scored`
          in submission order through a single consumer, so the memo tiers
          fill in the same order as one serial batch;
        * after the round's last client call, the *next* round's first chunk
          is generated speculatively while the evaluation tail drains,
          against the parents predicted from results so far; the client
          state is snapshotted first and rolled back if the prediction
          misses, so a misprediction costs time, never determinism.
        """
        self._discard_prefetch_if_stale(round_index)
        summary = RoundSummary(round_index=round_index)
        parents = self._parents_of(population)
        parent_examples = [(c.source, c.score) for c in parents]
        parent_ids = [c.candidate.candidate_id for c in parents]
        total = self.config.candidates_per_round
        self.events.emit(
            GenerationStarted(
                round_index=round_index, requested=total, parents=len(parent_examples)
            )
        )
        round_start = time.perf_counter()
        ordered, batches, gen_s, eval_s, chunks = asyncio.run(
            self._pipeline_round(
                round_index, parent_examples, parent_ids, id_offset, total, population
            )
        )
        round_wall = time.perf_counter() - round_start
        summary.generated = len(ordered)
        self.events.emit(
            GenerationCompleted(
                round_index=round_index,
                requested=total,
                generated=len(ordered),
                chunks=chunks,
                wall_time_s=gen_s,
            )
        )
        self._fold_stats(summary, self._merge_stats(batches))
        self._fold_scored(summary, ordered, population)
        summary.generation_s = gen_s
        summary.evaluation_s = eval_s
        summary.overlap_s = max(0.0, gen_s + eval_s - round_wall)
        return summary

    async def _pipeline_round(
        self,
        round_index: int,
        parent_examples: List[Tuple[str, float]],
        parent_ids: List[str],
        id_offset: int,
        total: int,
        population: List[ScoredCandidate],
    ) -> Tuple[List[ScoredCandidate], List[BatchResult], float, float, int]:
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()
        batches: List[BatchResult] = []
        eval_s = 0.0

        async def consume() -> None:
            # Single consumer: engine calls stay serialized (the memo and
            # the event bus are not thread-safe) and chunks are evaluated
            # in submission order.
            nonlocal eval_s
            while True:
                chunk = await queue.get()
                if chunk is None:
                    return
                started = time.perf_counter()
                batches.append(
                    await loop.run_in_executor(None, self.engine.process_scored, chunk)
                )
                eval_s += time.perf_counter() - started

        consumer = asyncio.create_task(consume())
        gen_s = 0.0
        chunks_used = 0
        ordered: List[ScoredCandidate] = []
        deferred: List[int] = []  # ordered[] positions awaiting repair
        prefetched = self._consume_prefetch(round_index, parent_examples)
        messages = self.generator.generation_messages(parent_examples, total)
        try:
            for chunk_index, chunk_size in enumerate(self._chunk_plan(total)):
                started = time.perf_counter()
                if chunk_index == 0 and prefetched is not None:
                    sources = prefetched
                else:
                    sources = await loop.run_in_executor(
                        None, self.generator.generate_chunk, messages, chunk_size
                    )
                gen_s += time.perf_counter() - started
                chunks_used += 1
                passing: List[ScoredCandidate] = []
                for source in sources:
                    candidate = Candidate(
                        candidate_id=f"r{round_index}-c{id_offset + len(ordered) + 1}",
                        source=source,
                        round_index=round_index,
                        parent_ids=list(parent_ids),
                    )
                    pre = self.engine.precheck_candidate(candidate)
                    if pre.check_ok:
                        passing.append(pre)
                    else:
                        deferred.append(len(ordered))
                    ordered.append(pre)
                if passing:
                    await queue.put(passing)

            if deferred:
                # Deferred repair phase: each repair consumes the shared
                # client's RNG stream, so they run once, in submission
                # order -- the exact sequence the serial path produces.
                started = time.perf_counter()
                repaired: List[ScoredCandidate] = []
                for position in deferred:
                    redone = await loop.run_in_executor(
                        None, self.engine.check_candidate, ordered[position].candidate
                    )
                    ordered[position] = redone
                    repaired.append(redone)
                gen_s += time.perf_counter() - started
                # Still-failing candidates ride along so the engine counts
                # their failure codes, exactly as in one serial batch.
                await queue.put(repaired)

            if round_index < self.config.rounds:
                gen_s += await self._speculate(loop, round_index, population, ordered)
        finally:
            await queue.put(None)
            await consumer
        return ordered, batches, gen_s, eval_s, chunks_used

    async def _speculate(
        self,
        loop: asyncio.AbstractEventLoop,
        round_index: int,
        population: List[ScoredCandidate],
        ordered: List[ScoredCandidate],
    ) -> float:
        """Generate the next round's first chunk while evaluation drains.

        Parents are predicted from every result available right now (the
        consumer may still be evaluating the tail).  The client state is
        snapshotted before the speculative call; the next round verifies the
        prediction against its actual parents and rolls the client back on a
        miss, so the speculation can never alter the search trajectory.
        """
        snapshot = self._capture_generator_state_now()
        settled = [item for item in ordered if item.evaluation is not None]
        predicted = self._parents_of(list(population) + settled)
        examples = [(c.source, c.score) for c in predicted]
        total = self.config.candidates_per_round
        chunk_size = self._chunk_plan(total)[0]
        messages = self.generator.generation_messages(examples, total)
        started = time.perf_counter()
        sources = await loop.run_in_executor(
            None, self.generator.generate_chunk, messages, chunk_size
        )
        elapsed = time.perf_counter() - started
        self._prefetch = {
            "round": round_index + 1,
            "examples": examples,
            "sources": sources,
            "snapshot": snapshot,
            "chunk": chunk_size,
        }
        return elapsed

    def _consume_prefetch(
        self, round_index: int, parent_examples: List[Tuple[str, float]]
    ) -> Optional[List[str]]:
        """The speculatively-generated first chunk, if the prediction held.

        On a parent mismatch the client is rolled back to its
        pre-speculation snapshot and the round generates normally: the
        chunk-1 client call replays with the correct prompt.
        """
        prefetch = self._prefetch
        if prefetch is None:
            return None
        self._prefetch = None
        if (
            prefetch["round"] == round_index
            and prefetch["examples"] == parent_examples
            and prefetch["chunk"] == self._chunk_plan(self.config.candidates_per_round)[0]
        ):
            return prefetch["sources"]
        self._restore_generator_state(prefetch["snapshot"])
        return None

    def _discard_prefetch(self) -> None:
        if self._prefetch is not None:
            self._restore_generator_state(self._prefetch["snapshot"])
            self._prefetch = None

    def _discard_prefetch_if_stale(self, round_index: int) -> None:
        if self._prefetch is not None and self._prefetch["round"] != round_index:
            self._discard_prefetch()

    @staticmethod
    def _merge_stats(batches: List[BatchResult]) -> BatchStats:
        """Sum chunk statistics into one round-level BatchStats.

        Under dedup+memoize (the pipeline's precondition) the sums equal
        what one serial batch reports: a cross-chunk duplicate is a memo hit
        instead of a within-batch group join, and both count as one
        ``eval_cache_hits``.
        """
        stats = BatchStats()
        for batch in batches:
            other = batch.stats
            stats.checked += other.checked
            stats.passed_check += other.passed_check
            stats.passed_after_repair += other.passed_after_repair
            for code, count in other.failure_codes.items():
                stats.failure_codes[code] = stats.failure_codes.get(code, 0) + count
            stats.eval_cache_lookups += other.eval_cache_lookups
            stats.eval_cache_hits += other.eval_cache_hits
            stats.unique_evaluations += other.unique_evaluations
            stats.eval_timeouts += other.eval_timeouts
            stats.store_lookups += other.store_lookups
            stats.store_hits += other.store_hits
            stats.rung_evaluations += other.rung_evaluations
            stats.rung_promotions += other.rung_promotions
            stats.rung_eliminations += other.rung_eliminations
            stats.screen_checks += other.screen_checks
            stats.screened += other.screened
        return stats

    @staticmethod
    def _fold_stats(summary: RoundSummary, stats: BatchStats) -> None:
        summary.passed_check = stats.passed_check
        summary.passed_after_repair = stats.passed_after_repair
        for code, count in stats.failure_codes.items():
            summary.failure_codes[code] = summary.failure_codes.get(code, 0) + count
        summary.eval_cache_lookups = stats.eval_cache_lookups
        summary.eval_cache_hits = stats.eval_cache_hits
        summary.unique_evaluations = stats.unique_evaluations
        summary.store_lookups = stats.store_lookups
        summary.store_hits = stats.store_hits
        summary.rung_evaluations = stats.rung_evaluations
        summary.rung_promotions = stats.rung_promotions
        summary.rung_eliminations = stats.rung_eliminations
        summary.screen_checks = stats.screen_checks
        summary.screened = stats.screened

    # -- checkpointing ---------------------------------------------------------------

    def _load_checkpoint(self) -> Optional[SearchCheckpoint]:
        if self.checkpoint_path is None or not self.checkpoint_path.exists():
            return None
        checkpoint = SearchCheckpoint.load(self.checkpoint_path)
        if checkpoint.template_name and checkpoint.template_name != self.template.name:
            raise ValueError(
                f"checkpoint {self.checkpoint_path} was written for template "
                f"{checkpoint.template_name!r}, not {self.template.name!r}"
            )
        context_name = self.context.name if self.context else ""
        if checkpoint.context_name and checkpoint.context_name != context_name:
            raise ValueError(
                f"checkpoint {self.checkpoint_path} was written for context "
                f"{checkpoint.context_name!r}, not {context_name!r}; "
                "use a separate checkpoint path per context"
            )
        context_params = list(self.context.parameters) if self.context else []
        if checkpoint.context_parameters and [
            list(item) for item in context_params
        ] != checkpoint.context_parameters:
            raise ValueError(
                f"checkpoint {self.checkpoint_path} was written with context "
                f"parameters {checkpoint.context_parameters}, not "
                f"{context_params}; its memoized scores are not comparable"
            )
        return checkpoint

    def _save_checkpoint(
        self,
        population: List[ScoredCandidate],
        rounds: List[RoundSummary],
        counter: int,
        seed_stats: Dict[str, int],
    ) -> None:
        checkpoint = SearchCheckpoint(
            template_name=self.template.name,
            context_name=self.context.name if self.context else "",
            context_parameters=[
                list(item) for item in (self.context.parameters if self.context else [])
            ],
            completed_rounds=len(rounds),
            counter=counter,
            population=population,
            rounds=rounds,
            memo=self.engine.memo_snapshot(),
            generator_state=self._capture_generator_state(),
            seed_stats=dict(seed_stats),
        )
        checkpoint.save(self.checkpoint_path)

    def _capture_generator_state(self) -> Optional[Dict[str, Any]]:
        """Generator/client state as a checkpoint should record it.

        While a speculative prefetch is pending, the client has already
        consumed part of the *next* round's RNG stream; a checkpoint must
        record the pre-speculation snapshot instead, because a resumed run
        (which lost the prefetched sources) regenerates that round from the
        start.
        """
        if self._prefetch is not None:
            return self._prefetch["snapshot"]
        return self._capture_generator_state_now()

    def _capture_generator_state_now(self) -> Optional[Dict[str, Any]]:
        client = getattr(self.generator, "client", None)
        state: Dict[str, Any] = {}
        if client is not None and hasattr(client, "get_state"):
            state["client"] = client.get_state()
        usage = getattr(self.generator, "usage", None)
        if usage is not None:
            state["usage"] = {
                "prompt_tokens": usage.prompt_tokens,
                "completion_tokens": usage.completion_tokens,
                "calls": usage.calls,
            }
        return state or None

    def _restore_generator_state(self, state: Optional[Dict[str, Any]]) -> None:
        if not state:
            return
        client = getattr(self.generator, "client", None)
        if "client" in state and client is not None and hasattr(client, "set_state"):
            client.set_state(state["client"])
        usage = getattr(self.generator, "usage", None)
        if "usage" in state and usage is not None:
            usage.prompt_tokens = int(state["usage"].get("prompt_tokens", 0))
            usage.completion_tokens = int(state["usage"].get("completion_tokens", 0))
            usage.calls = int(state["usage"].get("calls", 0))
